"""Legacy-install shim.

Environments without the ``wheel`` package cannot complete a PEP 660
editable install with older setuptools; this shim lets
``pip install -e . --no-use-pep517 --no-build-isolation`` (and plain
``pip install -e .`` on modern toolchains) work everywhere.
"""

from setuptools import setup

setup()
