"""CLI surface."""

import pytest

from repro.cli import _EXPERIMENTS, main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in _EXPERIMENTS:
        assert name in out


def test_run_fast_fig5(capsys):
    assert main(["run", "fig5", "--fast"]) == 0
    out = capsys.readouterr().out
    assert "all correct: True" in out


def test_run_fast_generations(capsys):
    assert main(["run", "generations", "--fast"]) == 0
    assert "icelake" in capsys.readouterr().out


def test_unknown_experiment(capsys):
    assert main(["run", "nope"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_requires_command():
    with pytest.raises(SystemExit):
        main([])
