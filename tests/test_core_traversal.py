"""PW traversal state machine (driven with synthetic measurements)."""

from repro.core import PwRange, PwTraversal
from repro.core.traversal import disambiguate_values, suspicious_steps
from repro.memory import BLOCK_SIZE, PAGE_SIZE

PAGE = 0x400000


def _drive(traversal, oracle):
    """Run the traversal feeding matches from ``oracle(step, pw)``."""
    guard = 0
    while not traversal.finished and guard < 300:
        guard += 1
        for step in range(traversal.num_steps):
            queries = traversal.queries_for(step)
            if queries:
                matched = [oracle(step, pw) for pw in queries]
                traversal.record(step, list(queries), matched)
        traversal.advance()
    assert traversal.finished


def _block_of(address):
    return address & ~(BLOCK_SIZE - 1)


def _match(start, pw):
    """The real system's behaviour: the fetch starts at ``start`` and
    the post-interrupt drain decodes to the end of its 32-byte window,
    so a probe instrument (the byte ``pw.end - 1``) fires iff it lies
    in the start's block at or above the start."""
    instrument = pw.end - 1
    return (_block_of(instrument) == _block_of(start)
            and instrument >= start)


def _fetch_oracle(starts, span=None):
    def oracle(step, pw):
        return _match(starts[step], pw)
    return oracle


class TestByteResolution:
    def test_exact_bases_recovered_adaptive(self):
        starts = [PAGE + 0x123, PAGE + 0x124, PAGE + 0x7FF,
                  PAGE + 0x000, PAGE + 0x20]
        traversal = PwTraversal(
            num_steps=len(starts),
            page_bases=[[PAGE]] * len(starts),
            pws_per_call=8, strategy="adaptive")
        _drive(traversal, _fetch_oracle(starts, span=40))
        assert traversal.bases() == starts

    def test_exact_bases_recovered_paper(self):
        starts = [PAGE + 0x31, PAGE + 0x35, PAGE + 0xF00]
        traversal = PwTraversal(
            num_steps=len(starts),
            page_bases=[[PAGE]] * len(starts),
            pws_per_call=2, strategy="paper")
        _drive(traversal, _fetch_oracle(starts, span=40))
        assert traversal.bases() == starts

    def test_block_aligned_start_uses_ret_probe(self):
        starts = [PAGE + 0x40]          # exactly block-aligned
        traversal = PwTraversal(num_steps=1, page_bases=[[PAGE]],
                                pws_per_call=4)
        _drive(traversal, _fetch_oracle(starts))
        assert traversal.bases() == starts

    def test_no_match_leaves_unresolved(self):
        traversal = PwTraversal(num_steps=1, page_bases=[[PAGE]],
                                pws_per_call=8)
        _drive(traversal, lambda step, pw: False)
        assert traversal.bases() == [None]

    def test_paper_sweep_run_count(self):
        traversal = PwTraversal(num_steps=1, page_bases=[[PAGE]],
                                pws_per_call=2, strategy="paper")
        assert traversal.total_sweep_runs() == 64
        traversal8 = PwTraversal(num_steps=1, page_bases=[[PAGE]],
                                 pws_per_call=8, strategy="paper")
        assert traversal8.total_sweep_runs() == 16

    def test_multi_page_step(self):
        """A step with two candidate pages resolves on the right one."""
        other = PAGE + PAGE_SIZE
        starts = [other + 0x84]
        traversal = PwTraversal(num_steps=1,
                                page_bases=[[PAGE, other]],
                                pws_per_call=8)
        _drive(traversal, _fetch_oracle(starts))
        assert traversal.bases() == starts

    def test_restrict_to_skips_other_steps(self):
        starts = [PAGE + 0x10, PAGE + 0x50]
        traversal = PwTraversal(num_steps=2,
                                page_bases=[[PAGE]] * 2,
                                pws_per_call=8, restrict_to={1})
        _drive(traversal, _fetch_oracle(starts))
        assert traversal.bases()[0] is None
        assert traversal.bases()[1] == starts[1]


class TestSpeculationArtifacts:
    def test_two_round_pipeline_removes_artifact(self):
        """Step 0 speculatively touches step 2's block (a predicted
        branch target).  The adaptive sweep can stop on the artifact,
        so — exactly as NvSupervisor does — a second exhaustive round
        over the suspicious steps plus cross-step disambiguation must
        recover the truth."""
        starts = [PAGE + 0x200, PAGE + 0x204, PAGE + 0x80]

        def oracle(step, pw):
            real = _match(starts[step], pw)
            if step == 0:
                # speculation also fetched from PAGE+0x80 onward
                real |= _match(PAGE + 0x80, pw)
            return real

        first = PwTraversal(num_steps=3, page_bases=[[PAGE]] * 3,
                            pws_per_call=8)
        _drive(first, oracle)
        values = first.value_sets()
        chosen = disambiguate_values(values)
        retry = suspicious_steps(chosen, values)
        assert 0 in retry
        second = PwTraversal(
            num_steps=3, page_bases=[[PAGE]] * 3, pws_per_call=8,
            strategy="paper", restrict_to=retry,
            tested_preseed=[s.tested for s in first.steps])
        _drive(second, oracle)
        for index, extra in enumerate(second.value_sets()):
            if extra:
                values[index] = sorted(set(values[index]) | set(extra))
        assert disambiguate_values(values) == starts


class TestDisambiguationHelpers:
    def test_single_values_pass_through(self):
        assert disambiguate_values([[5], [9], []]) == [5, 9, None]

    def test_artifact_removed(self):
        # step 0 saw {80, 200}; 80 reappears as step 2's value
        values = [[80, 200], [204], [80]]
        assert disambiguate_values(values) == [200, 204, 80]

    def test_tolerant_matching(self):
        values = [[81, 200], [204], [80]]
        assert disambiguate_values(values)[0] == 200

    def test_no_repeat_keeps_lowest(self):
        values = [[80, 200], [204], [999]]
        assert disambiguate_values(values)[0] == 80

    def test_window_limits_lookahead(self):
        values = [[80, 200]] + [[300]] * 20 + [[80]]
        assert disambiguate_values(values, window=4)[0] == 80

    def test_suspicious_detection(self):
        chosen = [80, 204, 80, None]
        value_sets = [[80], [204], [80], []]
        flagged = suspicious_steps(chosen, value_sets)
        assert 0 in flagged          # repeats 2 steps later
        assert 3 in flagged          # unresolved
        assert 1 not in flagged
        assert 2 not in flagged      # nothing after repeats it

    def test_multi_lane_steps_not_suspicious(self):
        chosen = [80, 80]
        value_sets = [[80, 200], [80]]
        assert 0 not in suspicious_steps(chosen, value_sets)
