"""NV-Core / NV-U: the prime+probe primitive and fragment monitoring."""

import pytest

from repro.core import NvCore, NvUser, PwRange
from repro.cpu import Core, generation
from repro.isa import Assembler
from repro.system import Kernel, Process, SYS_SCHED_YIELD

RANGE = PwRange(0x400200, 0x400220)


def _kernel(**overrides):
    return Kernel(Core(generation("coffeelake", **overrides)))


def _victim_program(kind):
    asm = Assembler(base=0x400000)
    asm.label("entry")
    if kind == "through":
        asm.org(0x400200)
        asm.label("entry2")
        asm.nops(40)
    elif kind == "branch_inside":
        asm.nops(0x200)
        asm.emit("jmp8", "after")      # jmp at 0x400200
        asm.org(0x400280)
        asm.label("after")
    elif kind == "elsewhere":
        asm.org(0x400300)
        asm.label("entry2")
        asm.nops(16)
    asm.emit("hlt")
    return asm.assemble()


def _run_fragment(kernel, session, kind):
    program = _victim_program(kind)
    entry = program.symbols.get("entry2", 0x400000)
    victim = Process(name="victim", entry=entry)
    program.load_into(victim.memory)
    kernel.add_process(victim)
    session.prime()
    kernel.run_slice(victim)
    return session.probe()


class TestNvCore:
    @pytest.mark.parametrize("detector", ["hybrid", "cycles"])
    @pytest.mark.parametrize("kind,expected", [
        ("through", True),
        ("branch_inside", True),
        ("elsewhere", False),
    ])
    def test_detection(self, detector, kind, expected):
        kernel = _kernel()
        nv = NvCore(kernel, detector=detector)
        session = nv.monitor([RANGE])
        assert _run_fragment(kernel, session, kind) == [expected]

    def test_detection_with_noise(self):
        kernel = _kernel(timing_noise=2.0)
        nv = NvCore(kernel)
        session = nv.monitor([RANGE])
        assert _run_fragment(kernel, session, "through") == [True]

    def test_repeatable_rounds(self):
        """Prime restores state: detection works round after round."""
        kernel = _kernel()
        nv = NvCore(kernel)
        session = nv.monitor([RANGE])
        outcomes = [_run_fragment(kernel, session, kind)[0]
                    for kind in ("through", "elsewhere", "through",
                                 "elsewhere")]
        assert outcomes == [True, False, True, False]

    def test_ibrs_does_not_stop_detection(self):
        """§4.1: IBRS/IBPB leaves direct-jump entries alone."""
        kernel = _kernel(ibrs_ibpb=True)
        nv = NvCore(kernel)
        session = nv.monitor([RANGE])
        assert _run_fragment(kernel, session, "through") == [True]

    def test_flush_on_switch_blinds_the_probe(self):
        """§8.2: a full flush on every context switch breaks it —
        everything looks 'matched' whether or not the victim ran
        through the range (zero information)."""
        kernel = _kernel(flush_btb_on_switch=True)
        nv = NvCore(kernel)
        session = nv.monitor([RANGE])
        through = _run_fragment(kernel, session, "through")
        elsewhere = _run_fragment(kernel, session, "elsewhere")
        assert through == elsewhere

    def test_partitioning_blinds_the_probe(self):
        kernel = _kernel(btb_partitioning=True)
        nv = NvCore(kernel)
        session = nv.monitor([RANGE])
        through = _run_fragment(kernel, session, "through")
        elsewhere = _run_fragment(kernel, session, "elsewhere")
        assert through == elsewhere

    def test_bad_detector_rejected(self):
        from repro.errors import AttackError
        with pytest.raises(AttackError):
            NvCore(_kernel(), detector="psychic")

    def test_probe_reading_exposes_raw_measurements(self):
        kernel = _kernel()
        nv = NvCore(kernel)
        session = nv.monitor([RANGE])
        session.prime()
        reading = session.probe_detailed()
        assert reading.matched == [False]
        assert reading.own_elapsed[0] is not None


class TestNvUser:
    def _yielding_victim(self, touch_range):
        asm = Assembler(base=0x400000)
        asm.label("entry")
        for _ in range(3):
            if touch_range:
                asm.emit("call", "touch")
            asm.emit("movi", "rax", SYS_SCHED_YIELD)
            asm.emit("syscall")
        asm.emit("hlt")
        asm.org(0x400200)
        asm.label("touch")
        asm.nops(8)
        asm.emit("ret")
        return asm.assemble()

    def test_per_fragment_matrix(self):
        kernel = _kernel()
        nv = NvCore(kernel)
        nv_user = NvUser(nv)
        session = nv.monitor([PwRange(0x400204, 0x400214)])
        program = self._yielding_victim(touch_range=True)
        victim = Process(name="victim", entry=0x400000)
        program.load_into(victim.memory)
        kernel.add_process(victim)
        result = nv_user.run(victim, session)
        assert result.victim_exited
        # three yield fragments + final fragment to hlt
        assert len(result.observations) == 4
        assert result.column(0)[:3] == [True, True, True]

    def test_untouched_range_never_matches(self):
        kernel = _kernel()
        nv = NvCore(kernel)
        nv_user = NvUser(nv)
        session = nv.monitor([PwRange(0x400240, 0x400260)])
        program = self._yielding_victim(touch_range=True)
        victim = Process(name="victim", entry=0x400000)
        program.load_into(victim.memory)
        kernel.add_process(victim)
        result = nv_user.run(victim, session)
        assert not any(result.column(0))
