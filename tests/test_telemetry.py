"""The telemetry subsystem: sink semantics, canonical serialisation,
the determinism contract (same seed -> byte-identical trace), the
reconciliation of trace events with the differential analysis, the
perf-suite overhead gate, and the ``repro stats`` / ``repro trace``
CLI subcommands."""

import json

from repro import telemetry
from repro.analysis.differential import false_hit_blocks, observe_run
from repro.experiments.common import RunRequest, run_experiment
from repro.perf.suite import (check_telemetry_overhead,
                              measure_telemetry_overhead)
from repro.victims.library import build_bn_cmp_victim


# ----------------------------------------------------------------------
# sink semantics
# ----------------------------------------------------------------------
def test_count_accumulates_and_emit_counts():
    sink = telemetry.TelemetrySink()
    sink.count("a.b", 2)
    sink.count("a.b")
    sink.emit("c.d", {"x": 1})
    assert sink.counters == {"a.b": 3, "c.d": 1}


def test_trace_off_keeps_no_events_but_seq_advances():
    sink = telemetry.TelemetrySink()
    sink.emit("c.d", {"x": 1})
    assert sink.events == []
    traced = telemetry.TelemetrySink(trace=True)
    traced.emit("c.d", {"x": 1})
    traced.emit("c.d")
    assert traced.events == [{"seq": 0, "ev": "c.d", "x": 1},
                             {"seq": 1, "ev": "c.d"}]


def test_module_guards_are_noops_when_disabled():
    assert telemetry.current() is None
    telemetry.count("never", 5)        # must not raise without a sink
    telemetry.emit("never", {"x": 1})
    assert telemetry.current() is None


def test_session_installs_restores_and_nests():
    assert telemetry.current() is None
    with telemetry.session() as outer:
        assert telemetry.current() is outer
        outer.count("outer.only")
        with telemetry.session(trace=True) as inner:
            assert telemetry.current() is inner
            inner.count("inner.only")
        assert telemetry.current() is outer
    assert telemetry.current() is None
    assert "inner.only" not in outer.counters
    assert "outer.only" not in inner.counters


def test_registered_sources_fold_once_and_skip_zeros():
    sink = telemetry.TelemetrySink()
    totals = {"cpu.btb.lookups": 7, "cpu.btb.evictions": 0}
    sink.register(lambda: totals)
    sink.finalize()
    sink.finalize()                    # idempotent
    assert sink.counters == {"cpu.btb.lookups": 7}
    assert sink.snapshot() == {"cpu.btb.lookups": 7}


def test_span_is_wall_clock_only_never_a_counter():
    sink = telemetry.TelemetrySink()
    with sink.span("phase"):
        pass
    with sink.span("phase"):
        pass
    calls, total = sink.timings["phase"]
    assert calls == 2
    assert total >= 0.0
    assert "phase" not in sink.counters


# ----------------------------------------------------------------------
# canonical serialisation
# ----------------------------------------------------------------------
def test_render_trace_is_canonical_jsonl():
    sink = telemetry.TelemetrySink(trace=True)
    sink.emit("b.a", {"z": 1, "a": 2})
    text = telemetry.render_trace(sink)
    assert text == '{"a":2,"ev":"b.a","seq":0,"z":1}\n'
    assert len(telemetry.trace_digest(sink)) == 64


def test_counters_digest_is_order_insensitive():
    assert (telemetry.counters_digest({"a": 1, "b": 2})
            == telemetry.counters_digest({"b": 2, "a": 1}))
    assert (telemetry.counters_digest({"a": 1})
            != telemetry.counters_digest({"a": 2}))


def test_render_stats_deterministic_and_timings_opt_in():
    sink = telemetry.TelemetrySink()
    sink.count("x.y", 3)
    with sink.span("phase"):
        pass
    plain = telemetry.render_stats(sink)
    assert "x.y" in plain
    assert "stats digest:" in plain
    assert "wall clock" not in plain
    timed = telemetry.render_stats(sink, timings=True)
    assert "wall clock" in timed
    assert timed.startswith(plain.rstrip("\n"))


# ----------------------------------------------------------------------
# the determinism contract, end to end
# ----------------------------------------------------------------------
def _observe_fig2(seed=7):
    with telemetry.session(trace=True) as sink:
        run_experiment("fig2", RunRequest(fast=True, seed=seed))
    return sink


def test_trace_is_byte_stable_under_fixed_seed():
    first = _observe_fig2()
    second = _observe_fig2()
    assert (telemetry.render_trace(first)
            == telemetry.render_trace(second))
    assert (telemetry.trace_digest(first)
            == telemetry.trace_digest(second))
    assert first.snapshot() == second.snapshot()


def test_fig2_counters_cover_every_layer():
    sink = _observe_fig2()
    counters = sink.snapshot()
    assert counters["exp.runs"] == 1
    assert counters["cpu.btb.lookups"] > 0
    assert counters["cpu.core.runs"] > 0
    assert counters["cpu.decode.window_builds"] > 0
    assert "exp.fig2" in sink.timings


def test_false_hit_events_reconcile_with_differential_counts():
    """The acceptance criterion: the trace's false-hit events ARE the
    Takeaway-1 deallocation record, and they reconcile exactly with
    the counters and with the analysis.differential extraction."""
    sink = _observe_fig2()
    events = [event for event in sink.events
              if event["ev"] == "cpu.core.false_hit"]
    assert events                             # fig2 drives real deallocs
    counters = sink.snapshot()
    assert counters["cpu.core.false_hit"] == len(events)
    # Every false hit deallocates exactly one entry.
    assert counters["cpu.btb.deallocations"] >= len(events)
    # The differential extraction sees the same population.
    blocks = false_hit_blocks(sink.events)
    assert blocks
    assert len(blocks) <= len(events)         # set-dedup only shrinks
    charged = sum(1 for event in events if event["charged"])
    assert counters.get("cpu.core.squashes", 0) >= charged


def test_observe_run_is_isolated_from_outer_sessions():
    """analysis.differential opens its own tracing session, so its
    victim's events never leak into (or read from) the caller's."""
    victim = build_bn_cmp_victim()
    with telemetry.session(trace=True) as outer:
        observation = observe_run(victim, {"a": 99, "b": 77})
    assert observation.insertions              # the victim did report
    assert outer.events == []                  # ...but not to us
    assert "cpu.btb.lookups" not in outer.counters


# ----------------------------------------------------------------------
# perf-suite overhead gate
# ----------------------------------------------------------------------
def test_measure_telemetry_overhead_payload_shape():
    info = measure_telemetry_overhead(quick=True)
    assert info["work"] > 0
    assert info["disabled_seconds"] > 0
    assert info["enabled_seconds"] > 0
    assert isinstance(info["counters"], dict)
    assert info["counters"].get("cpu.core.runs", 0) >= 1


def test_check_telemetry_overhead_gate():
    ok = {"telemetry": {"overhead": 0.01}}
    over = {"telemetry": {"overhead": 0.10}}
    assert check_telemetry_overhead(ok) == []
    assert check_telemetry_overhead(over)
    assert "exceeds" in check_telemetry_overhead(over)[0]
    assert check_telemetry_overhead({})       # section missing -> fail
    assert check_telemetry_overhead(over, threshold=0.5) == []


# ----------------------------------------------------------------------
# CLI: repro stats / repro trace
# ----------------------------------------------------------------------
def test_cli_trace_is_byte_stable(tmp_path, capsys):
    from repro.cli import main
    first = tmp_path / "a.jsonl"
    second = tmp_path / "b.jsonl"
    assert main(["trace", "fig2", "--fast", "--seed", "7",
                 "--out", str(first)]) == 0
    assert main(["trace", "fig2", "--fast", "--seed", "7",
                 "--out", str(second)]) == 0
    out = capsys.readouterr().out
    assert "trace digest:" in out
    payload = first.read_bytes()
    assert payload == second.read_bytes()
    # every line is a canonical JSON object carrying seq + ev
    for line in payload.decode().splitlines():
        record = json.loads(line)
        assert "seq" in record and "ev" in record


def test_cli_trace_stdout_mode(capsys):
    from repro.cli import main
    assert main(["trace", "fig2", "--fast", "--seed", "7",
                 "--out", "-"]) == 0
    out = capsys.readouterr().out
    assert out.splitlines()
    assert json.loads(out.splitlines()[0])["seq"] == 0


def test_cli_stats_artifact_is_deterministic(tmp_path, capsys):
    from repro.cli import main
    first = tmp_path / "a.txt"
    second = tmp_path / "b.txt"
    assert main(["stats", "fig2", "--fast", "--seed", "7",
                 "--out", str(first)]) == 0
    assert main(["stats", "fig2", "--fast", "--seed", "7",
                 "--out", str(second), "--timings"]) == 0
    out = capsys.readouterr().out
    assert "stats digest:" in out
    assert "wall clock" in out              # --timings on the console...
    assert first.read_bytes() == second.read_bytes()   # ...never in --out
    assert "wall clock" not in first.read_text()


def test_cli_stats_unknown_experiment(capsys):
    from repro.cli import main
    assert main(["stats", "nope"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


# ----------------------------------------------------------------------
# counter-snapshot merging (the service's cross-shard aggregation)
# ----------------------------------------------------------------------
def _random_snapshots(seed, count=6):
    import random
    rng = random.Random(seed)
    names = ["btb.hits", "btb.misses", "probe.rounds", "lbr.reads"]
    return [
        {name: rng.randrange(0, 1000)
         for name in rng.sample(names, rng.randrange(1, len(names)))}
        for _ in range(count)
    ]


def test_merge_counters_is_commutative_and_associative():
    import itertools
    for seed in range(8):
        snapshots = _random_snapshots(seed, count=4)
        reference = telemetry.merge_counters(*snapshots)
        # commutativity: every permutation merges identically
        for order in itertools.permutations(snapshots):
            assert telemetry.merge_counters(*order) == reference
        # associativity: any grouping merges identically
        left = telemetry.merge_counters(
            telemetry.merge_counters(snapshots[0], snapshots[1]),
            snapshots[2], snapshots[3])
        right = telemetry.merge_counters(
            snapshots[0], telemetry.merge_counters(
                snapshots[1], snapshots[2], snapshots[3]))
        assert left == right == reference


def test_merge_counters_digest_stability():
    for seed in range(4):
        snapshots = _random_snapshots(seed)
        forward = telemetry.merge_counters(*snapshots)
        backward = telemetry.merge_counters(*reversed(snapshots))
        assert (telemetry.counters_digest(forward)
                == telemetry.counters_digest(backward))


def test_merge_counters_identity_and_empty():
    assert telemetry.merge_counters() == {}
    assert telemetry.merge_counters({}, {"a": 1}, {}) == {"a": 1}
    assert telemetry.merge_counters({"a": 1}, {"a": 2}) == {"a": 3}
    # output is sorted by name for canonical JSON stability
    merged = telemetry.merge_counters({"z": 1, "a": 1})
    assert list(merged) == ["a", "z"]


def test_merge_counters_never_sees_spans():
    """Spans are wall clock and excluded from worker snapshots; a
    merged aggregate digest therefore stays seed-stable."""
    with telemetry.session() as sink:
        telemetry.count("merge.me", 2)
        with sink.span("wall.clock"):
            pass
    snapshot = sink.snapshot()
    assert "merge.me" in snapshot
    assert all("wall.clock" not in name for name in snapshot)
    merged = telemetry.merge_counters(snapshot, snapshot)
    assert merged["merge.me"] == 4
    assert all("wall.clock" not in name for name in merged)
