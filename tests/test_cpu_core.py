"""Front-end core: prediction windows, false hits, fusion, drains."""

import pytest

from repro.cpu import Core, MachineState, StopReason, generation
from repro.errors import ExecutionLimitExceeded
from repro.isa import Assembler
from repro.memory import VirtualMemory


def build(asm_fn, base=0x400000):
    asm = Assembler(base=base)
    asm_fn(asm)
    return asm.assemble()


def machine(program, entry=None):
    memory = VirtualMemory()
    program.load_into(memory)
    state = MachineState(memory, rip=entry if entry is not None
                         else program.entry)
    state.setup_stack(0x7FFF0000)
    return state


def run_to_halt(core, state, **kwargs):
    return core.run(state, collect_trace=True, **kwargs)


class TestBasicExecution:
    def test_straight_line(self):
        program = build(lambda asm: (asm.emit("movi", "rax", 7),
                                     asm.emit("addi8", "rax", 3),
                                     asm.emit("hlt")))
        core = Core(generation("skylake"))
        state = machine(program)
        result = run_to_halt(core, state)
        assert result.reason is StopReason.HALT
        assert state.regs["rax"] == 10

    def test_loop_allocates_one_entry(self):
        def body(asm):
            asm.emit("movi", "rcx", 5)
            asm.label("loop")
            asm.emit("dec", "rcx")           # not fusible with jne8?
            asm.emit("test", "rcx", "rcx")
            asm.emit("jne8", "loop")
            asm.emit("hlt")
        core = Core(generation("skylake"))
        state = machine(build(body))
        run_to_halt(core, state)
        # exactly the loop branch lives in the BTB
        assert core.btb.occupancy() == 1

    def test_trace_matches_interpreter(self):
        from repro.cpu import interpret

        def body(asm):
            asm.emit("movi", "rax", 0)
            asm.label("loop")
            asm.emit("addi8", "rax", 2)
            asm.emit("cmpi", "rax", 20)
            asm.emit("jne8", "loop")
            asm.emit("hlt")
        program = build(body)
        core = Core(generation("coffeelake"))
        state = machine(program)
        result = run_to_halt(core, state)
        state2 = machine(program)
        reference = interpret(state2)
        assert result.trace == reference.trace
        assert state.regs["rax"] == state2.regs["rax"]

    def test_runaway_guard(self):
        program = build(lambda asm: (asm.label("spin"),
                                     asm.emit("jmp8", "spin")))
        core = Core(generation("skylake"))
        with pytest.raises(ExecutionLimitExceeded):
            core.run(machine(program), max_instructions=1000)


class TestPrediction:
    def test_second_run_is_predicted(self):
        def body(asm):
            asm.emit("jmp8", "next")
            asm.label("next")
            asm.emit("hlt")
        program = build(body)
        core = Core(generation("skylake"))
        for expected_mp in (True, False):
            state = machine(program)
            core.lbr.clear()
            run_to_halt(core, state)
            record = core.lbr.records()[0]
            assert record.mispredicted is expected_mp

    def test_wrong_target_updates_entry(self):
        """An indirect jump changing targets mispredicts and the
        entry's target is corrected in place."""
        def body(asm):
            asm.emit("jmpr", "rdi")
            asm.org(0x400100)
            asm.label("t1")
            asm.emit("hlt")
            asm.org(0x400200)
            asm.label("t2")
            asm.emit("hlt")
        program = build(body)
        core = Core(generation("skylake"))
        for target, expected_mp in ((0x400100, True),
                                    (0x400200, True),
                                    (0x400200, False)):
            state = machine(program)
            state.regs["rdi"] = target
            core.lbr.clear()
            run_to_halt(core, state)
            assert core.lbr.records()[0].mispredicted is expected_mp
        assert core.btb.occupancy() == 1

    def test_false_hit_deallocates(self):
        """Takeaway 1 at the core level: a nop aliasing a jump's
        entry kills it."""
        config = generation("skylake")

        def body(asm):
            asm.label("jump")
            asm.emit("jmp8", "land")
            asm.label("land")
            asm.emit("hlt")
            asm.org(0x400000 + config.collision_distance)
            asm.label("sled")
            asm.nops(8)
            asm.emit("hlt")
        program = build(body)
        core = Core(config)
        run_to_halt(core, machine(program))          # allocate
        assert core.btb.occupancy() == 1
        run_to_halt(core, machine(program, entry=program.address_of(
            "sled")))                                # false hit
        assert core.btb.occupancy() == 0
        assert core.btb.stats.deallocations == 1


class TestFusion:
    def _victim(self):
        def body(asm):
            asm.emit("movi", "rax", 3)
            asm.emit("cmpi8", "rax", 3)    # fusible
            asm.emit("je8", "out")         # fuses with cmpi8
            asm.emit("movi", "rbx", 1)
            asm.label("out")
            asm.emit("hlt")
        return build(body)

    def test_fused_pair_is_one_retire_unit(self):
        core = Core(generation("skylake", fusion_enabled=True))
        result = run_to_halt(core, machine(self._victim()))
        assert result.instructions == result.retired + 1

    def test_fusion_disabled(self):
        core = Core(generation("skylake", fusion_enabled=False))
        result = run_to_halt(core, machine(self._victim()))
        assert result.instructions == result.retired

    def test_single_step_cannot_split_fused_pair(self):
        core = Core(generation("skylake", fusion_enabled=True))
        state = machine(self._victim())
        result = core.run(state, max_retired=2, collect_trace=True)
        assert result.reason is StopReason.RETIRE_LIMIT
        assert result.retired == 2
        assert result.instructions == 3       # movi + fused pair


class TestSingleStepDrain:
    def test_drain_fires_decode_dealloc(self):
        """Single-stepping one nop of a sled must still deallocate an
        entry aliasing later bytes of the window (§6.3)."""
        config = generation("skylake")

        def body(asm):
            asm.label("jump")
            asm.nops(30)
            asm.emit("jmp8", "land")      # entry at block offset 31
            asm.label("land")
            asm.emit("hlt")
            asm.org(0x400000 + config.collision_distance)
            asm.label("sled")
            asm.nops(40)
            asm.emit("hlt")
        program = build(body)
        core = Core(config)
        run_to_halt(core, machine(program))
        assert core.btb.occupancy() >= 1
        state = machine(program, entry=program.address_of("sled"))
        core.run(state, max_retired=1)        # single step one nop
        assert core.btb.stats.deallocations >= 1

    def test_no_drain_when_disabled(self):
        config = generation("skylake", drain_windows=0,
                            spec_lookahead=0)

        def body(asm):
            asm.label("jump")
            asm.nops(30)
            asm.emit("jmp8", "land")
            asm.label("land")
            asm.emit("hlt")
            asm.org(0x400000 + config.collision_distance)
            asm.label("sled")
            asm.nops(40)
            asm.emit("hlt")
        program = build(body)
        core = Core(config)
        run_to_halt(core, machine(program))
        deallocs = core.btb.stats.deallocations
        state = machine(program, entry=program.address_of("sled"))
        core.run(state, max_retired=1)
        assert core.btb.stats.deallocations == deallocs


class TestContextSwitchMitigations:
    def test_ibrs_flushes_only_indirect(self):
        core = Core(generation("skylake", ibrs_ibpb=True))

        def body(asm):
            asm.emit("movabs", "rdi", 0x400100)
            asm.emit("jmpr", "rdi")
            asm.org(0x400100)
            asm.label("t")
            asm.emit("jmp8", "out")
            asm.label("out")
            asm.emit("hlt")
        run_to_halt(core, machine(build(body)))
        assert core.btb.occupancy() == 2
        core.context_switch(domain=2)
        kinds = {entry.kind.value for entry in core.btb.valid_entries()}
        assert kinds == {"direct_jump"}

    def test_flush_on_switch(self):
        core = Core(generation("skylake", flush_btb_on_switch=True))
        program = build(lambda asm: (asm.emit("jmp8", "x"),
                                     asm.label("x"), asm.emit("hlt")))
        run_to_halt(core, machine(program))
        assert core.btb.occupancy() == 1
        core.context_switch(domain=2)
        assert core.btb.occupancy() == 0


class TestTiming:
    def test_mispredict_costs_cycles(self):
        program = build(lambda asm: (asm.emit("jmp8", "x"),
                                     asm.label("x"), asm.emit("hlt")))
        config = generation("skylake")
        core = Core(config)
        cold = run_to_halt(core, machine(program)).cycles
        warm = run_to_halt(core, machine(program)).cycles
        assert cold - warm >= config.squash_penalty * 0.9

    def test_enclave_mode_gates_lbr(self):
        program = build(lambda asm: (asm.emit("jmp8", "x"),
                                     asm.label("x"), asm.emit("hlt")))
        core = Core(generation("skylake"))
        core.set_enclave_mode(True)
        run_to_halt(core, machine(program))
        assert len(core.lbr.records()) == 0
        core.set_enclave_mode(False)
        run_to_halt(core, machine(program))
        assert len(core.lbr.records()) == 1
