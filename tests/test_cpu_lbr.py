"""Last Branch Record behaviour."""

from repro.cpu import LBR


def test_records_in_order():
    lbr = LBR()
    lbr.record(0x10, 0x20, cycles_now=5.0, mispredicted=False)
    lbr.record(0x30, 0x40, cycles_now=9.0, mispredicted=True)
    records = lbr.records()
    assert [r.from_pc for r in records] == [0x10, 0x30]
    assert records[1].elapsed_cycles == 4
    assert records[1].mispredicted is True


def test_first_record_elapsed_zero():
    lbr = LBR()
    lbr.record(0x10, 0x20, cycles_now=100.0, mispredicted=False)
    assert lbr.records()[0].elapsed_cycles == 0


def test_ring_depth():
    lbr = LBR(depth=4)
    for index in range(10):
        lbr.record(index, index + 1, cycles_now=float(index),
                   mispredicted=False)
    records = lbr.records()
    assert len(records) == 4
    assert records[0].from_pc == 6


def test_disabled_still_advances_clock():
    """Enclave-mode suppression must not corrupt the next enabled
    record's elapsed-cycle reading."""
    lbr = LBR()
    lbr.record(0x10, 0x20, cycles_now=5.0, mispredicted=False)
    lbr.enabled = False
    lbr.record(0x30, 0x40, cycles_now=50.0, mispredicted=False)
    lbr.enabled = True
    lbr.record(0x50, 0x60, cycles_now=60.0, mispredicted=False)
    records = lbr.records()
    assert len(records) == 2                      # suppressed one gone
    assert records[1].elapsed_cycles == 10        # measured from 50


def test_find_from_and_elapsed_after():
    lbr = LBR()
    lbr.record(0x10, 0x20, cycles_now=0.0, mispredicted=False)
    lbr.record(0x30, 0x40, cycles_now=7.0, mispredicted=False)
    lbr.record(0x10, 0x20, cycles_now=10.0, mispredicted=True)
    lbr.record(0x99, 0xA0, cycles_now=31.0, mispredicted=False)
    assert lbr.find_from(0x10).mispredicted is True   # most recent
    assert lbr.elapsed_after(0x10) == 21
    assert lbr.elapsed_after(0x99) is None            # nothing after
    assert lbr.elapsed_after(0xDEAD) is None


def test_clear():
    lbr = LBR()
    lbr.record(0x10, 0x20, cycles_now=5.0, mispredicted=False)
    lbr.clear()
    assert len(lbr) == 0
    lbr.record(0x10, 0x20, cycles_now=99.0, mispredicted=False)
    assert lbr.records()[0].elapsed_cycles == 0


def test_noise_is_deterministic_per_seed():
    readings = []
    for _ in range(2):
        lbr = LBR(timing_noise=3.0, seed=42)
        lbr.record(0x10, 0x20, cycles_now=0.0, mispredicted=False)
        lbr.record(0x30, 0x40, cycles_now=20.0, mispredicted=False)
        readings.append(lbr.records()[1].elapsed_cycles)
    assert readings[0] == readings[1]


def test_noise_never_negative():
    lbr = LBR(timing_noise=50.0, seed=1)
    for index in range(50):
        lbr.record(0x10, 0x20, cycles_now=index * 1.0,
                   mispredicted=False)
    assert all(r.elapsed_cycles >= 0 for r in lbr.records())
