"""Decoded-window cache: invalidation, permission asymmetry, deadlines.

Covers the contract in DESIGN.md §9: windows are keyed by entry PC and
``code_generation`` (write epoch + paging epoch), so writes to
executable pages and remaps invalidate both decode caches in both
engines — while ``set_perms`` deliberately does *not*, preserving the
oracle/core permission asymmetry the controlled-channel attacker
depends on.
"""

import pytest

from repro.cpu import (Core, InterpStop, MachineState, StopReason,
                      interpret, set_fast_path)
from repro.cpu.decoded import build_window, fast_path_enabled, get_window
from repro.isa import Assembler
from repro.memory import VirtualMemory
from repro.memory.address import PAGE_SHIFT, PAGE_SIZE


@pytest.fixture(autouse=True)
def _restore_fast_path():
    before = fast_path_enabled()
    yield
    set_fast_path(before)


BASE = 0x0040_0000


def constant_program(value):
    asm = Assembler(base=BASE)
    asm.emit("movi", "rax", value)
    asm.emit("hlt")
    return asm.assemble()


def fresh_state(memory):
    state = MachineState(memory, rip=BASE)
    state.setup_stack(0x7FFF_0000)
    return state


def run_core(memory):
    state = fresh_state(memory)
    core = Core()
    result = core.run(state)
    return result, state


# ----------------------------------------------------------------------
# invalidation: write to an executable page
# ----------------------------------------------------------------------
@pytest.mark.parametrize("fast", [False, True])
class TestWriteInvalidation:
    def _load(self, fast):
        set_fast_path(fast)
        memory = VirtualMemory()
        constant_program(1).load_into(memory, perms="rwx")
        return memory

    def test_core_sees_new_bytes(self, fast):
        memory = self._load(fast)
        result, state = run_core(memory)
        assert result.reason is StopReason.HALT
        assert state.regs["rax"] == 1
        generation = memory.code_generation
        for base, data in constant_program(2).segments:
            memory.write_bytes(base, data, check=False)
        assert memory.code_generation != generation
        result, state = run_core(memory)
        assert result.reason is StopReason.HALT
        assert state.regs["rax"] == 2

    def test_interp_sees_new_bytes(self, fast):
        memory = self._load(fast)
        state = fresh_state(memory)
        assert interpret(state).reason is InterpStop.HALT
        assert state.regs["rax"] == 1
        for base, data in constant_program(2).segments:
            memory.write_bytes(base, data, check=False)
        state = fresh_state(memory)
        assert interpret(state).reason is InterpStop.HALT
        assert state.regs["rax"] == 2

    def test_both_caches_dropped(self, fast):
        memory = self._load(fast)
        run_core(memory)
        assert BASE in memory.icache
        if fast:
            assert memory.window_cache
        for base, data in constant_program(2).segments:
            memory.write_bytes(base, data, check=False)
        assert BASE not in memory.icache
        if fast:
            window = get_window(memory, BASE)
            assert window is None or window.generation == \
                memory.code_generation


# ----------------------------------------------------------------------
# invalidation: unmap + remap the code page
# ----------------------------------------------------------------------
@pytest.mark.parametrize("fast", [False, True])
class TestRemapInvalidation:
    def test_core_sees_remapped_program(self, fast):
        set_fast_path(fast)
        memory = VirtualMemory()
        constant_program(1).load_into(memory)
        result, state = run_core(memory)
        assert state.regs["rax"] == 1
        memory.page_table.unmap_page(BASE >> PAGE_SHIFT)
        constant_program(2).load_into(memory)
        result, state = run_core(memory)
        assert result.reason is StopReason.HALT
        assert state.regs["rax"] == 2

    def test_interp_sees_remapped_program(self, fast):
        set_fast_path(fast)
        memory = VirtualMemory()
        constant_program(1).load_into(memory)
        state = fresh_state(memory)
        interpret(state)
        assert state.regs["rax"] == 1
        memory.page_table.unmap_page(BASE >> PAGE_SHIFT)
        constant_program(2).load_into(memory)
        state = fresh_state(memory)
        assert interpret(state).reason is InterpStop.HALT
        assert state.regs["rax"] == 2


# ----------------------------------------------------------------------
# self-modifying code inside one window (store overwrites the next
# instruction): the has_store bail-out must match the slow path
# ----------------------------------------------------------------------
def self_modifying_program():
    # One 32-byte block: the store at +20 overwrites the "movi rbx, 1"
    # at +24 (and the trailing nop) with eight NOPs before it executes.
    asm = Assembler(base=BASE)
    asm.emit("movabs", "rax", 0x9090_9090_9090_9090)   # +0, 10 bytes
    asm.emit("movabs", "rdi", BASE + 24)               # +10, 10 bytes
    asm.emit("store", "rdi", "rax", 0)                 # +20, 4 bytes
    asm.emit("movi", "rbx", 1)                         # +24, 7 bytes
    asm.emit("nop")                                    # +31, 1 byte
    asm.emit("hlt")                                    # +32
    return asm.assemble()


@pytest.mark.parametrize("fast", [False, True])
def test_self_modifying_store_within_window(fast):
    set_fast_path(fast)
    memory = VirtualMemory()
    self_modifying_program().load_into(memory, perms="rwx")
    result, state = run_core(memory)
    assert result.reason is StopReason.HALT
    assert state.regs["rbx"] == 0          # the movi never executed

    set_fast_path(fast)
    memory = VirtualMemory()
    self_modifying_program().load_into(memory, perms="rwx")
    state = fresh_state(memory)
    assert interpret(state).reason is InterpStop.HALT
    assert state.regs["rbx"] == 0


def test_self_modifying_fast_matches_slow_exactly():
    def run(fast):
        set_fast_path(fast)
        memory = VirtualMemory()
        self_modifying_program().load_into(memory, perms="rwx")
        state = fresh_state(memory)
        core = Core()
        result = core.run(state, collect_trace=True)
        return (result.reason, result.retired, result.instructions,
                result.cycles, tuple(result.trace),
                state.regs.snapshot())

    assert run(False) == run(True)


# ----------------------------------------------------------------------
# permission asymmetry: revoking execute is visible to the core's
# per-fetch check but invisible to the warm oracle (intentional — the
# controlled-channel supervisor flips permissions between single steps
# and the functional oracle must not observe that)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("fast", [False, True])
def test_execute_revocation_asymmetry(fast):
    set_fast_path(fast)
    memory = VirtualMemory()
    constant_program(7).load_into(memory)

    # warm both decode caches
    result, state = run_core(memory)
    assert result.reason is StopReason.HALT
    state = fresh_state(memory)
    assert interpret(state).reason is InterpStop.HALT

    generation = memory.code_generation
    memory.protect(BASE, PAGE_SIZE, "r")
    # set_perms must not invalidate: same generation, caches intact
    assert memory.code_generation == generation
    assert BASE in memory.icache

    # the core re-checks execute permission on every fetch...
    result, state = run_core(memory)
    assert result.reason is StopReason.PAGE_FAULT
    assert state.rip == BASE

    # ...the oracle serves warm cache entries regardless
    state = fresh_state(memory)
    result = interpret(state)
    assert result.reason is InterpStop.HALT
    assert state.regs["rax"] == 7

    # restoring execute lets the core run again without any reload
    memory.protect(BASE, PAGE_SIZE, "rx")
    result, state = run_core(memory)
    assert result.reason is StopReason.HALT
    assert state.regs["rax"] == 7


def test_transient_revocation_does_not_pin_empty_windows():
    """An execute fault at a window entry must not be cached: once the
    permission comes back, the fast path has to recover."""
    set_fast_path(True)
    memory = VirtualMemory()
    constant_program(3).load_into(memory)
    memory.protect(BASE, PAGE_SIZE, "r")
    assert build_window(memory, BASE).count == 0
    assert BASE not in memory.window_cache
    memory.protect(BASE, PAGE_SIZE, "rx")
    assert build_window(memory, BASE).count > 0
    result, state = run_core(memory)
    assert result.reason is StopReason.HALT
    assert state.regs["rax"] == 3


# ----------------------------------------------------------------------
# DecodeCache page registration drives write-epoch bumps
# ----------------------------------------------------------------------
def test_decode_cache_registers_spanning_pages():
    memory = VirtualMemory()
    memory.icache[0x1FFE] = ("op", 3)      # straddles pages 1 and 2
    assert {0x1, 0x2} <= memory.icache.code_pages


def test_data_writes_do_not_bump_generation():
    memory = VirtualMemory()
    constant_program(1).load_into(memory)
    memory.map_range(0x0090_0000, PAGE_SIZE, "rw")
    run_core(memory)                        # populate code_pages
    generation = memory.code_generation
    memory.write_u64(0x0090_0000, 0xDEAD)
    assert memory.code_generation == generation


# ----------------------------------------------------------------------
# deadline checks: no clock call at instruction 0, strided afterwards
# ----------------------------------------------------------------------
def _count_monotonic(monkeypatch):
    import repro.cpu.interp as interp_mod
    calls = {"n": 0}
    real = interp_mod.time.monotonic

    def counting():
        calls["n"] += 1
        return real()

    monkeypatch.setattr(interp_mod.time, "monotonic", counting)
    return calls


def test_short_run_never_touches_the_clock(monkeypatch):
    memory = VirtualMemory()
    constant_program(1).load_into(memory)
    state = fresh_state(memory)
    calls = _count_monotonic(monkeypatch)
    interpret(state, deadline=1e18)
    assert calls["n"] == 0


def test_long_run_checks_the_clock(monkeypatch):
    asm = Assembler(base=BASE)
    asm.emit("movi", "rcx", 3_000)
    asm.label("loop")
    asm.emit("dec", "rcx")
    asm.emit("jne8", "loop")
    asm.emit("hlt")
    memory = VirtualMemory()
    asm.assemble().load_into(memory)
    state = fresh_state(memory)
    calls = _count_monotonic(monkeypatch)
    interpret(state, deadline=1e18)
    assert calls["n"] >= 1


def test_check_deadline_skips_instruction_zero(monkeypatch):
    from repro.cpu.interp import _check_deadline
    calls = _count_monotonic(monkeypatch)
    _check_deadline(0, 1e18)
    assert calls["n"] == 0                 # the old bug paid one here
    _check_deadline(2048, 1e18)
    assert calls["n"] == 1
