"""SGX model: PCL sealing, EPC isolation, stepping, controlled
channels."""

import pytest
from hypothesis import given, strategies as st

from repro.cpu import Core, generation
from repro.errors import EnclaveAccessError, SgxError
from repro.isa import Assembler
from repro.memory import PAGE_SIZE
from repro.sgx import (CodePageTracker, DataAccessMonitor, Enclave,
                       SealedImage, SgxStepper, seal, unseal)
from repro.system import Kernel, Process


class TestPcl:
    @given(st.binary(min_size=0, max_size=512),
           st.binary(min_size=1, max_size=32),
           st.binary(min_size=1, max_size=16))
    def test_seal_roundtrip(self, data, key, nonce):
        assert unseal(seal(data, key, nonce), key, nonce) == data

    @given(st.binary(min_size=32, max_size=128))
    def test_ciphertext_differs(self, data):
        sealed = seal(data, b"key", b"nonce")
        assert sealed != data

    def test_wrong_key_garbles(self):
        sealed = seal(b"secret code bytes", b"k1", b"n")
        assert unseal(sealed, b"k2", b"n") != b"secret code bytes"

    def test_image_roundtrip(self):
        segments = [(0x1000, b"\x90" * 40), (0x9000, b"\xC3")]
        image = SealedImage.seal_segments(segments, 0x1000, b"key")
        assert image.decrypt_segments(b"key") == segments
        for sealed, (base, plain) in zip(image.segments, segments):
            assert sealed.ciphertext != plain


def _tiny_enclave_program():
    asm = Assembler(base=0x10000000)
    asm.label("entry")
    asm.emit("movi", "rax", 0)
    asm.label("loop")
    asm.emit("addi8", "rax", 1)
    asm.emit("cmpi8", "rax", 4)
    asm.emit("jne8", "loop")
    asm.emit("hlt")
    return asm.assemble()


def _loaded():
    program = _tiny_enclave_program()
    enclave = Enclave.from_program(program, name="t")
    host = Process(name="host")
    enclave.load(host)
    return program, enclave, host


class TestEpcIsolation:
    def test_outside_reads_rejected(self):
        _, enclave, host = _loaded()
        with pytest.raises(EnclaveAccessError):
            host.memory.read_bytes(0x10000000, 4)

    def test_outside_writes_rejected(self):
        _, enclave, host = _loaded()
        with pytest.raises(EnclaveAccessError):
            host.memory.write_bytes(0x10000000, b"\x00")

    def test_enclave_context_allowed(self):
        program, enclave, host = _loaded()
        host.memory.context = enclave
        blob = host.memory.read_bytes(0x10000000, 4)
        assert blob == program.segments[0][1][:4]

    def test_non_epc_memory_unaffected(self):
        _, enclave, host = _loaded()
        host.memory.map_range(0x5000, 64, "rw")
        host.memory.write_bytes(0x5000, b"ok")
        assert host.memory.read_bytes(0x5000, 2) == b"ok"

    def test_provision_and_read_back(self):
        _, enclave, host = _loaded()
        enclave.provision(enclave.data_base, b"\x11\x22")
        assert enclave.read_back(enclave.data_base, 2) == b"\x11\x22"

    def test_provision_outside_epc_rejected(self):
        _, enclave, host = _loaded()
        with pytest.raises(SgxError):
            enclave.provision(0x5000, b"x")

    def test_double_load_rejected(self):
        program = _tiny_enclave_program()
        enclave = Enclave.from_program(program)
        host = Process(name="host")
        enclave.load(host)
        with pytest.raises(SgxError):
            enclave.load(Process(name="other"))


class TestStepper:
    def _stepper(self):
        program, enclave, host = _loaded()
        kernel = Kernel(Core(generation("skylake")))
        kernel.add_process(host)
        stepper = SgxStepper(kernel, host, enclave,
                             expose_debug_rip=True)
        stepper.enter()
        return kernel, stepper

    def test_steps_until_exit(self):
        _, stepper = self._stepper()
        steps = stepper.run_to_exit()
        assert stepper.finished
        assert steps > 4

    def test_lbr_suppressed_inside_enclave(self):
        kernel, stepper = self._stepper()
        stepper.run_to_exit()
        # the loop branch retired 4 times but never reached the LBR
        assert all(r.from_pc < 0x10000000
                   for r in kernel.core.lbr.records())

    def test_step_after_exit_is_noop(self):
        _, stepper = self._stepper()
        stepper.run_to_exit()
        result = stepper.step()
        assert result.running is False and result.retired == 0

    def test_wrong_host_rejected(self):
        program, enclave, host = _loaded()
        kernel = Kernel(Core(generation("skylake")))
        with pytest.raises(SgxError):
            SgxStepper(kernel, Process(name="bad"), enclave)


class TestControlledChannel:
    def test_page_trace_records_code_page(self):
        program, enclave, host = _loaded()
        kernel = Kernel(Core(generation("skylake")))
        kernel.add_process(host)
        stepper = SgxStepper(kernel, host, enclave)
        tracker = CodePageTracker(kernel, host, enclave)
        tracker.install()
        stepper.enter()
        stepper.run_to_exit()
        assert tracker.page_trace == [0x10000000 // PAGE_SIZE]
        tracker.uninstall()
        assert kernel.fault_handler is None

    def test_data_access_monitor_sees_stack(self):
        asm = Assembler(base=0x10000000)
        asm.label("entry")
        asm.emit("movi", "rcx", 7)
        asm.emit("push", "rcx")
        asm.emit("pop", "rbx")
        asm.emit("hlt")
        enclave = Enclave.from_program(asm.assemble())
        host = Process(name="host")
        enclave.load(host)
        host.state.rsp = enclave.data_base + enclave.data_size
        kernel = Kernel(Core(generation("skylake")))
        kernel.add_process(host)
        stepper = SgxStepper(kernel, host, enclave)
        monitor = DataAccessMonitor(host, enclave)
        stepper.enter()
        flags = []
        while True:
            monitor.arm()
            step = stepper.step()
            if step.retired:
                flags.append(monitor.touched_any())
            if not step.running:
                break
        # movi: no data; push: stack write; pop: stack read; hlt: no
        assert flags == [False, True, True, False]
