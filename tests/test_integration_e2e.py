"""Cross-layer integration: the paper's two use cases end-to-end on
small instances, plus invariants tying the layers together."""

import pytest

from repro.core import NvSupervisor
from repro.cpu import Core, generation
from repro.experiments import extract_victim_function
from repro.experiments.exp_versions import (measured_function_pcs,
                                            reference_pcs,
                                            run_figure13_optlevels,
                                            run_figure13_versions,
                                            version_groups)
from repro.fingerprint import generate_corpus, set_similarity
from repro.lang import CompileOptions
from repro.system import Kernel
from repro.victims import build_gcd_victim
from repro.victims.library import ENCLAVE_DATA_BASE


@pytest.fixture(scope="module")
def gcd_artifacts():
    config = generation("coffeelake")
    victim = build_gcd_victim(
        "3.0", options=CompileOptions(opt_level=2), nlimbs=1,
        with_yield=False, data_base=ENCLAVE_DATA_BASE)
    return extract_victim_function(victim, {"ta": 20, "tb": 12},
                                   config)


class TestUseCase2:
    def test_extraction_self_similarity(self, gcd_artifacts):
        assert gcd_artifacts.self_similarity > 0.7

    def test_reference_beats_small_corpus(self, gcd_artifacts):
        corpus = generate_corpus(size=80, seed=3)
        best_corpus = max(
            set_similarity(gcd_artifacts.normalized, fn.static_pcs)
            for fn in corpus)
        assert gcd_artifacts.self_similarity > best_corpus

    def test_trace_is_nonempty_and_normalized(self, gcd_artifacts):
        assert len(gcd_artifacts.normalized) > 5
        assert min(gcd_artifacts.normalized) == 0


class TestFigure13Small:
    def test_version_block_structure(self):
        matrix = run_figure13_versions(
            versions=("2.5", "2.7", "2.16", "3.0"),
            inputs={"ta": 270, "tb": 192})
        groups = version_groups()
        assert matrix.diagonal_min() > 0.85
        assert matrix.value("2.5", "2.7") > 0.85       # same source
        assert matrix.value("2.5", "2.16") < \
            matrix.value("2.5", "2.7")                 # cross-group
        assert matrix.off_diagonal_max(groups) < \
            matrix.diagonal_min()

    def test_optlevel_degradation(self):
        matrix = run_figure13_optlevels(
            inputs={"ta": 270, "tb": 192})
        assert matrix.diagonal_min() > 0.85
        assert matrix.off_diagonal_max() < matrix.diagonal_min()


class TestMeasurementVsExtraction:
    def test_corpus_model_agrees_with_nv_s(self):
        """The cheap corpus measurement model and a real NV-S
        extraction must produce near-identical PC sets for the same
        function (fusion model shared)."""
        config = generation("coffeelake")
        victim = build_gcd_victim(
            "3.0", options=CompileOptions(opt_level=2), nlimbs=1,
            with_yield=False, data_base=ENCLAVE_DATA_BASE)
        inputs = {"ta": 20, "tb": 12}
        modeled = set(measured_function_pcs(
            victim, inputs, error_rate=0.0, drop_rate=0.0))
        artifacts = extract_victim_function(victim, inputs, config)
        extracted = set(artifacts.normalized)
        # The sliced NV-S invocation is a *fragment* of the function
        # (the call/ret heuristic splits at far intra-function jumps),
        # so it must be (almost) contained in the modeled trace.
        containment = len(extracted & modeled) / len(extracted)
        assert containment > 0.9


class TestCrossVictimConfusion:
    def test_gcd_versions_distinguishable_via_nv_s_reference(self):
        inputs = {"ta": 270, "tb": 192}
        victim_a = build_gcd_victim("2.5", nlimbs=2, with_yield=False)
        victim_b = build_gcd_victim("2.16", nlimbs=2,
                                    with_yield=False)
        measured_a = measured_function_pcs(victim_a, inputs)
        assert set_similarity(measured_a, reference_pcs(victim_a)) > \
            set_similarity(measured_a, reference_pcs(victim_b))
