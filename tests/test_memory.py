"""Virtual memory: addressing, paging, sparse storage, EPC hook."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import PageFault, ProtectionFault
from repro.memory import (BLOCK_SIZE, PAGE_SIZE, PageTable,
                          VirtualMemory, align_up, bits, block_base,
                          block_end, block_offset, page_base,
                          page_number, page_offset, ranges_overlap,
                          same_block, same_page, truncate)

_addr = st.integers(min_value=0, max_value=(1 << 48) - 1)


class TestAddressHelpers:
    @given(_addr)
    def test_page_decomposition(self, address):
        assert page_base(address) + page_offset(address) == address
        assert page_number(address) * PAGE_SIZE == page_base(address)

    @given(_addr)
    def test_block_decomposition(self, address):
        assert block_base(address) + block_offset(address) == address
        assert block_end(address) - block_base(address) == BLOCK_SIZE
        assert 0 <= block_offset(address) < 32

    @given(_addr, st.integers(min_value=1, max_value=40))
    def test_truncate_keeps_low_bits(self, address, keep):
        truncated = truncate(address, keep)
        assert truncated < (1 << keep)
        assert truncated == address % (1 << keep)

    @given(_addr)
    def test_alias_shares_btb_low_bits(self, address):
        """The paper's collision construction (§2.3)."""
        alias = address + (1 << 33)
        assert truncate(address, 33) == truncate(alias, 33)
        assert truncate(address, 34) != truncate(alias, 34)

    def test_same_block_and_page(self):
        assert same_block(0x40, 0x5F)
        assert not same_block(0x5F, 0x60)
        assert same_page(0x1000, 0x1FFF)
        assert not same_page(0x1FFF, 0x2000)

    def test_align_up(self):
        assert align_up(0x11, 16) == 0x20
        assert align_up(0x20, 16) == 0x20
        with pytest.raises(ValueError):
            align_up(5, 3)

    def test_bits(self):
        assert bits(0b101100, 2, 4) == 0b11
        with pytest.raises(ValueError):
            bits(1, 4, 2)

    @given(_addr, _addr, st.integers(1, 64), st.integers(1, 64))
    def test_ranges_overlap_symmetric(self, a, b, la, lb):
        assert ranges_overlap(a, a + la, b, b + lb) == \
            ranges_overlap(b, b + lb, a, a + la)


class TestPageTable:
    def test_unmapped_faults(self):
        table = PageTable()
        with pytest.raises(PageFault):
            table.check(0x1000, "read")

    def test_permissions(self):
        table = PageTable()
        table.map_page(1, "r-x")
        table.check(0x1000, "read")
        table.check(0x1000, "execute")
        with pytest.raises(PageFault) as info:
            table.check(0x1000, "write")
        assert info.value.address == 0x1000
        assert info.value.access == "write"

    def test_accessed_dirty_bits(self):
        table = PageTable()
        table.map_page(1, "rw")
        entry = table.check(0x1000, "read")
        assert entry.accessed and not entry.dirty
        table.check(0x1000, "write")
        assert entry.dirty
        table.clear_accessed_dirty()
        assert not entry.accessed and not entry.dirty

    def test_accessed_pages_set(self):
        table = PageTable()
        table.map_page(1, "rw")
        table.map_page(2, "rw")
        table.check(0x2000, "write")
        assert table.accessed_pages() == {2}
        assert table.dirty_pages() == {2}

    def test_set_perms_unmapped(self):
        with pytest.raises(PageFault):
            PageTable().set_perms(5, "rwx")

    def test_bad_perm_string(self):
        with pytest.raises(ValueError):
            PageTable().map_page(0, "rq")


class TestVirtualMemory:
    def test_read_write_roundtrip(self):
        memory = VirtualMemory()
        memory.map_range(0x1000, 0x100, "rw")
        memory.write_bytes(0x1010, b"hello")
        assert memory.read_bytes(0x1010, 5) == b"hello"

    def test_cross_page_write(self):
        memory = VirtualMemory()
        memory.map_range(0x1000, 2 * PAGE_SIZE, "rw")
        blob = bytes(range(256)) * 2          # spans the page boundary
        memory.write_bytes(0x1F00, blob)
        assert memory.read_bytes(0x1F00, len(blob)) == blob

    def test_u64_roundtrip(self):
        memory = VirtualMemory()
        memory.map_range(0x1000, 64, "rw")
        memory.write_u64(0x1008, 0xDEADBEEF12345678)
        assert memory.read_u64(0x1008) == 0xDEADBEEF12345678

    def test_sparse_zero_fill(self):
        memory = VirtualMemory()
        memory.map_range(0x1000, 16, "r")
        assert memory.read_bytes(0x1000, 16) == b"\x00" * 16
        assert memory.footprint_pages() == 0

    def test_execute_permission_on_fetch(self):
        memory = VirtualMemory()
        memory.map_range(0x1000, 16, "rw")
        with pytest.raises(PageFault):
            memory.fetch(0x1000, 1)

    def test_protect_flips_permissions(self):
        memory = VirtualMemory()
        memory.map_range(0x1000, 16, "rx")
        memory.fetch(0x1000, 1)
        memory.protect(0x1000, 16, "r--")
        with pytest.raises(PageFault):
            memory.fetch(0x1000, 1)

    def test_icache_invalidation_on_write(self):
        memory = VirtualMemory()
        memory.map_range(0x1000, 64, "rwx")
        memory.icache[0x1008] = ("stale", 1)
        memory.icache[0x1003] = ("stale2", 1)
        memory.write_bytes(0x1008, b"\x90")
        assert 0x1008 not in memory.icache
        # entries up to 9 bytes earlier also invalidated (overlap)
        assert 0x1003 not in memory.icache

    def test_access_filter_rejects(self):
        memory = VirtualMemory()
        memory.map_range(0x1000, 16, "rw")

        def deny(address, size, access, context):
            if context is None:
                raise ProtectionFault("denied")

        memory.access_filter = deny
        with pytest.raises(ProtectionFault):
            memory.read_bytes(0x1000, 4)
        memory.context = object()
        assert memory.read_bytes(0x1000, 4) == b"\x00" * 4

    @given(st.integers(min_value=0, max_value=(1 << 40) - 8),
           st.integers(min_value=0, max_value=(1 << 64) - 1))
    def test_u64_any_address(self, address, value):
        memory = VirtualMemory()
        memory.map_range(address, 8, "rw")
        memory.write_u64(address, value)
        assert memory.read_u64(address) == value
