"""Two-pass assembler: labels, directives, segments, relocation."""

import pytest

from repro.errors import AssemblerError
from repro.isa import (Assembler, abs_, decode, disassemble, listing,
                       rel, relocate)
from repro.memory import VirtualMemory


def test_forward_and_backward_labels():
    asm = Assembler(base=0x1000)
    asm.label("top")
    asm.emit("jmp", "bottom")         # forward
    asm.emit("nop")
    asm.label("bottom")
    asm.emit("jmp", "top")            # backward
    program = asm.assemble()
    instructions = sorted(program.instructions.items())
    jmp_fwd = instructions[0][1]
    assert 0x1000 + 5 + jmp_fwd.operands[0] == \
        program.address_of("bottom")
    jmp_back_addr, jmp_back = instructions[-1]
    assert jmp_back_addr + 5 + jmp_back.operands[0] == 0x1000


def test_ref_addend():
    asm = Assembler(base=0x1000)
    asm.emit("jmp", rel("target", 4))
    asm.nops(16)
    asm.label("target")
    program = asm.assemble()
    jmp = program.instructions[0x1000]
    assert 0x1000 + 5 + jmp.operands[0] == \
        program.address_of("target") + 4


def test_absolute_reference():
    asm = Assembler(base=0x2000)
    asm.emit("movabs", "rax", abs_("data"))
    asm.label("data")
    asm.emit("nop")
    program = asm.assemble()
    movabs = program.instructions[0x2000]
    assert movabs.operands[1] == program.address_of("data")


def test_org_creates_segments():
    asm = Assembler(base=0x1000)
    asm.emit("nop")
    asm.org(0x9000)
    asm.emit("ret")
    program = asm.assemble()
    assert len(program.segments) == 2
    assert program.segments[0][0] == 0x1000
    assert program.segments[1][0] == 0x9000


def test_align_pads_with_nops():
    asm = Assembler(base=0x1001)
    asm.emit("nop")
    asm.align(16)
    asm.label("aligned")
    asm.emit("ret")
    program = asm.assemble()
    assert program.address_of("aligned") % 16 == 0
    # the pad bytes decode as nops
    base, blob = program.segments[0]
    for _, inst, _ in disassemble(blob[:-1], base):
        assert inst.mnemonic == "nop"


def test_align_requires_power_of_two():
    with pytest.raises(AssemblerError):
        Assembler().align(12)


def test_duplicate_label_rejected():
    asm = Assembler()
    asm.label("x")
    with pytest.raises(AssemblerError):
        asm.label("x")
        asm.assemble()


def test_undefined_label_rejected():
    asm = Assembler()
    asm.emit("jmp", "nowhere")
    with pytest.raises(AssemblerError):
        asm.assemble()


def test_overlapping_segments_rejected():
    asm = Assembler(base=0x1000)
    asm.nops(16)
    asm.org(0x1008)
    asm.nops(4)
    with pytest.raises(AssemblerError):
        asm.assemble()


def test_register_names_in_emit():
    asm = Assembler()
    asm.emit("mov", "rax", "r12")
    program = asm.assemble()
    inst = next(iter(program.instructions.values()))
    assert inst.operands == (0, 12)


def test_load_into_memory():
    asm = Assembler(base=0x400000)
    asm.emit("movi", "rax", 0x55)
    asm.emit("hlt")
    program = asm.assemble()
    memory = VirtualMemory()
    program.load_into(memory)
    blob = memory.read_bytes(0x400000, 8, check=False)
    inst, _ = decode(blob)
    assert inst.mnemonic == "movi"
    entry = memory.page_table.entry_for_address(0x400000)
    assert entry.executable and not entry.writable


def test_instruction_addresses_sorted():
    asm = Assembler(base=0x100)
    asm.emit("nop")
    asm.emit("ret")
    program = asm.assemble()
    assert program.instruction_addresses() == [0x100, 0x101]


def test_relocate_shifts_everything():
    asm = Assembler(base=0x1000)
    asm.label("a")
    asm.emit("jmp8", "a")
    program = asm.assemble()
    moved = relocate(program, 0x500)
    assert moved.address_of("a") == 0x1500
    assert moved.segments[0][0] == 0x1500
    assert 0x1500 in moved.instructions


def test_listing_renders():
    asm = Assembler(base=0x100)
    asm.emit("movi", "rax", 3)
    asm.emit("ret")
    text = listing(asm.assemble().segments[0][1], 0x100)
    assert "movi rax" in text
    assert "ret" in text


def test_empty_program_has_no_entry():
    with pytest.raises(AssemblerError):
        Assembler().assemble().entry
