"""Statistics and rendering helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.analysis import (accuracy, ascii_table,
                            confidence_interval_95, mean, median, pct,
                            percentile, series_block, spark, stdev,
                            summarize)

_values = st.lists(st.floats(min_value=-1e6, max_value=1e6,
                             allow_nan=False), min_size=1, max_size=50)


class TestStats:
    @given(_values)
    def test_mean_within_bounds(self, values):
        assert min(values) - 1e-6 <= mean(values) <= max(values) + 1e-6

    @given(_values)
    def test_median_within_bounds(self, values):
        assert min(values) <= median(values) <= max(values)

    def test_mean_empty_raises(self):
        with pytest.raises(ValueError):
            mean([])

    def test_stdev(self):
        assert stdev([1.0]) == 0.0
        assert stdev([2.0, 4.0]) == pytest.approx(2.0 ** 0.5)

    def test_percentile(self):
        values = list(range(1, 101))
        assert percentile(values, 50) == 50
        assert percentile(values, 100) == 100
        with pytest.raises(ValueError):
            percentile(values, 101)

    @given(_values)
    def test_confidence_interval_contains_mean(self, values):
        low, high = confidence_interval_95(values)
        assert low <= mean(values) <= high

    def test_accuracy(self):
        assert accuracy([1, 2, 3], [1, 2, 3]) == 1.0
        assert accuracy([1, 2], [1, 2, 3]) == pytest.approx(2 / 3)
        assert accuracy([], []) == 1.0

    def test_summarize_keys(self):
        summary = summarize([1.0, 2.0, 3.0])
        assert set(summary) == {"n", "mean", "stdev", "min", "median",
                                "max"}


class TestRendering:
    def test_ascii_table(self):
        text = ascii_table(("name", "value"),
                           [("alpha", 1), ("b", 123456)])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "alpha" in lines[2]
        assert all(len(line) <= len(max(lines, key=len))
                   for line in lines)

    def test_spark_monotone(self):
        text = spark([0, 1, 2, 3])
        assert len(text) == 4
        assert text[0] != text[-1]

    def test_spark_constant(self):
        assert len(spark([5, 5, 5])) == 3

    def test_series_block_mentions_range(self):
        text = series_block("label", [0, 1, 2], [1.0, 9.0, 5.0],
                            "cycles")
        assert "label" in text and "cycles" in text

    def test_pct(self):
        assert pct(0.993) == "99.3%"
