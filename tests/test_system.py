"""Kernel, processes, scheduling, syscalls."""

import pytest

from repro.cpu import Core, StopReason, generation
from repro.errors import PageFault, SystemError_
from repro.isa import Assembler
from repro.system import (Kernel, Process, ProcessStatus, SYS_EXIT,
                          SYS_GETPID, SYS_SCHED_YIELD)


def program_yield_twice():
    asm = Assembler(base=0x400000)
    for _ in range(2):
        asm.emit("movi", "rax", SYS_SCHED_YIELD)
        asm.emit("syscall")
    asm.emit("movi", "rdi", 5)
    asm.emit("movi", "rax", SYS_EXIT)
    asm.emit("syscall")
    return asm.assemble()


def make_kernel():
    return Kernel(Core(generation("skylake")))


def test_run_until_yield_stops_at_each_yield():
    kernel = make_kernel()
    process = Process.from_program(program_yield_twice())
    kernel.add_process(process)
    kernel.run_slice(process)
    assert process.alive
    kernel.run_slice(process)
    assert process.alive
    kernel.run_slice(process)
    assert not process.alive
    assert process.exit_code == 5


def test_getpid_syscall():
    asm = Assembler(base=0x400000)
    asm.emit("movi", "rax", SYS_GETPID)
    asm.emit("syscall")
    asm.emit("hlt")
    kernel = make_kernel()
    process = Process.from_program(asm.assemble())
    kernel.add_process(process)
    kernel.run_slice(process)
    assert process.state.regs["rax"] == process.pid


def test_unknown_syscall_raises():
    asm = Assembler(base=0x400000)
    asm.emit("movi", "rax", 9999)
    asm.emit("syscall")
    kernel = make_kernel()
    process = Process.from_program(asm.assemble())
    kernel.add_process(process)
    with pytest.raises(SystemError_):
        kernel.run_slice(process)


def test_single_step_retires_one_unit():
    asm = Assembler(base=0x400000)
    asm.nops(5)
    asm.emit("hlt")
    kernel = make_kernel()
    process = Process.from_program(asm.assemble())
    kernel.add_process(process)
    result = kernel.single_step(process)
    assert result.reason is StopReason.RETIRE_LIMIT
    assert result.retired == 1
    assert process.state.rip == 0x400001


def test_page_fault_handler_retry():
    asm = Assembler(base=0x400000)
    asm.emit("movi", "rbx", 3)
    asm.emit("hlt")
    kernel = make_kernel()
    process = Process.from_program(asm.assemble())
    kernel.add_process(process)
    process.memory.protect(0x400000, 16, "r--")
    fixed = []

    def handler(krnl, proc, fault):
        proc.memory.protect(0x400000, 16, "r-x")
        fixed.append(fault.address)
        return True

    kernel.fault_handler = handler
    result = kernel.run_slice(process)
    assert result.reason is StopReason.HALT
    assert fixed and fixed[0] == 0x400000
    assert process.state.regs["rbx"] == 3


def test_unhandled_fault_propagates():
    asm = Assembler(base=0x400000)
    asm.emit("hlt")
    kernel = make_kernel()
    process = Process.from_program(asm.assemble())
    kernel.add_process(process)
    process.memory.protect(0x400000, 16, "r--")
    with pytest.raises(PageFault):
        kernel.run_slice(process)


def test_round_robin_runs_everything():
    kernel = make_kernel()
    processes = []
    for index in range(3):
        asm = Assembler(base=0x400000)
        asm.emit("movi", "rbx", index + 1)
        asm.emit("movi", "rdi", index)
        asm.emit("movi", "rax", SYS_EXIT)
        asm.emit("syscall")
        processes.append(
            kernel.add_process(Process.from_program(asm.assemble())))
    kernel.schedule()
    assert all(not p.alive for p in processes)
    assert [p.exit_code for p in processes] == [0, 1, 2]


def test_context_switch_counts():
    kernel = make_kernel()
    a = Process.from_program(program_yield_twice())
    b = Process.from_program(program_yield_twice())
    kernel.add_process(a)
    kernel.add_process(b)
    kernel.run_slice(a)
    kernel.run_slice(b)
    kernel.run_slice(a)
    assert kernel.context_switches == 3


def test_dead_process_rejected():
    kernel = make_kernel()
    process = Process.from_program(program_yield_twice())
    kernel.add_process(process)
    process.exit(0)
    with pytest.raises(SystemError_):
        kernel.run_slice(process)


def test_process_status_transitions():
    kernel = make_kernel()
    process = Process.from_program(program_yield_twice())
    kernel.add_process(process)
    assert process.status is ProcessStatus.READY
    kernel.run_slice(process)
    assert process.status is ProcessStatus.RUNNING
