"""Post-interrupt fetch-ahead and speculative execution (§6.3) —
the behaviours NV-S single-stepping fundamentally relies on."""

import pytest

from repro.cpu import Core, MachineState, generation
from repro.isa import Assembler, Kind
from repro.memory import VirtualMemory


def build(asm_fn, base=0x400000):
    asm = Assembler(base=base)
    asm_fn(asm)
    return asm.assemble()


def machine(program, entry=None):
    memory = VirtualMemory()
    program.load_into(memory)
    state = MachineState(memory, rip=entry if entry is not None
                         else program.entry)
    state.setup_stack(0x7FFF0000)
    return state


def _alias_sled(config, victim_block_fn):
    """Program with a jmp entry in one block plus an aliased region
    built by victim_block_fn."""
    def body(asm):
        asm.label("jump")
        asm.nops(30)
        asm.emit("jmp8", "land")       # entry at block offset 31
        asm.label("land")
        asm.emit("hlt")
        asm.org(0x400000 + config.collision_distance)
        asm.label("sled")
        victim_block_fn(asm)
    return build(body)


class TestDrain:
    def test_speculation_stops_at_nx_page(self):
        """Speculative fetch past the stepped instruction never
        crosses an NX page boundary — and never faults
        architecturally (controlled-channel NX marking must not be
        tripped by fetch-ahead)."""
        config = generation("skylake")

        def body(asm):
            # stepped instruction is the last one on page 0
            asm.org(0x400FF8)
            asm.label("start")
            asm.emit("movi", "rbx", 1)      # 7 bytes: 0x400FF8..FFE
            asm.emit("nop")                 # 0x400FFF
            asm.label("next_page")          # 0x401000 (page 1)
            asm.emit("jmp8", "later")
            asm.label("later")
            asm.emit("hlt")
        program = build(body)
        core = Core(config)
        state = machine(program, entry=program.address_of("start"))
        state.memory.protect(0x401000, 4096, "r--")   # page 1 NX
        result = core.run(state, max_retired=2)
        # both page-0 instructions retired; the page-1 jump was never
        # speculatively fetched (no allocation, no fault)
        assert result.retired == 2
        assert core.btb.occupancy() == 0

    def test_drain_follows_direct_jump_and_allocates(self):
        """Decode-time allocation: an unretired direct jump leaves a
        BTB entry behind (what makes Fig. 5 cases 1/2 visible when
        single-stepping)."""
        config = generation("skylake")

        def body(asm):
            asm.label("start")
            asm.emit("movi", "rax", 1)       # the stepped instruction
            asm.emit("jmp", "target")        # never retires
            asm.org(0x400100)
            asm.label("target")
            asm.emit("hlt")
        program = build(body)
        core = Core(config)
        state = machine(program)
        core.run(state, max_retired=1)
        # only the movi retired...
        assert state.rip == program.address_of("start") + 7
        # ...but the jump's entry exists (allocated at decode)
        jmp_pc = program.address_of("start") + 7
        assert core.btb.entry_for(jmp_pc + 5 - 1) is not None

    def test_drain_assumes_conditionals_not_taken(self):
        """Fetch-ahead walks the fall-through of an unpredicted
        conditional, reaching (and deallocating) later aliases."""
        config = generation("skylake")

        def victim(asm):
            asm.nops(8)
            asm.emit("cmpi8", "rax", 99)
            asm.emit("je", "far")             # never fuses: je is 6B
            asm.nops(10)
            asm.label("far")
            asm.emit("hlt")
        program = _alias_sled(config, victim)
        core = Core(config)
        core.run(machine(program))            # allocate jmp entry
        occupancy = core.btb.occupancy()
        state = machine(program, entry=program.address_of("sled"))
        core.run(state, max_retired=1)        # step one nop
        assert core.btb.stats.deallocations >= 1


class TestSpeculativeExecution:
    def test_spec_verifies_ret_target(self):
        """A predicted ret whose target changed gets corrected
        speculatively (observable target update)."""
        config = generation("skylake", spec_lookahead=4)

        def body(asm):
            asm.label("fn")
            asm.emit("ret")
            asm.org(0x400100)
            asm.label("caller")
            asm.emit("call", "fn")
            asm.emit("hlt")
            asm.org(0x400200)
            asm.label("caller2")
            asm.emit("call", "fn")
            asm.emit("hlt")
        program = build(body)
        core = Core(config)
        core.run(machine(program, entry=program.address_of("caller")))
        entry = core.btb.entry_for(program.address_of("fn"))
        assert entry is not None
        first_target = entry.target
        # single-step just the call from the second site; the ret
        # executes only speculatively, yet its entry is re-targeted
        state = machine(program, entry=program.address_of("caller2"))
        core.run(state, max_retired=1)
        assert entry.target != first_target

    def test_spec_disabled_is_precise(self):
        config = generation("skylake", spec_lookahead=0,
                            drain_windows=0)

        def body(asm):
            asm.emit("movi", "rax", 1)
            asm.emit("jmp8", "next")
            asm.label("next")
            asm.emit("hlt")
        program = build(body)
        core = Core(config)
        state = machine(program)
        core.run(state, max_retired=1)
        assert core.btb.occupancy() == 0      # nothing ran ahead

    def test_spec_does_not_commit_architectural_state(self):
        config = generation("skylake", spec_lookahead=8)

        def body(asm):
            asm.emit("movi", "rax", 1)       # stepped
            asm.emit("movi", "rbx", 99)      # speculative only
            asm.emit("storew", "rsp", "rbx", -64)
            asm.emit("hlt")
        program = build(body)
        core = Core(config)
        state = machine(program)
        rsp = state.rsp
        core.run(state, max_retired=1)
        assert state.regs["rbx"] == 0
        assert state.memory.read_u64(rsp - 64, check=False) == 0

    def test_spec_stops_at_lfence(self):
        """lfence serializes *execution*: an indirect jump behind it
        is never speculatively executed, so its entry never appears.
        (Fetch/decode may still walk past — direct branches would be
        decode-allocated — hence the indirect jump here.)"""
        config = generation("skylake", spec_lookahead=8)

        def body(asm):
            asm.emit("movabs", "rdi", 0x400100)
            asm.emit("movi", "rax", 1)       # stepped (2nd unit)
            asm.emit("lfence")
            asm.emit("jmpr", "rdi")          # must NOT execute
            asm.org(0x400100)
            asm.label("target")
            asm.emit("hlt")
        program = build(body)
        core = Core(config)
        state = machine(program)
        core.run(state, max_retired=2)
        assert core.btb.occupancy() == 0

        # control experiment: without the fence the indirect jump DOES
        # speculatively execute and allocates its entry
        config2 = generation("skylake", spec_lookahead=8)

        def body2(asm):
            asm.emit("movabs", "rdi", 0x400100)
            asm.emit("movi", "rax", 1)
            asm.emit("jmpr", "rdi")
            asm.org(0x400100)
            asm.label("target")
            asm.emit("hlt")
        program2 = build(body2)
        core2 = Core(config2)
        core2.run(machine(program2), max_retired=2)
        assert core2.btb.occupancy() == 1
