"""Differential proof: decoded-window fast path ≡ generic slow path.

The side channel *is* the micro-architectural state, so the fast path
must be bit-identical — architectural registers and memory, PC traces,
retired counts, cycle totals, BTB contents and LBR records — or the
reproduction is wrong.  Every victim in the corpus (gcd, bn_cmp,
RSA-keyed gcd, traversal gadgets) runs twice, fast path forced off and
on, and the complete observable state is compared.
"""

import dataclasses
import random

import pytest

from repro.cpu import (Core, MachineState, StopReason, interpret,
                      run_function, set_fast_path)
from repro.cpu.config import DEFAULT_GENERATION, generation
from repro.isa import Assembler
from repro.memory import VirtualMemory
from repro.victims.library import (build_bn_cmp_victim, build_gcd_victim)
from repro.victims.rsa import generate_key


@pytest.fixture(autouse=True)
def _restore_fast_path():
    from repro.cpu.decoded import fast_path_enabled
    before = fast_path_enabled()
    yield
    set_fast_path(before)


# ----------------------------------------------------------------------
# observable-state capture
# ----------------------------------------------------------------------
def core_observables(core, state, result_list):
    btb = sorted((e.tag, e.set_index, e.offset, e.target, e.kind.value,
                  e.domain) for e in core.btb.valid_entries())
    lbr = [(r.from_pc, r.to_pc, r.elapsed_cycles, r.mispredicted)
           for r in core.lbr.records()]
    runs = [(r.reason, r.retired, r.instructions, r.cycles,
             tuple(r.trace or ()), tuple(r.unit_starts or ()))
            for r in result_list]
    return {
        "runs": runs,
        "regs": state.regs.snapshot(),
        "flags": state.regs.flags.as_tuple(),
        "rip": state.rip,
        "cycles": core.cycles,
        "total_retired": core.total_retired,
        "btb": btb,
        "lbr": lbr,
    }


def run_victim_core(victim, inputs, *, fast, config=None,
                    max_retired=None):
    """Run a victim start-to-halt on a fresh core; capture everything."""
    previous = set_fast_path(fast)
    try:
        memory = victim.new_memory(inputs)
        state = MachineState(memory)
        state.setup_stack(0x7FFF_0000_0000)
        state.rip = victim.compiled.start
        core = Core(config if config is not None else DEFAULT_GENERATION)
        results = []
        for _ in range(2_000_000):
            result = core.run(state, collect_trace=True,
                              max_retired=max_retired)
            results.append(result)
            if result.reason is StopReason.SYSCALL:
                state.regs["rax"] = 0          # yields are no-ops
                continue
            if result.reason is StopReason.RETIRE_LIMIT:
                continue
            break
        observables = core_observables(core, state, results)
        observables["data"] = {
            name: memory.read_bytes(spec.address, spec.size, check=False)
            for name, spec in victim.layout.arrays.items()
        }
        return observables
    finally:
        set_fast_path(previous)


def run_victim_interp(victim, inputs, *, fast):
    previous = set_fast_path(fast)
    try:
        memory = victim.new_memory(inputs)
        state = MachineState(memory)
        state.setup_stack(0x7FFF_0000_0000)
        entry = victim.compiled.info(victim.main).entry
        result = run_function(state, entry,
                              syscall_handler=lambda s: True)
        return {
            "reason": result.reason,
            "instructions": result.instructions,
            "trace": tuple(result.trace),
            "branch_events": tuple(result.branch_events),
            "regs": state.regs.snapshot(),
            "flags": state.regs.flags.as_tuple(),
        }
    finally:
        set_fast_path(previous)


# ----------------------------------------------------------------------
# victim corpus
# ----------------------------------------------------------------------
def corpus():
    gcd = build_gcd_victim("3.0", nlimbs=2)
    bn = build_bn_cmp_victim(nlimbs=3, iters=2)
    rsa_gcd = build_gcd_victim("2.16", nlimbs=2)
    key = generate_key(bits_per_prime=24, seed=11)
    rsa_a, rsa_b = key.gcd_inputs()
    return [
        ("gcd", gcd, {"ta": 0x1234_5678_9ABC, "tb": 0x0FED_CBA9}),
        ("bn_cmp", bn, {"a": (7 << 130) | 12345, "b": (7 << 130) | 999}),
        ("rsa_gcd", rsa_gcd, {"ta": rsa_a, "tb": rsa_b}),
    ]


@pytest.mark.parametrize("name,victim,inputs",
                         corpus(), ids=lambda v: v if isinstance(v, str)
                         else "")
class TestVictimCorpus:
    def test_core_full_run_identical(self, name, victim, inputs):
        slow = run_victim_core(victim, inputs, fast=False)
        fast = run_victim_core(victim, inputs, fast=True)
        assert slow == fast

    def test_core_single_step_identical(self, name, victim, inputs):
        slow = run_victim_core(victim, inputs, fast=False,
                               max_retired=1)
        fast = run_victim_core(victim, inputs, fast=True,
                               max_retired=1)
        assert slow == fast

    def test_interp_identical(self, name, victim, inputs):
        slow = run_victim_interp(victim, inputs, fast=False)
        fast = run_victim_interp(victim, inputs, fast=True)
        assert slow == fast

    def test_fusion_disabled_identical(self, name, victim, inputs):
        config = dataclasses.replace(DEFAULT_GENERATION,
                                     fusion_enabled=False)
        slow = run_victim_core(victim, inputs, fast=False, config=config)
        fast = run_victim_core(victim, inputs, fast=True, config=config)
        assert slow == fast


# ----------------------------------------------------------------------
# traversal gadgets: call/ret chains hopping across many blocks (the
# §6 traversal shape: every transfer seeds a BTB entry the attacker
# walks)
# ----------------------------------------------------------------------
def traversal_gadget():
    asm = Assembler(base=0x0040_0000)
    asm.emit("movi", "rcx", 60)
    asm.emit("movi", "rax", 0)
    asm.label("loop")
    asm.emit("call", "leaf_a")
    asm.emit("call", "leaf_b")
    asm.emit("dec", "rcx")
    asm.emit("jne", "loop")
    asm.emit("hlt")
    asm.align(32)
    asm.label("leaf_a")
    asm.emit("addi8", "rax", 5)
    asm.emit("test", "rax", "rax")
    asm.emit("cmovne", "rdx", "rax")
    asm.emit("ret")
    asm.align(32)
    asm.label("leaf_b")
    asm.emit("subi8", "rax", 2)
    asm.emit("shl", "rax", 1)
    asm.emit("shr", "rax", 1)
    asm.emit("ret")
    return asm.assemble()


def run_program_core(program, *, fast, config=None, max_retired=None,
                     step_budget=500_000):
    previous = set_fast_path(fast)
    try:
        memory = VirtualMemory()
        program.load_into(memory)
        state = MachineState(memory, rip=program.entry)
        state.setup_stack(0x7FFF_0000)
        core = Core(config if config is not None else DEFAULT_GENERATION)
        results = []
        for _ in range(step_budget):
            result = core.run(state, collect_trace=True,
                              max_retired=max_retired)
            results.append(result)
            if result.reason is not StopReason.RETIRE_LIMIT:
                break
        return core_observables(core, state, results)
    finally:
        set_fast_path(previous)


class TestTraversalGadget:
    def test_full_run_identical(self):
        program = traversal_gadget()
        assert (run_program_core(program, fast=False)
                == run_program_core(program, fast=True))

    def test_single_step_identical(self):
        program = traversal_gadget()
        assert (run_program_core(program, fast=False, max_retired=1)
                == run_program_core(program, fast=True, max_retired=1))

    def test_skylake_generation_identical(self):
        program = traversal_gadget()
        config = generation("skylake")
        assert (run_program_core(program, fast=False, config=config)
                == run_program_core(program, fast=True, config=config))


# ----------------------------------------------------------------------
# randomized straight-line + branch soup (catches thunk/handler drift
# for every compiled mnemonic)
# ----------------------------------------------------------------------
_SEQ_EMITS = [
    lambda rng: ("movi", _r(rng), rng.randrange(0, 1 << 31)),
    lambda rng: ("movabs", _r(rng), rng.randrange(0, 1 << 63)),
    lambda rng: ("add", _r(rng), _r(rng)),
    lambda rng: ("sub", _r(rng), _r(rng)),
    lambda rng: ("adc", _r(rng), _r(rng)),
    lambda rng: ("sbb", _r(rng), _r(rng)),
    lambda rng: ("and", _r(rng), _r(rng)),
    lambda rng: ("or", _r(rng), _r(rng)),
    lambda rng: ("xor", _r(rng), _r(rng)),
    lambda rng: ("cmp", _r(rng), _r(rng)),
    lambda rng: ("test", _r(rng), _r(rng)),
    lambda rng: ("addi8", _r(rng), rng.randrange(0, 128)),
    lambda rng: ("subi8", _r(rng), rng.randrange(0, 128)),
    lambda rng: ("cmpi", _r(rng), rng.randrange(0, 1 << 31)),
    lambda rng: ("andi", _r(rng), rng.randrange(0, 1 << 31)),
    lambda rng: ("ori8", _r(rng), rng.randrange(0, 128)),
    lambda rng: ("xori8", _r(rng), rng.randrange(0, 128)),
    lambda rng: ("testi", _r(rng), rng.randrange(0, 1 << 31)),
    lambda rng: ("imul", _r(rng), _r(rng)),
    lambda rng: ("shl", _r(rng), rng.randrange(0, 20)),
    lambda rng: ("shr", _r(rng), rng.randrange(0, 20)),
    lambda rng: ("sar", _r(rng), rng.randrange(0, 20)),
    lambda rng: ("inc", _r(rng)),
    lambda rng: ("dec", _r(rng)),
    lambda rng: ("neg", _r(rng)),
    lambda rng: ("not", _r(rng)),
    lambda rng: ("mov", _r(rng), _r(rng)),
    lambda rng: ("xchg", _r(rng), _r(rng)),
    lambda rng: ("lea", _r(rng), _r(rng), rng.randrange(0, 256)),
    lambda rng: ("cmove", _r(rng), _r(rng)),
    lambda rng: ("cmovb", _r(rng), _r(rng)),
    lambda rng: ("setne", _r(rng)),
    lambda rng: ("setg", _r(rng)),
    lambda rng: ("cmc",),
    lambda rng: ("nop",),
]

#: scratch registers only — never rsp (4) or the data pointer rsi (6)
_SCRATCH = ["rax", "rbx", "rcx", "rdx", "rdi", "r8", "r9", "r10",
            "r11", "r12", "r13", "r14", "r15"]


def _r(rng):
    return rng.choice(_SCRATCH)


def random_program(seed):
    rng = random.Random(seed)
    asm = Assembler(base=0x0040_0000)
    asm.emit("movi", "rsi", 0x0090_0000)
    asm.emit("movi", "rbp", 40)            # outer trip count
    asm.label("outer")
    for block in range(3):
        for _ in range(rng.randrange(6, 18)):
            asm.emit(*rng.choice(_SEQ_EMITS)(rng))
        if rng.random() < 0.7:
            asm.emit("store", "rsi", _r(rng), 8 * block)
            asm.emit("load", _r(rng), "rsi", 8 * block)
    asm.emit("dec", "rbp")
    asm.emit("jne", "outer")
    asm.emit("hlt")
    return asm.assemble()


@pytest.mark.parametrize("seed", range(6))
def test_random_soup_core_identical(seed):
    program = random_program(seed)

    def run(fast):
        previous = set_fast_path(fast)
        try:
            memory = VirtualMemory()
            program.load_into(memory)
            memory.map_range(0x0090_0000, 4096, "rw")
            state = MachineState(memory, rip=program.entry)
            state.setup_stack(0x7FFF_0000)
            core = Core()
            result = core.run(state, collect_trace=True)
            observables = core_observables(core, state, [result])
            observables["scratch"] = memory.read_bytes(
                0x0090_0000, 64, check=False)
            return observables
        finally:
            set_fast_path(previous)

    assert run(False) == run(True)


@pytest.mark.parametrize("seed", range(6))
def test_random_soup_interp_identical(seed):
    program = random_program(seed)

    def run(fast):
        previous = set_fast_path(fast)
        try:
            memory = VirtualMemory()
            program.load_into(memory)
            memory.map_range(0x0090_0000, 4096, "rw")
            state = MachineState(memory, rip=program.entry)
            state.setup_stack(0x7FFF_0000)
            result = interpret(state)
            return (result.reason, result.instructions,
                    tuple(result.trace), tuple(result.branch_events),
                    state.regs.snapshot(), state.regs.flags.as_tuple())
        finally:
            set_fast_path(previous)

    assert run(False) == run(True)


def test_interp_budget_clip_mid_window():
    """The instruction budget can land mid-window; counts and RIP must
    match the slow path exactly."""
    program = random_program(3)

    def run(fast, budget):
        previous = set_fast_path(fast)
        try:
            memory = VirtualMemory()
            program.load_into(memory)
            memory.map_range(0x0090_0000, 4096, "rw")
            state = MachineState(memory, rip=program.entry)
            state.setup_stack(0x7FFF_0000)
            result = interpret(state, max_instructions=budget,
                               raise_on_limit=False)
            return (result.reason, result.instructions,
                    tuple(result.trace), state.rip,
                    state.regs.snapshot())
        finally:
            set_fast_path(previous)

    for budget in (1, 2, 7, 23, 100, 301):
        assert run(False, budget) == run(True, budget)


def test_core_guard_clip_mid_window():
    """max_instructions (the runaway guard) clips fast-path windows."""
    program = traversal_gadget()

    def run(fast, budget):
        previous = set_fast_path(fast)
        try:
            memory = VirtualMemory()
            program.load_into(memory)
            state = MachineState(memory, rip=program.entry)
            state.setup_stack(0x7FFF_0000)
            core = Core()
            try:
                core.run(state, collect_trace=True,
                         max_instructions=budget)
            except Exception as error:
                return (type(error).__name__, state.rip, core.cycles,
                        state.regs.snapshot())
            return ("completed", state.rip, core.cycles,
                    state.regs.snapshot())
        finally:
            set_fast_path(previous)

    for budget in (1, 3, 10, 57):
        assert run(False, budget) == run(True, budget)
