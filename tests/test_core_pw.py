"""PW snippet construction."""

import pytest

from repro.core import PwBuilder, PwRange, page_pws
from repro.errors import AttackError
from repro.isa import decode
from repro.memory import BLOCK_SIZE


class TestPwRange:
    def test_size_limits(self):
        PwRange(0x400000, 0x400002)
        PwRange(0x400000, 0x400020)
        with pytest.raises(AttackError):
            PwRange(0x400000, 0x400001)
        with pytest.raises(AttackError):
            PwRange(0x400000, 0x400021)

    def test_block_confinement(self):
        with pytest.raises(AttackError):
            PwRange(0x400010, 0x400028)      # crosses a boundary
        # ...except 2-byte point probes
        PwRange(0x40001F, 0x400021)

    def test_split(self):
        parent = PwRange(0x400000, 0x400020)
        halves = parent.split(2)
        assert [(p.start, p.end) for p in halves] == [
            (0x400000, 0x400010), (0x400010, 0x400020)]
        quarters = parent.split(4)
        assert all(q.size == 8 for q in quarters)

    def test_split_respects_minimum(self):
        tiny = PwRange(0x400000, 0x400004)
        assert all(p.size >= 2 for p in tiny.split(8))
        assert PwRange(0x400000, 0x400002).split(2) == \
            [PwRange(0x400000, 0x400002)]

    def test_overlaps(self):
        pw = PwRange(0x400000, 0x400010)
        assert pw.overlaps(0x40000F, 0x400011)
        assert not pw.overlaps(0x400010, 0x400020)


def test_page_pws_cover_page_disjointly():
    pws = page_pws(0x5000)
    assert len(pws) == 128
    assert pws[0].start == 0x5000
    assert pws[-1].end == 0x6000
    for left, right in zip(pws, pws[1:]):
        assert left.end == right.start


class TestBuilder:
    def test_alias_address(self):
        builder = PwBuilder(33, alias_index=2)
        assert builder.attacker_address(0x400010) == \
            0x400010 + (2 << 33)

    def test_snippet_structure_single(self):
        builder = PwBuilder(33)
        code = builder.build([PwRange(0x400400, 0x400420)])
        assert len(code.jmp_pcs) == 1
        jmp_pc = code.jmp_pcs[0]
        assert jmp_pc == builder.attacker_address(0x40041E)
        # the snippet bytes: nops then a 2-byte jmp8
        blob = {base: data for base, data in code.program.segments}
        start = builder.attacker_address(0x400400)
        for base, data in blob.items():
            if base <= jmp_pc < base + len(data):
                inst, _ = decode(data, jmp_pc - base)
                assert inst.mnemonic == "jmp8"
                first, _ = decode(data, start - base)
                assert first.mnemonic == "nop"

    def test_adjacent_ranges_chain_without_glue(self):
        builder = PwBuilder(33)
        code = builder.build([
            PwRange(0x400400, 0x400420),
            PwRange(0x400420, 0x400440),
        ])
        assert code.jmp_pcs[1] - code.jmp_pcs[0] == BLOCK_SIZE

    def test_small_gap_rejected(self):
        builder = PwBuilder(33)
        with pytest.raises(AttackError):
            builder.build([
                PwRange(0x400400, 0x400410),
                PwRange(0x400412, 0x400420),
            ])

    def test_far_ranges_get_glue(self):
        builder = PwBuilder(33)
        code = builder.build([
            PwRange(0x400400, 0x400420),
            PwRange(0x400500, 0x400520),
        ])
        assert len(code.ranges) == 2

    def test_overlapping_ranges_rejected(self):
        builder = PwBuilder(33)
        with pytest.raises(AttackError):
            builder.build([
                PwRange(0x400400, 0x400420),
                PwRange(0x400410, 0x400430),
            ])

    def test_aliasing_ranges_rejected(self):
        """Two ranges identical modulo the tag truncation collide."""
        builder = PwBuilder(33)
        with pytest.raises(AttackError):
            builder.build([
                PwRange(0x400400, 0x400420),
                PwRange(0x400400 + (1 << 33), 0x400420 + (1 << 33)),
            ])

    def test_ret_probe_for_straddling_range(self):
        builder = PwBuilder(33)
        code = builder.build([PwRange(0x40041F, 0x400421)])
        target = builder.attacker_address(0x400420)
        assert code.jmp_pcs == (target,)
        for base, data in code.program.segments:
            if base <= target < base + len(data):
                inst, _ = decode(data, target - base)
                assert inst.mnemonic == "ret"

    def test_stub_in_distinct_btb_set(self):
        """The stub's entry must never fight monitored entries for
        ways (regression: same-set stub caused eviction thrash)."""
        from repro.cpu import BTB, generation
        btb = BTB(generation("skylake"))
        builder = PwBuilder(33)
        code = builder.build(
            PwRange(0x400400, 0x400420).split(4))
        _, stub_set, _ = btb.fields(code.entry)
        for jmp_pc in code.jmp_pcs:
            assert btb.fields(jmp_pc)[1] != stub_set

    def test_empty_ranges_rejected(self):
        with pytest.raises(AttackError):
            PwBuilder(33).build([])

    def test_bad_alias_index(self):
        with pytest.raises(AttackError):
            PwBuilder(33, alias_index=0)
