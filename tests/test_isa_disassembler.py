"""Disassembler rendering."""

from hypothesis import given, strategies as st

from repro.isa import (ALL_MNEMONICS, Assembler, disassemble, encode,
                       format_instruction, listing, make, spec_for)


def test_relative_targets_resolved():
    text = format_instruction(make("jmp", 0x100), pc=0x400000)
    assert text == f"jmp {0x400000 + 5 + 0x100:#x}"


def test_register_operands():
    assert format_instruction(make("mov", 0, 12)) == "mov rax, r12"
    assert format_instruction(make("push", 5)) == "push rbp"


def test_memory_operands_directionality():
    assert format_instruction(make("load", 0, 1, 8)) == \
        "load rax, [rcx+0x8]"
    assert format_instruction(make("store", 1, 0, -8)) == \
        "store [rcx-0x8], rax"


def test_listing_round_trip():
    asm = Assembler(base=0x1000)
    asm.emit("movi", "rax", 5)
    asm.emit("addi8", "rax", 1)
    asm.emit("jmp8", 0)
    asm.emit("ret")
    program = asm.assemble()
    text = listing(program.segments[0][1], 0x1000)
    for fragment in ("movi rax, 0x5", "addi8 rax, 0x1", "ret"):
        assert fragment in text


def test_disassemble_skips_junk_when_lenient():
    blob = b"\x00\x01" + encode(make("ret"))
    entries = list(disassemble(blob, stop_on_error=False))
    assert entries[0][2].startswith(".byte")
    assert entries[-1][2] == "ret"


@given(st.sampled_from(ALL_MNEMONICS))
def test_every_mnemonic_renders(mnemonic):
    spec = spec_for(mnemonic)
    from repro.isa.instructions import Format
    defaults = {
        Format.NONE: (), Format.PAD1: (), Format.PAD2: (),
        Format.REL8: (1,), Format.REL32: (1,), Format.REL32_PAD: (1,),
        Format.REG: (1,), Format.REG_PAD: (1,),
        Format.REG_REG: (1, 2), Format.REG_REG_PAD2: (1, 2),
        Format.REG_IMM8: (1, 2), Format.REG_IMM32: (1, 2),
        Format.REG_IMM64: (1, 2),
        Format.REG_REG_DISP8: (1, 2, 3),
        Format.REG_REG_DISP32: (1, 2, 3),
    }
    text = format_instruction(make(mnemonic, *defaults[spec.fmt]))
    assert text.startswith(mnemonic)
