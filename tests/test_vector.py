"""Vectorized many-seeds execution: lockstep ≡ sequential, to the bit.

The performance claim of :mod:`repro.cpu.vector` rests on a
correctness claim: sharing decode artifacts across lanes must not be
observable.  These tests run the same seeds vectorized and N×1
sequential and compare everything a lane exposes — architectural
registers, data memory, cycles, retires, BTB contents, LBR records,
stop reasons — plus the structural guards (generation agreement at
share time, divergence detection mid-run).
"""

import pytest

from repro import telemetry
from repro.cpu import Core, MachineState, StopReason, set_fast_path
from repro.cpu.config import DEFAULT_GENERATION
from repro.cpu.decoded import fast_path_enabled
from repro.cpu.vector import (DEFAULT_STRIDE, VectorGroup, VectorLane,
                              run_many_seeds)
from repro.errors import VectorizationError
from repro.isa import Assembler
from repro.memory import VirtualMemory
from repro.victims.library import build_gcd_victim


@pytest.fixture(autouse=True)
def _restore_fast_path():
    before = fast_path_enabled()
    yield
    set_fast_path(before)


# ----------------------------------------------------------------------
# gcd-victim lanes (the workload the perf suite benchmarks)
# ----------------------------------------------------------------------
VICTIM = build_gcd_victim(nlimbs=2)

SEED_INPUTS = {
    0: {"ta": 0x3B9AC9FF, "tb": 0x2540BE3F},
    1: {"ta": 0x1000003, "tb": 0x5F5E107},
    2: {"ta": 0x7FFFFFFF, "tb": 0x2},
    3: {"ta": 0x51615, "tb": 0x51615},
}


def make_gcd_lane(index, seed):
    memory = VICTIM.new_memory(SEED_INPUTS[seed])
    state = MachineState(memory)
    state.setup_stack(0x7FFF_0000_0000)
    state.rip = VICTIM.compiled.start
    return VectorLane(index=index, seed=seed,
                      core=Core(DEFAULT_GENERATION), state=state,
                      max_instructions=5_000_000)


def yield_handler(lane, result):
    lane.state.regs["rax"] = 0
    return True


def lane_observables(lane):
    core, state = lane.core, lane.state
    btb = sorted((e.tag, e.set_index, e.offset, e.target, e.kind.value,
                  e.domain) for e in core.btb.valid_entries())
    lbr = [(r.from_pc, r.to_pc, r.elapsed_cycles, r.mispredicted)
           for r in core.lbr.records()]
    data = {
        name: state.memory.read_bytes(spec.address, spec.size,
                                      check=False)
        for name, spec in VICTIM.layout.arrays.items()
    }
    return {
        "seed": lane.seed,
        "reason": lane.reason,
        "instructions": lane.instructions,
        "regs": state.regs.snapshot(),
        "flags": state.regs.flags.as_tuple(),
        "rip": state.rip,
        "cycles": core.cycles,
        "total_retired": core.total_retired,
        "btb": btb,
        "lbr": lbr,
        "data": data,
    }


@pytest.mark.parametrize("stride", [64, 1_000, DEFAULT_STRIDE])
def test_lockstep_bit_identical_to_sequential(stride):
    seeds = list(SEED_INPUTS)
    set_fast_path(True)
    vec = run_many_seeds(make_gcd_lane, seeds, stride=stride,
                         on_syscall=yield_handler, vectorize=True)
    seq = run_many_seeds(make_gcd_lane, seeds, stride=stride,
                         on_syscall=yield_handler, vectorize=False)
    for a, b in zip(vec, seq):
        assert a.reason is StopReason.HALT
        assert lane_observables(a) == lane_observables(b)


def test_lockstep_matches_slow_path_reference():
    """Vectorized + fast path on ≡ sequential + fast path off: the
    exact pairing the many_seeds benchmark times."""
    seeds = list(SEED_INPUTS)
    set_fast_path(True)
    vec = run_many_seeds(make_gcd_lane, seeds, stride=1_000,
                         on_syscall=yield_handler, vectorize=True)
    set_fast_path(False)
    ref = run_many_seeds(make_gcd_lane, seeds, stride=1_000,
                         on_syscall=yield_handler, vectorize=False)
    for a, b in zip(vec, ref):
        assert lane_observables(a) == lane_observables(b)


def test_lanes_share_decode_state():
    seeds = list(SEED_INPUTS)
    lanes = [make_gcd_lane(i, s) for i, s in enumerate(seeds)]
    VectorGroup(lanes)
    lead = lanes[0].memory
    for lane in lanes[1:]:
        assert lane.memory.icache is lead.icache
        assert lane.memory.window_cache is lead.window_cache
        # superblock caches stay per-lane (chains pin the owning BTB)
        assert lane.memory.superblock_cache is not lead.superblock_cache


def test_vector_telemetry_counters():
    with telemetry.session() as sink:
        run_many_seeds(make_gcd_lane, [0, 1], stride=1_000,
                       on_syscall=yield_handler, vectorize=True)
    counters = sink.snapshot()
    assert counters.get("cpu.vector.lanes") == 2
    assert counters.get("cpu.vector.turns", 0) >= 1


# ----------------------------------------------------------------------
# structural guards
# ----------------------------------------------------------------------
def test_empty_group_rejected():
    with pytest.raises(VectorizationError):
        VectorGroup([])


def test_bad_stride_rejected():
    with pytest.raises(VectorizationError):
        VectorGroup([make_gcd_lane(0, 0)]).run(stride=0)


def test_generation_mismatch_at_share_time_rejected():
    a = make_gcd_lane(0, 0)
    b = make_gcd_lane(1, 1)
    # remap a page in one lane: its paging epoch (hence generation)
    # moves and the group must refuse to share decode state
    b.memory.map_range(0x6000_0000, 0x1000, perms="rw")
    with pytest.raises(VectorizationError):
        VectorGroup([a, b])


BASE = 0x0040_0000


def self_modifying_lane(index, seed):
    """A lane whose program stores over its own code page: the write
    epoch moves mid-run and the group must detect the divergence."""
    asm = Assembler(base=BASE)
    asm.emit("movi", "rbx", BASE + 64)
    asm.emit("movi", "rsi", 0)
    asm.emit("store", "rbx", "rsi", 0)   # write a code-holding page
    asm.emit("movi", "rax", seed)
    asm.emit("hlt")
    program = asm.assemble()
    memory = VirtualMemory()
    program.load_into(memory, perms="rwx")
    state = MachineState(memory, rip=BASE)
    state.setup_stack(0x7FFF_0000)
    return VectorLane(index=index, seed=seed,
                      core=Core(DEFAULT_GENERATION), state=state)


def test_mid_run_divergence_raises():
    lanes = [self_modifying_lane(0, 0), self_modifying_lane(1, 1)]
    group = VectorGroup(lanes)
    with pytest.raises(VectorizationError):
        group.run(stride=1_000)
