"""BTB organisation: field extraction, range lookups, takeaways."""

import pytest
from hypothesis import given, strategies as st

from repro.cpu import BTB, generation
from repro.errors import CpuError
from repro.isa import Kind

_addr = st.integers(min_value=0, max_value=(1 << 47) - 1)


@pytest.fixture
def btb():
    return BTB(generation("skylake"))


class TestFields:
    def test_offset_is_low_five_bits(self, btb):
        _, _, offset = btb.fields(0x400415)
        assert offset == 0x15

    @given(_addr)
    def test_tag_truncation_aliases(self, address):
        btb = BTB(generation("skylake"))
        assert btb.aliases(address, address + (1 << 33))
        assert not btb.aliases(address, address + (1 << 32))

    @given(_addr)
    def test_icelake_wider_tag(self, address):
        btb = BTB(generation("icelake"))
        assert not btb.aliases(address, address + (1 << 33))
        assert btb.aliases(address, address + (1 << 34))

    def test_power_of_two_sets_required(self):
        with pytest.raises(CpuError):
            BTB(generation("skylake", btb_sets=300))


class TestRangeLookup:
    """Takeaway 2: hit iff same tag/set and offset >= fetch offset,
    smallest such offset wins."""

    def test_miss_on_empty(self, btb):
        assert btb.lookup(0x400000) is None

    def test_exact_and_below(self, btb):
        btb.allocate(0x400010, target=0x999, kind=Kind.DIRECT_JUMP)
        assert btb.lookup(0x400010) is not None    # equal offset
        assert btb.lookup(0x400008) is not None    # lower fetch offset
        assert btb.lookup(0x400011) is None        # above the entry

    def test_smallest_offset_wins(self, btb):
        low = btb.allocate(0x400008, 0x1, Kind.DIRECT_JUMP)
        btb.allocate(0x400018, 0x2, Kind.DIRECT_JUMP)
        hit = btb.lookup(0x400002)
        assert hit is low

    def test_range_skips_lower_entries(self, btb):
        btb.allocate(0x400008, 0x1, Kind.DIRECT_JUMP)
        high = btb.allocate(0x400018, 0x2, Kind.DIRECT_JUMP)
        assert btb.lookup(0x400010) is high

    def test_different_block_different_set(self, btb):
        btb.allocate(0x400008, 0x1, Kind.DIRECT_JUMP)
        assert btb.lookup(0x400028) is None        # next block

    def test_aliased_pc_hits(self, btb):
        """The cross-address-space collision the attack uses."""
        btb.allocate(0x400010, 0x1, Kind.DIRECT_JUMP)
        assert btb.lookup(0x400000 + (1 << 34)) is not None

    def test_predicted_end_byte_reconstruction(self, btb):
        entry = btb.allocate(0x40041A, 0x1, Kind.DIRECT_JUMP)
        assert btb.predicted_end_byte(0x400401, entry) == 0x40041A
        alias = 0x400401 + (1 << 33)
        assert btb.predicted_end_byte(alias, entry) == 0x40041A + (1 << 33)


class TestUpdate:
    def test_same_branch_updates_in_place(self, btb):
        first = btb.allocate(0x400010, 0x1, Kind.DIRECT_JUMP)
        second = btb.allocate(0x400010, 0x2, Kind.DIRECT_JUMP)
        assert first is second
        assert first.target == 0x2
        assert btb.occupancy() == 1

    def test_deallocate(self, btb):
        entry = btb.allocate(0x400010, 0x1, Kind.DIRECT_JUMP)
        btb.deallocate(entry)
        assert btb.lookup(0x400000) is None
        assert btb.stats.deallocations == 1

    def test_lru_eviction_within_set(self):
        btb = BTB(generation("skylake", btb_ways=2))
        # three different tags, same set/offset
        a = btb.allocate(0x400010, 0x1, Kind.DIRECT_JUMP)
        btb.allocate(0x400010 + (1 << 20), 0x2, Kind.DIRECT_JUMP)
        btb.allocate(0x400010 + (2 << 20), 0x3, Kind.DIRECT_JUMP)
        assert btb.stats.evictions == 1
        assert a.target != 0x1 or not a.valid or a.tag != \
            btb.fields(0x400010)[0]

    def test_touch_refreshes_lru(self):
        btb = BTB(generation("skylake", btb_ways=2))
        a = btb.allocate(0x400010, 0x1, Kind.DIRECT_JUMP)
        btb.allocate(0x400010 + (1 << 20), 0x2, Kind.DIRECT_JUMP)
        btb.touch(a)                       # a becomes most recent
        btb.allocate(0x400010 + (2 << 20), 0x3, Kind.DIRECT_JUMP)
        assert a.valid and a.target == 0x1


class TestFlushes:
    def test_full_flush(self, btb):
        btb.allocate(0x400010, 0x1, Kind.DIRECT_JUMP)
        btb.flush()
        assert btb.occupancy() == 0

    def test_ibrs_flush_spares_direct(self, btb):
        """§4.1: IBRS/IBPB only drop indirect predictions."""
        btb.allocate(0x400010, 0x1, Kind.DIRECT_JUMP)
        btb.allocate(0x400030, 0x2, Kind.COND_JUMP)
        btb.allocate(0x400050, 0x3, Kind.INDIRECT_JUMP)
        btb.allocate(0x400070, 0x4, Kind.RET)
        btb.allocate(0x400090, 0x5, Kind.INDIRECT_CALL)
        btb.flush_indirect()
        kinds = {entry.kind for entry in btb.valid_entries()}
        assert kinds == {Kind.DIRECT_JUMP, Kind.COND_JUMP}


class TestPartitioning:
    def test_domains_do_not_collide(self):
        btb = BTB(generation("skylake", btb_partitioning=True))
        btb.current_domain = 1
        btb.allocate(0x400010, 0x1, Kind.DIRECT_JUMP)
        btb.current_domain = 2
        assert btb.lookup(0x400000) is None     # other domain invisible
        btb.current_domain = 1
        assert btb.lookup(0x400000) is not None

    def test_partitioning_off_by_default(self):
        btb = BTB(generation("skylake"))
        btb.current_domain = 1
        btb.allocate(0x400010, 0x1, Kind.DIRECT_JUMP)
        btb.current_domain = 2
        assert btb.lookup(0x400000) is not None
