"""exp_portability: the attack x BTB-design survival matrix."""

from pathlib import Path

import pytest

from repro.experiments import render_matrix, run_portability
from repro.experiments.common import EXPERIMENTS, RunRequest
from repro.experiments.exp_portability import BACKENDS, DRILLS

GOLDEN = Path(__file__).resolve().parent.parent / "reports" \
    / "portability_golden.txt"


@pytest.fixture(scope="module")
def matrix():
    return run_portability()


class TestVerdicts:
    def test_matrix_is_complete(self, matrix):
        assert tuple(matrix) == BACKENDS
        for backend in BACKENDS:
            assert tuple(matrix[backend]) == DRILLS

    def test_intel_grade_signal_on_the_papers_design(self, matrix):
        assert all(cell.verdict == "works"
                   for cell in matrix["intel"].values())

    def test_exact_hit_designs_degrade(self, matrix):
        """Tag-exact lookups keep aliasing alive but kill the range
        primitive: only window-open anchors are ever predicted."""
        for backend in ("arm", "orcs"):
            assert all(cell.verdict == "degraded"
                       for cell in matrix[backend].values()), backend

    def test_full_tags_kill_everything(self, matrix):
        """sodor keeps all 47 address bits: no alias is constructible,
        so every aliasing-based primitive dies by construction."""
        assert all(cell.verdict == "dies"
                   for cell in matrix["sodor"].values())

    def test_intel_fingerprint_recovers_the_exact_layout(self, matrix):
        detail = matrix["intel"]["fingerprint"].detail
        assert "F0=1.00" in detail and "F1=1.00" in detail


class TestByteStability:
    def test_two_runs_render_identically(self, matrix):
        assert render_matrix(matrix) == render_matrix(run_portability())

    def test_committed_golden_matches(self, matrix):
        assert GOLDEN.exists(), "run: repro portability --out " + str(GOLDEN)
        assert render_matrix(matrix) + "\n" == GOLDEN.read_text()


class TestRegistration:
    def test_registered_as_campaign_experiment(self):
        assert "portability" in EXPERIMENTS

    def test_request_knobs_do_not_change_the_output(self, matrix):
        runner = EXPERIMENTS["portability"].runner
        rendered = render_matrix(matrix)
        assert runner(RunRequest(fast=True, seed=99,
                                 backend="arm")) == rendered
