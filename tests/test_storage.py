"""The durable storage layer: checksummed envelopes, write-ahead
journaled checkpoints with quarantine + recovery, the consolidated
atomic writer (byte-identical to the implementation it replaced), and
the deterministic disk-fault injector.
"""

import errno
import json
import pickle

import pytest

from repro import telemetry
from repro.errors import ArtifactCorrupt, DiskFaultError
from repro.faults import DiskFaultInjector, disk_chaos
from repro.storage import (CORRUPT_SUFFIX, ENVELOPE_KEY, LEGACY_TICK,
                           atomic_write, atomic_write_json,
                           canonical_bytes, checkpoint,
                           clear_disk_faults, install_disk_faults,
                           journal_path, load_checkpoint,
                           parse_document, quarantine_path,
                           read_json, reset_tick_cache,
                           wrap_envelope, write_envelope)


@pytest.fixture(autouse=True)
def _clean_storage_state():
    reset_tick_cache()
    clear_disk_faults()
    yield
    reset_tick_cache()
    clear_disk_faults()


# ----------------------------------------------------------------------
# envelope format
# ----------------------------------------------------------------------
def test_envelope_roundtrip_dict_payload():
    payload = {"alpha": 1, "jobs": {"j0": {"status": "PENDING"}}}
    document = wrap_envelope(payload, "repro.test", tick=3)
    # the payload's own keys stay top-level: direct readers
    # (json.load(f)["jobs"]) keep working
    assert document["jobs"] == payload["jobs"]
    assert document[ENVELOPE_KEY]["schema"] == "repro.test"
    parsed, schema, tick = parse_document(document)
    assert parsed == payload
    assert schema == "repro.test"
    assert tick == 3


def test_envelope_roundtrip_non_dict_payload():
    document = wrap_envelope([1, 2, 3], "repro.list")
    parsed, schema, tick = parse_document(document)
    assert parsed == [1, 2, 3]
    assert schema == "repro.list"
    assert tick == 1


def test_legacy_document_parses_with_legacy_tick():
    parsed, schema, tick = parse_document({"schema": 2, "jobs": {}})
    assert parsed == {"schema": 2, "jobs": {}}
    assert schema is None
    assert tick == LEGACY_TICK


def test_envelope_detects_payload_tampering():
    document = wrap_envelope({"value": 1}, "repro.test")
    document["value"] = 2            # same canonical length
    with pytest.raises(ArtifactCorrupt) as excinfo:
        parse_document(document)
    assert excinfo.value.reason == "checksum-mismatch"


def test_envelope_detects_truncation_by_length():
    document = wrap_envelope({"value": "long-enough-string"},
                             "repro.test")
    document["value"] = "x"
    with pytest.raises(ArtifactCorrupt) as excinfo:
        parse_document(document)
    assert excinfo.value.reason == "length-mismatch"


def test_envelope_rejects_unknown_format_and_reserved_key():
    document = wrap_envelope({"value": 1}, "repro.test")
    document[ENVELOPE_KEY] = dict(document[ENVELOPE_KEY], fmt=99)
    with pytest.raises(ArtifactCorrupt):
        parse_document(document)
    with pytest.raises(ArtifactCorrupt):
        wrap_envelope({ENVELOPE_KEY: "taken"}, "repro.test")


def test_canonical_bytes_are_stable():
    assert canonical_bytes({"b": 1, "a": 2}) == \
        canonical_bytes({"a": 2, "b": 1})


# ----------------------------------------------------------------------
# consolidated atomic writer: byte-identical to the old one
# ----------------------------------------------------------------------
def test_atomic_write_json_bytes_unchanged(tmp_path):
    """Regression for the consolidation: the storage writer must
    produce exactly the bytes the runner's old writer produced."""
    payload = {"schema": 2, "jobs": {"j1": {"status": "COMPLETED"}},
               "seed": None, "created": "2026-08-06T12:00:00",
               "unicode": "münchen"}
    new_path = atomic_write_json(tmp_path / "new.json", payload)
    # the former repro.runner.artifacts serialization, verbatim
    legacy = (json.dumps(payload, indent=2, sort_keys=True,
                         ensure_ascii=False) + "\n").encode("utf-8")
    assert new_path.read_bytes() == legacy


def test_runner_shim_reexports_storage_writer(tmp_path):
    from repro.runner import artifacts
    from repro.storage import atomic as storage_atomic
    assert artifacts.atomic_write_json is \
        storage_atomic.atomic_write_json
    assert artifacts.atomic_write_bytes is \
        storage_atomic.atomic_write_bytes


def test_atomic_write_dispatches_text_and_bytes(tmp_path):
    text_path = atomic_write(tmp_path / "a.txt", "héllo")
    byte_path = atomic_write(tmp_path / "b.bin", b"\x00\x01")
    assert text_path.read_text(encoding="utf-8") == "héllo"
    assert byte_path.read_bytes() == b"\x00\x01"


def test_atomic_writes_count_telemetry(tmp_path):
    with telemetry.session() as sink:
        atomic_write(tmp_path / "x", "1")
        atomic_write(tmp_path / "y", "2")
    assert sink.counters["storage.writes"] == 2


# ----------------------------------------------------------------------
# write-ahead journal
# ----------------------------------------------------------------------
def test_checkpoint_writes_journal_then_target(tmp_path):
    path = tmp_path / "manifest.json"
    checkpoint(path, {"state": 1}, "repro.test")
    assert path.exists() and journal_path(path).exists()
    payload, schema, tick = parse_document(read_json(path))
    assert payload == {"state": 1} and tick == 1
    checkpoint(path, {"state": 2}, "repro.test")
    _, _, tick = parse_document(read_json(path))
    assert tick == 2
    assert load_checkpoint(path, "repro.test") == {"state": 2}


def test_load_replays_newer_journal_over_stale_target(tmp_path):
    path = tmp_path / "manifest.json"
    checkpoint(path, {"state": 1}, "repro.test")
    stale = path.read_bytes()
    checkpoint(path, {"state": 2}, "repro.test")
    # crash between journal and target: the target is one tick behind
    path.write_bytes(stale)
    with telemetry.session() as sink:
        assert load_checkpoint(path, "repro.test") == {"state": 2}
    assert sink.counters["storage.journal_replays"] == 1
    # the replay repaired the target in place
    _, _, tick = parse_document(read_json(path))
    assert tick == 2


def test_load_rolls_back_torn_journal_write(tmp_path):
    path = tmp_path / "manifest.json"
    checkpoint(path, {"state": 1}, "repro.test")
    jpath = journal_path(path)
    jpath.write_bytes(jpath.read_bytes()[: len(jpath.read_bytes())
                                         // 2])
    with telemetry.session() as sink:
        assert load_checkpoint(path, "repro.test") == {"state": 1}
    assert sink.counters["storage.corruption_detected"] == 1
    assert (tmp_path / f"manifest.json.journal{CORRUPT_SUFFIX}"
            ).exists()


def test_load_quarantines_corrupt_target_and_replays(tmp_path):
    path = tmp_path / "manifest.json"
    checkpoint(path, {"state": 1}, "repro.test")
    path.write_text("{ not json", encoding="utf-8")
    with telemetry.session() as sink:
        assert load_checkpoint(path, "repro.test") == {"state": 1}
    assert sink.counters["storage.corruption_detected"] == 1
    assert sink.counters["storage.journal_replays"] == 1
    assert (tmp_path / f"manifest.json{CORRUPT_SUFFIX}").exists()
    # the quarantined forensics hold the damaged bytes
    assert (tmp_path / f"manifest.json{CORRUPT_SUFFIX}"
            ).read_text(encoding="utf-8") == "{ not json"


def test_load_raises_when_both_copies_corrupt(tmp_path):
    path = tmp_path / "manifest.json"
    checkpoint(path, {"state": 1}, "repro.test")
    path.write_text("xxx", encoding="utf-8")
    journal_path(path).write_text("yyy", encoding="utf-8")
    with pytest.raises(ArtifactCorrupt) as excinfo:
        load_checkpoint(path, "repro.test")
    assert excinfo.value.quarantined
    # both damaged copies moved aside for forensics
    assert (tmp_path / f"manifest.json{CORRUPT_SUFFIX}").exists()
    assert (tmp_path / f"manifest.json.journal{CORRUPT_SUFFIX}"
            ).exists()


def test_load_missing_checkpoint_raises_file_not_found(tmp_path):
    with pytest.raises(FileNotFoundError):
        load_checkpoint(tmp_path / "manifest.json")


def test_schema_tag_mismatch_is_corruption(tmp_path):
    path = tmp_path / "manifest.json"
    checkpoint(path, {"state": 1}, "repro.other")
    journal_path(path).unlink()
    with pytest.raises(ArtifactCorrupt) as excinfo:
        load_checkpoint(path, expect_schema="repro.test")
    assert excinfo.value.reason == "schema-mismatch"


def test_tick_survives_process_restart(tmp_path):
    path = tmp_path / "manifest.json"
    checkpoint(path, {"state": 1}, "repro.test")
    checkpoint(path, {"state": 2}, "repro.test")
    reset_tick_cache()               # "new process"
    checkpoint(path, {"state": 3}, "repro.test")
    _, _, tick = parse_document(read_json(path))
    assert tick == 3


def test_quarantine_path_never_clobbers(tmp_path):
    path = tmp_path / "manifest.json"
    first = quarantine_path(path)
    first.write_text("old", encoding="utf-8")
    second = quarantine_path(path)
    assert second != first and not second.exists()


def test_write_envelope_for_derived_artifacts(tmp_path):
    path = tmp_path / "aggregate.json"
    write_envelope(path, {"digest": "abc"}, "repro.test.aggregate")
    payload, schema, _ = parse_document(read_json(path))
    assert payload == {"digest": "abc"}
    assert schema == "repro.test.aggregate"


# ----------------------------------------------------------------------
# deterministic disk-fault injector
# ----------------------------------------------------------------------
def test_injector_schedule_is_seed_deterministic():
    first = DiskFaultInjector(mode="torn-write", seed=42)
    second = DiskFaultInjector(mode="torn-write", seed=42)
    other = DiskFaultInjector(mode="torn-write", seed=43)
    assert first.strike_after == second.strike_after
    assert (first.strike_after, other.strike_after) != (0, 0)


def test_torn_write_truncates_target_and_plays_dead(tmp_path):
    injector = DiskFaultInjector(mode="torn-write", seed=1,
                                 strike_after=2)
    install_disk_faults(injector)
    path = tmp_path / "manifest.json"
    checkpoint(path, {"state": 1}, "repro.test")   # writes 1+2 ok...
    with pytest.raises(DiskFaultError):
        checkpoint(path, {"state": 2}, "repro.test")
    assert injector.dead
    kind, struck_path, offset = injector.events[0]
    assert kind == "torn-write" and offset > 0
    assert struck_path.endswith("manifest.json") or \
        struck_path.endswith("manifest.json.journal")
    # every further matching write fails (dead disk)
    with pytest.raises(DiskFaultError):
        checkpoint(path, {"state": 3}, "repro.test")
    clear_disk_faults()
    # after "replacing the disk" the journal recovers the last good
    # state: the strike hit either the journal or the target write
    recovered = load_checkpoint(path, "repro.test")
    assert recovered in ({"state": 1}, {"state": 2})


def test_bit_flip_is_silent_and_detected_on_load(tmp_path):
    injector = DiskFaultInjector(mode="bit-flip", seed=5,
                                 strike_after=2, strikes=1)
    install_disk_faults(injector)
    path = tmp_path / "manifest.json"
    checkpoint(path, {"state": 1}, "repro.test")
    # journal writes don't match the default pattern, so the second
    # checkpoint's *target* write is matching write #2: flipped
    checkpoint(path, {"state": 2}, "repro.test")
    clear_disk_faults()
    assert len(injector.events) == 1               # silent, no raise
    # one copy is damaged; the load must detect it via the checksum
    # and still recover a consistent state from the other copy
    recovered = load_checkpoint(path, "repro.test")
    assert recovered in ({"state": 1}, {"state": 2})


def test_enospc_and_fsync_fail_raise_with_errno(tmp_path):
    for mode, expected in (("enospc", errno.ENOSPC),
                           ("fsync-fail", errno.EIO)):
        injector = DiskFaultInjector(mode=mode, seed=0,
                                     strike_after=1)
        install_disk_faults(injector)
        with pytest.raises(DiskFaultError) as excinfo:
            atomic_write(tmp_path / mode / "manifest.json", "{}")
        clear_disk_faults()
        assert excinfo.value.errno_ == expected
        assert excinfo.value.kind == mode


def test_injector_match_scopes_the_blast_radius(tmp_path):
    injector = DiskFaultInjector(mode="enospc", seed=0,
                                 strike_after=1,
                                 match="manifest.json")
    install_disk_faults(injector)
    # non-matching writes (artifacts, journals) pass through clean
    atomic_write(tmp_path / "artifact.txt", "fine")
    atomic_write(tmp_path / "manifest.json.journal", "fine")
    with pytest.raises(DiskFaultError):
        atomic_write(tmp_path / "manifest.json", "{}")


def test_injector_rejects_unknown_mode():
    with pytest.raises(DiskFaultError):
        DiskFaultInjector(mode="meteor-strike")
    assert disk_chaos("meteor-strike") is None
    assert disk_chaos("torn-write", seed=1).mode == "torn-write"


# ----------------------------------------------------------------------
# structured errors stay picklable (cross-process reporting)
# ----------------------------------------------------------------------
def test_storage_errors_pickle_roundtrip():
    corrupt = ArtifactCorrupt("bad", path="/p", reason="invalid-json",
                              quarantined="/p.corrupt")
    fault = DiskFaultError("torn", path="/p", kind="torn-write",
                           errno_=errno.EIO)
    for error in (corrupt, fault):
        clone = pickle.loads(pickle.dumps(error))
        assert type(clone) is type(error)
        assert str(clone) == str(error)
    clone = pickle.loads(pickle.dumps(corrupt))
    assert clone.reason == "invalid-json"
    assert clone.quarantined == "/p.corrupt"
