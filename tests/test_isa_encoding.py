"""Encoder/decoder: round trips, lengths, validation."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import DecodeError, EncodeError
from repro.isa import (ALL_MNEMONICS, SPECS_BY_NAME, SPECS_BY_OPCODE,
                       decode, encode, make, spec_for)
from repro.isa.instructions import Format, Instruction

_regs = st.integers(min_value=0, max_value=15)
_imm8 = st.integers(min_value=-128, max_value=127)
_imm32 = st.integers(min_value=-(1 << 31), max_value=(1 << 31) - 1)
_imm64 = st.integers(min_value=0, max_value=(1 << 64) - 1)


def _operand_strategy(fmt: Format):
    if fmt in (Format.NONE, Format.PAD1, Format.PAD2):
        return st.tuples()
    if fmt is Format.REL8:
        return st.tuples(_imm8)
    if fmt in (Format.REL32, Format.REL32_PAD):
        return st.tuples(_imm32)
    if fmt in (Format.REG, Format.REG_PAD):
        return st.tuples(_regs)
    if fmt in (Format.REG_REG, Format.REG_REG_PAD2):
        return st.tuples(_regs, _regs)
    if fmt is Format.REG_IMM8:
        return st.tuples(_regs, _imm8)
    if fmt is Format.REG_IMM32:
        return st.tuples(_regs, _imm32)
    if fmt is Format.REG_IMM64:
        return st.tuples(_regs, _imm64)
    if fmt is Format.REG_REG_DISP8:
        return st.tuples(_regs, _regs, _imm8)
    if fmt is Format.REG_REG_DISP32:
        return st.tuples(_regs, _regs, _imm32)
    raise AssertionError(fmt)


@st.composite
def instructions(draw):
    mnemonic = draw(st.sampled_from(ALL_MNEMONICS))
    spec = spec_for(mnemonic)
    operands = draw(_operand_strategy(spec.fmt))
    return Instruction(spec, tuple(operands))


class TestRoundTrip:
    @given(instructions())
    def test_encode_decode_identity(self, instruction):
        blob = encode(instruction)
        decoded, length = decode(blob)
        assert length == len(blob) == instruction.length
        assert decoded.mnemonic == instruction.mnemonic
        # imm64 values wrap; everything else must be exact
        if instruction.spec.fmt is Format.REG_IMM64:
            assert decoded.operands[0] == instruction.operands[0]
            assert decoded.operands[1] == \
                instruction.operands[1] & ((1 << 64) - 1)
        else:
            assert decoded.operands == instruction.operands

    @given(instructions())
    def test_length_matches_spec(self, instruction):
        assert len(encode(instruction)) == instruction.spec.length


class TestLengths:
    """Instruction lengths mirror x86-64 (the fingerprint entropy)."""

    @pytest.mark.parametrize("mnemonic,length", [
        ("nop", 1), ("ret", 1), ("hlt", 1), ("cmc", 1),
        ("jmp8", 2), ("je8", 2), ("push", 2), ("pop", 2),
        ("mov", 3), ("add", 3), ("cmp", 3), ("inc", 3), ("lfence", 3),
        ("load", 4), ("addi8", 4), ("shl", 4), ("imul", 4),
        ("jmp", 5), ("call", 5),
        ("je", 6),
        ("movi", 7), ("addi", 7), ("loadw", 7), ("lea", 7),
        ("movabs", 10),
    ])
    def test_x86_like_length(self, mnemonic, length):
        assert spec_for(mnemonic).length == length


class TestValidation:
    def test_unknown_mnemonic(self):
        with pytest.raises(EncodeError):
            spec_for("bogus")

    def test_register_out_of_range(self):
        with pytest.raises(EncodeError):
            make("push", 16)

    def test_imm8_overflow(self):
        with pytest.raises(EncodeError):
            make("jmp8", 200)

    def test_operand_count(self):
        with pytest.raises(EncodeError):
            make("mov", 1)
        with pytest.raises(EncodeError):
            make("nop", 1)

    def test_unknown_opcode(self):
        with pytest.raises(DecodeError):
            decode(b"\x00")

    def test_truncated(self):
        blob = encode(make("jmp", 1000))
        with pytest.raises(DecodeError):
            decode(blob[:3])

    def test_decode_past_end(self):
        with pytest.raises(DecodeError):
            decode(b"", 0)

    def test_bad_register_byte(self):
        # push with register byte 0xFF must not decode
        push_opcode = spec_for("push").opcode
        with pytest.raises(DecodeError):
            decode(bytes([push_opcode, 0xFF]))


class TestTables:
    def test_opcode_table_bijective(self):
        assert len(SPECS_BY_OPCODE) == len(SPECS_BY_NAME)

    def test_every_control_kind_present(self):
        from repro.isa import Kind
        kinds = {spec.kind for spec in SPECS_BY_NAME.values()}
        for kind in (Kind.DIRECT_JUMP, Kind.COND_JUMP, Kind.CALL,
                     Kind.RET, Kind.INDIRECT_JUMP, Kind.INDIRECT_CALL,
                     Kind.SYSCALL):
            assert kind in kinds

    def test_shortest_control_transfer_is_two_bytes(self):
        """The attack needs a 2-byte direct jump (§5.2)."""
        assert spec_for("jmp8").length == 2
        assert spec_for("jmp8").is_control

    def test_semantics_cover_every_mnemonic(self):
        from repro.cpu.semantics import covered_mnemonics
        assert set(ALL_MNEMONICS) <= covered_mnemonics()


class TestPlainRegByteValidation:
    """Regression: decode must reject plain register bytes 16..255 in
    every format that carries one, so decode accepts exactly the image
    of encode (the round-trip property)."""

    @pytest.mark.parametrize("mnemonic", ["addi8", "movi", "movabs"])
    def test_reg_imm_bad_register_byte(self, mnemonic):
        spec = spec_for(mnemonic)
        blob = bytearray(encode(make(mnemonic, 3, 1)))
        blob[1] = 0x20                  # register byte out of range
        with pytest.raises(DecodeError):
            decode(bytes(blob))

    @given(instructions(), st.integers(min_value=16, max_value=255))
    def test_mutated_reg_byte_never_decodes_in_range(self, instruction,
                                                     bad_byte):
        from repro.isa.encoding import _PLAIN_REG_FORMATS
        if instruction.spec.fmt not in _PLAIN_REG_FORMATS:
            return
        blob = bytearray(encode(instruction))
        blob[1] = bad_byte
        with pytest.raises(DecodeError):
            decode(bytes(blob))


class TestProgramRoundTrip:
    """Whole-program property: encode a random instruction soup, decode
    it back with a linear sweep, re-encode — byte identical."""

    @given(st.lists(instructions(), min_size=1, max_size=40))
    def test_soup_round_trip(self, soup):
        blob = b"".join(encode(instruction) for instruction in soup)
        offset, recoded = 0, b""
        decoded = []
        while offset < len(blob):
            instruction, length = decode(blob, offset)
            decoded.append(instruction)
            recoded += encode(instruction)
            offset += length
        assert len(decoded) == len(soup)
        assert [d.mnemonic for d in decoded] == \
            [s.mnemonic for s in soup]
        assert recoded == blob
