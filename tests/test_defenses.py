"""Defense layer: builders, oblivious GCD, mitigated hardware."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.cpu import MachineState, run_function
from repro.defenses import (HARDWARE_MITIGATIONS, SOFTWARE_DEFENSES,
                            build_oblivious_gcd_victim, flush_on_switch,
                            ibrs_ibpb, partitioned_btb, stock)


class TestSoftwareBuilders:
    def test_grid_contents(self):
        assert set(SOFTWARE_DEFENSES) == {
            "none", "balancing", "align-jumps-16", "cfr",
            "balancing+cfr"}

    def test_options_flags(self):
        assert SOFTWARE_DEFENSES["balancing"]().balance_branches
        assert SOFTWARE_DEFENSES["align-jumps-16"]().align_jumps == 16
        assert SOFTWARE_DEFENSES["cfr"]().cfr
        combo = SOFTWARE_DEFENSES["balancing+cfr"]()
        assert combo.cfr and combo.balance_branches


class TestHardwareBuilders:
    def test_grid_contents(self):
        assert set(HARDWARE_MITIGATIONS) == {
            "stock", "ibrs+ibpb", "btb-flush-on-switch",
            "btb-partitioning"}

    def test_flags(self):
        assert not stock().ibrs_ibpb
        assert ibrs_ibpb().ibrs_ibpb
        assert flush_on_switch().flush_btb_on_switch
        assert partitioned_btb().btb_partitioning

    def test_overrides_pass_through(self):
        config = ibrs_ibpb(timing_noise=3.0)
        assert config.timing_noise == 3.0


class TestObliviousGcd:
    @pytest.fixture(scope="class")
    def victim(self):
        return build_oblivious_gcd_victim(with_yield=False)

    def _run(self, victim, a, b):
        memory = victim.new_memory({"ta": a, "tb": b})
        state = MachineState(memory)
        state.setup_stack(0x7FFF00000000)
        run_function(state, victim.compiled.info("main").entry,
                     max_instructions=2_000_000,
                     syscall_handler=lambda s: True)
        from repro.victims import bytes_to_limbs, from_limbs
        return from_limbs(bytes_to_limbs(memory.read_bytes(
            victim.layout["g"].address, 8, check=False)))

    @settings(max_examples=10, deadline=None)
    @given(st.integers(1, (1 << 48) - 1), st.integers(1, (1 << 48) - 1))
    def test_computes_gcd(self, victim, a, b):
        assert self._run(victim, a, b) == math.gcd(a, b)

    def test_trace_is_secret_independent(self, victim):
        t1 = victim.ground_truth({"ta": 270, "tb": 192}).trace
        t2 = victim.ground_truth({"ta": 65537, "tb": 99}).trace
        t3 = victim.ground_truth({"ta": 1, "tb": 1}).trace
        assert t1 == t2 == t3

    def test_no_secret_dependent_branches(self, victim):
        """Every conditional inside gcd_oblivious takes the same
        direction sequence regardless of operands."""
        info = victim.compiled.info("gcd_oblivious")
        events = []
        for inputs in ({"ta": 7, "tb": 21}, {"ta": 9999, "tb": 4}):
            result = victim.ground_truth(inputs)
            events.append([(pc, taken)
                           for pc, taken in result.branch_events
                           if info.contains(pc)])
        assert events[0] == events[1]
