"""Superblock engine: chained windows across predicted edges.

Covers the invalidation edges DESIGN.md §14 promises:

* a store inside a chained window that rewrites a *later* window's
  bytes bails mid-chain with partial accounting identical to the
  window path;
* ``set_perms`` does **not** invalidate chains (permission asymmetry),
  but the per-link execute check faults live, mid-chain, at the right
  PC;
* BTB churn — evictions, mispredict-driven retargets — flips the
  per-set generation signature and forces a rebuild on the next
  dispatch (unrelated-set churn does not);
* retire-budget clips that would land mid-chain fall back to the
  window path and stay bit-identical to the slow path at every stride.

Everything here runs the full fast-vs-slow observable comparison: the
superblock executor commits cycles, traces, BTB and LBR effects, so
equality must hold to the bit, not just architecturally.
"""

import pytest

from repro import telemetry
from repro.cpu import Core, MachineState, StopReason, set_fast_path
from repro.cpu.config import DEFAULT_GENERATION
from repro.cpu.decoded import (Superblock, build_superblock,
                               fast_path_enabled)
from repro.isa import Assembler
from repro.memory import VirtualMemory
from repro.memory.address import PAGE_SIZE


@pytest.fixture(autouse=True)
def _restore_fast_path():
    before = fast_path_enabled()
    yield
    set_fast_path(before)


BASE = 0x0040_0000


# ----------------------------------------------------------------------
# harness: run a program fast and slow, capture every observable
# ----------------------------------------------------------------------
def _observables(core, state, results):
    btb = sorted((e.tag, e.set_index, e.offset, e.target, e.kind.value,
                  e.domain) for e in core.btb.valid_entries())
    lbr = [(r.from_pc, r.to_pc, r.elapsed_cycles, r.mispredicted)
           for r in core.lbr.records()]
    runs = [(r.reason, r.retired, r.instructions, r.cycles,
             tuple(r.trace or ()), tuple(r.unit_starts or ()))
            for r in results]
    return {
        "runs": runs,
        "regs": state.regs.snapshot(),
        "flags": state.regs.flags.as_tuple(),
        "rip": state.rip,
        "cycles": core.cycles,
        "total_retired": core.total_retired,
        "btb": btb,
        "lbr": lbr,
    }


def run_program(program, *, fast, max_retired=None, setup=None,
                stop_on=(StopReason.HALT, StopReason.PAGE_FAULT)):
    """Run ``program`` start-to-stop on a fresh core; capture all."""
    previous = set_fast_path(fast)
    try:
        memory = VirtualMemory()
        program.load_into(memory, perms="rwx")
        state = MachineState(memory, rip=BASE)
        state.setup_stack(0x7FFF_0000)
        if setup is not None:
            setup(memory, state)
        results = []
        with telemetry.session() as sink:
            core = Core(DEFAULT_GENERATION)
            for _ in range(100_000):
                result = core.run(state, collect_trace=True,
                                  max_retired=max_retired)
                results.append(result)
                if result.reason in stop_on:
                    break
            else:
                raise AssertionError("program never stopped")
        observables = _observables(core, state, results)
        return observables, sink.snapshot()
    finally:
        set_fast_path(previous)


def assert_fast_matches_slow(program, **kwargs):
    slow, _ = run_program(program, fast=False, **kwargs)
    fast, counters = run_program(program, fast=True, **kwargs)
    assert fast == slow
    return counters


# ----------------------------------------------------------------------
# programs
# ----------------------------------------------------------------------
def counted_loop(iterations):
    """A hot taken-edge loop: builds a loop superblock once warm."""
    asm = Assembler(base=BASE)
    asm.emit("movi", "rcx", iterations)
    asm.emit("movi", "rax", 0)
    asm.align(32)
    asm.label("loop")
    asm.emit("addi8", "rax", 3)
    asm.emit("dec", "rcx")
    asm.emit("test", "rcx", "rcx")
    asm.emit("jne8", "loop")
    asm.emit("hlt")
    return asm.assemble()


def nested_loops(outer, inner):
    """Inner loop exits (mispredict) once per outer pass: every
    re-entry dispatches a chain whose pinned entry was just
    retargeted, so the dispatcher must invalidate and rebuild."""
    asm = Assembler(base=BASE)
    asm.emit("movi", "rdx", outer)
    asm.emit("movi", "rax", 0)
    asm.align(32)
    asm.label("outer")
    asm.emit("movi", "rcx", inner)
    asm.align(32)
    asm.label("inner")
    asm.emit("addi8", "rax", 1)
    asm.emit("dec", "rcx")
    asm.emit("test", "rcx", "rcx")
    asm.emit("jne8", "inner")
    asm.emit("dec", "rdx")
    asm.emit("test", "rdx", "rdx")
    asm.emit("jne8", "outer")
    asm.emit("hlt")
    return asm.assemble()


# ----------------------------------------------------------------------
# the happy path: chains build, hit, and stay bit-identical
# ----------------------------------------------------------------------
def test_loop_chain_builds_and_hits():
    counters = assert_fast_matches_slow(counted_loop(500))
    assert counters.get("cpu.superblock.builds", 0) >= 1
    assert counters.get("cpu.superblock.hits", 0) >= 1


def test_superblock_object_shape():
    memory = VirtualMemory()
    counted_loop(10).load_into(memory, perms="rwx")
    state = MachineState(memory, rip=BASE)
    state.setup_stack(0x7FFF_0000)
    core = Core(DEFAULT_GENERATION)
    # warm the BTB so the backward edge is predicted
    set_fast_path(False)
    assert core.run(state).reason is StopReason.HALT
    loop_pc = BASE + 32
    sb = build_superblock(memory, core.btb, loop_pc, True)
    assert isinstance(sb, Superblock)
    assert sb.loop and sb.loop_taken
    assert sb.links[-1].target == loop_pc
    assert sb.btb_valid(core.btb)
    # a foreign BTB never validates (chains pin their owner)
    assert not sb.btb_valid(Core(DEFAULT_GENERATION).btb)


# ----------------------------------------------------------------------
# edge 1: self-modifying store inside a chained window
# ----------------------------------------------------------------------
def test_self_modifying_store_in_chain_bails():
    """A chained window's store rewrites a later window's bytes: the
    executor must bail at the generation flip and commit the partial
    pass exactly like the window path."""
    asm = Assembler(base=BASE)
    asm.emit("movi", "rcx", 40)
    asm.emit("movi", "rax", 0)
    # rbx points at the target instruction's immediate byte
    asm.align(32)
    asm.label("loop")
    asm.emit("addi8", "rax", 1)
    asm.emit("dec", "rcx")
    asm.emit("store", "rbx", "rsi", 0)   # [rbx] <- rsi (8-byte store)
    asm.emit("test", "rcx", "rcx")
    asm.emit("jne8", "loop")
    asm.emit("hlt")
    program = asm.assemble()

    def setup(memory, state):
        # every iteration stores the *same* byte the instruction
        # already holds on a code page: the write epoch still bumps,
        # which is exactly the invalidation trigger under test, while
        # the architectural result stays obviously convergent.
        target = BASE + 32          # the loop's own first byte
        state.regs["rbx"] = target
        state.regs["rsi"] = int.from_bytes(
            memory.read_bytes(target, 8, check=False), "little")

    counters = assert_fast_matches_slow(program, setup=setup)
    assert counters.get("cpu.superblock.builds", 0) >= 1
    assert counters.get("cpu.superblock.bailouts", 0) >= 1
    assert counters.get("cpu.superblock.invalidations", 0) >= 1


# ----------------------------------------------------------------------
# edge 2: set_perms asymmetry — no invalidation, live fault mid-chain
# ----------------------------------------------------------------------
def two_page_straightline():
    """Straight-line code whose chain crosses a page boundary: the
    last 32-byte block of page one chains (boundary edge) into the
    first block of page two."""
    asm = Assembler(base=BASE)
    asm.emit("jmp", "entry")            # jump to the page-A tail block
    asm.org(BASE + PAGE_SIZE - 32)
    asm.label("entry")
    for _ in range(8):                  # fills the 32-byte block
        asm.emit("addi8", "rax", 1)
    # page B begins here: one more straight-line block, then halt
    for _ in range(8):
        asm.emit("addi8", "rax", 2)
    asm.emit("hlt")
    return asm.assemble()


def test_set_perms_faults_mid_chain_without_invalidation():
    program = two_page_straightline()
    entry = BASE + PAGE_SIZE - 32
    page_b = BASE + PAGE_SIZE

    def revoke(memory, state):
        memory.protect(page_b, PAGE_SIZE, "r")

    # fast and slow fault identically: at page B's first PC, with the
    # page-A block's work committed
    slow, _ = run_program(program, fast=False, setup=revoke)
    fast, _ = run_program(program, fast=True, setup=revoke)
    assert fast == slow
    assert fast["rip"] == page_b
    assert fast["runs"][-1][0] is StopReason.PAGE_FAULT
    assert fast["regs"]["rax"] == 8     # page-A block retired

    # and the revocation did not invalidate anything: same memory,
    # restore execute, and the chain runs to completion without a
    # second build
    set_fast_path(True)
    memory = VirtualMemory()
    program.load_into(memory, perms="rwx")
    memory.protect(page_b, PAGE_SIZE, "r")
    state = MachineState(memory, rip=BASE)
    state.setup_stack(0x7FFF_0000)
    with telemetry.session() as sink:
        core = Core(DEFAULT_GENERATION)
        assert core.run(state).reason is StopReason.PAGE_FAULT
        generation = memory.code_generation
        memory.protect(page_b, PAGE_SIZE, "rx")
        assert memory.code_generation == generation      # asymmetry
        builds_after_fault = sink.snapshot().get(
            "cpu.superblock.builds", 0)
        state2 = MachineState(memory, rip=BASE)
        state2.setup_stack(0x7FFF_0000)
        assert core.run(state2).reason is StopReason.HALT
        assert state2.regs["rax"] == 8 + 16
        # the chain over page A survived untouched; at most page-B
        # blocks needed fresh builds
        assert entry in memory.superblock_cache
        assert isinstance(memory.superblock_cache[entry], Superblock)
    assert sink.snapshot().get("cpu.superblock.invalidations", 0) == 0
    assert builds_after_fault >= 1


# ----------------------------------------------------------------------
# edge 3: BTB churn invalidates via the per-set signature
# ----------------------------------------------------------------------
def test_mispredict_retarget_invalidates_and_rebuilds():
    counters = assert_fast_matches_slow(nested_loops(6, 50))
    assert counters.get("cpu.superblock.builds", 0) >= 2
    assert counters.get("cpu.superblock.bailouts", 0) >= 1
    assert counters.get("cpu.superblock.invalidations", 0) >= 1


def test_btb_flush_invalidates_chain():
    set_fast_path(True)
    memory = VirtualMemory()
    counted_loop(200).load_into(memory, perms="rwx")
    core = Core(DEFAULT_GENERATION)
    state = MachineState(memory, rip=BASE)
    state.setup_stack(0x7FFF_0000)
    assert core.run(state).reason is StopReason.HALT
    loop_pc = BASE + 32
    sb = memory.superblock_cache.get(loop_pc)
    assert isinstance(sb, Superblock)
    assert sb.btb_valid(core.btb)
    core.btb.flush()
    assert not sb.btb_valid(core.btb)

    # a rerun must still be correct — and must have rebuilt
    with telemetry.session() as sink:
        core.attach_telemetry(sink)
        state = MachineState(memory, rip=BASE)
        state.setup_stack(0x7FFF_0000)
        assert core.run(state).reason is StopReason.HALT
        assert state.regs["rax"] == 200 * 3
    assert sink.snapshot().get("cpu.superblock.invalidations", 0) >= 1
    assert sink.snapshot().get("cpu.superblock.builds", 0) >= 1


def test_unrelated_set_churn_keeps_chain_valid():
    """Only the chain's own sets are in the signature: churn anywhere
    else refreshes the cheap global stamp instead of invalidating."""
    set_fast_path(True)
    memory = VirtualMemory()
    counted_loop(100).load_into(memory, perms="rwx")
    core = Core(DEFAULT_GENERATION)
    state = MachineState(memory, rip=BASE)
    state.setup_stack(0x7FFF_0000)
    assert core.run(state).reason is StopReason.HALT
    sb = memory.superblock_cache.get(BASE + 32)
    assert isinstance(sb, Superblock)
    victim_sets = set(sb.set_indices)
    # bump generations of sets the chain does not touch
    other = next(i for i in range(len(core.btb.set_gens))
                 if i not in victim_sets)
    core.btb.set_gens[other] += 1
    core.btb.generation += 1
    assert sb.btb_valid(core.btb)
    # ... and the global stamp was refreshed to the new generation
    assert sb.btb_generation == core.btb.generation


# ----------------------------------------------------------------------
# edge 4: retire-budget clips never land mid-chain
# ----------------------------------------------------------------------
@pytest.mark.parametrize("stride", [1, 2, 3, 5, 7, 11, 16])
def test_budget_clip_equivalence(stride):
    assert_fast_matches_slow(counted_loop(60), max_retired=stride)


@pytest.mark.parametrize("stride", [3, 7, 13])
def test_budget_clip_equivalence_nested(stride):
    assert_fast_matches_slow(nested_loops(4, 9), max_retired=stride)
