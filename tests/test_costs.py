"""Shared cost tables: one source of truth, identical charges.

``repro.cpu.costs`` is the single home of the per-mnemonic issue-cost
extras and the memory-writer set.  The generic loop (``Core``) and the
decoded-window builder both consult it; these tests pin that the two
consumers can never drift — per mnemonic, the cached per-item cost a
window carries equals what the generic loop would charge.
"""

from repro.cpu import core as core_mod
from repro.cpu import decoded as decoded_mod
from repro.cpu.config import DEFAULT_GENERATION
from repro.cpu.core import Core
from repro.cpu.costs import EXTRA_ISSUE_COST, MEM_WRITERS, extra_cost
from repro.cpu.decoded import build_window
from repro.isa import Assembler
from repro.isa.instructions import SPECS_BY_OPCODE
from repro.memory import VirtualMemory

BASE = 0x0040_0000


def test_single_source_of_truth():
    # both consumers import the same table objects
    assert core_mod.EXTRA_ISSUE_COST is EXTRA_ISSUE_COST
    assert decoded_mod.EXTRA_ISSUE_COST is EXTRA_ISSUE_COST
    assert decoded_mod._MEM_WRITERS is MEM_WRITERS


def test_core_copy_matches_table():
    # the core snapshots the table at construction; the snapshot must
    # be equal (a stale fork would silently skew the fast/slow diff)
    assert Core(DEFAULT_GENERATION)._extra_cost == EXTRA_ISSUE_COST


def test_extra_cost_helper_matches_table():
    for mnemonic, cost in EXTRA_ISSUE_COST.items():
        assert extra_cost(mnemonic) == cost
    assert extra_cost("mov") == 0.0
    assert extra_cost("no-such-mnemonic") == 0.0


def test_every_listed_mnemonic_exists():
    known = {spec.mnemonic for spec in SPECS_BY_OPCODE.values()}
    for mnemonic in EXTRA_ISSUE_COST:
        assert mnemonic in known, mnemonic
    for mnemonic in MEM_WRITERS:
        assert mnemonic in known, mnemonic


def test_window_extras_match_generic_loop_charges():
    """Build a window over every sequential mnemonic with a listed
    extra cost and check the cached per-item extras equal the table
    the generic loop charges from."""
    asm = Assembler(base=BASE)
    asm.emit("movi", "rbx", BASE + 0x1000)      # scratch data pointer
    asm.emit("movi", "rcx", 1)
    asm.align(32)
    asm.label("window")
    asm.emit("imul", "rax", "rcx")
    asm.emit("mul", "rcx")
    asm.emit("div", "rcx")
    asm.emit("load", "rdx", "rbx", 0)
    asm.emit("store", "rbx", "rdx", 0)
    asm.emit("addi8", "rax", 1)
    asm.emit("hlt")
    program = asm.assemble()
    memory = VirtualMemory()
    program.load_into(memory, perms="rwx")
    memory.map_range(BASE + 0x1000, 0x100, perms="rw")

    window = build_window(memory, BASE + 32)
    assert window.count >= 5
    for instruction, extra in zip(window.instructions, window.extras):
        assert extra == EXTRA_ISSUE_COST.get(
            instruction.spec.mnemonic, 0.0)
    # the store marks the window for per-item generation re-checks
    assert window.has_store
    assert any(inst.spec.mnemonic in MEM_WRITERS
               for inst in window.instructions)
