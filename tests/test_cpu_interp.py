"""Interpreter vs core differential testing: architectural state must
agree regardless of micro-architectural modelling."""

from hypothesis import given, settings, strategies as st

from repro.cpu import (Core, InterpStop, MachineState, generation,
                       interpret, run_function)
from repro.isa import Assembler
from repro.memory import VirtualMemory

#: small straight-line instruction menu for random programs
_MENU = [
    ("movi", "reg", "imm32"),
    ("addi8", "reg", "imm8"),
    ("subi8", "reg", "imm8"),
    ("add", "reg", "reg"),
    ("sub", "reg", "reg"),
    ("xor", "reg", "reg"),
    ("and", "reg", "reg"),
    ("imul", "reg", "reg"),
    ("shl", "reg", "shift"),
    ("shr", "reg", "shift"),
    ("inc", "reg"),
    ("neg", "reg"),
    ("cmp", "reg", "reg"),
    ("sete", "reg"),
    ("cmovb", "reg", "reg"),
    ("nop",),
]

_SAFE_REGS = [0, 1, 2, 3, 6, 7]     # avoid rsp/rbp


@st.composite
def straightline_programs(draw):
    count = draw(st.integers(min_value=1, max_value=30))
    items = []
    for _ in range(count):
        template = draw(st.sampled_from(_MENU))
        operands = []
        for kind in template[1:]:
            if kind == "reg":
                operands.append(draw(st.sampled_from(_SAFE_REGS)))
            elif kind == "imm8":
                operands.append(draw(st.integers(-128, 127)))
            elif kind == "imm32":
                operands.append(draw(st.integers(0, (1 << 31) - 1)))
            elif kind == "shift":
                operands.append(draw(st.integers(0, 63)))
        items.append((template[0], tuple(operands)))
    return items


def _machine(program):
    memory = VirtualMemory()
    program.load_into(memory)
    state = MachineState(memory, rip=program.entry)
    state.setup_stack(0x7FFF0000)
    return state


@settings(max_examples=60, deadline=None)
@given(straightline_programs())
def test_core_and_interp_agree_on_random_programs(items):
    asm = Assembler(base=0x400000)
    for mnemonic, operands in items:
        asm.emit(mnemonic, *operands)
    asm.emit("hlt")
    program = asm.assemble()

    state_core = _machine(program)
    core = Core(generation("coffeelake"))
    core_result = core.run(state_core, collect_trace=True)

    state_interp = _machine(program)
    interp_result = interpret(state_interp)

    assert core_result.trace == interp_result.trace
    assert state_core.regs.snapshot() == state_interp.regs.snapshot()
    assert state_core.regs.flags == state_interp.regs.flags


def test_interpret_stops_on_unhandled_syscall():
    asm = Assembler(base=0x400000)
    asm.emit("movi", "rax", 24)
    asm.emit("syscall")
    asm.emit("hlt")
    state = _machine(asm.assemble())
    result = interpret(state)
    assert result.reason is InterpStop.SYSCALL


def test_interpret_syscall_handler_continues():
    asm = Assembler(base=0x400000)
    asm.emit("movi", "rax", 24)
    asm.emit("syscall")
    asm.emit("movi", "rbx", 7)
    asm.emit("hlt")
    state = _machine(asm.assemble())
    seen = []
    result = interpret(state,
                       syscall_handler=lambda s: seen.append(1) or True)
    assert result.reason is InterpStop.HALT
    assert seen == [1]
    assert state.regs["rbx"] == 7


def test_run_function_returns_via_sentinel():
    asm = Assembler(base=0x400000)
    asm.label("double_it")
    asm.emit("mov", "rax", "rdi")
    asm.emit("add", "rax", "rax")
    asm.emit("ret")
    program = asm.assemble()
    state = _machine(program)
    result = run_function(state, program.address_of("double_it"),
                          args=[21])
    assert result.reason is InterpStop.RETURNED
    assert state.regs["rax"] == 42


def test_branch_events_record_directions():
    asm = Assembler(base=0x400000)
    asm.emit("movi", "rcx", 3)
    asm.label("loop")
    asm.emit("dec", "rcx")
    asm.emit("test", "rcx", "rcx")
    asm.emit("jne8", "loop")
    asm.emit("hlt")
    state = _machine(asm.assemble())
    result = interpret(state)
    directions = [taken for _, taken in result.branch_events]
    assert directions == [True, True, False]
