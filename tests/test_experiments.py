"""Experiment harness smoke tests (small parameters).

Each figure/table harness must run end-to-end and report the paper's
qualitative finding.  The benchmarks run the full-size versions.
"""

import pytest

from repro.cpu import generation
from repro.experiments import (run_bncmp_leak, run_defense_grid,
                               run_figure2, run_figure4, run_figure5,
                               run_figure7, run_gcd_leak,
                               run_generation_sweep, run_hardware_grid,
                               run_oblivious)


class TestFigure2:
    def test_boundary(self):
        result = run_figure2(iterations=2,
                             deltas=list(range(-3, 5)))
        assert result.findings["boundary_correct"]

    def test_icelake_distance(self):
        result = run_figure2(generation("icelake"), iterations=1,
                             deltas=[-1, 0, 1, 2, 3])
        assert result.findings["boundary_correct"]


class TestFigure4:
    def test_boundary_and_baseline(self):
        result = run_figure4(iterations=2, f2_offset=8)
        assert result.findings["boundary_correct"]
        assert result.findings["baseline_monotonic"]

    def test_other_f2_offset(self):
        result = run_figure4(iterations=1, f2_offset=20,
                             f1_offsets=list(range(12, 30)))
        assert result.findings["boundary_correct"]


def test_figure5_all_cases():
    assert run_figure5().all_correct


def test_figure5_cycles_detector():
    assert run_figure5(detector="cycles").all_correct


def test_figure7_localization():
    result = run_figure7(blocks=3)
    assert result.localization_correct
    assert result.chained_rounds < result.single_pw_rounds


def test_gcd_leak_small():
    result = run_gcd_leak(runs=3)
    assert result.accuracy > 0.95
    assert result.total_iterations > 50


def test_bncmp_leak_small():
    result = run_bncmp_leak(runs=6)
    assert result.accuracy == 1.0


def test_defense_grid_small():
    grid = run_defense_grid(runs=2)
    assert set(grid) == {"none", "balancing", "align-jumps-16",
                         "cfr", "balancing+cfr"}
    for name, result in grid.items():
        assert result.accuracy > 0.95, name


def test_hardware_grid_small():
    grid = run_hardware_grid(runs=2)
    assert grid["stock"].accuracy > 0.95
    assert grid["ibrs+ibpb"].accuracy > 0.95
    assert grid["btb-flush-on-switch"].accuracy < 0.6
    assert grid["btb-partitioning"].accuracy < 0.6


def test_oblivious_leaks_nothing():
    result = run_oblivious(keys=3)
    assert result.information_rate == 0.0
    assert result.distinct_observations == 1


def test_generation_sweep():
    assert run_generation_sweep().all_correct
