"""Register file and flags."""

import pytest
from hypothesis import given, strategies as st

from repro.isa import (MASK64, NUM_REGISTERS, REGISTER_NAMES,
                       RegisterFile, register_name, register_number,
                       to_signed, to_unsigned)
from repro.isa.registers import Flags


class TestNames:
    def test_sixteen_registers(self):
        assert NUM_REGISTERS == 16
        assert len(REGISTER_NAMES) == 16

    def test_roundtrip(self):
        for number, name in enumerate(REGISTER_NAMES):
            assert register_number(name) == number
            assert register_name(number) == name

    def test_case_insensitive(self):
        assert register_number("RAX") == 0
        assert register_number("R15") == 15

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            register_number("eax")


class TestSignConversion:
    @given(st.integers(min_value=0, max_value=MASK64))
    def test_roundtrip(self, value):
        assert to_unsigned(to_signed(value)) == value

    def test_negative_one(self):
        assert to_signed(MASK64) == -1
        assert to_unsigned(-1) == MASK64

    def test_boundaries(self):
        assert to_signed(1 << 63) == -(1 << 63)
        assert to_signed((1 << 63) - 1) == (1 << 63) - 1


class TestRegisterFile:
    def test_initial_zero(self):
        regs = RegisterFile()
        assert all(value == 0 for _, value in regs.items())

    def test_write_wraps(self):
        regs = RegisterFile()
        regs.write(0, (1 << 64) + 5)
        assert regs.read(0) == 5

    def test_string_indexing(self):
        regs = RegisterFile()
        regs["rbx"] = 42
        assert regs[3] == 42
        assert regs["rbx"] == 42

    def test_snapshot_restore(self):
        regs = RegisterFile()
        regs["rdi"] = 7
        regs["r12"] = 13
        snap = regs.snapshot()
        regs["rdi"] = 0
        regs.restore(snap)
        assert regs["rdi"] == 7
        assert regs["r12"] == 13

    def test_copy_is_independent(self):
        regs = RegisterFile()
        regs["rax"] = 1
        regs.flags.zf = True
        clone = regs.copy()
        clone["rax"] = 2
        clone.flags.zf = False
        assert regs["rax"] == 1
        assert regs.flags.zf is True

    @given(st.integers(min_value=0, max_value=15),
           st.integers())
    def test_any_write_read(self, number, value):
        regs = RegisterFile()
        regs.write(number, value)
        assert regs.read(number) == value & MASK64


class TestFlags:
    def test_equality(self):
        assert Flags(zf=True) == Flags(zf=True)
        assert Flags(zf=True) != Flags(sf=True)

    def test_copy(self):
        flags = Flags(cf=True, of=True)
        clone = flags.copy()
        clone.cf = False
        assert flags.cf is True
