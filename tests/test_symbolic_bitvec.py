"""Bit-blasted word operations agree with the concrete fast path on
random 64-bit vectors (the concrete path itself mirrors
``repro.cpu.semantics``), plus folding/hash-consing/budget units."""

import random

import pytest

from repro.analysis.symbolic.bitvec import (BitCtx, GateBudgetExceeded,
                                            MASK64, Node)

_WIDTH = 64


def _sym_word(ctx, prefix):
    return tuple(ctx.var(f"{prefix}{i}") for i in range(_WIDTH))


def _model_for(prefix, value):
    return {f"{prefix}{i}": bool((value >> i) & 1)
            for i in range(_WIDTH)}


def _vectors(count=12, seed=0x5eed):
    rng = random.Random(seed)
    pairs = [(0, 0), (MASK64, MASK64), (MASK64, 1), (1, MASK64),
             (0x8000000000000000, 0x8000000000000000)]
    while len(pairs) < count:
        pairs.append((rng.getrandbits(64), rng.getrandbits(64)))
    return pairs


@pytest.mark.parametrize("a,b", _vectors())
def test_add_sub_match_concrete(a, b):
    ctx = BitCtx()
    sa, sb = _sym_word(ctx, "a"), _sym_word(ctx, "b")
    model = {**_model_for("a", a), **_model_for("b", b)}
    for op, carry in (("add", 0), ("add", 1), ("sub", 0), ("sub", 1)):
        sym_res, sym_cf, sym_of = getattr(ctx, op)(sa, sb, carry)
        con_res, con_cf, con_of = getattr(ctx, op)(a, b, carry)
        assert ctx.eval_word(sym_res, model) == con_res
        assert ctx.eval_bit(sym_cf, model) == con_cf
        assert ctx.eval_bit(sym_of, model) == con_of


@pytest.mark.parametrize("a,b", _vectors(count=8, seed=7))
def test_bitwise_match_concrete(a, b):
    ctx = BitCtx()
    sa, sb = _sym_word(ctx, "a"), _sym_word(ctx, "b")
    model = {**_model_for("a", a), **_model_for("b", b)}
    for op in ("band", "bor", "bxor"):
        assert (ctx.eval_word(getattr(ctx, op)(sa, sb), model)
                == getattr(ctx, op)(a, b))
    assert ctx.eval_word(ctx.bnot(sa), model) == ctx.bnot(a)


@pytest.mark.parametrize("count", [1, 3, 31, 63])
def test_shifts_match_concrete(count):
    rng = random.Random(count)
    ctx = BitCtx()
    sa = _sym_word(ctx, "a")
    for _ in range(4):
        a = rng.getrandbits(64)
        model = _model_for("a", a)
        for op in ("shl", "shr", "sar"):
            sym_res, sym_cf = getattr(ctx, op)(sa, count)
            con_res, con_cf = getattr(ctx, op)(a, count)
            assert ctx.eval_word(sym_res, model) == con_res
            assert ctx.eval_bit(sym_cf, model) == con_cf


def test_multiply_matches_concrete():
    # narrow symbolic operands keep the shift-add DAG small
    rng = random.Random(99)
    ctx = BitCtx()
    low = tuple(ctx.var(f"a{i}") for i in range(8)) + (0,) * 56
    for _ in range(6):
        a = rng.getrandbits(8)
        b = rng.getrandbits(64)
        model = _model_for("a", a)
        sym_lo, sym_over = ctx.imul(low, b)
        con_lo, con_over = ctx.imul(a, b)
        assert ctx.eval_word(sym_lo, model) == con_lo
        assert ctx.eval_bit(sym_over, model) == con_over
        sym_lo, sym_hi = ctx.mul(low, b)
        con_lo, con_hi = ctx.mul(a, b)
        assert ctx.eval_word(sym_lo, model) == con_lo
        assert ctx.eval_word(sym_hi, model) == con_hi


@pytest.mark.parametrize("a", [0, 1, 42, MASK64, 0x8000000000000000])
def test_predicates_match_concrete(a):
    ctx = BitCtx()
    sa = _sym_word(ctx, "a")
    model = _model_for("a", a)
    assert ctx.eval_bit(ctx.is_zero(sa), model) == ctx.is_zero(a)
    assert ctx.eval_bit(ctx.sign(sa), model) == ctx.sign(a)
    for probe in (0, a, 42):
        assert (ctx.eval_bit(ctx.eq_const(sa, probe), model)
                == ctx.eq_const(a, probe))


def test_mux_word_selects():
    ctx = BitCtx()
    cond = ctx.var("c")
    sa = _sym_word(ctx, "a")
    word = ctx.mux_word(cond, sa, 7)
    model = {**_model_for("a", 123), "c": True}
    assert ctx.eval_word(word, model) == 123
    model["c"] = False
    assert ctx.eval_word(word, model) == 7


# ----------------------------------------------------------------------
# structural units: folding, consing, budget
# ----------------------------------------------------------------------
def test_xor_zeroing_folds_to_constant():
    """``xor rax, rax`` must fold even on a fully symbolic word —
    the executor relies on this to keep cleared registers concrete."""
    ctx = BitCtx()
    sa = _sym_word(ctx, "a")
    assert ctx.bxor(sa, sa) == 0


def test_boolean_folding():
    ctx = BitCtx()
    a = ctx.var("a")
    assert ctx.and_(a, ctx.not_(a)) == 0
    assert ctx.or_(a, ctx.not_(a)) == 1
    assert ctx.xor_(a, a) == 0
    assert ctx.not_(ctx.not_(a)) is a
    assert ctx.and_(a, 1) is a
    assert ctx.or_(a, 0) is a


def test_hash_consing_reuses_nodes():
    ctx = BitCtx()
    a, b = ctx.var("a"), ctx.var("b")
    assert ctx.and_(a, b) is ctx.and_(b, a)   # commuted operands too
    assert isinstance(ctx.xor_(a, b), Node)
    assert ctx.xor_(a, b) is ctx.xor_(a, b)


def test_gate_budget_exceeded():
    ctx = BitCtx()
    sa, sb = _sym_word(ctx, "a"), _sym_word(ctx, "b")
    ctx.gate_budget = ctx.gates + 16        # vars count too; leave room
    with pytest.raises(GateBudgetExceeded):
        ctx.add(sa, sb)


def test_eval_shared_cache_is_consistent():
    """One cache across all 64 bits must give the same answer as
    independent evaluations (the fast path the executor uses)."""
    rng = random.Random(3)
    ctx = BitCtx()
    sa, sb = _sym_word(ctx, "a"), _sym_word(ctx, "b")
    word, _, _ = ctx.add(sa, sb)
    a, b = rng.getrandbits(64), rng.getrandbits(64)
    model = {**_model_for("a", a), **_model_for("b", b)}
    independent = 0
    for i, bit in enumerate(ctx.bits_of(word)):
        independent |= ctx.eval_bit(bit, model) << i
    assert ctx.eval_word(word, model) == independent == (a + b) & MASK64
