"""NV-S end-to-end: full dynamic-PC-trace extraction (small victim)."""

import pytest

from repro.core import NvSupervisor
from repro.cpu import Core, generation
from repro.lang import CompileOptions
from repro.system import Kernel
from repro.victims import build_gcd_victim
from repro.victims.library import ENCLAVE_DATA_BASE


@pytest.fixture(scope="module")
def gcd_victim():
    return build_gcd_victim(
        "3.0", options=CompileOptions(opt_level=2), nlimbs=1,
        with_yield=False, data_base=ENCLAVE_DATA_BASE)


@pytest.fixture(scope="module")
def extraction(gcd_victim):
    config = generation("coffeelake")
    inputs = {"ta": 20, "tb": 12}
    expected = gcd_victim.expected_unit_starts(inputs, config)
    supervisor = NvSupervisor(Kernel(Core(config)))
    trace = supervisor.extract_trace(gcd_victim, inputs)
    return expected, trace


def test_step_count_matches_retire_units(extraction):
    expected, trace = extraction
    assert len(trace.steps) == len(expected)


def test_byte_granular_accuracy(extraction):
    expected, trace = extraction
    assert trace.accuracy_against(expected) > 0.97


def test_resolution_rate(extraction):
    _, trace = extraction
    assert trace.resolution_rate > 0.97


def test_page_bases_from_controlled_channel(extraction, gcd_victim):
    _, trace = extraction
    code_base = gcd_victim.compiled.program.segments[0][0]
    page = code_base & ~0xFFF
    assert all(page in step.page_bases or not step.page_bases
               for step in trace.steps[:50])


def test_data_access_flags_present(extraction):
    _, trace = extraction
    flags = [step.data_access for step in trace.steps]
    # calls/rets/loads touch data; plain ALU steps do not
    assert any(flags) and not all(flags)


def test_runs_are_bounded(extraction):
    """Adaptive extraction must stay well under the paper's
    128/N-per-pass full sweep budget."""
    _, trace = extraction
    assert trace.runs <= 60


def test_discovery_only(gcd_victim):
    config = generation("coffeelake")
    supervisor = NvSupervisor(Kernel(Core(config)))
    records = supervisor.discover(gcd_victim, {"ta": 6, "tb": 2})
    expected = gcd_victim.expected_unit_starts({"ta": 6, "tb": 2},
                                               config)
    assert len(records) == len(expected)
    assert all(record.pc is None for record in records)
