"""The resilient measurement layer: policy validation, constraint
resolution, and the end-to-end guarantee that a policy on a clean
substrate changes nothing."""

import pytest

from repro.core.cfl import ControlFlowLeakAttack
from repro.core.measurement import (CONFIDENCE, DEFAULT_POLICY,
                                    MeasurementPolicy, RangeStatus,
                                    apply_constraint, summarize)
from repro.cpu.config import generation
from repro.cpu.core import Core
from repro.lang import CompileOptions
from repro.system.kernel import Kernel
from repro.victims.library import build_gcd_victim


# ----------------------------------------------------------------------
# policy
# ----------------------------------------------------------------------
def test_policy_validation():
    with pytest.raises(ValueError):
        MeasurementPolicy(calibration_rounds=0)
    with pytest.raises(ValueError):
        MeasurementPolicy(votes=0)
    with pytest.raises(ValueError):
        MeasurementPolicy(max_retries=-1)
    with pytest.raises(ValueError):
        MeasurementPolicy(backoff_base=0)
    with pytest.raises(ValueError):
        MeasurementPolicy(constraint="exactly_two")


def test_policy_with_overrides():
    policy = DEFAULT_POLICY.with_(constraint="exactly_one", votes=5)
    assert policy.constraint == "exactly_one"
    assert policy.votes == 5
    assert DEFAULT_POLICY.constraint is None   # frozen original


# ----------------------------------------------------------------------
# statuses
# ----------------------------------------------------------------------
def test_status_hit_and_confidence():
    assert RangeStatus.HIT_STRONG.is_hit
    assert RangeStatus.HIT_INFERRED.is_hit
    assert not RangeStatus.MISS_DEGRADED.is_hit
    assert not RangeStatus.UNKNOWN.is_hit
    # The honest states carry the lowest confidence.
    assert CONFIDENCE[RangeStatus.UNKNOWN] < \
        CONFIDENCE[RangeStatus.MISS_DEGRADED] < \
        CONFIDENCE[RangeStatus.HIT_WEAK] < \
        CONFIDENCE[RangeStatus.HIT_STRONG]


def test_summarize():
    probe = summarize([RangeStatus.HIT_STRONG, RangeStatus.MISS],
                      attempts=4, stable=True)
    assert probe.matched == [True, False]
    assert probe.attempts == 4
    assert probe.min_confidence() == CONFIDENCE[RangeStatus.MISS]


# ----------------------------------------------------------------------
# constraint resolution
# ----------------------------------------------------------------------
def test_constraint_none_is_identity():
    statuses = [RangeStatus.UNKNOWN, RangeStatus.HIT_STRONG]
    assert apply_constraint(statuses, None) == statuses


def test_constraint_resolves_unknown_next_to_hit():
    out = apply_constraint(
        [RangeStatus.HIT_STRONG, RangeStatus.UNKNOWN], "exactly_one")
    assert out == [RangeStatus.HIT_STRONG, RangeStatus.MISS_DEGRADED]


def test_constraint_infers_hit_from_all_miss():
    out = apply_constraint(
        [RangeStatus.MISS, RangeStatus.UNKNOWN], "exactly_one")
    assert out == [RangeStatus.MISS, RangeStatus.HIT_INFERRED]
    # at_most_one has no such prior: the unknown stays unknown.
    out = apply_constraint(
        [RangeStatus.MISS, RangeStatus.UNKNOWN], "at_most_one")
    assert out == [RangeStatus.MISS, RangeStatus.UNKNOWN]


def test_constraint_never_flips_definitive_misses():
    # The "loop exited" fragment reads all-miss with no unknowns —
    # exactly_one must NOT invent a hit.
    statuses = [RangeStatus.MISS, RangeStatus.MISS]
    assert apply_constraint(statuses, "exactly_one") == statuses


def test_constraint_demotes_weak_hits_beside_strong():
    out = apply_constraint(
        [RangeStatus.HIT_STRONG, RangeStatus.HIT_WEAK], "exactly_one")
    assert out == [RangeStatus.HIT_STRONG, RangeStatus.MISS_DEGRADED]
    # Two weak hits: ambiguous, neither is demoted.
    statuses = [RangeStatus.HIT_WEAK, RangeStatus.HIT_WEAK]
    assert apply_constraint(statuses, "exactly_one") == statuses


def test_constraint_two_unknowns_stay_unknown():
    statuses = [RangeStatus.UNKNOWN, RangeStatus.UNKNOWN]
    assert apply_constraint(statuses, "exactly_one") == statuses


# ----------------------------------------------------------------------
# end-to-end: a policy on a clean substrate is a no-op
# ----------------------------------------------------------------------
def test_policy_matches_naive_on_clean_substrate():
    victim = build_gcd_victim(
        "3.0", options=CompileOptions(opt_level=2, align_jumps=16),
        nlimbs=2, with_yield=True)
    inputs = {"ta": 2 * 3 * 5 * 7, "tb": 2 * 5 * 11}
    config = generation("coffeelake")

    naive = ControlFlowLeakAttack(Kernel(Core(config)), victim)
    resilient = ControlFlowLeakAttack(
        Kernel(Core(config)), victim, policy=MeasurementPolicy())

    truth = naive.ground_truth(inputs)
    naive_out = naive.attack(inputs)
    resilient_out = resilient.attack(inputs)
    assert naive_out.accuracy_against(truth) == 1.0
    assert resilient_out.accuracy_against(truth) == 1.0
    # Every reading on a quiet machine is definitive.
    assert resilient_out.mean_confidence() > 0.85
    assert all(conf > 0.5 for conf in resilient_out.confidence)
