"""DSL parser."""

import pytest

from repro.errors import ParseError
from repro.lang import ast as A
from repro.lang import parse_function, parse_module


def test_function_header():
    fn = parse_function("func f(a, b) { return a; }")
    assert fn.name == "f"
    assert fn.params == ("a", "b")


def test_no_params():
    fn = parse_function("func f() { return 1; }")
    assert fn.params == ()


def test_precedence_mul_over_add():
    fn = parse_function("func f(a) { return a + 2 * 3; }")
    value = fn.body[0].value
    assert isinstance(value, A.BinOp) and value.op == "+"
    assert isinstance(value.right, A.BinOp) and value.right.op == "*"


def test_parentheses_override():
    fn = parse_function("func f(a) { return (a + 2) * 3; }")
    value = fn.body[0].value
    assert value.op == "*"
    assert value.left.op == "+"


def test_comparison_is_lowest():
    fn = parse_function("func f(a, b) { return a + 1 < b * 2; }")
    value = fn.body[0].value
    assert isinstance(value, A.Cmp) and value.op == "<"


def test_signed_comparison_tokens():
    fn = parse_function("func f(a, b) { return a s< b; }")
    assert fn.body[0].value.op == "s<"


def test_if_else_and_while():
    fn = parse_function("""
func f(a) {
  r = 0;
  while (a != 0) {
    if (a & 1) { r = r + 1; } else { r = r + 2; }
    a = a >> 1;
  }
  return r;
}
""")
    loop = fn.body[1]
    assert isinstance(loop, A.While)
    branch = loop.body[0]
    assert isinstance(branch, A.If)
    assert len(branch.then) == 1 and len(branch.orelse) == 1


def test_if_without_else():
    fn = parse_function("func f(a) { if (a) { a = 1; } return a; }")
    assert fn.body[0].orelse == ()


def test_array_load_and_store():
    fn = parse_function("func f(p) { p[2] = p[1] + 1; return p[0]; }")
    store = fn.body[0]
    assert isinstance(store, A.Store)
    assert isinstance(store.value.left, A.Load)
    assert isinstance(fn.body[1].value, A.Load)


def test_call_statement_and_expression():
    module = parse_module("""
func g(x) { return x; }
func f(a) {
  g(a);
  return g(a + 1);
}
""")
    fn = module.function("f")
    assert isinstance(fn.body[0], A.ExprStmt)
    assert isinstance(fn.body[0].expr, A.Call)
    assert isinstance(fn.body[1].value, A.Call)


def test_yield_statement():
    fn = parse_function("func f() { yield; return 0; }")
    assert isinstance(fn.body[0], A.Yield)


def test_hex_and_comments():
    fn = parse_function("""
func f() {
  # a comment
  return 0x10;  # trailing
}
""")
    assert fn.body[0].value.value == 16


def test_bare_return():
    fn = parse_function("func f() { return; }")
    assert fn.body[0].value is None


@pytest.mark.parametrize("source", [
    "func f( { return 0; }",
    "func f() { return 0 }",
    "func f() { 1 = 2; }",
    "func f() { if a { } }",
    "f() { return 0; }",
    "func f() { return $; }",
])
def test_syntax_errors(source):
    with pytest.raises(ParseError):
        parse_module(source)


def test_module_function_lookup():
    module = parse_module("func a() { return 1; } func b() { return 2; }")
    assert module.function("b").name == "b"
    with pytest.raises(KeyError):
        module.function("c")
