"""Victim programs: bignum library, GCD versions, bn_cmp, RSA."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.cpu import MachineState, run_function
from repro.lang import CompileOptions, Compiler, parse_module
from repro.memory import VirtualMemory
from repro.victims import (BIGNUM_SOURCE, GCD_VERSIONS, RsaKey,
                           VERSION_GROUPS, binary_gcd,
                           binary_gcd_branch_trace, build_bn_cmp_victim,
                           build_gcd_victim, bytes_to_limbs, from_limbs,
                           generate_key, generate_keys,
                           is_probable_prime, limbs_to_bytes,
                           random_prime, ref_cmp, to_limbs)

_u128 = st.integers(min_value=0, max_value=(1 << 128) - 1)
_u64 = st.integers(min_value=0, max_value=(1 << 64) - 1)


class TestLimbCodec:
    @given(_u128)
    def test_roundtrip(self, value):
        assert from_limbs(to_limbs(value, 2)) == value

    @given(_u128)
    def test_bytes_roundtrip(self, value):
        limbs = to_limbs(value, 2)
        assert bytes_to_limbs(limbs_to_bytes(limbs)) == limbs

    def test_overflow_rejected(self):
        with pytest.raises(ValueError):
            to_limbs(1 << 64, 1)
        with pytest.raises(ValueError):
            to_limbs(-1, 1)


class _BignumVm:
    """Run the DSL bignum helpers directly."""

    def __init__(self, nlimbs=3):
        self.nlimbs = nlimbs
        compiled = Compiler(CompileOptions(opt_level=2)).compile(
            parse_module(BIGNUM_SOURCE))
        self.compiled = compiled
        self.memory = VirtualMemory()
        compiled.program.load_into(self.memory)
        self.memory.map_range(0x900000, 4096, "rw")
        self.a_addr, self.b_addr, self.r_addr = (
            0x900000, 0x900100, 0x900200)

    def put(self, address, value):
        self.memory.write_bytes(
            address, limbs_to_bytes(to_limbs(value, self.nlimbs)),
            check=False)

    def get(self, address):
        return from_limbs(bytes_to_limbs(self.memory.read_bytes(
            address, 8 * self.nlimbs, check=False)))

    def call(self, name, *args):
        state = MachineState(self.memory)
        state.setup_stack(0x7FFF00000000)
        run_function(state, self.compiled.info(name).entry,
                     args=list(args))
        return state.regs["rax"]


@pytest.fixture(scope="module")
def vm():
    return _BignumVm()


_u192 = st.integers(min_value=0, max_value=(1 << 192) - 1)


class TestBignumHelpers:
    @settings(max_examples=25, deadline=None)
    @given(_u192, _u192)
    def test_bn_cmp(self, vm, a, b):
        vm.put(vm.a_addr, a)
        vm.put(vm.b_addr, b)
        assert vm.call("bn_cmp", vm.a_addr, vm.b_addr,
                       vm.nlimbs) == ref_cmp(a, b)

    @settings(max_examples=25, deadline=None)
    @given(_u192, _u192)
    def test_bn_sub(self, vm, a, b):
        vm.put(vm.a_addr, a)
        vm.put(vm.b_addr, b)
        borrow = vm.call("bn_sub", vm.r_addr, vm.a_addr, vm.b_addr,
                         vm.nlimbs)
        assert vm.get(vm.r_addr) == (a - b) % (1 << 192)
        assert borrow == int(a < b)

    @settings(max_examples=25, deadline=None)
    @given(_u192)
    def test_bn_shifts(self, vm, a):
        vm.put(vm.a_addr, a)
        out = vm.call("bn_shr1", vm.a_addr, vm.nlimbs)
        assert vm.get(vm.a_addr) == a >> 1
        assert out == a & 1
        vm.put(vm.a_addr, a)
        vm.call("bn_shl1", vm.a_addr, vm.nlimbs)
        assert vm.get(vm.a_addr) == (a << 1) % (1 << 192)

    @settings(max_examples=15, deadline=None)
    @given(_u192)
    def test_bn_predicates(self, vm, a):
        vm.put(vm.a_addr, a)
        assert vm.call("bn_is_zero", vm.a_addr, vm.nlimbs) == \
            int(a == 0)
        assert vm.call("bn_is_even", vm.a_addr) == int(a % 2 == 0)

    @settings(max_examples=10, deadline=None)
    @given(_u192)
    def test_bn_copy(self, vm, a):
        vm.put(vm.a_addr, a)
        vm.put(vm.r_addr, 0)
        vm.call("bn_copy", vm.r_addr, vm.a_addr, vm.nlimbs)
        assert vm.get(vm.r_addr) == a


class TestGcdVersions:
    @pytest.mark.parametrize("version", GCD_VERSIONS)
    def test_matches_math_gcd(self, version):
        victim = build_gcd_victim(version, nlimbs=2, with_yield=False)
        # operands must be nonzero (as in RSA keygen; mbedTLS
        # guards zero upstream of the binary loop)
        for a, b in ((270, 192), (65537, 3578462), (7, 5), (12, 4),
                     ((1 << 80) + 2, 1 << 33)):
            memory = victim.new_memory({"ta": a, "tb": b})
            state = MachineState(memory)
            state.setup_stack(0x7FFF00000000)
            run_function(state, victim.compiled.info("main").entry,
                         max_instructions=5_000_000,
                         syscall_handler=lambda s: True)
            g = from_limbs(bytes_to_limbs(memory.read_bytes(
                victim.layout["g"].address, 16, check=False)))
            assert g == math.gcd(a, b), (version, a, b)

    def test_version_groups_share_source(self):
        from repro.victims import gcd_source
        for members in VERSION_GROUPS.values():
            sources = {gcd_source(v) for v in members}
            assert len(sources) == 1

    def test_groups_differ_from_each_other(self):
        from repro.victims import gcd_source
        representatives = {gcd_source(members[0])
                           for members in VERSION_GROUPS.values()}
        assert len(representatives) == len(VERSION_GROUPS)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(1, (1 << 60) - 1), st.integers(1, (1 << 60) - 1))
    def test_reference_model_matches_math(self, a, b):
        assert binary_gcd(a, b) == math.gcd(a, b)

    @given(st.integers(1, (1 << 40) - 1), st.integers(1, (1 << 40) - 1))
    @settings(max_examples=20, deadline=None)
    def test_branch_trace_consistent_with_vm(self, a, b):
        """The Python reference branch directions equal the VM's
        actual conditional outcomes for the secret compare."""
        victim = build_gcd_victim("3.0", nlimbs=1, with_yield=False)
        _, directions = binary_gcd_branch_trace(a, b)
        events = victim.secret_branch_events({"ta": a, "tb": b})
        # the secret branch in bn_reduce_step tests (c != 2): its
        # not-taken/taken pattern must line up 1:1 with directions
        assert len(events) >= len(directions)


class TestBnCmpVictim:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, (1 << 255) - 1), st.integers(0, (1 << 255) - 1))
    def test_cmp_loop_output(self, a, b):
        victim = build_bn_cmp_victim(nlimbs=4, iters=2,
                                     with_yield=False)
        memory = victim.new_memory({"a": a, "b": b})
        state = MachineState(memory)
        state.setup_stack(0x7FFF00000000)
        run_function(state, victim.compiled.info("main").entry,
                     syscall_handler=lambda s: True)
        out = bytes_to_limbs(memory.read_bytes(
            victim.layout["out"].address, 16, check=False))
        assert out == [ref_cmp(a, b)] * 2


class TestRsa:
    def test_known_primes(self):
        import random
        rng = random.Random(0)
        for prime in (2, 3, 5, 65537, 2_147_483_647):
            assert is_probable_prime(prime, rng)
        for composite in (1, 4, 561, 65536, 2_147_483_645):
            assert not is_probable_prime(composite, rng)

    @given(st.integers(min_value=8, max_value=24))
    @settings(max_examples=10, deadline=None)
    def test_random_prime_bits(self, bits):
        import random
        prime = random_prime(bits, random.Random(1))
        assert prime.bit_length() == bits
        assert is_probable_prime(prime, random.Random(2))

    def test_key_properties(self):
        key = generate_key(bits_per_prime=24, seed=3)
        assert key.n == key.p * key.q
        assert math.gcd(key.e, key.phi) == 1
        a, b = key.gcd_inputs()
        assert (a, b) == (key.e, key.phi)

    def test_secret_directions_match_reference(self):
        key = generate_key(bits_per_prime=24, seed=4)
        directions = key.secret_branch_directions()
        _, expected = binary_gcd_branch_trace(*key.gcd_inputs())
        assert directions == expected

    def test_generate_keys_deterministic(self):
        assert [k.n for k in generate_keys(3, seed=9)] == \
            [k.n for k in generate_keys(3, seed=9)]
