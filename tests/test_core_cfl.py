"""Use case 1 end-to-end: the control-flow-leakage attack."""

import pytest

from repro.core import ControlFlowLeakAttack, Direction, arm_pw
from repro.core.cfl import CflResult
from repro.cpu import Core, generation
from repro.errors import AttackError
from repro.lang import CompileOptions
from repro.system import Kernel
from repro.victims import build_bn_cmp_victim, build_gcd_victim, \
    generate_key


def _attack(victim, **config_overrides):
    config = generation("coffeelake", **config_overrides)
    return ControlFlowLeakAttack(Kernel(Core(config)), victim)


class TestArmPw:
    def test_sub_interval(self):
        pw = arm_pw(0x400504, 0x400540)
        assert 0x400504 <= pw.start and pw.end <= 0x400540
        assert pw.size >= 2

    def test_block_boundary_handling(self):
        pw = arm_pw(0x40051F, 0x400560)
        assert pw.size >= 2

    def test_tiny_arm_rejected(self):
        with pytest.raises(AttackError):
            arm_pw(0x40051F, 0x400520)


class TestGcdLeak:
    @pytest.mark.parametrize("version", ["2.5", "2.16", "3.0"])
    def test_all_source_versions_leak(self, version):
        victim = build_gcd_victim(
            version, options=CompileOptions(opt_level=2),
            nlimbs=2, with_yield=True)
        attack = _attack(victim)
        key = generate_key(bits_per_prime=24, seed=17)
        inputs = dict(zip(("ta", "tb"), key.gcd_inputs()))
        truth = attack.ground_truth(inputs)
        assert truth                          # the branch is exercised
        result = attack.attack(inputs)
        assert result.accuracy_against(truth) == 1.0

    @pytest.mark.parametrize("options", [
        dict(align_jumps=16),
        dict(balance_branches=True),
        dict(cfr=True),
        dict(balance_branches=True, cfr=True),
    ])
    def test_defenses_do_not_stop_it(self, options):
        victim = build_gcd_victim(
            "3.0", options=CompileOptions(opt_level=2, **options),
            nlimbs=2, with_yield=True)
        attack = _attack(victim)
        key = generate_key(bits_per_prime=24, seed=23)
        inputs = dict(zip(("ta", "tb"), key.gcd_inputs()))
        truth = attack.ground_truth(inputs)
        result = attack.attack(inputs)
        assert result.accuracy_against(truth) == 1.0

    def test_ibrs_does_not_stop_it(self):
        victim = build_gcd_victim(
            "3.0", options=CompileOptions(opt_level=2, align_jumps=16),
            nlimbs=2, with_yield=True)
        attack = _attack(victim, ibrs_ibpb=True)
        key = generate_key(bits_per_prime=24, seed=29)
        inputs = dict(zip(("ta", "tb"), key.gcd_inputs()))
        truth = attack.ground_truth(inputs)
        result = attack.attack(inputs)
        assert result.accuracy_against(truth) == 1.0

    def test_btb_flush_stops_it(self):
        victim = build_gcd_victim(
            "3.0", options=CompileOptions(opt_level=2),
            nlimbs=2, with_yield=True)
        attack = _attack(victim, flush_btb_on_switch=True)
        key = generate_key(bits_per_prime=24, seed=31)
        inputs = dict(zip(("ta", "tb"), key.gcd_inputs()))
        truth = attack.ground_truth(inputs)
        result = attack.attack(inputs)
        assert result.accuracy_against(truth) < 0.6

    def test_trailing_fragment_is_none(self):
        victim = build_gcd_victim(
            "3.0", options=CompileOptions(opt_level=2),
            nlimbs=2, with_yield=True)
        attack = _attack(victim)
        key = generate_key(bits_per_prime=24, seed=37)
        result = attack.attack(dict(zip(("ta", "tb"),
                                        key.gcd_inputs())))
        assert result.directions[-1] is Direction.NONE


class TestTruthSemantics:
    def test_v3_arm_truth_matches_key_directions(self):
        """For the classic/3.x sources the then arm IS the
        TA >= TB direction, so the arm oracle equals the RSA key's
        reference direction sequence."""
        victim = build_gcd_victim(
            "3.0", options=CompileOptions(opt_level=2),
            nlimbs=2, with_yield=True)
        assert victim.then_arm_is_truth
        attack = _attack(victim)
        key = generate_key(bits_per_prime=24, seed=41)
        inputs = dict(zip(("ta", "tb"), key.gcd_inputs()))
        assert attack.ground_truth(inputs) == \
            key.secret_branch_directions()


class TestBnCmpLeak:
    def test_both_directions(self):
        victim = build_bn_cmp_victim(
            options=CompileOptions(opt_level=2, align_jumps=16),
            nlimbs=4, iters=1, with_yield=True)
        attack = _attack(victim)
        for a, b, expected in (((1 << 100) + 5, (1 << 100) + 9, False),
                               ((1 << 100) + 9, (1 << 100) + 5, True)):
            # then-arm of the secret branch is the a < b side
            result = attack.attack({"a": a, "b": b})
            assert result.accuracy_against([a < b]) == 1.0


class TestResultHelpers:
    def test_accuracy_empty_truth(self):
        result = CflResult(directions=[], raw=[])
        assert result.accuracy_against([]) == 1.0

    def test_inferred_skips_none(self):
        result = CflResult(
            directions=[Direction.THEN, Direction.NONE,
                        Direction.ELSE],
            raw=[(True, False), (False, False), (False, True)])
        assert result.inferred() == [True, False]
