"""Instruction semantics vs a Python reference model."""

import pytest
from hypothesis import given, strategies as st

from repro.cpu import MachineState
from repro.cpu.semantics import execute
from repro.errors import DivideError
from repro.isa import MASK64, make, to_signed

_u64 = st.integers(min_value=0, max_value=MASK64)


def fresh_state() -> MachineState:
    state = MachineState()
    state.memory.map_range(0x10000, 0x2000, "rw")
    state.setup_stack(0x7FFF0000)
    return state


def run_one(state, mnemonic, *operands, pc=0x400000):
    return execute(state, make(mnemonic, *operands), pc)


class TestAlu:
    @given(_u64, _u64)
    def test_add_wraps(self, a, b):
        state = fresh_state()
        state.regs[0], state.regs[1] = a, b
        run_one(state, "add", 0, 1)
        assert state.regs[0] == (a + b) & MASK64
        assert state.regs.flags.cf == (a + b > MASK64)
        assert state.regs.flags.zf == ((a + b) & MASK64 == 0)

    @given(_u64, _u64)
    def test_sub_borrow(self, a, b):
        state = fresh_state()
        state.regs[0], state.regs[1] = a, b
        run_one(state, "sub", 0, 1)
        assert state.regs[0] == (a - b) & MASK64
        assert state.regs.flags.cf == (a < b)

    @given(_u64, _u64)
    def test_cmp_does_not_write(self, a, b):
        state = fresh_state()
        state.regs[0], state.regs[1] = a, b
        run_one(state, "cmp", 0, 1)
        assert state.regs[0] == a

    @given(_u64, _u64)
    def test_logic_ops(self, a, b):
        for mnemonic, pyop in (("and", lambda x, y: x & y),
                               ("or", lambda x, y: x | y),
                               ("xor", lambda x, y: x ^ y)):
            state = fresh_state()
            state.regs[0], state.regs[1] = a, b
            run_one(state, mnemonic, 0, 1)
            assert state.regs[0] == pyop(a, b)
            assert not state.regs.flags.cf
            assert not state.regs.flags.of

    @given(_u64, _u64)
    def test_adc_chain_matches_wide_add(self, a, b):
        """add/adc limb chains must compute 128-bit addition."""
        state = fresh_state()
        a_lo, a_hi = a & MASK64, 0x1234
        b_lo, b_hi = b & MASK64, 0x5678
        state.regs[0], state.regs[1] = a_lo, b_lo
        state.regs[2], state.regs[3] = a_hi, b_hi
        run_one(state, "add", 0, 1)
        run_one(state, "adc", 2, 3)
        wide = ((a_hi << 64) | a_lo) + ((b_hi << 64) | b_lo)
        assert state.regs[0] == wide & MASK64
        assert state.regs[2] == (wide >> 64) & MASK64

    @given(_u64, _u64)
    def test_sbb_chain_matches_wide_sub(self, a, b):
        state = fresh_state()
        state.regs[0], state.regs[1] = a, b
        state.regs[2], state.regs[3] = 0x9999, 0x1111
        run_one(state, "sub", 0, 1)
        run_one(state, "sbb", 2, 3)
        wide = ((0x9999 << 64) | a) - ((0x1111 << 64) | b)
        assert state.regs[0] == wide & MASK64
        assert state.regs[2] == (wide >> 64) & MASK64

    @given(_u64, st.integers(min_value=0, max_value=63))
    def test_shifts(self, a, count):
        for mnemonic, pyop in (
                ("shl", lambda x: (x << count) & MASK64),
                ("shr", lambda x: x >> count)):
            state = fresh_state()
            state.regs[0] = a
            run_one(state, mnemonic, 0, count)
            assert state.regs[0] == pyop(a)

    @given(_u64, st.integers(min_value=1, max_value=63))
    def test_sar_sign_extends(self, a, count):
        state = fresh_state()
        state.regs[0] = a
        run_one(state, "sar", 0, count)
        assert state.regs[0] == (to_signed(a) >> count) & MASK64

    @given(_u64, _u64)
    def test_mul_wide(self, a, b):
        state = fresh_state()
        state.regs[0], state.regs[5] = a, b     # rax, rbp
        run_one(state, "mul", 5)
        product = a * b
        assert state.regs[0] == product & MASK64
        assert state.regs[2] == product >> 64

    @given(_u64, st.integers(min_value=1, max_value=MASK64))
    def test_div(self, a, b):
        state = fresh_state()
        state.regs[0], state.regs[2] = a, 0
        state.regs[5] = b
        run_one(state, "div", 5)
        assert state.regs[0] == a // b
        assert state.regs[2] == a % b

    def test_div_by_zero(self):
        state = fresh_state()
        with pytest.raises(DivideError):
            run_one(state, "div", 5)

    def test_div_overflow(self):
        state = fresh_state()
        state.regs[2] = 2     # rdx:rax = 2 << 64
        state.regs[5] = 1
        with pytest.raises(DivideError):
            run_one(state, "div", 5)

    @given(_u64, _u64)
    def test_imul_low_64(self, a, b):
        state = fresh_state()
        state.regs[0], state.regs[1] = a, b
        run_one(state, "imul", 0, 1)
        assert state.regs[0] == (to_signed(a) * to_signed(b)) & MASK64

    @given(_u64)
    def test_inc_dec_preserve_carry(self, a):
        state = fresh_state()
        state.regs.flags.cf = True
        state.regs[0] = a
        run_one(state, "inc", 0)
        assert state.regs[0] == (a + 1) & MASK64
        assert state.regs.flags.cf is True
        run_one(state, "dec", 0)
        assert state.regs[0] == a
        assert state.regs.flags.cf is True

    @given(_u64)
    def test_neg_not(self, a):
        state = fresh_state()
        state.regs[0] = a
        run_one(state, "neg", 0)
        assert state.regs[0] == (-a) & MASK64
        assert state.regs.flags.cf == (a != 0)
        state.regs[0] = a
        run_one(state, "not", 0)
        assert state.regs[0] == ~a & MASK64


class TestDataMovement:
    @given(_u64)
    def test_mov_movi_movabs(self, value):
        state = fresh_state()
        state.regs[1] = value
        run_one(state, "mov", 0, 1)
        assert state.regs[0] == value
        run_one(state, "movabs", 3, value)
        assert state.regs[3] == value
        run_one(state, "movi", 4, -1)
        assert state.regs[4] == MASK64    # sign-extended

    def test_xchg(self):
        state = fresh_state()
        state.regs[0], state.regs[1] = 1, 2
        run_one(state, "xchg", 0, 1)
        assert (state.regs[0], state.regs[1]) == (2, 1)

    @given(_u64, st.integers(min_value=-15, max_value=15))
    def test_load_store(self, value, disp8):
        state = fresh_state()
        state.regs[1] = 0x10100
        state.regs[2] = value
        run_one(state, "store", 1, 2, disp8 * 8)
        run_one(state, "load", 0, 1, disp8 * 8)
        assert state.regs[0] == value

    def test_lea(self):
        state = fresh_state()
        state.regs[1] = 0x5000
        run_one(state, "lea", 0, 1, 0x123)
        assert state.regs[0] == 0x5123

    def test_push_pop(self):
        state = fresh_state()
        rsp0 = state.rsp
        state.regs[1] = 0xAB
        run_one(state, "push", 1)
        assert state.rsp == rsp0 - 8
        run_one(state, "pop", 0)
        assert state.regs[0] == 0xAB
        assert state.rsp == rsp0


class TestControl:
    def test_jmp_relative(self):
        state = fresh_state()
        outcome = run_one(state, "jmp", 0x100, pc=0x400000)
        assert outcome.taken is True
        assert outcome.next_pc == 0x400000 + 5 + 0x100

    def test_conditional_taken_and_not(self):
        state = fresh_state()
        state.regs.flags.zf = True
        taken = run_one(state, "je", 0x10, pc=0x1000)
        assert taken.taken is True
        state.regs.flags.zf = False
        fell = run_one(state, "je", 0x10, pc=0x1000)
        assert fell.taken is False
        assert fell.next_pc == 0x1000 + 6

    def test_call_ret_pair(self):
        state = fresh_state()
        call = run_one(state, "call", 0x200, pc=0x1000)
        assert call.next_pc == 0x1000 + 5 + 0x200
        ret = run_one(state, "ret", pc=call.next_pc)
        assert ret.next_pc == 0x1005      # return address

    def test_indirect(self):
        state = fresh_state()
        state.regs[4 + 3] = 0x7777       # rdi
        outcome = run_one(state, "jmpr", 7)
        assert outcome.next_pc == 0x7777

    def test_syscall_and_halt_signals(self):
        state = fresh_state()
        assert run_one(state, "syscall").syscall is True
        assert run_one(state, "hlt").halt is True


class TestConditionals:
    @pytest.mark.parametrize("cond,flags,expected", [
        ("e", dict(zf=True), True),
        ("ne", dict(zf=True), False),
        ("b", dict(cf=True), True),
        ("ae", dict(cf=True), False),
        ("a", dict(cf=False, zf=False), True),
        ("be", dict(cf=False, zf=False), False),
        ("l", dict(sf=True, of=False), True),
        ("ge", dict(sf=True, of=True), True),
        ("g", dict(zf=False, sf=False, of=False), True),
        ("le", dict(zf=True), True),
        ("s", dict(sf=True), True),
        ("ns", dict(sf=True), False),
        ("o", dict(of=True), True),
        ("no", dict(of=True), False),
    ])
    def test_setcc(self, cond, flags, expected):
        state = fresh_state()
        for name, value in flags.items():
            setattr(state.regs.flags, name, value)
        run_one(state, f"set{cond}", 0)
        assert state.regs[0] == int(expected)

    @given(_u64, _u64)
    def test_unsigned_compare_via_setb(self, a, b):
        state = fresh_state()
        state.regs[0], state.regs[1] = a, b
        run_one(state, "cmp", 0, 1)
        run_one(state, "setb", 2)
        assert state.regs[2] == int(a < b)

    @given(_u64, _u64)
    def test_signed_compare_via_setl(self, a, b):
        state = fresh_state()
        state.regs[0], state.regs[1] = a, b
        run_one(state, "cmp", 0, 1)
        run_one(state, "setl", 2)
        assert state.regs[2] == int(to_signed(a) < to_signed(b))

    def test_cmov(self):
        state = fresh_state()
        state.regs[0], state.regs[1] = 1, 2
        state.regs.flags.zf = False
        run_one(state, "cmove", 0, 1)
        assert state.regs[0] == 1
        state.regs.flags.zf = True
        run_one(state, "cmove", 0, 1)
        assert state.regs[0] == 2
