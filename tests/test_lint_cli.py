"""``repro lint`` CLI: exit codes, golden compare, report artifact."""

import pytest

from repro.analysis.lint import run_lint
from repro.cli import main


@pytest.fixture(scope="module")
def rendered():
    return run_lint().render()


def test_lint_ok(capsys):
    assert main(["lint"]) == 0
    out = capsys.readouterr().out
    assert "repro lint — static victim audit" in out
    assert "verdict: OK" in out


def test_lint_report_is_byte_stable(rendered):
    assert rendered == run_lint().render()
    assert rendered.endswith("\n")


def test_lint_out_writes_artifact(tmp_path, capsys, rendered):
    out = tmp_path / "report.txt"
    assert main(["lint", "--out", str(out)]) == 0
    assert out.read_text(encoding="utf-8") == rendered
    assert "written atomically" in capsys.readouterr().out


def test_lint_golden_match(tmp_path, capsys, rendered):
    golden = tmp_path / "golden.txt"
    golden.write_text(rendered, encoding="utf-8")
    assert main(["lint", "--golden", str(golden)]) == 0
    assert "golden report match" in capsys.readouterr().out


def test_committed_golden_is_current(rendered):
    """reports/lint_golden.txt (the copy CI diffs against) matches a
    fresh run."""
    with open("reports/lint_golden.txt", encoding="utf-8") as handle:
        assert handle.read() == rendered


def test_lint_golden_drift_exits_3(tmp_path, capsys, rendered):
    golden = tmp_path / "golden.txt"
    golden.write_text(rendered + "stale line\n", encoding="utf-8")
    assert main(["lint", "--golden", str(golden)]) == 3
    err = capsys.readouterr().err
    assert "drifted" in err
    assert "stale line" in err          # the diff itself is printed


def test_lint_golden_missing_exits_2(tmp_path, capsys):
    assert main(["lint", "--golden", str(tmp_path / "nope.txt")]) == 2
    assert "cannot read golden" in capsys.readouterr().err


def test_lint_unannotated_finding_exits_2(monkeypatch, capsys):
    """Strip bn_cmp's allowlist: its secret-branch findings become NEW
    and the lint must fail."""
    import repro.analysis.lint as lint_mod
    from repro.victims.library import build_bn_cmp_victim

    victim = build_bn_cmp_victim()
    victim.leak_allowlist = ()
    monkeypatch.setattr(lint_mod, "lint_corpus",
                        lambda: [("bn_cmp", victim)])
    assert main(["lint"]) == 2
    captured = capsys.readouterr()
    assert "NEW" in captured.out
    assert "unannotated" in captured.err
