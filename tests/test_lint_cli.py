"""``repro lint`` / ``repro certify`` CLI: exit codes, golden compare
(plain-text and enveloped), quarantine of corrupt goldens, artifacts."""

import json

import pytest

from repro.analysis.lint import run_lint
from repro.cli import CERTIFY_GOLDEN_SCHEMA, main


@pytest.fixture(scope="module")
def rendered():
    return run_lint().render()


def test_lint_ok(capsys):
    assert main(["lint"]) == 0
    out = capsys.readouterr().out
    assert "repro lint — static victim audit" in out
    assert "verdict: OK" in out


def test_lint_report_is_byte_stable(rendered):
    assert rendered == run_lint().render()
    assert rendered.endswith("\n")


def test_lint_out_writes_artifact(tmp_path, capsys, rendered):
    out = tmp_path / "report.txt"
    assert main(["lint", "--out", str(out)]) == 0
    assert out.read_text(encoding="utf-8") == rendered
    assert "written atomically" in capsys.readouterr().out


def test_lint_golden_match(tmp_path, capsys, rendered):
    golden = tmp_path / "golden.txt"
    golden.write_text(rendered, encoding="utf-8")
    assert main(["lint", "--golden", str(golden)]) == 0
    assert "golden report match" in capsys.readouterr().out


def test_committed_golden_is_current(rendered):
    """reports/lint_golden.txt (the copy CI diffs against) matches a
    fresh run."""
    with open("reports/lint_golden.txt", encoding="utf-8") as handle:
        assert handle.read() == rendered


def test_lint_golden_drift_exits_3(tmp_path, capsys, rendered):
    golden = tmp_path / "golden.txt"
    golden.write_text(rendered + "stale line\n", encoding="utf-8")
    assert main(["lint", "--golden", str(golden)]) == 3
    err = capsys.readouterr().err
    assert "drifted" in err
    assert "stale line" in err          # the diff itself is printed


def test_lint_golden_missing_exits_3(tmp_path, capsys):
    """A missing golden is drift (the committed copy is part of the
    contract), reported with the regeneration command — not a crash,
    not the NEW-leak exit code."""
    golden = tmp_path / "nope.txt"
    assert main(["lint", "--golden", str(golden)]) == 3
    err = capsys.readouterr().err
    assert "golden report missing" in err
    assert f"repro lint --out {golden}" in err


# ----------------------------------------------------------------------
# repro certify (small corpus via monkeypatched corpus builder)
# ----------------------------------------------------------------------
@pytest.fixture
def small_corpus(monkeypatch):
    """bignum-only corpus: proven safe, no rewrites, sub-second."""
    import repro.analysis.symbolic.certify as certify_mod
    from repro.victims.library import build_bignum_victim

    monkeypatch.setattr(
        certify_mod, "certify_corpus",
        lambda: [("bignum", build_bignum_victim())])


def test_certify_ok(small_corpus, capsys):
    assert main(["certify", "--no-rewrite"]) == 0
    out = capsys.readouterr().out
    assert "repro certify" in out
    assert "verdict: OK" in out


def test_certify_out_golden_roundtrip(small_corpus, tmp_path, capsys):
    golden = tmp_path / "certify_golden.txt"
    assert main(["certify", "--no-rewrite", "--out", str(golden)]) == 0
    # the artifact is an envelope, not plain text
    document = json.loads(golden.read_text(encoding="utf-8"))
    assert document["envelope"]["schema"] == CERTIFY_GOLDEN_SCHEMA
    capsys.readouterr()
    assert main(["certify", "--no-rewrite",
                 "--golden", str(golden)]) == 0
    assert "golden report match" in capsys.readouterr().out


def test_certify_golden_missing_exits_3(small_corpus, tmp_path, capsys):
    golden = tmp_path / "nope.txt"
    assert main(["certify", "--no-rewrite",
                 "--golden", str(golden)]) == 3
    err = capsys.readouterr().err
    assert "golden report missing" in err
    assert f"repro certify --out {golden}" in err


def test_certify_golden_corrupt_quarantined_exits_3(
        small_corpus, tmp_path, capsys):
    """A mangled golden must not stack-trace: it is quarantined aside
    and reported as drift with the regeneration command."""
    golden = tmp_path / "certify_golden.txt"
    golden.write_text("{not json", encoding="utf-8")
    assert main(["certify", "--no-rewrite",
                 "--golden", str(golden)]) == 3
    err = capsys.readouterr().err
    assert "golden report corrupt" in err
    assert "quarantined" in err
    assert not golden.exists()
    assert (tmp_path / "certify_golden.txt.corrupt").exists()


def test_certify_golden_wrong_schema_exits_3(
        small_corpus, tmp_path, capsys):
    from repro.storage import write_envelope

    golden = tmp_path / "certify_golden.txt"
    write_envelope(golden, {"report": "x"}, "not-a-certify-report@9")
    assert main(["certify", "--no-rewrite",
                 "--golden", str(golden)]) == 3
    assert "golden report corrupt" in capsys.readouterr().err


def test_certify_golden_drift_exits_3(small_corpus, tmp_path, capsys):
    from repro.storage import write_envelope

    golden = tmp_path / "certify_golden.txt"
    write_envelope(golden, {"report": "stale certify text\n"},
                   CERTIFY_GOLDEN_SCHEMA)
    assert main(["certify", "--no-rewrite",
                 "--golden", str(golden)]) == 3
    err = capsys.readouterr().err
    assert "drifted" in err
    assert "stale certify text" in err


def test_certify_new_leak_exits_2(monkeypatch, capsys):
    """An unannotated proven leak is exit 2 — distinct from drift."""
    import repro.analysis.symbolic.certify as certify_mod
    from repro.victims.library import build_bn_cmp_victim

    victim = build_bn_cmp_victim()
    unannotated = type(victim)(
        victim.compiled, victim.layout, victim.nlimbs,
        secret_function=victim.secret_function,
        main=victim.main,
        secret_inputs=victim.secret_inputs,
        leak_allowlist=(),
        certify=victim.certify)
    monkeypatch.setattr(certify_mod, "certify_corpus",
                        lambda: [("bn_cmp", unannotated)])
    assert main(["certify", "--no-rewrite"]) == 2
    captured = capsys.readouterr()
    assert "FAIL" in captured.out
    assert "problem(s)" in captured.err


def test_lint_unannotated_finding_exits_2(monkeypatch, capsys):
    """Strip bn_cmp's allowlist: its secret-branch findings become NEW
    and the lint must fail."""
    import repro.analysis.lint as lint_mod
    from repro.victims.library import build_bn_cmp_victim

    victim = build_bn_cmp_victim()
    victim.leak_allowlist = ()
    monkeypatch.setattr(lint_mod, "lint_corpus",
                        lambda: [("bn_cmp", victim)])
    assert main(["lint"]) == 2
    captured = capsys.readouterr()
    assert "NEW" in captured.out
    assert "unannotated" in captured.err
