"""Repository-level hygiene: public surface, examples, docs."""

import pathlib
import py_compile

import pytest

import repro

ROOT = pathlib.Path(__file__).resolve().parent.parent


def test_version():
    assert repro.__version__


def test_all_subpackages_importable():
    for name in repro.__all__:
        if name != "__version__":
            assert getattr(repro, name) is not None


@pytest.mark.parametrize("example",
                         sorted((ROOT / "examples").glob("*.py")),
                         ids=lambda p: p.name)
def test_examples_compile(example):
    py_compile.compile(str(example), doraise=True)


@pytest.mark.parametrize("bench",
                         sorted((ROOT / "benchmarks").glob(
                             "bench_*.py")),
                         ids=lambda p: p.name)
def test_benchmarks_compile(bench):
    py_compile.compile(str(bench), doraise=True)


def test_docs_exist_and_mention_key_things():
    readme = (ROOT / "README.md").read_text()
    design = (ROOT / "DESIGN.md").read_text()
    experiments = (ROOT / "EXPERIMENTS.md").read_text()
    assert "NightVision" in readme
    assert "Takeaway 1" in readme
    assert "Substitution table" in design or "substitution" in design
    for artefact in ("Figure 2", "Figure 4", "Figure 10",
                     "Figure 12", "Figure 13"):
        assert artefact in experiments


def test_every_public_module_has_docstring():
    import importlib
    import pkgutil

    missing = []
    for module_info in pkgutil.walk_packages(
            repro.__path__, prefix="repro."):
        if module_info.name.endswith("__main__"):
            continue          # importing it would run the CLI
        module = importlib.import_module(module_info.name)
        if not (module.__doc__ or "").strip():
            missing.append(module_info.name)
    assert not missing, f"modules without docstrings: {missing}"
