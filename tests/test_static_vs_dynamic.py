"""Differential validation: the static analyzer's predictions must
contain everything the live simulator does."""

import pytest

from repro.analysis.differential import observe_run, validate_victim
from repro.experiments import (run_corpus_validation,
                               run_gadget_validation)
from repro.victims.library import (build_bignum_victim,
                                   build_bn_cmp_victim,
                                   build_gcd_victim)


@pytest.fixture(scope="module")
def fast_reports():
    return run_corpus_validation(fast=True)


def test_corpus_containment(fast_reports):
    """Every dynamic edge, BTB insertion, and false hit was statically
    predicted — the headline soundness claim."""
    assert fast_reports
    for report in fast_reports:
        assert report.contained, (report.victim,
                                  report.unpredicted_edges[:3],
                                  report.unpredicted_insertions[:3],
                                  report.unpredicted_false_hits[:3])
        assert report.recall == 1.0, report.victim


def test_corpus_precision_floor(fast_reports):
    """Static over-approximation stays useful: ≥ 0.5 of predictions
    were exercised dynamically (acceptance bar from the issue)."""
    for report in fast_reports:
        assert report.precision >= 0.5, (report.victim,
                                         report.precision)
        assert report.edge_precision >= 0.5, report.victim
        assert report.insertion_precision >= 0.5, report.victim


def test_observation_nonempty():
    victim = build_bn_cmp_victim()
    obs = observe_run(victim, {"a": 99, "b": 77})
    assert obs.retired > 0
    assert obs.trace
    assert obs.insertions
    # plain victims never alias 8 GiB apart: no false hits
    assert not obs.false_hits


def test_validate_single_gcd_small_inputs():
    report = validate_victim(build_gcd_victim("2.5"),
                             {"ta": 12, "tb": 8}, name="gcd-small")
    assert report.contained
    assert report.recall == 1.0
    assert report.precision >= 0.5


def test_bignum_straightline_precision():
    """The branch-light negative control is fully predicted AND fully
    exercised: precision 1.0 on insertions."""
    report = validate_victim(build_bignum_victim(),
                             {"s": 5, "t": 3}, name="bignum")
    assert report.contained
    assert report.insertion_precision == 1.0


def test_gadget_false_hit_predicted():
    """The Figure-2-style aliased gadget drives a real false hit, and
    the static false-hit map predicted it."""
    result = run_gadget_validation()
    assert result["false_hit_observed"]
    assert result["false_hits_contained"]
    assert result["insertions_contained"]
    assert result["observed_false_hits"]
