"""The service HTTP layer: submission round-trips over a real
ephemeral-port server, bounded-queue backpressure (429 + bounded
memory under an over-capacity submit loop), graceful shutdown that
checkpoints the running campaign as resumable, resume-over-HTTP,
idempotent submission, /healthz + /readyz probes with quarantine
shedding, and the client's bounded retry loop.
"""

import json
import pickle
import time
import urllib.error
import urllib.request

import pytest

from repro.errors import (AdmissionRejected, ServiceError,
                          ServiceUnavailable)
from repro.service import (CAMPAIGN_COMPLETED, CAMPAIGN_INTERRUPTED,
                           CAMPAIGN_RUNNING, SHARD_QUARANTINED,
                           CampaignService, ServiceClient,
                           ServiceManifest, ServiceServer,
                           create_service_campaign)


@pytest.fixture()
def server(tmp_path):
    instance = ServiceServer(tmp_path / "runs", port=0,
                             queue_depth=2)
    instance.start()
    try:
        yield instance
    finally:
        instance.stop()


def _client(server):
    return ServiceClient(server.url, timeout=5.0)


def _jobs_payload(count=4, program="work:3:0.02", **extra):
    payload = {"jobs": [
        {"job_id": f"j{index:02d}", "kind": "selftest",
         "name": program, "seed": 0, "timeout_s": 30.0,
         "max_attempts": 2}
        for index in range(count)
    ], "seed": 7, "shards": 2}
    payload.update(extra)
    return payload


# ----------------------------------------------------------------------
# round trips
# ----------------------------------------------------------------------
def test_health_endpoint(server):
    health = _client(server).health()
    assert health["status"] == "ok"
    assert health["queue_depth"] == 2
    assert health["queued"] == 0


def test_submit_wait_results_roundtrip(server):
    client = _client(server)
    campaign_id = client.submit(_jobs_payload())
    status = client.wait(campaign_id, timeout=60.0)
    assert status["status"] == CAMPAIGN_COMPLETED
    results = client.results(campaign_id)
    assert results["campaign_id"] == campaign_id
    assert results["status"] == CAMPAIGN_COMPLETED
    assert len(results["jobs"]) == 4
    assert results["digest"]
    assert campaign_id in client.campaigns()["campaigns"]
    # and the merged counters made it into the aggregate
    assert results["counters"]["selftest.jobs"] == 4


def test_unfinished_campaign_results_conflict(server):
    client = _client(server)
    campaign_id = client.submit(_jobs_payload(
        count=2, program="sleep:3"))
    with pytest.raises(ServiceError, match="409"):
        client.results(campaign_id)


# ----------------------------------------------------------------------
# error surfaces
# ----------------------------------------------------------------------
def _raw(server, method, path, body=b"", headers=None):
    request = urllib.request.Request(
        f"{server.url}{path}", data=body if method == "POST" else None,
        headers=headers or {}, method=method)
    try:
        with urllib.request.urlopen(request, timeout=5.0) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def test_unknown_route_and_campaign_404(server):
    assert _raw(server, "GET", "/nope")[0] == 404
    assert _raw(server, "GET", "/campaigns/ghost")[0] == 404
    assert _raw(server, "POST", "/campaigns/ghost/resume",
                b"{}")[0] == 400


def test_bad_payloads_400(server):
    code, payload = _raw(server, "POST", "/campaigns", b"not json")
    assert code == 400 and "error" in payload
    code, _ = _raw(server, "POST", "/campaigns", b"[1,2]")
    assert code == 400
    code, _ = _raw(server, "POST", "/campaigns",
                   json.dumps({"jobs": []}).encode())
    assert code == 400


def test_oversized_body_413(server):
    blob = b"x" * ((1 << 20) + 1)
    code, payload = _raw(server, "POST", "/campaigns", blob)
    assert code == 413
    assert payload["limit"] == 1 << 20


# ----------------------------------------------------------------------
# backpressure: explicit rejection, bounded memory
# ----------------------------------------------------------------------
def test_over_capacity_submissions_get_429(server):
    client = _client(server)
    # occupy the scheduler with a slow campaign, then fill the queue
    client.submit(_jobs_payload(count=1, program="sleep:10",
                                shards=1))
    accepted, rejected = [], 0
    for index in range(12):        # sustained over-capacity loop
        try:
            accepted.append(client.submit(_jobs_payload(
                count=1, program="sleep:10", shards=1)))
        except AdmissionRejected as error:
            rejected += 1
            assert error.queue_depth == 2
    # the queue admits at most its depth; everything else is an
    # explicit 429, not silent unbounded buffering
    assert len(accepted) <= 3      # depth 2 + at most one drained slot
    assert rejected >= 9
    health = client.health()
    assert health["queued"] <= 2
    # the raw response carries the machine-readable rejection marker
    code, payload = _raw(
        server, "POST", "/campaigns",
        json.dumps(_jobs_payload(count=1, program="sleep:10",
                                 shards=1)).encode(),
        headers={"Content-Type": "application/json"})
    assert code == 429
    assert payload["rejected"] is True


# ----------------------------------------------------------------------
# idempotent submission
# ----------------------------------------------------------------------
def test_double_submit_same_idempotency_key_one_campaign(server):
    """Satellite e2e: double-submitting the same payload (same
    idempotency key) over HTTP yields ONE campaign id and one set of
    artifacts — the retry never spawns a duplicate."""
    client = _client(server)
    payload = _jobs_payload()
    first = client.submit(payload, idempotency_key="drill-7")
    second = client.submit(payload, idempotency_key="drill-7")
    assert first == second
    status = client.wait(first, timeout=60.0)
    assert status["status"] == CAMPAIGN_COMPLETED
    # one campaign on disk, one aggregate
    assert client.campaigns()["campaigns"].count(first) == 1
    runs = server.runs_dir
    assert (runs / first / "aggregate.json").exists()
    assert len(list(runs.iterdir())) == 1
    # a third retry after completion still deduplicates (the
    # persisted campaign directory is the index)
    third = client.submit(payload, idempotency_key="drill-7")
    assert third == first


def test_idempotency_key_header_and_duplicate_flag(server):
    body = json.dumps(_jobs_payload()).encode()
    headers = {"Content-Type": "application/json",
               "Idempotency-Key": "hdr-key"}
    code, first = _raw(server, "POST", "/campaigns", body, headers)
    assert code == 202 and first["duplicate"] is False
    code, second = _raw(server, "POST", "/campaigns", body, headers)
    assert code == 200 and second["duplicate"] is True
    assert second["campaign_id"] == first["campaign_id"]
    assert first["campaign_id"].startswith("idem-")


def test_distinct_keys_distinct_campaigns(server):
    client = _client(server)
    first = client.submit(_jobs_payload(), idempotency_key="a")
    second = client.submit(_jobs_payload(), idempotency_key="b")
    assert first != second


def test_client_autogenerates_fresh_keys(server):
    """Two submits WITHOUT explicit keys are distinct campaigns —
    auto-generated keys protect retries, not separate submissions."""
    client = _client(server)
    assert client.submit(_jobs_payload()) != \
        client.submit(_jobs_payload())


# ----------------------------------------------------------------------
# health probes + quarantine shedding
# ----------------------------------------------------------------------
def test_healthz_and_readyz_when_healthy(server):
    code, payload = _raw(server, "GET", "/healthz")
    assert code == 200
    assert payload["quarantined_shards"] == 0
    assert payload["breaker_strikes"] == 0
    assert payload["shedding"] is False
    code, payload = _raw(server, "GET", "/readyz")
    assert code == 200 and payload["ready"] is True
    assert _client(server).ready() is True


class _QuarantiningCampaign:
    """Stand-in for a CampaignService mid-quarantine."""

    quarantining = True

    @staticmethod
    def status_snapshot():
        return {"shards": {"s00": {"status": SHARD_QUARANTINED,
                                   "strikes": 2}}}


def test_shedding_503_while_quarantining(server):
    server._current = _QuarantiningCampaign()
    try:
        # liveness stays 200 but reports the breaker state
        code, payload = _raw(server, "GET", "/healthz")
        assert code == 200
        assert payload["shedding"] is True
        assert payload["quarantined_shards"] == 1
        assert payload["breaker_strikes"] == 2
        # readiness and submissions shed
        code, payload = _raw(server, "GET", "/readyz")
        assert code == 503 and payload["ready"] is False
        body = json.dumps(_jobs_payload()).encode()
        code, payload = _raw(server, "POST", "/campaigns", body,
                             {"Content-Type": "application/json"})
        assert code == 503 and payload["shedding"] is True
        assert _client(server).ready() is False
        # the retrying client exhausts its budget against a 503 wall
        client = ServiceClient(server.url, timeout=5.0,
                               max_attempts=2, backoff_base=0.01,
                               backoff_cap=0.02, retry_seed=0)
        with pytest.raises(ServiceUnavailable):
            client.submit(_jobs_payload())
    finally:
        server._current = None


def test_quarantining_property_reflects_breaker(tmp_path):
    from repro.runner.jobs import specs_from_payload
    manifest = create_service_campaign(
        specs_from_payload(_jobs_payload(count=4)),
        tmp_path / "runs", campaign_id="q", seed=0, shards=2)
    service = CampaignService(manifest)
    assert service.quarantining is False
    manifest.status = CAMPAIGN_RUNNING
    next(iter(manifest.shards.values())).status = SHARD_QUARANTINED
    assert service.quarantining is True
    manifest.status = CAMPAIGN_COMPLETED
    assert service.quarantining is False


# ----------------------------------------------------------------------
# client retry: bounded, picklable failure
# ----------------------------------------------------------------------
def test_dead_server_raises_service_unavailable_not_forever(server):
    dead_url = server.url
    server.stop()
    client = ServiceClient(dead_url, timeout=1.0, max_attempts=3,
                           backoff_base=0.01, backoff_cap=0.05,
                           retry_seed=7)
    started = time.monotonic()
    with pytest.raises(ServiceUnavailable) as excinfo:
        client.wait("ghost", timeout=30.0)
    assert time.monotonic() - started < 10.0
    assert excinfo.value.attempts == 3
    assert excinfo.value.last_error
    # ServiceUnavailable is still a ServiceError for old handlers
    assert isinstance(excinfo.value, ServiceError)


def test_service_unavailable_pickle_roundtrip():
    error = ServiceUnavailable("gone", attempts=4,
                               last_error="connection refused")
    clone = pickle.loads(pickle.dumps(error))
    assert type(clone) is ServiceUnavailable
    assert clone.attempts == 4
    assert clone.last_error == "connection refused"
    assert str(clone) == "gone"


def test_backoff_is_jittered_exponential_and_seeded():
    client = ServiceClient("http://127.0.0.1:9", max_attempts=4,
                           backoff_base=0.2, backoff_cap=2.0,
                           retry_seed=11)
    delays = [client._backoff(attempt) for attempt in (1, 2, 3)]
    for attempt, delay in zip((1, 2, 3), delays):
        assert 0.0 <= delay <= min(2.0, 0.2 * 2 ** (attempt - 1))
    twin = ServiceClient("http://127.0.0.1:9", max_attempts=4,
                         backoff_base=0.2, backoff_cap=2.0,
                         retry_seed=11)
    assert [twin._backoff(a) for a in (1, 2, 3)] == delays


# ----------------------------------------------------------------------
# graceful shutdown + resume over HTTP
# ----------------------------------------------------------------------
def test_stop_checkpoints_running_campaign_resumably(tmp_path):
    runs_dir = tmp_path / "runs"
    server = ServiceServer(runs_dir, port=0, queue_depth=2)
    server.start()
    client = ServiceClient(server.url, timeout=5.0)
    campaign_id = client.submit(_jobs_payload(count=4,
                                              program="sleep:2"))
    # wait until the scheduler actually picked it up
    for _ in range(100):
        if client.health()["running"] == campaign_id:
            break
        time.sleep(0.05)
    server.stop()
    on_disk = ServiceManifest.load(runs_dir, campaign_id)
    assert on_disk.status == CAMPAIGN_INTERRUPTED

    # a fresh service instance on the same runs dir resumes it
    revived = ServiceServer(runs_dir, port=0, queue_depth=2)
    revived.start()
    try:
        client = ServiceClient(revived.url, timeout=5.0)
        assert campaign_id in client.campaigns()["campaigns"]
        client.resume(campaign_id)
        with pytest.raises(ServiceError):
            client.resume(campaign_id)      # already queued/running
        status = client.wait(campaign_id, timeout=60.0)
        assert status["status"] == CAMPAIGN_COMPLETED
        assert client.results(campaign_id)["digest"]
    finally:
        revived.stop()
