"""The service HTTP layer: submission round-trips over a real
ephemeral-port server, bounded-queue backpressure (429 + bounded
memory under an over-capacity submit loop), graceful shutdown that
checkpoints the running campaign as resumable, and resume-over-HTTP.
"""

import json
import time
import urllib.error
import urllib.request

import pytest

from repro.errors import AdmissionRejected, ServiceError
from repro.service import (CAMPAIGN_COMPLETED, CAMPAIGN_INTERRUPTED,
                           ServiceClient, ServiceManifest,
                           ServiceServer)


@pytest.fixture()
def server(tmp_path):
    instance = ServiceServer(tmp_path / "runs", port=0,
                             queue_depth=2)
    instance.start()
    try:
        yield instance
    finally:
        instance.stop()


def _client(server):
    return ServiceClient(server.url, timeout=5.0)


def _jobs_payload(count=4, program="work:3:0.02", **extra):
    payload = {"jobs": [
        {"job_id": f"j{index:02d}", "kind": "selftest",
         "name": program, "seed": 0, "timeout_s": 30.0,
         "max_attempts": 2}
        for index in range(count)
    ], "seed": 7, "shards": 2}
    payload.update(extra)
    return payload


# ----------------------------------------------------------------------
# round trips
# ----------------------------------------------------------------------
def test_health_endpoint(server):
    health = _client(server).health()
    assert health["status"] == "ok"
    assert health["queue_depth"] == 2
    assert health["queued"] == 0


def test_submit_wait_results_roundtrip(server):
    client = _client(server)
    campaign_id = client.submit(_jobs_payload())
    status = client.wait(campaign_id, timeout=60.0)
    assert status["status"] == CAMPAIGN_COMPLETED
    results = client.results(campaign_id)
    assert results["campaign_id"] == campaign_id
    assert results["status"] == CAMPAIGN_COMPLETED
    assert len(results["jobs"]) == 4
    assert results["digest"]
    assert campaign_id in client.campaigns()["campaigns"]
    # and the merged counters made it into the aggregate
    assert results["counters"]["selftest.jobs"] == 4


def test_unfinished_campaign_results_conflict(server):
    client = _client(server)
    campaign_id = client.submit(_jobs_payload(
        count=2, program="sleep:3"))
    with pytest.raises(ServiceError, match="409"):
        client.results(campaign_id)


# ----------------------------------------------------------------------
# error surfaces
# ----------------------------------------------------------------------
def _raw(server, method, path, body=b"", headers=None):
    request = urllib.request.Request(
        f"{server.url}{path}", data=body if method == "POST" else None,
        headers=headers or {}, method=method)
    try:
        with urllib.request.urlopen(request, timeout=5.0) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def test_unknown_route_and_campaign_404(server):
    assert _raw(server, "GET", "/nope")[0] == 404
    assert _raw(server, "GET", "/campaigns/ghost")[0] == 404
    assert _raw(server, "POST", "/campaigns/ghost/resume",
                b"{}")[0] == 400


def test_bad_payloads_400(server):
    code, payload = _raw(server, "POST", "/campaigns", b"not json")
    assert code == 400 and "error" in payload
    code, _ = _raw(server, "POST", "/campaigns", b"[1,2]")
    assert code == 400
    code, _ = _raw(server, "POST", "/campaigns",
                   json.dumps({"jobs": []}).encode())
    assert code == 400


def test_oversized_body_413(server):
    blob = b"x" * ((1 << 20) + 1)
    code, payload = _raw(server, "POST", "/campaigns", blob)
    assert code == 413
    assert payload["limit"] == 1 << 20


# ----------------------------------------------------------------------
# backpressure: explicit rejection, bounded memory
# ----------------------------------------------------------------------
def test_over_capacity_submissions_get_429(server):
    client = _client(server)
    # occupy the scheduler with a slow campaign, then fill the queue
    client.submit(_jobs_payload(count=1, program="sleep:10",
                                shards=1))
    accepted, rejected = [], 0
    for index in range(12):        # sustained over-capacity loop
        try:
            accepted.append(client.submit(_jobs_payload(
                count=1, program="sleep:10", shards=1)))
        except AdmissionRejected as error:
            rejected += 1
            assert error.queue_depth == 2
    # the queue admits at most its depth; everything else is an
    # explicit 429, not silent unbounded buffering
    assert len(accepted) <= 3      # depth 2 + at most one drained slot
    assert rejected >= 9
    health = client.health()
    assert health["queued"] <= 2
    # the raw response carries the machine-readable rejection marker
    code, payload = _raw(
        server, "POST", "/campaigns",
        json.dumps(_jobs_payload(count=1, program="sleep:10",
                                 shards=1)).encode(),
        headers={"Content-Type": "application/json"})
    assert code == 429
    assert payload["rejected"] is True


# ----------------------------------------------------------------------
# graceful shutdown + resume over HTTP
# ----------------------------------------------------------------------
def test_stop_checkpoints_running_campaign_resumably(tmp_path):
    runs_dir = tmp_path / "runs"
    server = ServiceServer(runs_dir, port=0, queue_depth=2)
    server.start()
    client = ServiceClient(server.url, timeout=5.0)
    campaign_id = client.submit(_jobs_payload(count=4,
                                              program="sleep:2"))
    # wait until the scheduler actually picked it up
    for _ in range(100):
        if client.health()["running"] == campaign_id:
            break
        time.sleep(0.05)
    server.stop()
    on_disk = ServiceManifest.load(runs_dir, campaign_id)
    assert on_disk.status == CAMPAIGN_INTERRUPTED

    # a fresh service instance on the same runs dir resumes it
    revived = ServiceServer(runs_dir, port=0, queue_depth=2)
    revived.start()
    try:
        client = ServiceClient(revived.url, timeout=5.0)
        assert campaign_id in client.campaigns()["campaigns"]
        client.resume(campaign_id)
        with pytest.raises(ServiceError):
            client.resume(campaign_id)      # already queued/running
        status = client.wait(campaign_id, timeout=60.0)
        assert status["status"] == CAMPAIGN_COMPLETED
        assert client.results(campaign_id)["digest"]
    finally:
        revived.stop()
