"""Constant-time rewriter: structural properties of the transformed
AST plus concrete functional equivalence of the compiled output.
End-to-end leakage claims (stream identity, re-certification) live in
``tests/test_certify.py``; this file covers the pass itself."""

import pytest

from repro.cpu import MachineState, run_function
from repro.lang import CompileOptions, Compiler, parse_module
from repro.lang import ast as A
from repro.lang.ctrewrite import (DEFAULT_BOUND, rewrite_function_names,
                                  rewrite_module)
from repro.memory import VirtualMemory

_DATA = 0x900000


def _run(module, function, args, *, data=()):
    compiled = Compiler(CompileOptions()).compile(module)
    memory = VirtualMemory()
    compiled.program.load_into(memory)
    memory.map_range(_DATA, 4096, "rw")
    for offset, value in enumerate(data):
        memory.write_u64(_DATA + 8 * offset, value)
    state = MachineState(memory)
    state.setup_stack(0x7FFF00000000)
    run_function(state, compiled.info(function).entry, args=list(args),
                 syscall_handler=lambda s: True)
    return state.regs["rax"], memory


def _functions(module):
    return {fn.name: fn for fn in module.functions}


# ----------------------------------------------------------------------
# structural properties
# ----------------------------------------------------------------------
_EARLY_RETURN = """
func classify(s) {
  if (s[0] != 0) { return 1; }
  return 0;
}
"""


def test_early_returns_become_live_flag():
    module = rewrite_module(parse_module(_EARLY_RETURN))
    fn = _functions(module)["classify"]
    # no If statements survive; exactly one Return, of __ret, last
    assert not any(isinstance(s, A.If) for s in fn.body)
    returns = [s for s in fn.body if isinstance(s, A.Return)]
    assert len(returns) == 1
    assert isinstance(fn.body[-1], A.Return)
    assert isinstance(fn.body[-1].value, A.Var)
    assert fn.body[-1].value.name == "__ret"


def test_secret_loop_gets_fixed_bound():
    source = """
func countdown(s) {
  v = s[0];
  while (v != 0) { v = v - 1; }
  return v;
}
"""
    module = rewrite_module(parse_module(source), bound=9)
    fn = _functions(module)["countdown"]
    loops = [s for s in fn.body if isinstance(s, A.While)]
    assert len(loops) == 1
    cond = loops[0].cond
    assert isinstance(cond, A.Cmp) and cond.op == "<"
    assert isinstance(cond.right, A.Const) and cond.right.value == 9


def test_public_loop_is_preserved():
    source = """
func fill(t, n) {
  i = 0;
  while (i < n) { t[i] = i; i = i + 1; }
  return i;
}
"""
    module = rewrite_module(parse_module(source))
    fn = _functions(module)["fill"]
    loops = [s for s in fn.body if isinstance(s, A.While)]
    assert len(loops) == 1
    cond = loops[0].cond
    # the public `i < n` trip count survives, not a synthetic bound
    assert isinstance(cond, A.Cmp) and cond.op == "<"
    assert isinstance(cond.right, A.Var) and cond.right.name == "n"


def test_impure_callees_get_predicated_clone():
    source = """
func poke(t) {
  t[0] = 1;
  return 0;
}
func outer(t, s) {
  if (s[0] != 0) { poke(t); }
  return 0;
}
"""
    module = parse_module(source)
    names = rewrite_function_names(module)
    assert names["poke"] == ("poke", "poke__ct")
    assert names["outer"] == ("outer", "outer__ct")   # transitive store
    rewritten = _functions(rewrite_module(module))
    assert set(rewritten) == {"poke", "poke__ct",
                              "outer", "outer__ct"}
    assert rewritten["poke__ct"].params[-1] == "__pred"


def test_pure_callees_stay_unpredicated():
    source = """
func double(x) {
  return x + x;
}
func outer(s) {
  if (s[0] != 0) { r = double(3); } else { r = 0; }
  return r;
}
"""
    module = parse_module(source)
    assert rewrite_function_names(module)["double"] == ("double",)


def test_bound_validation():
    module = parse_module(_EARLY_RETURN)
    with pytest.raises(ValueError):
        rewrite_module(module, bound=0)
    assert DEFAULT_BOUND >= 1


def test_rewrite_is_deterministic():
    module_a = rewrite_module(parse_module(_EARLY_RETURN))
    module_b = rewrite_module(parse_module(_EARLY_RETURN))
    assert module_a == module_b


# ----------------------------------------------------------------------
# functional equivalence of the compiled rewrite
# ----------------------------------------------------------------------
_SELECT = """
func pick(t, s) {{
  if (s[0] != 0) {{ t[0] = t[1]; return 1; }}
  return 0;
}}
func main() {{
  r = pick({data}, {data} + 16);
  return r;
}}
"""


@pytest.mark.parametrize("secret", [0, 1, 5])
def test_compiled_rewrite_preserves_results(secret):
    source = _SELECT.format(data=_DATA)
    data = (11, 22, secret, 0)           # t[0], t[1], s[0], s[1]
    original = parse_module(source)
    rewritten = rewrite_module(original)
    ret_a, mem_a = _run(original, "main", (), data=data)
    ret_b, mem_b = _run(rewritten, "main", (), data=data)
    assert ret_a == ret_b == (1 if secret else 0)
    for offset in range(4):
        assert (mem_a.read_u64(_DATA + 8 * offset)
                == mem_b.read_u64(_DATA + 8 * offset))


@pytest.mark.parametrize("v", [0, 1, 3, 6])
def test_compiled_bounded_loop_preserves_results(v):
    source = """
func countdown(s) {{
  v = s[{idx}];
  acc = 0;
  while (v != 0) {{ acc = acc + v; v = v - 1; }}
  return acc;
}}
func main() {{
  return countdown({data});
}}
""".format(data=_DATA, idx=0)
    original = parse_module(source)
    rewritten = rewrite_module(original, bound=6)
    ret_a, _ = _run(original, "main", (), data=(v,))
    ret_b, _ = _run(rewritten, "main", (), data=(v,))
    assert ret_a == ret_b == sum(range(v + 1))
