"""Solver core: sat/unsat golden cases, truth-table fast path vs the
Tseitin+DPLL path, model soundness, budget degradation to unknown."""

import random

import pytest

from repro.analysis.symbolic.bitvec import BitCtx
from repro.analysis.symbolic.solver import (SolverStats, _TT_MAX_VARS,
                                            solve_bit)


def _contradiction(ctx):
    """(a | b) & !a & !b — unsat, but not folded at construction."""
    a, b = ctx.var("a"), ctx.var("b")
    return ctx.and_(ctx.and_(ctx.or_(a, b), ctx.not_(a)), ctx.not_(b))


# ----------------------------------------------------------------------
# golden cases
# ----------------------------------------------------------------------
def test_concrete_bits_short_circuit():
    assert solve_bit(1).status == "sat"
    assert solve_bit(0).status == "unsat"


def test_xor_zeroing_is_unsat():
    """``(x ^ x) != 0`` — the xor-zeroing idiom folds to a concrete 0
    before the solver ever runs, the cheapest unsat there is."""
    ctx = BitCtx()
    word = tuple(ctx.var(f"x{i}") for i in range(64))
    nonzero = ctx.not_(ctx.is_zero(ctx.bxor(word, word)))
    assert nonzero == 0
    assert solve_bit(nonzero, ctx=ctx).status == "unsat"


@pytest.mark.parametrize("use_ctx", [True, False])
def test_contradiction_is_unsat(use_ctx):
    ctx = BitCtx()
    bit = _contradiction(ctx)
    result = solve_bit(bit, ctx=ctx if use_ctx else None)
    assert result.status == "unsat"
    assert not result.is_sat


@pytest.mark.parametrize("use_ctx", [True, False])
def test_sat_model_satisfies_formula(use_ctx):
    ctx = BitCtx()
    a, b, c = ctx.var("a"), ctx.var("b"), ctx.var("c")
    # a & (b ^ c) & !b  →  forces a=1, b=0, c=1
    bit = ctx.and_(ctx.and_(a, ctx.xor_(b, c)), ctx.not_(b))
    result = solve_bit(bit, ctx=ctx if use_ctx else None)
    assert result.is_sat
    model = {name: result.model.get(name, False) for name in "abc"}
    assert model == {"a": True, "b": False, "c": True}
    assert ctx.eval_bit(bit, result.model) == 1


def test_equality_predicate_sat_model():
    ctx = BitCtx()
    word = tuple(ctx.var(f"x{i}") for i in range(4)) + (0,) * 60
    result = solve_bit(ctx.eq_const(word, 0b1010), ctx=ctx)
    assert result.is_sat
    assert ctx.eval_word(word, result.model) == 0b1010


# ----------------------------------------------------------------------
# fast path vs DPLL agreement on random DAGs
# ----------------------------------------------------------------------
def _random_dag(ctx, rng, names, depth=24):
    pool = [ctx.var(name) for name in names]
    for _ in range(depth):
        op = rng.choice(("and", "or", "xor", "not"))
        if op == "not":
            pool.append(ctx.not_(rng.choice(pool)))
        else:
            pool.append(getattr(ctx, op + "_")(
                rng.choice(pool), rng.choice(pool)))
    return pool[-1]


def test_truth_table_and_dpll_agree():
    rng = random.Random(1234)
    for trial in range(30):
        ctx = BitCtx()
        bit = _random_dag(ctx, rng, [f"v{i}" for i in range(4)])
        fast = solve_bit(bit, ctx=ctx)      # ≤ _TT_MAX_VARS: table
        slow = solve_bit(bit)               # no ctx: Tseitin + DPLL
        assert fast.status == slow.status, f"trial {trial}"
        for result in (fast, slow):
            if isinstance(bit, int):
                continue
            if result.is_sat:
                assert ctx.eval_bit(bit, result.model) == 1


def test_wide_contexts_fall_back_to_dpll():
    ctx = BitCtx()
    for i in range(_TT_MAX_VARS + 1):       # one var past the ceiling
        ctx.var(f"v{i}")
    bit = ctx.and_(ctx.var("v0"), ctx.not_(ctx.var("v1")))
    result = solve_bit(bit, ctx=ctx)
    assert result.is_sat
    # the table machinery never engaged: no per-ctx mask cache built
    assert not hasattr(ctx, "_tt_names")
    assert ctx.eval_bit(bit, result.model) == 1


def test_foreign_ctx_bit_falls_back():
    """A bit interned by another ctx must not poison the table cache."""
    owner, other = BitCtx(), BitCtx()
    bit = owner.and_(owner.var("a"), owner.var("b"))
    other.var("a")
    result = solve_bit(bit, ctx=other)
    assert result.is_sat


# ----------------------------------------------------------------------
# stats and budget
# ----------------------------------------------------------------------
def test_stats_counters():
    ctx = BitCtx()
    stats = SolverStats()
    solve_bit(_contradiction(ctx), ctx=ctx, stats=stats)
    solve_bit(ctx.var("a"), ctx=ctx, stats=stats)
    solve_bit(1, stats=stats)
    assert stats.calls == 3
    assert stats.sat == 2
    assert stats.unsat == 1
    assert stats.unknown == 0


def test_decision_budget_degrades_to_unknown():
    ctx = BitCtx()
    bit = _random_dag(ctx, random.Random(7),
                      [f"v{i}" for i in range(12)], depth=60)
    stats = SolverStats()
    result = solve_bit(bit, max_decisions=0, stats=stats)
    assert result.status in ("unknown", "sat", "unsat")
    if result.status == "unknown":
        assert stats.unknown == 1
    # and the same query without the gag resolves
    assert solve_bit(bit).status in ("sat", "unsat")
