"""CFG recovery over the victims library: golden shape, sink/edge
invariants, and the small decode/image helpers."""

import pytest

from repro.analysis.cfg import (CodeImage, EdgeKind, linear_sweep,
                                recover_cfg, recover_module_cfg)
from repro.errors import DecodeError
from repro.isa import Kind
from repro.victims.library import (build_bignum_victim,
                                   build_bn_cmp_victim,
                                   build_gcd_victim)

#: golden (blocks, edges) per victim — must match reports/lint_golden.txt
GOLDEN_SHAPE = {
    "gcd-2.5": (471, 494),
    "gcd-2.16": (478, 497),
    "gcd-3.0": (498, 521),
    "bn_cmp": (123, 126),
    "bignum": (232, 235),
}


def _corpus():
    return [
        ("gcd-2.5", build_gcd_victim("2.5")),
        ("gcd-2.16", build_gcd_victim("2.16")),
        ("gcd-3.0", build_gcd_victim("3.0")),
        ("bn_cmp", build_bn_cmp_victim()),
        ("bignum", build_bignum_victim()),
    ]


@pytest.fixture(scope="module")
def corpus_cfgs():
    return [(name, victim, recover_module_cfg(victim.compiled))
            for name, victim in _corpus()]


def test_golden_block_edge_counts(corpus_cfgs):
    shapes = {name: (len(cfg.blocks), len(cfg.edges))
              for name, _, cfg in corpus_cfgs}
    assert shapes == GOLDEN_SHAPE


def test_every_ret_is_a_sink(corpus_cfgs):
    """A ``ret`` never falls through: its only out-edges are RETURN
    edges back to recorded call return sites."""
    for name, _, cfg in corpus_cfgs:
        assert cfg.rets, name
        ret_pcs = {pc for pcs in cfg.rets.values() for pc in pcs}
        assert ret_pcs, name
        for ret_pc in ret_pcs:
            assert cfg.instrs[ret_pc].kind is Kind.RET, (name, hex(ret_pc))
            out = [e for e in cfg.edges if e.src == ret_pc]
            assert all(e.kind is EdgeKind.RETURN for e in out), \
                (name, hex(ret_pc), out)


def test_no_dangling_edges(corpus_cfgs):
    """Every edge endpoint is a decoded instruction."""
    for name, _, cfg in corpus_cfgs:
        pcs = set(cfg.instrs)
        for edge in cfg.edges:
            assert edge.src in pcs, (name, edge)
            assert edge.dst in pcs, (name, edge)


def test_blocks_partition_reachable_code(corpus_cfgs):
    """Basic blocks tile the decoded instructions exactly once."""
    for name, _, cfg in corpus_cfgs:
        covered = []
        for block in cfg.blocks.values():
            covered.extend(block.instructions)
        assert sorted(covered) == sorted(cfg.instrs), name
        assert len(covered) == len(set(covered)), name


def test_function_attribution(corpus_cfgs):
    """Every decoded pc belongs to a named function, and the secret
    function is one of them."""
    for name, victim, cfg in corpus_cfgs:
        names = {cfg.function_of(pc) for pc in cfg.instrs}
        assert None not in names, name
        assert victim.secret_function in names, name
        assert "main" in names, name


def test_successor_map_consistency(corpus_cfgs):
    """successors() agrees with the edge list for resolved pcs."""
    for name, _, cfg in corpus_cfgs:
        for pc, succ in cfg.successor_map().items():
            if succ is None:           # unresolved indirect: no claim
                continue
            from_edges = {e.dst for e in cfg.edges if e.src == pc}
            assert from_edges <= succ, (name, hex(pc))


def test_indirects_tracked_as_unresolved():
    """An indirect jump with no static target lands in
    ``cfg.unresolved``, not in a bogus edge."""
    from repro.isa.assembler import Assembler

    asm = Assembler(base=0x40_0000)
    asm.emit("movabs", 0, 0x41_0000)
    asm.emit("jmpr", 0)
    program = asm.assemble()
    image = CodeImage.from_program(program)
    cfg = recover_cfg(image, 0x40_0000)
    jmpr_pc = [pc for pc, ins in cfg.instrs.items()
               if ins.kind is Kind.INDIRECT_JUMP]
    assert len(jmpr_pc) == 1
    assert jmpr_pc[0] in cfg.unresolved
    assert cfg.successors(jmpr_pc[0]) is None


def test_linear_sweep_covers_descent(corpus_cfgs):
    """Linear sweep from segment starts decodes at least everything
    recursive descent reached (victim images are pure code)."""
    for name, victim, cfg in corpus_cfgs:
        swept = linear_sweep(CodeImage.from_program(
            victim.compiled.program))
        missing = set(cfg.instrs) - set(swept)
        assert not missing, (name, sorted(hex(p) for p in missing)[:5])


def test_code_image_decode_bounds():
    image = CodeImage([(0x1000, b"\x00\x00")])
    assert image.contains(0x1000)
    assert not image.contains(0x0FFF)
    with pytest.raises(DecodeError):
        image.decode(0x2000)
