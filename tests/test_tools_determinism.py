"""tools/lint_determinism.py: the simulator core stays seeded-only."""

import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
_SPEC = importlib.util.spec_from_file_location(
    "lint_determinism", REPO_ROOT / "tools" / "lint_determinism.py")
lint_determinism = importlib.util.module_from_spec(_SPEC)
assert _SPEC.loader is not None
_SPEC.loader.exec_module(lint_determinism)


def test_repo_is_clean():
    assert lint_determinism.lint_paths() == []


def test_main_exit_zero(capsys):
    assert lint_determinism.main() == 0
    assert "determinism lint: clean" in capsys.readouterr().out


def _lint_source(tmp_path, source):
    path = tmp_path / "probe.py"
    path.write_text(source, encoding="utf-8")
    return lint_determinism.lint_file(path)


def test_catches_wall_clock(tmp_path):
    findings = _lint_source(tmp_path, """\
import time

def tick():
    return time.monotonic()
""")
    assert len(findings) == 1
    assert "time.monotonic" in findings[0]


def test_catches_from_time_import(tmp_path):
    findings = _lint_source(tmp_path, """\
from time import perf_counter

def tick():
    return perf_counter()
""")
    assert len(findings) == 1
    assert "perf_counter" in findings[0]


def test_catches_module_level_rng(tmp_path):
    findings = _lint_source(tmp_path, """\
import random

def pick(items):
    return random.choice(items)
""")
    assert len(findings) == 1
    assert "random.choice" in findings[0]


def test_allows_seeded_rng(tmp_path):
    findings = _lint_source(tmp_path, """\
import random

def make_rng(seed):
    return random.Random(seed)
""")
    assert findings == []


def test_deadline_guards_stay_allowlisted():
    """The two interp deadline guards are the only clock sites the
    scoped packages may contain."""
    allow = lint_determinism.DEADLINE_GUARD_ALLOWLIST
    assert allow == {
        ("src/repro/cpu/interp.py", "_check_deadline"),
        ("src/repro/cpu/interp.py", "_check_deadline_now"),
    }
    interp = REPO_ROOT / "src" / "repro" / "cpu" / "interp.py"
    source = interp.read_text(encoding="utf-8")
    for _, guard in sorted(allow):
        assert f"def {guard}" in source


def test_scope_covers_static_layers():
    """The analysis/ and lang/ packages are inside the determinism
    scope: certifier reports are diffed byte-for-byte against a
    committed golden, so ambient clocks/RNG there are as fatal as in
    the simulator core."""
    scoped = {p.relative_to(REPO_ROOT).as_posix()
              for p in lint_determinism.SCOPED_DIRS}
    assert "src/repro/analysis" in scoped
    assert "src/repro/lang" in scoped


def test_violation_in_scoped_tree_is_caught(tmp_path):
    """A wall-clock read dropped anywhere under a scoped package —
    e.g. a hypothetical analysis/symbolic helper — is rejected."""
    nested = tmp_path / "analysis" / "symbolic"
    nested.mkdir(parents=True)
    (nested / "bad.py").write_text("""\
import time
import random

def stamp(report):
    return (time.time(), random.random())
""", encoding="utf-8")
    findings = lint_determinism.lint_paths([tmp_path / "analysis"])
    assert len(findings) == 2
    assert any("time.time" in f for f in findings)
    assert any("random.random" in f for f in findings)


def test_cli_reports_findings(tmp_path, capsys, monkeypatch):
    path = tmp_path / "probe.py"
    path.write_text("import time\n\ndef f():\n    return time.time()\n",
                    encoding="utf-8")
    monkeypatch.setattr(lint_determinism, "SCOPED_DIRS", (tmp_path,))
    assert lint_determinism.main() == 1
    captured = capsys.readouterr()
    assert "time.time" in captured.out
    assert "1 finding(s)" in captured.err
