"""The exception hierarchy: everything derives from ReproError, and
the structured errors carry their triage fields."""

import inspect

import pytest

from repro import errors
from repro.errors import (AttackError, BudgetExhausted, CalibrationError,
                          MeasurementError, MeasurementUnstable,
                          MemoryError_, PageFault, ProtectionFault,
                          ReproError)


def _all_error_classes():
    return [obj for _, obj in inspect.getmembers(errors, inspect.isclass)
            if issubclass(obj, ReproError)]


def test_every_error_derives_from_repro_error():
    classes = _all_error_classes()
    assert len(classes) > 15
    for cls in classes:
        assert issubclass(cls, ReproError)
        assert issubclass(cls, Exception)


def test_every_error_constructible_and_catchable():
    # The structured ones have keyword signatures; everything else
    # takes a plain message.
    structured = {PageFault, ProtectionFault, MeasurementUnstable,
                  BudgetExhausted}
    for cls in _all_error_classes():
        if cls in structured:
            continue
        with pytest.raises(ReproError):
            raise cls("boom")


def test_page_fault_fields():
    fault = PageFault(0x401000, "execute")
    assert fault.address == 0x401000
    assert fault.access == "execute"
    assert "0x401000" in str(fault)
    assert isinstance(fault, MemoryError_)


def test_protection_fault_fields():
    fault = ProtectionFault(address=0x2000, access="read")
    assert fault.address == 0x2000
    assert fault.access == "read"
    assert "0x2000" in str(fault)
    bare = ProtectionFault("EPC access refused")
    assert bare.address is None
    assert str(bare) == "EPC access refused"


def test_measurement_errors_are_attack_errors():
    assert issubclass(MeasurementError, AttackError)
    assert issubclass(MeasurementUnstable, MeasurementError)
    assert issubclass(BudgetExhausted, MeasurementError)
    assert issubclass(CalibrationError, AttackError)


def test_measurement_unstable_fields():
    err = MeasurementUnstable("2 ranges unresolved", attempts=7,
                              unresolved=[0, 3])
    assert err.attempts == 7
    assert err.unresolved == (0, 3)
    with pytest.raises(AttackError):
        raise err


def test_budget_exhausted_fields():
    err = BudgetExhausted("out of probes", budget=500, spent=500)
    assert err.budget == 500
    assert err.spent == 500
    # Catching ReproError is the supported catch-all for callers.
    with pytest.raises(ReproError):
        raise err
