"""Symbolic certification acceptance: proven leaks match the
allowlists with dynamically diverging witnesses, the constant-time
negative control is proven safe, budget exhaustion degrades soundly,
and the rewrite loop closes (re-certified safe, bit-identical streams,
results preserved over the certified domain)."""

import pytest

from repro.analysis.symbolic import (CertifyBudget, PROVEN_LEAKY,
                                     PROVEN_SAFE, UNDECIDED,
                                     certify_victim, render_certify_report,
                                     run_certify)
from repro.analysis.symbolic.certify import rewrite_victim
from repro.analysis.symbolic.witness import replay_btb_stream
from repro.victims.library import (build_bignum_victim,
                                   build_bn_cmp_victim,
                                   build_gcd_victim)


def _leaky_functions(cert):
    return {v.function for v in cert.leaky}


# ----------------------------------------------------------------------
# proven leaks == the dynamic lint's allowlist, with live witnesses
# ----------------------------------------------------------------------
def test_bn_cmp_proven_leaky_with_diverging_witnesses():
    victim = build_bn_cmp_victim()
    cert = certify_victim("bn_cmp", victim)
    assert cert.exploration.complete
    assert _leaky_functions(cert) == set(victim.leak_allowlist)
    assert cert.new_leaks == []
    assert cert.mismatches == []
    assert cert.undecided == []
    for verdict in cert.leaky:
        assert verdict.witness_a is not None
        assert verdict.witness_b is not None
        assert verdict.witness_a != verdict.witness_b
        stream_a = replay_btb_stream(victim, verdict.witness_a)
        stream_b = replay_btb_stream(victim, verdict.witness_b)
        assert stream_a != stream_b     # the proof is live, not formal


def test_gcd_certification_matches_allowlist():
    victim = build_gcd_victim("2.5")
    cert = certify_victim("gcd-2.5", victim)
    assert cert.exploration.complete
    assert _leaky_functions(cert) == {"mpi_gcd", "bn_cmp", "bn_is_zero"}
    assert cert.new_leaks == []
    assert cert.mismatches == []
    assert cert.undecided == []


def test_gcd_helpers_inherit_not_leak():
    """bn_shr1/bn_sub run a secret-dependent *number of times* but
    never branch on the secret themselves: their traces diverge only
    by extension, which must classify as inherited, not leaky."""
    cert = certify_victim("gcd-2.5", build_gcd_victim("2.5"))
    by_name = {v.function: v for v in cert.verdicts}
    for helper in ("bn_shr1", "bn_sub"):
        verdict = by_name[helper]
        assert verdict.verdict == PROVEN_SAFE
        assert verdict.inherited_sites > 0


def test_bignum_negative_control_proven_safe():
    cert = certify_victim("bignum", build_bignum_victim())
    assert cert.exploration.complete
    assert cert.leaky == []
    assert cert.undecided == []
    assert all(v.verdict == PROVEN_SAFE for v in cert.verdicts)


# ----------------------------------------------------------------------
# sound degradation under budget exhaustion
# ----------------------------------------------------------------------
def test_tiny_budget_degrades_to_undecided_not_safe():
    budget = CertifyBudget(max_steps=200, max_paths=1)
    cert = certify_victim("bn_cmp", build_bn_cmp_victim(),
                          budget=budget)
    assert not cert.exploration.complete
    assert all(v.verdict in (PROVEN_LEAKY, UNDECIDED)
               for v in cert.verdicts)
    assert not any(v.verdict == PROVEN_SAFE for v in cert.verdicts)


# ----------------------------------------------------------------------
# the repair loop
# ----------------------------------------------------------------------
def test_rewrite_loop_closes_for_bn_cmp_and_gcd():
    report = run_certify([("bn_cmp", build_bn_cmp_victim()),
                          ("gcd-2.5", build_gcd_victim("2.5"))])
    assert report.ok, report.failures
    assert {r.name for r in report.rewrites} == {"bn_cmp", "gcd-2.5"}
    for validation in report.rewrites:
        assert validation.verdict == PROVEN_SAFE
        assert validation.streams_identical
        assert validation.functional_ok
        assert validation.domain_size > 0
    for cert in report.certifications:
        for verdict in cert.leaky:
            assert verdict.streams_diverged is True


def test_rewritten_victim_replays_identically():
    victim = build_bn_cmp_victim()
    cert = certify_victim("bn_cmp", victim)
    rewritten = rewrite_victim(victim)
    for verdict in cert.leaky:
        before_a = replay_btb_stream(victim, verdict.witness_a)
        before_b = replay_btb_stream(victim, verdict.witness_b)
        assert before_a != before_b
        after_a = replay_btb_stream(rewritten, verdict.witness_a)
        after_b = replay_btb_stream(rewritten, verdict.witness_b)
        assert after_a == after_b       # bit-identical event streams


def test_rewrite_requires_source():
    victim = build_bn_cmp_victim()
    stripped = type(victim)(
        victim.compiled, victim.layout, victim.nlimbs,
        secret_function=victim.secret_function,
        secret_inputs=victim.secret_inputs)
    with pytest.raises(ValueError):
        rewrite_victim(stripped)


# ----------------------------------------------------------------------
# report plumbing
# ----------------------------------------------------------------------
def test_report_renders_byte_stable():
    report = run_certify([("bignum", build_bignum_victim())],
                         rewrite=False)
    first = render_certify_report(report)
    second = render_certify_report(run_certify(
        [("bignum", build_bignum_victim())], rewrite=False))
    assert first == second
    assert first.endswith("\n")
    assert "verdict: OK" in first


def test_new_leak_fails_report():
    """An unexpected proven leak (empty allowlist) must fail the
    report — the NEW-leak path the CI smoke job exits 2 on."""
    victim = build_bn_cmp_victim()
    unannotated = type(victim)(
        victim.compiled, victim.layout, victim.nlimbs,
        secret_function=victim.secret_function,
        main=victim.main,
        secret_inputs=victim.secret_inputs,
        leak_allowlist=(),
        certify=victim.certify)
    report = run_certify([("bn_cmp", unannotated)], rewrite=False,
                         replay=False)
    assert not report.ok
    assert any("NEW" in failure or "expected" in failure
               for failure in report.failures)
    assert "FAIL" in render_certify_report(report)
