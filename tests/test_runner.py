"""The crash-tolerant campaign runner: atomic artifacts, the job
lifecycle state machine, manifest checkpoint/resume, watchdog
timeouts, retry with backoff, and the chaos drill.

The heavyweight scenarios use KIND_SELFTEST jobs — deterministic
synthetic programs (`work:`, `fail:`, `crash:`, `hang`) — so the runner
machinery is exercised without paying for real experiments.
"""

import json
import multiprocessing
import os
import pickle
import signal
import time

import pytest

from repro.errors import (CampaignError, MeasurementUnstable, PageFault,
                          SimulationTimeout, WorkerCrashed)
from repro.runner import (ChaosMonkey, JobRecord, JobSpec, JobStatus,
                          KIND_SELFTEST, RunManifest, execute_job,
                          experiment_jobs, is_transient, list_campaigns,
                          run_campaign)
from repro.runner.artifacts import (atomic_write_json, atomic_write_text,
                                    digest_text, read_json)


def _selftest(job_id, program, **kwargs):
    kwargs.setdefault("timeout_s", 30.0)
    return JobSpec(job_id=job_id, kind=KIND_SELFTEST, name=program,
                   seed=0, **kwargs)


# ----------------------------------------------------------------------
# atomic artifact writer
# ----------------------------------------------------------------------
def test_atomic_write_text_creates_parents_and_no_tmp(tmp_path):
    path = atomic_write_text(tmp_path / "a" / "b" / "out.txt", "hello\n")
    assert path.read_text() == "hello\n"
    # no temp droppings left behind
    assert [p.name for p in path.parent.iterdir()] == ["out.txt"]


def test_atomic_write_replaces_existing(tmp_path):
    target = tmp_path / "out.txt"
    atomic_write_text(target, "first")
    atomic_write_text(target, "second")
    assert target.read_text() == "second"


def test_atomic_json_is_deterministic(tmp_path):
    payload = {"b": 2, "a": 1, "nested": {"z": 0, "y": [3, 2]}}
    a = atomic_write_json(tmp_path / "a.json", payload)
    b = atomic_write_json(tmp_path / "b.json", dict(reversed(
        list(payload.items()))))
    assert a.read_bytes() == b.read_bytes()
    assert read_json(a) == payload


def test_digest_text_is_sha256():
    import hashlib
    assert digest_text("abc") == hashlib.sha256(b"abc").hexdigest()


# ----------------------------------------------------------------------
# errors are picklable (they cross the worker pipe)
# ----------------------------------------------------------------------
def _all_error_classes():
    import inspect
    from repro import errors
    return [obj for _, obj in inspect.getmembers(errors, inspect.isclass)
            if issubclass(obj, errors.ReproError)]


def test_every_error_survives_pickle_roundtrip():
    samples = {
        PageFault: PageFault(0x401000, "execute"),
        MeasurementUnstable: MeasurementUnstable(
            "unstable", attempts=3, unresolved=[1, 2]),
        SimulationTimeout: SimulationTimeout(
            "over budget", budget=100, executed=101, deadline=True),
        WorkerCrashed: WorkerCrashed("died", exitcode=-9),
    }
    for cls in _all_error_classes():
        error = samples.get(cls)
        if error is None:
            try:
                error = cls("boom")
            except TypeError:
                continue
        clone = pickle.loads(pickle.dumps(error))
        assert type(clone) is cls
        assert str(clone) == str(error)
        assert clone.__dict__ == error.__dict__


def test_simulation_timeout_fields_survive_pickle():
    error = SimulationTimeout("deadline", budget=7, executed=9,
                              deadline=True)
    clone = pickle.loads(pickle.dumps(error))
    assert clone.budget == 7
    assert clone.executed == 9
    assert clone.deadline is True


# ----------------------------------------------------------------------
# job specs / records / manifest
# ----------------------------------------------------------------------
def test_job_spec_validation():
    with pytest.raises(CampaignError):
        JobSpec(job_id="x", kind="nonsense")
    with pytest.raises(CampaignError):
        JobSpec(job_id="x", timeout_s=0.0)
    with pytest.raises(CampaignError):
        JobSpec(job_id="x", max_attempts=0)


def test_job_spec_dict_roundtrip():
    spec = JobSpec(job_id="fig2", name="fig2", fast=True, seed=3,
                   plan="hostile", plan_factor=0.5, timeout_s=12.0,
                   max_attempts=2)
    assert JobSpec.from_dict(spec.to_dict()) == spec


def test_job_record_roundtrip_and_retry_budget():
    record = JobRecord(spec=_selftest("j", "work:10"))
    assert record.runnable()
    record.status = JobStatus.FAILED
    record.attempts = 2
    record.digest = "d" * 64
    clone = JobRecord.from_dict(record.to_dict())
    assert clone.spec == record.spec
    assert clone.status is JobStatus.FAILED
    assert clone.attempts_left() == 1
    assert not clone.runnable()


def test_status_machine_flags():
    assert JobStatus.COMPLETED.terminal_success
    for status in (JobStatus.FAILED, JobStatus.TIMED_OUT,
                   JobStatus.CRASHED, JobStatus.RUNNING):
        assert status.retryable
    assert not JobStatus.COMPLETED.retryable


def test_experiment_jobs_only_filter_and_unknown():
    jobs = experiment_jobs(fast=True, seed=0, only=["fig4", "fig2"])
    assert [job.job_id for job in jobs] == ["fig2", "fig4"]
    with pytest.raises(CampaignError):
        experiment_jobs(only=["not-an-experiment"])


def test_manifest_roundtrip_and_listing(tmp_path):
    specs = [_selftest("a", "work:10"), _selftest("b", "work:20")]
    manifest = RunManifest.create("camp-1", tmp_path, specs=specs,
                                  seed=7, created="2026-08-06T00:00:00")
    manifest.jobs["a"].status = JobStatus.COMPLETED
    manifest.jobs["a"].digest = digest_text("out")
    manifest.save()
    loaded = RunManifest.load(tmp_path, "camp-1")
    assert loaded.seed == 7
    assert loaded.jobs["a"].status is JobStatus.COMPLETED
    assert loaded.jobs["b"].spec == specs[1]
    assert list_campaigns(tmp_path) == ["camp-1"]
    with pytest.raises(CampaignError):
        RunManifest.load(tmp_path, "no-such-campaign")


def test_manifest_rejects_wrong_schema(tmp_path):
    directory = tmp_path / "camp-2"
    directory.mkdir()
    (directory / "manifest.json").write_text(json.dumps(
        {"schema": 999, "campaign_id": "camp-2", "jobs": {}}))
    with pytest.raises(CampaignError):
        RunManifest.load(tmp_path, "camp-2")


def test_reset_for_resume_skips_completed(tmp_path):
    specs = [_selftest(name, "work:10") for name in ("a", "b", "c")]
    manifest = RunManifest.create("camp-3", tmp_path, specs=specs,
                                  seed=0)
    manifest.jobs["a"].status = JobStatus.COMPLETED
    manifest.jobs["b"].status = JobStatus.CRASHED
    manifest.jobs["b"].attempts = 3
    manifest.jobs["c"].status = JobStatus.RUNNING
    manifest.interrupted = True
    rerun = manifest.reset_for_resume()
    assert rerun == ["b", "c"]
    assert manifest.jobs["a"].status is JobStatus.COMPLETED
    assert manifest.jobs["b"].status is JobStatus.PENDING
    assert manifest.jobs["b"].attempts == 0      # fresh retry budget
    assert not manifest.interrupted


# ----------------------------------------------------------------------
# in-process job execution
# ----------------------------------------------------------------------
def test_selftest_work_is_deterministic():
    spec = _selftest("w", "work:50")
    assert execute_job(spec) == execute_job(spec)


def test_selftest_fail_then_recover():
    spec = _selftest("f", "fail:2")
    with pytest.raises(MeasurementUnstable):
        execute_job(spec, attempt=1)
    assert execute_job(spec, attempt=3) == "recovered"


def test_transient_classification():
    assert is_transient(MeasurementUnstable("x", attempts=1))
    assert is_transient(SimulationTimeout("x"))
    assert not is_transient(CampaignError("x"))
    assert not is_transient(ValueError("x"))


def test_unknown_selftest_program_raises():
    with pytest.raises(CampaignError):
        execute_job(_selftest("bad", "frobnicate"))


# ----------------------------------------------------------------------
# campaigns end to end (subprocess workers)
# ----------------------------------------------------------------------
def test_campaign_runs_jobs_in_parallel_workers(tmp_path):
    specs = [_selftest("w0", "work:100"), _selftest("w1", "work:200"),
             _selftest("w2", "work:300")]
    manifest = run_campaign(specs, tmp_path, campaign_id="par",
                            seed=0, max_workers=2)
    assert manifest.all_completed()
    for record in manifest.records():
        artifact = manifest.directory / record.artifact
        assert digest_text(artifact.read_text()) == record.digest
        assert record.attempts == 1


def test_campaign_retries_flaky_job_with_backoff(tmp_path):
    events = []
    specs = [_selftest("flaky", "fail:1", max_attempts=3)]
    manifest = run_campaign(
        specs, tmp_path, campaign_id="flaky", seed=0,
        backoff_base=0.01, backoff_cap=0.05,
        on_event=lambda job_id, message: events.append(message))
    record = manifest.jobs["flaky"]
    assert record.status is JobStatus.COMPLETED
    assert record.attempts == 2
    assert any("retrying in" in event for event in events)


def test_campaign_survives_worker_self_crash(tmp_path):
    specs = [_selftest("crashy", "crash:1", max_attempts=3)]
    manifest = run_campaign(specs, tmp_path, campaign_id="crashy",
                            seed=0, backoff_base=0.01, backoff_cap=0.05)
    record = manifest.jobs["crashy"]
    assert record.status is JobStatus.COMPLETED
    assert record.attempts == 2
    artifact = manifest.directory / record.artifact
    assert artifact.read_text() == "survived"


def test_campaign_exhausts_retry_budget(tmp_path):
    specs = [_selftest("doomed", "fail:99", max_attempts=2)]
    manifest = run_campaign(specs, tmp_path, campaign_id="doomed",
                            seed=0, backoff_base=0.01, backoff_cap=0.05)
    record = manifest.jobs["doomed"]
    assert record.status is JobStatus.FAILED
    assert record.attempts == 2
    assert "selftest fault" in record.error


def test_watchdog_kills_hung_worker(tmp_path):
    specs = [_selftest("hung", "hang", timeout_s=1.0, max_attempts=1)]
    started = time.monotonic()
    manifest = run_campaign(specs, tmp_path, campaign_id="hung",
                            seed=0, stall_timeout=30.0)
    elapsed = time.monotonic() - started
    record = manifest.jobs["hung"]
    assert record.status is JobStatus.TIMED_OUT
    assert "watchdog" in record.error
    assert elapsed < 10.0          # killed near the 1s budget, not later


def test_campaign_refuses_duplicate_id(tmp_path):
    specs = [_selftest("one", "work:10")]
    run_campaign(specs, tmp_path, campaign_id="dup", seed=0)
    with pytest.raises(CampaignError):
        run_campaign(specs, tmp_path, campaign_id="dup", seed=0)


def test_resume_requires_existing_manifest(tmp_path):
    with pytest.raises(CampaignError):
        run_campaign([], tmp_path, campaign_id="ghost", resume=True)


# ----------------------------------------------------------------------
# the acceptance drill: chaos kill mid-campaign, resume, byte-match
# ----------------------------------------------------------------------
def _chaos_specs():
    # The sleep widens the chaos window so the kill lands mid-job; the
    # work rounds differ so every digest is distinct.
    return [
        _selftest("w0", "work:100"),
        _selftest("w1", "work:200"),
        _selftest("w2", "work:300:0.3"),
        _selftest("w3", "work:400:0.3"),
        _selftest("w4", "work:500:0.3"),
        _selftest("w5", "work:600:0.3"),
    ]


def test_chaos_kill_then_resume_matches_clean_run(tmp_path):
    clean = run_campaign(_chaos_specs(), tmp_path, campaign_id="clean",
                         seed=0, max_workers=2)
    assert clean.all_completed()

    chaos = ChaosMonkey(mode="kill-worker", kills=2, delay_s=0.05,
                        seed=42)
    interrupted = run_campaign(
        _chaos_specs(), tmp_path, campaign_id="chaos", seed=0,
        max_workers=2, chaos=chaos,
        backoff_base=0.01, backoff_cap=0.05)
    assert interrupted.interrupted
    assert not interrupted.all_completed()
    completed_before = {r.job_id for r in interrupted.by_status(
        JobStatus.COMPLETED)}
    assert completed_before           # resume has something to skip

    launched = []
    resumed = run_campaign(
        [], tmp_path, campaign_id="chaos", resume=True, max_workers=2,
        backoff_base=0.01, backoff_cap=0.05,
        on_event=lambda job_id, message: launched.append(
            (job_id, message)))
    assert resumed.all_completed()
    assert not resumed.interrupted

    # COMPLETED jobs were skipped: no lifecycle events for them.
    relaunched = {job_id for job_id, message in launched
                  if "started" in message}
    assert relaunched.isdisjoint(completed_before)

    # Results byte-match the uninterrupted run with the same seed.
    assert resumed.digests() == clean.digests()
    for record in resumed.records():
        a = (clean.directory / record.artifact).read_bytes()
        b = (resumed.directory / record.artifact).read_bytes()
        assert a == b


def test_resume_after_external_sigkill_of_campaign(tmp_path):
    """SIGKILL the whole campaign process mid-run (the way a real box
    dies), then resume from the manifest it left behind."""
    def drive(runs_dir):
        run_campaign(_chaos_specs(), runs_dir, campaign_id="boxdeath",
                     seed=0, max_workers=2)

    ctx = multiprocessing.get_context("fork")
    process = ctx.Process(target=drive, args=(tmp_path,))
    process.start()
    manifest_path = tmp_path / "boxdeath" / "manifest.json"
    deadline = time.monotonic() + 30.0
    # Wait until at least one job has COMPLETED, then pull the plug.
    while time.monotonic() < deadline:
        if manifest_path.exists():
            try:
                payload = json.loads(manifest_path.read_text())
            except json.JSONDecodeError:   # mid-rename is impossible,
                payload = {"jobs": {}}     # but stay paranoid
            done = [job for job in payload.get("jobs", {}).values()
                    if job["status"] == "COMPLETED"]
            if done:
                break
        time.sleep(0.01)
    else:
        process.kill()
        pytest.fail("campaign never completed a job")
    os.kill(process.pid, signal.SIGKILL)
    process.join(timeout=10.0)

    loaded = RunManifest.load(tmp_path, "boxdeath")
    assert not loaded.all_completed()
    resumed = run_campaign([], tmp_path, campaign_id="boxdeath",
                           resume=True, max_workers=2,
                           backoff_base=0.01, backoff_cap=0.05)
    assert resumed.all_completed()
    # Digests match a clean reference run with the same seed.
    reference = run_campaign(_chaos_specs(), tmp_path,
                             campaign_id="boxdeath-ref", seed=0,
                             max_workers=2)
    assert resumed.digests() == reference.digests()


def test_chaos_monkey_validation_and_determinism():
    with pytest.raises(CampaignError):
        ChaosMonkey(mode="set-fire-to-rack")
    monkey = ChaosMonkey(kills=1, delay_s=0.0, seed=1)
    assert not monkey.exhausted
    assert monkey.maybe_kill([], campaign_age=1.0) is None


# ----------------------------------------------------------------------
# chaos-interrupt accounting: the victim's attempt is charged through
# the same retry/fail path as an ordinary worker crash
# ----------------------------------------------------------------------
def _interrupted_records(tmp_path, campaign_id, max_attempts):
    specs = [_selftest("solo", "work:100:2.0",
                       max_attempts=max_attempts)]
    chaos = ChaosMonkey(mode="kill-worker", kills=1, delay_s=0.05,
                        seed=1)
    manifest = run_campaign(specs, tmp_path, campaign_id=campaign_id,
                            seed=0, max_workers=1, chaos=chaos,
                            backoff_base=0.01, backoff_cap=0.05)
    assert manifest.interrupted
    return manifest.jobs["solo"]


def test_chaos_victim_attempt_counted_with_retries_left(tmp_path):
    record = _interrupted_records(tmp_path, "chaos-acct", 3)
    # One attempt spent, retry policy applied: back to PENDING with
    # backoff — exactly what an ordinary worker crash produces.
    assert record.attempts == 1
    assert record.status is JobStatus.PENDING
    assert "chaos" in record.error
    # The interrupted manifest resumes to completion.
    resumed = run_campaign([], tmp_path, campaign_id="chaos-acct",
                           resume=True, backoff_base=0.01,
                           backoff_cap=0.05)
    assert resumed.all_completed()
    # (resume zeroes attempt counts, so the fresh run records 1)
    assert resumed.jobs["solo"].attempts == 1


def test_chaos_victim_exhausts_budget_like_ordinary_crash(tmp_path):
    record = _interrupted_records(tmp_path, "chaos-budget", 1)
    # No attempts left: terminal CRASHED, not a silent PENDING reset.
    assert record.attempts == 1
    assert record.status is JobStatus.CRASHED
    assert "chaos" in record.error


# ----------------------------------------------------------------------
# _send_error fallback paths (satellite: double send failure)
# ----------------------------------------------------------------------
class _DeadConn:
    """A pipe end whose every send raises."""

    def __init__(self, failures=2):
        self.failures = failures
        self.sent = []

    def send(self, payload):
        if self.failures > 0:
            self.failures -= 1
            raise BrokenPipeError("no reader")
        self.sent.append(payload)


def test_send_error_falls_back_to_message_only():
    from repro.runner.worker import _send_error
    conn = _DeadConn(failures=1)
    _send_error(conn, ValueError("boom"), 0.5)
    assert len(conn.sent) == 1
    kind, error, text, transient, duration = conn.sent[0]
    assert kind == "error"
    assert error is None                  # degraded: message only
    assert "ValueError: boom" in text
    assert transient is False
    assert duration == 0.5


def test_send_error_double_failure_exits_nonzero(monkeypatch):
    from repro.runner import worker

    exits = []

    def fake_exit(code):
        exits.append(code)
        raise SystemExit(code)            # stop like the real one

    monkeypatch.setattr(os, "_exit", fake_exit)
    with pytest.raises(SystemExit):
        worker._send_error(_DeadConn(failures=2), ValueError("boom"),
                           0.1)
    assert exits == [worker.SEND_FAILED_EXIT]
    assert worker.SEND_FAILED_EXIT != 0


def test_badpickle_error_degrades_to_message(tmp_path):
    """An unpicklable exception still reaches the parent (as text) via
    the fallback send, and the job fails loudly instead of hanging."""
    specs = [_selftest("bp", "badpickle", max_attempts=1)]
    manifest = run_campaign(specs, tmp_path, campaign_id="badpickle",
                            seed=0)
    record = manifest.jobs["bp"]
    assert record.status is JobStatus.FAILED
    assert "_UnpicklableError" in record.error
    assert "unpicklable selftest error" in record.error


def test_worker_without_reader_exits_send_failed(tmp_path):
    """Both sends hit a broken pipe (no reader at all): the worker must
    exit with SEND_FAILED_EXIT, never a clean 0."""
    from repro.runner.worker import SEND_FAILED_EXIT, worker_main

    ctx = multiprocessing.get_context("fork")
    recv_conn, send_conn = ctx.Pipe(duplex=False)
    heartbeat = ctx.Value("d", 0.0, lock=False)
    recv_conn.close()                     # nobody will ever read
    spec = _selftest("orphan", "fail:99", max_attempts=1)
    process = ctx.Process(target=worker_main,
                          args=(spec.to_dict(), 1, send_conn,
                                heartbeat))
    process.start()
    send_conn.close()
    process.join(timeout=30.0)
    assert process.exitcode == SEND_FAILED_EXIT


# ----------------------------------------------------------------------
# closed-pipe settle (satellite: don't wait out the watchdog)
# ----------------------------------------------------------------------
def test_closed_pipe_live_worker_finalizes_immediately(tmp_path):
    from repro.runner import CampaignRunner

    spec = _selftest("wedged", "sleep:30", timeout_s=60.0,
                     max_attempts=1)
    manifest = RunManifest.create("wedged", tmp_path, specs=[spec],
                                  seed=0, created="t")
    runner = CampaignRunner(manifest, max_workers=1,
                            stall_timeout=60.0)
    runner._launch_pass(time.monotonic())
    handle = runner._inflight["wedged"]
    assert handle.alive()
    handle.conn.close()                   # the pipe dies, the worker
    started = time.monotonic()            # stays alive (wedged)
    runner._settle_pass(time.monotonic())
    elapsed = time.monotonic() - started
    # Settled as CRASHED *now* — not after the 60s budget.
    assert elapsed < 10.0
    assert not runner._inflight
    record = manifest.jobs["wedged"]
    assert record.status is JobStatus.CRASHED
    assert record.attempts == 1
    assert "result pipe closed" in record.error
    assert "still alive" in record.error
    assert not handle.alive()             # the zombie was reaped


# ----------------------------------------------------------------------
# telemetry integration: runner counters + per-job snapshots
# ----------------------------------------------------------------------
def test_runner_lifecycle_counters(tmp_path):
    from repro import telemetry

    specs = [_selftest("ok", "work:50"),
             _selftest("flaky", "fail:1", max_attempts=3)]
    with telemetry.session() as sink:
        manifest = run_campaign(specs, tmp_path, campaign_id="count",
                                seed=0, backoff_base=0.01,
                                backoff_cap=0.05)
    assert manifest.all_completed()
    counters = sink.snapshot()
    assert counters["runner.job.launches"] == 3   # ok + flaky twice
    assert counters["runner.job.completed"] == 2
    assert counters["runner.job.retries"] == 1


def test_experiment_job_counters_land_in_manifest(tmp_path):
    specs = experiment_jobs(fast=True, seed=0, only=["fig2"])
    manifest = run_campaign(specs, tmp_path, campaign_id="tele",
                            seed=0, max_workers=1)
    assert manifest.all_completed()
    record = manifest.jobs["fig2"]
    assert record.counters["exp.runs"] == 1
    assert record.counters["cpu.btb.lookups"] > 0
    # The snapshot survives the manifest checkpoint round-trip.
    loaded = RunManifest.load(tmp_path, "tele")
    assert loaded.jobs["fig2"].counters == record.counters


def test_selftest_job_counters(tmp_path):
    # `work:` emits deterministic counters (the service aggregation
    # drills merge them); `sleep:` stays quiet
    specs = [_selftest("busy", "work:10"),
             _selftest("quiet", "sleep:0.01")]
    manifest = run_campaign(specs, tmp_path, campaign_id="tally",
                            seed=0)
    assert manifest.jobs["busy"].counters == {
        "selftest.jobs": 1, "selftest.rounds": 10}
    assert manifest.jobs["quiet"].counters == {}
    loaded = RunManifest.load(tmp_path, "tally")
    assert loaded.jobs["busy"].counters == \
        manifest.jobs["busy"].counters


# ----------------------------------------------------------------------
# interpreter deadline guard (satellite: step/cycle budget)
# ----------------------------------------------------------------------
def _infinite_loop_state():
    from repro.cpu import MachineState
    from repro.isa import Assembler
    from repro.memory import VirtualMemory

    asm = Assembler(base=0x400000)
    asm.emit("movi", "rcx", 1)
    asm.label("loop")
    asm.emit("test", "rcx", "rcx")
    asm.emit("jne8", "loop")
    asm.emit("hlt")
    program = asm.assemble()
    memory = VirtualMemory()
    program.load_into(memory)
    state = MachineState(memory, rip=program.entry)
    state.setup_stack(0x7FFF0000)
    return state


def test_ambient_deadline_raises_simulation_timeout():
    from repro.cpu import interpret
    from repro.cpu.interp import set_ambient_deadline

    set_ambient_deadline(time.monotonic() + 0.2)
    try:
        with pytest.raises(SimulationTimeout) as info:
            interpret(_infinite_loop_state(), max_instructions=10**9)
        assert info.value.deadline is True
    finally:
        set_ambient_deadline(None)


def test_explicit_deadline_beats_instruction_budget():
    from repro.cpu import interpret

    with pytest.raises(SimulationTimeout) as info:
        interpret(_infinite_loop_state(), max_instructions=10**9,
                  deadline=time.monotonic() + 0.2)
    assert info.value.deadline is True
    assert info.value.executed > 0


def test_instruction_budget_still_raises():
    from repro.cpu import interpret

    with pytest.raises(SimulationTimeout) as info:
        interpret(_infinite_loop_state(), max_instructions=100)
    assert info.value.deadline is False
    assert info.value.budget == 100


# ----------------------------------------------------------------------
# CLI integration
# ----------------------------------------------------------------------
def test_cli_campaign_fast_subset(tmp_path, capsys):
    from repro.cli import main
    code = main(["campaign", "--fast", "--seed", "0",
                 "--only", "fig5,fig7",
                 "--campaign-id", "cli-camp",
                 "--runs-dir", str(tmp_path)])
    out = capsys.readouterr().out
    assert code == 0
    assert "2 COMPLETED" in out
    assert "manifest:" in out
    manifest = RunManifest.load(tmp_path, "cli-camp")
    assert manifest.all_completed()


def test_cli_campaign_unknown_experiment(tmp_path, capsys):
    from repro.cli import main
    code = main(["campaign", "--only", "nope",
                 "--runs-dir", str(tmp_path)])
    assert code == 2
    assert "unknown experiment" in capsys.readouterr().err


# ----------------------------------------------------------------------
# campaign id generation (collision safety) and manifest back-compat
# ----------------------------------------------------------------------
def test_campaign_ids_unique_in_a_tight_burst():
    from repro.runner import new_campaign_id
    # second-granularity stamps collide trivially; the pid/counter
    # suffix must keep a same-second burst unique
    ids = [new_campaign_id() for _ in range(256)]
    assert len(set(ids)) == len(ids)
    assert all(identifier.startswith("campaign-")
               for identifier in ids)


def test_artifact_digests_independent_of_campaign_id(tmp_path):
    specs = [_selftest("solo", "work:5")]
    one = run_campaign(specs, tmp_path, campaign_id="id-one", seed=3)
    two = run_campaign(specs, tmp_path, campaign_id="id-two", seed=3)
    assert one.digests() == two.digests()


def test_schema_v1_manifest_loads_resumes_and_completes(tmp_path):
    """PR-2 era manifests (schema 1, no shard fields) must keep
    working: load with defaulted shard fields, resume, complete."""
    manifest = RunManifest.create(
        "legacy", tmp_path,
        specs=[_selftest("a", "work:5"), _selftest("b", "work:5")],
        seed=4)
    # mark one job COMPLETED so resume provably skips it
    record = manifest.jobs["a"]
    record.status = JobStatus.COMPLETED
    record.digest = "f" * 64
    manifest.save()
    payload = json.loads(manifest.path.read_text())
    payload["schema"] = 1
    del payload["shard_id"]
    del payload["parent"]
    manifest.path.write_text(json.dumps(payload))

    loaded = RunManifest.load(tmp_path, "legacy")
    assert loaded.shard_id == "" and loaded.parent == ""
    assert loaded.jobs["a"].status is JobStatus.COMPLETED

    finished = run_campaign([], tmp_path, campaign_id="legacy",
                            resume=True)
    assert finished.all_completed()
    # the completed record survived untouched (resume skipped it)
    assert finished.jobs["a"].digest == "f" * 64
    # and the manifest was upgraded to the current schema on save
    assert json.loads(finished.path.read_text())["schema"] == 2


def test_add_specs_is_idempotent(tmp_path):
    manifest = RunManifest.create(
        "camp", tmp_path, specs=[_selftest("a", "work:1")], seed=0)
    added = manifest.add_specs([_selftest("a", "work:1"),
                                _selftest("b", "work:1")])
    assert added == ["b"]
    assert manifest.add_specs([_selftest("b", "work:1")]) == []
    assert sorted(manifest.jobs) == ["a", "b"]


# ----------------------------------------------------------------------
# vectorized batch workers (--vectorize N)
# ----------------------------------------------------------------------
def test_vectorize_validation(tmp_path):
    with pytest.raises(CampaignError, match="vectorize"):
        run_campaign([_selftest("a", "work:10")], tmp_path,
                     campaign_id="v0", seed=0, vectorize=0)


def test_vectorize_incompatible_with_chaos(tmp_path):
    with pytest.raises(CampaignError, match="chaos"):
        run_campaign([_selftest("a", "work:10")], tmp_path,
                     campaign_id="vc", seed=0, vectorize=2,
                     chaos=ChaosMonkey(mode="kill-worker", kills=1,
                                       delay_s=0.0, seed=0))


def test_vectorized_campaign_matches_solo_digests(tmp_path):
    specs = [_selftest(f"w{i}", f"work:{100 + 10 * i}")
             for i in range(5)]
    batched = run_campaign(specs, tmp_path, campaign_id="vec",
                           seed=0, max_workers=2, vectorize=3)
    solo = run_campaign(
        [_selftest(f"w{i}", f"work:{100 + 10 * i}") for i in range(5)],
        tmp_path, campaign_id="solo", seed=0, max_workers=2)
    assert batched.all_completed() and solo.all_completed()
    assert batched.digests() == solo.digests()
    for record in batched.records():
        assert record.attempts == 1
        # per-job artifacts and counters ride exactly like solo runs
        artifact = batched.directory / record.artifact
        assert digest_text(artifact.read_text()) == record.digest
        assert record.counters.get("selftest.jobs") == 1


def test_vectorized_batch_retries_only_the_failed_job(tmp_path):
    specs = [_selftest("a", "work:50"),
             _selftest("b", "fail:1", max_attempts=3),
             _selftest("c", "work:50")]
    manifest = run_campaign(specs, tmp_path, campaign_id="vf", seed=0,
                            vectorize=3, backoff_base=0.01,
                            backoff_cap=0.05)
    assert manifest.all_completed()
    assert manifest.jobs["a"].attempts == 1
    assert manifest.jobs["b"].attempts == 2
    assert manifest.jobs["c"].attempts == 1


def test_vectorized_batch_crash_loses_only_unfinished_jobs(tmp_path):
    specs = [_selftest("a", "work:50"),
             _selftest("b", "crash:1", max_attempts=3),
             _selftest("c", "work:50", max_attempts=3)]
    manifest = run_campaign(specs, tmp_path, campaign_id="vx", seed=0,
                            vectorize=3, backoff_base=0.01,
                            backoff_cap=0.05)
    assert manifest.all_completed()
    # "a" settled before the crash; "b" crashed; "c" never started in
    # the first batch — the parent retried exactly the unheard-from
    assert manifest.jobs["a"].attempts == 1
    assert manifest.jobs["b"].attempts == 2
    assert manifest.jobs["c"].attempts == 2


def test_watchdog_kills_hung_batch(tmp_path):
    specs = [_selftest("hog", "hang", timeout_s=1.0, max_attempts=1),
             _selftest("tail", "work:50", timeout_s=1.0,
                       max_attempts=3)]
    started = time.monotonic()
    manifest = run_campaign(specs, tmp_path, campaign_id="vh", seed=0,
                            max_workers=1, vectorize=2,
                            stall_timeout=30.0, backoff_base=0.01,
                            backoff_cap=0.05)
    elapsed = time.monotonic() - started
    assert manifest.jobs["hog"].status is JobStatus.TIMED_OUT
    assert "watchdog" in manifest.jobs["hog"].error
    # the job the hog starved was retried in a fresh batch
    assert manifest.jobs["tail"].status is JobStatus.COMPLETED
    assert manifest.jobs["tail"].attempts == 2
    assert elapsed < 15.0


def test_vectorized_resume_skips_completed(tmp_path):
    specs = [_selftest(f"r{i}", "work:40") for i in range(4)]
    first = run_campaign(specs, tmp_path, campaign_id="vr", seed=0,
                         vectorize=2)
    assert first.all_completed()
    resumed = run_campaign([], tmp_path, campaign_id="vr",
                           resume=True, vectorize=2)
    assert resumed.all_completed()
    for record in resumed.records():
        assert record.attempts == 1       # nothing re-ran
