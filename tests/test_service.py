"""The sharded campaign service: deterministic partitioning, shard
fault domains, the heartbeat-lease circuit breaker, quarantine +
reassignment, DEGRADED loss accounting, and cross-shard aggregate
convergence.

Like the runner tests, the heavyweight scenarios use KIND_SELFTEST
jobs so the scheduler machinery is exercised without paying for real
experiments.  Chaos scenarios pin their victim shard (``target=``) so
assertions are deterministic.
"""

import json
import threading
import time

import pytest

from repro.errors import CampaignError, ServiceError
from repro.runner import JobStatus, RunManifest
from repro.runner.jobs import (JobSpec, KIND_SELFTEST,
                               specs_from_payload)
from repro.service import (CAMPAIGN_COMPLETED, CAMPAIGN_DEGRADED,
                           CAMPAIGN_INTERRUPTED, CHAOS_KILL_SHARD,
                           CHAOS_STALL_SHARD, CampaignService,
                           SHARD_QUARANTINED, ServiceChaos,
                           ServiceManifest, create_service_campaign,
                           list_service_campaigns,
                           load_or_adopt_campaign, merge_shards,
                           partition_jobs, resume_service_campaign,
                           run_service_campaign, shard_name)


def _selftest(job_id, program, **kwargs):
    kwargs.setdefault("timeout_s", 30.0)
    kwargs.setdefault("max_attempts", 2)
    return JobSpec(job_id=job_id, kind=KIND_SELFTEST, name=program,
                   seed=0, **kwargs)


def _specs(count=6, program="work:3:0.05"):
    return [_selftest(f"j{index:02d}", program)
            for index in range(count)]


def _aggregate(runs_dir, campaign_id):
    path = runs_dir / campaign_id / "aggregate.json"
    return json.loads(path.read_text())


# ----------------------------------------------------------------------
# partitioner
# ----------------------------------------------------------------------
def test_partition_is_deterministic_and_order_independent():
    specs = _specs(11)
    forward = partition_jobs(specs, 3, seed=7)
    backward = partition_jobs(list(reversed(specs)), 3, seed=7)
    assert forward == backward
    again = partition_jobs(specs, 3, seed=7)
    assert again == forward


def test_partition_balanced_within_one():
    for count in (5, 8, 17, 100):
        shards = partition_jobs(_specs(count), 4, seed=0)
        sizes = [len(jobs) for jobs in shards.values()]
        assert sum(sizes) == count
        assert max(sizes) - min(sizes) <= 1


def test_partition_seed_changes_layout_not_membership():
    specs = _specs(16)
    a = partition_jobs(specs, 4, seed=1)
    b = partition_jobs(specs, 4, seed=2)
    all_a = sorted(s.job_id for jobs in a.values() for s in jobs)
    all_b = sorted(s.job_id for jobs in b.values() for s in jobs)
    assert all_a == all_b == sorted(s.job_id for s in specs)
    assert a != b          # different spread (overwhelmingly likely)


def test_partition_clamps_shards_to_job_count():
    shards = partition_jobs(_specs(2), 8, seed=0)
    assert len(shards) == 2
    assert set(shards) == {shard_name(0), shard_name(1)}


def test_partition_rejects_bad_input():
    with pytest.raises(ServiceError):
        partition_jobs(_specs(3), 0)
    with pytest.raises(ServiceError):
        partition_jobs([], 2)
    dupes = [_selftest("same", "work:1"), _selftest("same", "work:1")]
    with pytest.raises(ServiceError):
        partition_jobs(dupes, 2)


# ----------------------------------------------------------------------
# submission payloads
# ----------------------------------------------------------------------
def test_specs_from_payload_jobs_path():
    payload = {"jobs": [
        {"job_id": "a", "kind": "selftest", "name": "work:1"},
        {"job_id": "b", "kind": "selftest", "name": "work:2"},
    ]}
    specs = specs_from_payload(payload)
    assert [s.job_id for s in specs] == ["a", "b"]


def test_specs_from_payload_experiments_path():
    specs = specs_from_payload(
        {"experiments": {"only": ["fig2"], "fast": True, "seed": 3}})
    assert [s.job_id for s in specs] == ["fig2"]
    assert specs[0].fast and specs[0].seed == 3


def test_specs_from_payload_rejects_garbage():
    with pytest.raises(CampaignError):
        specs_from_payload({})
    with pytest.raises(CampaignError):
        specs_from_payload({"jobs": []})
    with pytest.raises(CampaignError):
        specs_from_payload({"jobs": [{"job_id": "a"}]})
    with pytest.raises(CampaignError):
        specs_from_payload({"jobs": [
            {"job_id": "a", "kind": "selftest", "name": "work:1"},
            {"job_id": "a", "kind": "selftest", "name": "work:1"}]})
    with pytest.raises(CampaignError):
        specs_from_payload({"experiments": {"bogus_option": 1}})


# ----------------------------------------------------------------------
# service manifest persistence
# ----------------------------------------------------------------------
def test_service_manifest_roundtrip(tmp_path):
    manifest = create_service_campaign(
        _specs(5), tmp_path, campaign_id="camp", seed=9, shards=2)
    loaded = ServiceManifest.load(tmp_path, "camp")
    assert loaded.campaign_id == "camp"
    assert loaded.seed == 9
    assert sorted(loaded.shards) == ["s00", "s01"]
    assert loaded.job_ids() == [f"j{i:02d}" for i in range(5)]
    # each shard has a checkpointed v2 engine manifest of its own
    for entry in loaded.shards.values():
        shard = RunManifest.load(tmp_path / "camp" / "shards",
                                 entry.shard_id)
        assert shard.parent == "camp"
        assert shard.shard_id == entry.shard_id
        assert sorted(shard.jobs) == sorted(entry.jobs)
    assert list_service_campaigns(tmp_path) == ["camp"]


def test_create_refuses_existing_campaign(tmp_path):
    create_service_campaign(_specs(2), tmp_path, campaign_id="camp",
                            shards=2)
    with pytest.raises(ServiceError):
        create_service_campaign(_specs(2), tmp_path,
                                campaign_id="camp", shards=2)


def test_chaos_rejects_unknown_mode():
    with pytest.raises(ServiceError):
        ServiceChaos(mode="set-on-fire")


# ----------------------------------------------------------------------
# clean sharded completion
# ----------------------------------------------------------------------
def test_sharded_campaign_completes_and_merges(tmp_path):
    manifest = run_service_campaign(
        _specs(6), tmp_path, campaign_id="clean", seed=7, shards=3)
    assert manifest.status == CAMPAIGN_COMPLETED
    aggregate = _aggregate(tmp_path, "clean")
    assert aggregate["status"] == CAMPAIGN_COMPLETED
    assert sorted(aggregate["jobs"]) == [f"j{i:02d}" for i in range(6)]
    assert all(entry["status"] == "COMPLETED" and entry["digest"]
               for entry in aggregate["jobs"].values())
    assert aggregate["lost"] == {}
    # merged counters came from the per-job telemetry sessions
    assert aggregate["counters"]
    # the digest is recomputable from the persisted state
    assert merge_shards(manifest)["digest"] == aggregate["digest"]


def test_aggregate_digest_excludes_campaign_and_shard_layout(tmp_path):
    one = run_service_campaign(_specs(6), tmp_path,
                               campaign_id="one", seed=7, shards=1)
    three = run_service_campaign(_specs(6), tmp_path,
                                 campaign_id="three", seed=7, shards=3)
    assert one.status == three.status == CAMPAIGN_COMPLETED
    assert (_aggregate(tmp_path, "one")["digest"]
            == _aggregate(tmp_path, "three")["digest"])


# ----------------------------------------------------------------------
# chaos: kill-shard — quarantine, reassignment, convergence
# ----------------------------------------------------------------------
def test_kill_shard_quarantines_reassigns_and_converges(tmp_path):
    clean = run_service_campaign(_specs(6), tmp_path,
                                 campaign_id="clean", seed=7, shards=3)
    assert clean.status == CAMPAIGN_COMPLETED
    events = []
    chaos = ServiceChaos(mode=CHAOS_KILL_SHARD, strikes=1,
                         delay_s=0.05, seed=1, target="s01")
    manifest = run_service_campaign(
        _specs(6), tmp_path, campaign_id="chaos", seed=7, shards=3,
        options={"breaker_threshold": 1}, chaos=chaos,
        on_event=lambda shard, message: events.append((shard,
                                                       message)))
    assert manifest.status == CAMPAIGN_COMPLETED
    assert manifest.shards["s01"].status == SHARD_QUARANTINED
    # its jobs were reassigned somewhere and completed
    reassigned = set(manifest.reassignments)
    assert reassigned and reassigned <= set(
        manifest.shards["s01"].jobs)
    assert any("QUARANTINED" in message for _, message in events)
    # convergence: byte-identical merged digest despite the chaos
    assert (_aggregate(tmp_path, "chaos")["digest"]
            == _aggregate(tmp_path, "clean")["digest"])


def test_kill_shard_below_threshold_restarts_in_place(tmp_path):
    chaos = ServiceChaos(mode=CHAOS_KILL_SHARD, strikes=1,
                         delay_s=0.05, seed=1, target="s00")
    manifest = run_service_campaign(
        _specs(4), tmp_path, campaign_id="restart", seed=7, shards=2,
        options={"breaker_threshold": 2}, chaos=chaos)
    assert manifest.status == CAMPAIGN_COMPLETED
    assert manifest.shards["s00"].restarts >= 1
    assert manifest.shards["s00"].status != SHARD_QUARANTINED
    assert manifest.reassignments == {}


# ----------------------------------------------------------------------
# chaos: stall-shard — the heartbeat lease trips the breaker
# ----------------------------------------------------------------------
def test_stalled_shard_trips_breaker_within_lease_budget(tmp_path):
    """A SIGSTOPped shard never exits, so only the lease can detect
    it.  The breaker must trip within a small multiple of the lease —
    far sooner than any per-job timeout (jobs here have 60s budgets)
    — proving the monotonic lease clock drove the quarantine."""
    lease_s = 0.8
    events = []

    def on_event(shard, message):
        events.append((time.monotonic(), shard, message))

    chaos = ServiceChaos(mode=CHAOS_STALL_SHARD, strikes=1,
                         delay_s=0.1, seed=1, target="s00")
    manifest = run_service_campaign(
        [_selftest(f"j{i}", "work:3:0.3", timeout_s=60.0)
         for i in range(4)],
        tmp_path, campaign_id="stall", seed=7, shards=2,
        options={"breaker_threshold": 1, "lease_s": lease_s},
        chaos=chaos, on_event=on_event)
    assert manifest.status == CAMPAIGN_COMPLETED
    assert manifest.shards["s00"].status == SHARD_QUARANTINED
    assert chaos.events, "chaos never fired"
    stalled_at = chaos.events[0][0]
    tripped = [stamp for stamp, shard, message in events
               if shard == "s00" and "lease expired" in message]
    assert tripped, f"lease never tripped; events: {events}"
    # lease + one heartbeat interval + generous scheduler slack —
    # and nowhere near the 60s job budget
    assert tripped[0] - stalled_at < lease_s + 5.0


# ----------------------------------------------------------------------
# graceful degradation: exact loss accounting
# ----------------------------------------------------------------------
def test_exhausted_reassignment_budget_degrades_exactly(tmp_path):
    chaos = ServiceChaos(mode=CHAOS_KILL_SHARD, strikes=1,
                         delay_s=0.05, seed=1, target="s01")
    manifest = run_service_campaign(
        _specs(6), tmp_path, campaign_id="degraded", seed=7, shards=3,
        options={"breaker_threshold": 1, "max_reassignments": 0},
        chaos=chaos)
    assert manifest.status == CAMPAIGN_DEGRADED
    aggregate = _aggregate(tmp_path, "degraded")
    assert aggregate["status"] == CAMPAIGN_DEGRADED
    # exact accounting: the quarantined shard's unfinished jobs, no
    # more and no less, attributed to the shard that lost them
    lost = aggregate["lost"]
    assert set(lost) == {"s01"}
    statuses = {job: entry["status"]
                for job, entry in aggregate["jobs"].items()}
    assert sorted(lost["s01"]) == sorted(
        job for job, status in statuses.items() if status == "LOST")
    completed = [job for job, status in statuses.items()
                 if status == "COMPLETED"]
    assert sorted(completed + lost["s01"]) == sorted(statuses)


def test_resume_restores_lost_jobs_and_converges(tmp_path):
    clean = run_service_campaign(_specs(6), tmp_path,
                                 campaign_id="clean", seed=7, shards=3)
    chaos = ServiceChaos(mode=CHAOS_KILL_SHARD, strikes=1,
                         delay_s=0.05, seed=1, target="s01")
    degraded = run_service_campaign(
        _specs(6), tmp_path, campaign_id="degraded", seed=7, shards=3,
        options={"breaker_threshold": 1, "max_reassignments": 0},
        chaos=chaos)
    assert degraded.status == CAMPAIGN_DEGRADED
    resumed = run_service_campaign(
        [], tmp_path, campaign_id="degraded", resume=True)
    assert resumed.status == CAMPAIGN_COMPLETED
    assert resumed.lost == {}
    assert (_aggregate(tmp_path, "degraded")["digest"]
            == _aggregate(tmp_path, "clean")["digest"])


# ----------------------------------------------------------------------
# interrupt + resume
# ----------------------------------------------------------------------
def test_stop_event_interrupts_resumably_and_converges(tmp_path):
    clean = run_service_campaign(_specs(6, "work:3:0.15"), tmp_path,
                                 campaign_id="clean", seed=7, shards=2)
    stop = threading.Event()

    def stop_on_first_completion(shard, message):
        if "COMPLETED" in message:
            stop.set()

    interrupted = run_service_campaign(
        _specs(6, "work:3:0.15"), tmp_path,
        campaign_id="resumable", seed=7, shards=2,
        stop_event=stop, on_event=stop_on_first_completion)
    assert interrupted.status == CAMPAIGN_INTERRUPTED
    assert not (tmp_path / "resumable" / "aggregate.json").exists()
    resumed = run_service_campaign(
        [], tmp_path, campaign_id="resumable", resume=True)
    assert resumed.status == CAMPAIGN_COMPLETED
    assert (_aggregate(tmp_path, "resumable")["digest"]
            == _aggregate(tmp_path, "clean")["digest"])


def test_resume_requires_campaign_id(tmp_path):
    with pytest.raises(ServiceError):
        run_service_campaign([], tmp_path, resume=True)
    with pytest.raises(ServiceError):
        resume_service_campaign(tmp_path, "never-existed")


# ----------------------------------------------------------------------
# legacy v1 adoption
# ----------------------------------------------------------------------
def _write_v1_campaign(runs_dir, campaign_id, specs):
    """A schema-v1 manifest exactly as the pre-service runner wrote
    it: no shard_id/parent fields."""
    manifest = RunManifest.create(campaign_id, runs_dir, specs=specs,
                                  seed=5)
    manifest.save()
    payload = json.loads(manifest.path.read_text())
    payload["schema"] = 1
    payload.pop("shard_id")
    payload.pop("parent")
    manifest.path.write_text(json.dumps(payload))
    return manifest


def test_legacy_v1_campaign_adopts_and_completes(tmp_path):
    _write_v1_campaign(tmp_path, "old", _specs(3))
    adopted = load_or_adopt_campaign(tmp_path, "old")
    assert list(adopted.shards) == ["s00"]
    assert adopted.shards["s00"].directory == "."
    assert adopted.seed == 5
    resumed = resume_service_campaign(tmp_path, "old")
    finished = CampaignService(resumed).run()
    assert finished.status == CAMPAIGN_COMPLETED
    aggregate = _aggregate(tmp_path, "old")
    assert sorted(aggregate["jobs"]) == [f"j{i:02d}" for i in range(3)]
    # the engine manifest in place was upgraded to schema v2 and the
    # original job records live on
    upgraded = RunManifest.load(tmp_path, "old")
    assert upgraded.all_completed()


def test_adopting_missing_campaign_raises(tmp_path):
    with pytest.raises(ServiceError):
        load_or_adopt_campaign(tmp_path, "ghost")
