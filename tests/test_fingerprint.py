"""Fingerprinting: slicing, similarity, sequence matcher, corpus."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.fingerprint import (FingerprintIndex, FunctionTrace,
                               apply_measurement_noise, downsample,
                               function_traces_of_length,
                               generate_corpus, local_alignment_score,
                               measured_trace, rank_victims,
                               retire_unit_starts, sequence_similarity,
                               set_similarity, slice_trace)

_pc_sets = st.frozensets(st.integers(0, 400), min_size=1, max_size=60)


class TestSetSimilarity:
    @given(_pc_sets, _pc_sets)
    def test_bounds(self, a, b):
        assert 0.0 <= set_similarity(a, b) <= 1.0

    @given(_pc_sets)
    def test_identity(self, a):
        assert set_similarity(a, a) == 1.0

    @given(_pc_sets)
    def test_subset_of_reference_is_perfect(self, a):
        """Missing measurements (fusion drops) cannot hurt: S ⊆ S*
        scores 1.0 — the property §7.3 relies on."""
        reference = set(a) | {10_000, 10_001}
        assert set_similarity(a, reference) == 1.0

    def test_disjoint_is_zero(self):
        assert set_similarity({1, 2}, {3, 4}) == 0.0

    def test_empty_victim(self):
        assert set_similarity([], {1}) == 0.0


class TestSlicing:
    def test_straightline_single_trace(self):
        pcs = [0x100, 0x103, 0x106]
        traces = slice_trace(pcs)
        assert len(traces) == 1
        assert traces[0].normalized() == [0, 3, 6]

    def test_call_and_ret(self):
        # caller at 0x100, call at 0x106 -> callee 0x200 (aligned),
        # ret back to 0x10B
        pcs = [0x100, 0x103, 0x106, 0x200, 0x204, 0x10B, 0x10E]
        traces = slice_trace(pcs)
        assert len(traces) == 2
        caller, callee = traces
        assert caller.pcs == [0x100, 0x103, 0x106, 0x10B, 0x10E]
        assert callee.entry == 0x200
        assert callee.pcs == [0x200, 0x204]
        assert callee.depth == 1

    def test_nested_calls(self):
        pcs = [0x100, 0x105,            # call -> f
               0x200, 0x205,            # f: call -> g
               0x300, 0x303,            # g body
               0x20A, 0x20D,            # back in f
               0x10A]                   # back in caller
        traces = slice_trace(pcs)
        assert [t.entry for t in traces] == [0x100, 0x200, 0x300]
        assert traces[1].pcs == [0x200, 0x205, 0x20A, 0x20D]

    def test_data_access_gates_call_detection(self):
        pcs = [0x100, 0x105, 0x200, 0x204]
        # the far jump step (index 2) did NOT touch data: plain jump
        flags = [True, True, False, True]
        traces = slice_trace(pcs, flags)
        assert len(traces) == 1

    def test_unaligned_far_jump_is_not_a_call(self):
        pcs = [0x100, 0x105, 0x209, 0x20C]   # target not 16-aligned
        traces = slice_trace(pcs)
        assert len(traces) == 1

    def test_loop_back_edges_stay_in_function(self):
        pcs = [0x100, 0x103, 0x110, 0x103, 0x110, 0x103]
        traces = slice_trace(pcs)
        assert len(traces) == 1

    def test_length_filter(self):
        traces = [FunctionTrace(entry=0, pcs=[0, 1, 2]),
                  FunctionTrace(entry=0, pcs=list(range(10)))]
        assert function_traces_of_length(traces, minimum=4) == \
            [traces[1]]

    def test_empty_trace(self):
        assert slice_trace([]) == []


class TestMeasurementModel:
    def test_fusion_drops_jcc(self):
        from repro.isa import make
        instructions = {
            0x100: make("cmpi8", 0, 5),      # fusible, 4 bytes
            0x104: make("je8", 10),          # fuses
            0x110: make("nop"),
        }
        trace = [0x100, 0x104, 0x110]
        units = retire_unit_starts(trace, instructions)
        assert units == [0x100, 0x110]

    def test_non_adjacent_does_not_fuse(self):
        from repro.isa import make
        instructions = {
            0x100: make("cmpi8", 0, 5),
            0x108: make("je8", 10),          # gap: not adjacent
        }
        assert retire_unit_starts([0x100, 0x108], instructions) == \
            [0x100, 0x108]

    def test_noise_rates(self):
        units = list(range(0, 10_000, 4))
        noisy = apply_measurement_noise(units, error_rate=0.1,
                                        drop_rate=0.1, seed=1)
        kept = len(noisy) / len(units)
        assert 0.85 < kept < 0.95
        flipped = sum(1 for pc in noisy if pc % 4 != 0)
        assert 0.05 < flipped / len(units) < 0.15

    def test_zero_noise_identity(self):
        units = [1, 2, 3]
        assert apply_measurement_noise(units) == units


class TestSequenceMatcher:
    def test_identical_sequences(self):
        seq = [0, 3, 6, 9, 12]
        assert sequence_similarity(seq, seq) == 1.0

    def test_disjoint_sequences(self):
        assert sequence_similarity([0, 3, 6], [100, 200]) < 0.2

    def test_tolerates_small_perturbation(self):
        reference = list(range(0, 60, 3))
        victim = [pc + (1 if index == 5 else 0)
                  for index, pc in enumerate(reference)]
        assert sequence_similarity(victim, reference) > 0.9

    def test_order_matters_unlike_sets(self):
        reference = [0, 10, 20, 30, 40, 50]
        shuffled = [50, 30, 10, 40, 0, 20]
        assert set_similarity(shuffled, reference) == 1.0
        assert sequence_similarity(shuffled, reference) < \
            sequence_similarity(reference, reference)

    def test_downsample(self):
        assert downsample(list(range(100)), 10) == \
            [0, 10, 20, 30, 40, 50, 60, 70, 80, 90]
        assert downsample([1, 2], 10) == [1, 2]

    @given(st.lists(st.integers(0, 100), min_size=1, max_size=20),
           st.lists(st.integers(0, 100), min_size=1, max_size=20))
    def test_bounds(self, a, b):
        assert 0.0 <= sequence_similarity(a, b) <= 1.0


class TestIndex:
    def test_ranking(self):
        index = FingerprintIndex()
        index.add_reference("f", {0, 3, 6, 9})
        index.add_reference("g", {0, 5, 10, 15})
        victim = FunctionTrace(entry=0x100,
                               pcs=[0x100, 0x103, 0x106, 0x109])
        matches = index.match(victim)
        assert matches[0].reference == "f"
        assert matches[0].similarity == 1.0
        assert index.best_match(victim).reference == "f"

    def test_rank_victims_view(self):
        victims = [
            ("a", FunctionTrace(entry=0, pcs=[0, 3, 6])),
            ("b", FunctionTrace(entry=0, pcs=[0, 4, 8])),
        ]
        ranked = rank_victims(victims, {0, 3, 6})
        assert ranked[0][0] == "a" and ranked[0][1] == 1.0

    def test_empty_index_raises(self):
        with pytest.raises(ValueError):
            FingerprintIndex().best_match(
                FunctionTrace(entry=0, pcs=[0]))


class TestCorpus:
    @pytest.fixture(scope="class")
    def corpus(self):
        return generate_corpus(size=60, seed=5)

    def test_size_and_names_unique(self, corpus):
        assert len(corpus) == 60
        assert len({fn.name for fn in corpus}) == 60

    def test_deterministic(self, corpus):
        again = generate_corpus(size=60, seed=5)
        assert [fn.static_pcs for fn in again] == \
            [fn.static_pcs for fn in corpus]

    def test_self_similarity_high(self, corpus):
        sims = [set_similarity(fn.measured, fn.static_pcs)
                for fn in corpus]
        assert sorted(sims)[len(sims) // 2] > 0.9

    def test_cross_similarity_lower(self, corpus):
        import random
        rng = random.Random(0)
        cross = []
        for _ in range(100):
            a, b = rng.sample(corpus, 2)
            cross.append(set_similarity(a.measured, b.static_pcs))
        assert sorted(cross)[50] < 0.6

    def test_traces_normalized(self, corpus):
        for fn in corpus[:10]:
            assert all(pc >= -3 for pc in fn.measured)
            assert 0 in fn.static_pcs or min(fn.static_pcs) >= 0
