"""ExtractedTrace data model."""

from repro.core import ExtractedTrace, StepRecord


def _trace(pcs):
    return ExtractedTrace(steps=[
        StepRecord(index=i, page_bases=(0x400000,), pc=pc)
        for i, pc in enumerate(pcs)
    ])


def test_pcs_drop_unresolved():
    trace = _trace([1, None, 3])
    assert trace.pcs == [1, 3]
    assert trace.resolution_rate == 2 / 3


def test_accuracy_positional():
    trace = _trace([1, 2, 3, 4])
    assert trace.accuracy_against([1, 2, 3, 4]) == 1.0
    assert trace.accuracy_against([1, 2, 9, 4]) == 0.75
    # length mismatch counts against
    assert trace.accuracy_against([1, 2, 3, 4, 5]) == 0.8


def test_empty():
    trace = _trace([])
    assert trace.resolution_rate == 0.0
    assert trace.accuracy_against([]) == 1.0
