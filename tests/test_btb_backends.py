"""Multi-uarch BTB backend family.

Covers the strategy interface's four axes (geometry, indexing, hit
semantics, replacement), the accounting / invalidation bugfixes that
landed with the refactor, and a full-observable fast/slow equivalence
run per backend.
"""

import pytest
from hypothesis import given, strategies as st

from repro import telemetry
from repro.cpu import (BTB, Core, MachineState, StopReason, generation,
                       set_fast_path)
from repro.cpu.btb import reconstruct_end_byte
from repro.cpu.btb_backends import (BACKEND_CLASSES, backend_fields,
                                    btb_set_bits, make_backend)
from repro.cpu.config import BTB_BACKENDS, backend_generation
from repro.cpu.decoded import (Superblock, build_superblock,
                               fast_path_enabled)
from repro.errors import CpuError
from repro.isa import Assembler, Kind
from repro.memory import VirtualMemory
from repro.victims.library import build_gcd_victim

BACKENDS = tuple(BTB_BACKENDS)

_addr = st.integers(min_value=0, max_value=(1 << 47) - 1)


@pytest.fixture(autouse=True)
def _restore_fast_path():
    before = fast_path_enabled()
    yield
    set_fast_path(before)


def _config(backend, **overrides):
    """Skylake base on the named design (overrides must not collide
    with the design's pinned geometry)."""
    return backend_generation(backend, base=generation("skylake"),
                              **overrides)


# ----------------------------------------------------------------------
# field-split properties
# ----------------------------------------------------------------------
class TestFieldProperties:
    def test_registry_is_complete(self):
        assert set(BACKEND_CLASSES) == set(BACKENDS)
        for backend in BACKENDS:
            assert make_backend(_config(backend)).kind == backend

    def test_power_of_two_validation(self):
        with pytest.raises(CpuError):
            btb_set_bits(300)
        with pytest.raises(CpuError):
            btb_set_bits(0)
        with pytest.raises(CpuError):
            BTB(generation("skylake", btb_backend="arm", btb_sets=96))

    def test_unknown_backend_rejected(self):
        with pytest.raises(CpuError):
            make_backend(generation("skylake", btb_backend="pentium4"))
        with pytest.raises(ValueError):
            backend_generation("pentium4")

    @pytest.mark.parametrize("backend", BACKENDS)
    @given(address=_addr)
    def test_aliasing_at_keep_boundary(self, backend, address):
        """Coordinates repeat exactly every 2**tag_keep_bits bytes and
        never at half that distance (on every design the triple covers
        all kept address bits)."""
        config = _config(backend)
        strategy = make_backend(config)
        distance = config.collision_distance
        assert strategy.split(address) == strategy.split(
            address + distance)
        assert strategy.split(address) != strategy.split(
            address + distance // 2)

    @given(address=_addr)
    def test_8_and_16_gib_boundaries(self, address):
        """The paper's generation split: SkyLake-family keeps 33 bits
        (8 GiB aliases), IceLake 34 (16 GiB)."""
        sky = dict(tag_keep_bits=33, btb_sets=512)
        icl = dict(tag_keep_bits=34, btb_sets=512)
        assert (backend_fields(address, **sky)
                == backend_fields(address + (1 << 33), **sky))
        assert (backend_fields(address, **icl)
                != backend_fields(address + (1 << 33), **icl))
        assert (backend_fields(address, **icl)
                == backend_fields(address + (1 << 34), **icl))

    @pytest.mark.parametrize("backend", BACKENDS)
    @given(address=_addr)
    def test_reconstruct_round_trip(self, backend, address):
        """The offset field is the byte within the 32-byte fetch block
        on every design (a front-end property), so reconstructing the
        anchor from the fetch PC's own block is the identity."""
        _, _, offset = make_backend(_config(backend)).split(address)
        assert reconstruct_end_byte(address, offset) == address

    def test_anchor_byte_per_design(self):
        last_byte = 0x40_0013
        for backend in BACKENDS:
            strategy = make_backend(_config(backend))
            anchor = strategy.anchor_pc(last_byte, 4)
            if strategy.last_byte_index:
                assert backend == "intel"
                assert anchor == last_byte
            else:
                assert anchor == last_byte - 3


# ----------------------------------------------------------------------
# hit semantics
# ----------------------------------------------------------------------
class TestHitSemantics:
    @pytest.mark.parametrize("backend", ("arm", "sodor", "orcs"))
    def test_exact_designs_hit_only_at_the_anchor(self, backend):
        btb = BTB(_config(backend))
        btb.allocate(0x40_0010, target=0x999, kind=Kind.DIRECT_JUMP)
        assert btb.lookup(0x40_0010) is not None
        assert btb.lookup(0x40_0008) is None      # below: no range hit
        assert btb.lookup(0x40_0011) is None      # above

    def test_intel_still_range_hits(self):
        btb = BTB(_config("intel"))
        btb.allocate(0x40_0010, target=0x999, kind=Kind.DIRECT_JUMP)
        assert btb.lookup(0x40_0008) is not None  # Takeaway 2


# ----------------------------------------------------------------------
# replacement policies
# ----------------------------------------------------------------------
class TestSodorDirectMapped:
    def test_same_set_unconditionally_overwrites(self):
        config = _config("sodor")
        assert config.btb_ways == 1
        btb = BTB(config)
        first = 0x40_0010
        second = first + (1 << 12)    # same set (bits [2,12)), new tag
        btb.allocate(first, 0x1, Kind.DIRECT_JUMP)
        assert btb.stats.evictions == 0
        btb.allocate(second, 0x2, Kind.DIRECT_JUMP)
        assert btb.stats.evictions == 1
        assert btb.lookup(first) is None
        assert btb.lookup(second) is not None


#: orcs: bits [2,9) index 128 sets, so +512 stays in-set with a new tag
_ORCS_STRIDE = 1 << 9


def _filled_orcs():
    """An orcs BTB with one set's four ways filled, in stamp order."""
    btb = BTB(_config("orcs"))
    anchors = [0x40_0010 + i * _ORCS_STRIDE for i in range(4)]
    entries = [btb.allocate(a, 0x1, Kind.DIRECT_JUMP) for a in anchors]
    assert btb.stats.evictions == 0
    return btb, anchors, entries


class TestOrcsClock:
    def test_touch_does_not_refresh_the_stamp(self):
        """Clock eviction is allocation-ordered: a correct prediction
        leaves the stamp alone, so the oldest *allocation* is evicted
        even if it predicted correctly just now."""
        btb, anchors, _ = _filled_orcs()
        btb.touch(btb.lookup(anchors[0]))
        btb.allocate(anchors[0] + 4 * _ORCS_STRIDE, 0x2,
                     Kind.DIRECT_JUMP)
        assert btb.lookup(anchors[0]) is None     # evicted despite touch
        assert btb.lookup(anchors[1]) is not None

    def test_lru_backends_do_refresh(self):
        btb = BTB(_config("arm"))
        stride = 1 << 13              # arm: bits [4,13) index 512 sets
        anchors = [0x40_0010 + i * stride for i in range(4)]
        for anchor in anchors:
            btb.allocate(anchor, 0x1, Kind.DIRECT_JUMP)
        btb.touch(btb.lookup(anchors[0]))
        btb.allocate(anchors[0] + 4 * stride, 0x2, Kind.DIRECT_JUMP)
        assert btb.lookup(anchors[0]) is not None  # refresh saved it
        assert btb.lookup(anchors[1]) is None      # next-oldest evicted


class _PickLast:
    """Deterministic rng stub for evict_spurious."""

    @staticmethod
    def choice(candidates):
        return candidates[-1]


class TestInvalidationBookkeeping:
    """Bugfix: invalidations must route through the backend's
    replacement bookkeeping, not flip ``entry.valid`` directly —
    otherwise a clock backend's victim choice reads a stale stamp and
    evicts a *live* entry while the freed slot sits unused."""

    def test_spurious_eviction_frees_the_slot_for_reuse(self):
        btb, _, entries = _filled_orcs()
        victim = btb.evict_spurious(_PickLast())
        assert victim is entries[-1]
        assert victim.lru == 0                    # stamp cleared
        assert btb.stats.spurious_evictions == 1
        replacement = btb.allocate(0x41_0010, 0x3, Kind.DIRECT_JUMP)
        assert replacement is victim              # freed slot reused
        assert btb.stats.evictions == 0           # nothing live evicted
        for entry in entries[:-1]:
            assert entry.valid                    # survivors untouched

    def test_deallocate_clears_the_stamp_too(self):
        btb, _, entries = _filled_orcs()
        btb.deallocate(entries[2])
        assert entries[2].lru == 0
        replacement = btb.allocate(0x41_0010, 0x3, Kind.DIRECT_JUMP)
        assert replacement is entries[2]
        assert btb.stats.evictions == 0


# ----------------------------------------------------------------------
# allocate accounting (bugfix)
# ----------------------------------------------------------------------
class TestAllocateAccounting:
    """Bugfix: the allocation/target-update split keys off the
    domain-aware same-branch match, not a bare (tag, offset) compare —
    under partitioning an evicted cross-domain twin is an eviction +
    allocation, not an in-place target update."""

    def test_cross_domain_twin_counts_as_eviction(self):
        btb = BTB(_config("intel", btb_ways=1, btb_partitioning=True))
        anchor = 0x40_0010
        btb.allocate(anchor, 0x1, Kind.DIRECT_JUMP)
        assert (btb.stats.allocations, btb.stats.target_updates,
                btb.stats.evictions) == (1, 0, 0)
        btb.current_domain = 1
        btb.allocate(anchor, 0x2, Kind.DIRECT_JUMP)
        assert (btb.stats.allocations, btb.stats.target_updates,
                btb.stats.evictions) == (2, 0, 1)

    def test_same_branch_still_updates_in_place(self):
        btb = BTB(_config("intel", btb_ways=1, btb_partitioning=True))
        anchor = 0x40_0010
        btb.allocate(anchor, 0x1, Kind.DIRECT_JUMP)
        btb.allocate(anchor, 0x2, Kind.DIRECT_JUMP)
        assert (btb.stats.allocations, btb.stats.target_updates,
                btb.stats.evictions) == (1, 1, 0)


# ----------------------------------------------------------------------
# flush scoping (bugfix)
# ----------------------------------------------------------------------
class TestFlushScoping:
    """Bugfix: flushes bump only the generations of sets that actually
    lost an entry — flushing an empty BTB (or one with no indirect
    entries) must not invalidate every cached superblock chain."""

    def test_flush_of_empty_btb_changes_no_generation(self):
        btb = BTB(_config("intel"))
        generation_before = btb.generation
        set_gens_before = list(btb.set_gens)
        btb.flush()
        assert btb.generation == generation_before
        assert btb.set_gens == set_gens_before
        assert btb.stats.full_flushes == 1        # still counted

    def test_indirect_flush_bumps_only_the_emptied_set(self):
        btb = BTB(_config("intel"))
        direct = btb.allocate(0x40_0010, 0x1, Kind.DIRECT_JUMP)
        ret = btb.allocate(0x40_0210, 0x2, Kind.RET)
        assert direct.set_index != ret.set_index
        generation_before = btb.generation
        set_gens_before = list(btb.set_gens)
        btb.flush_indirect()
        assert direct.valid and not ret.valid
        assert btb.generation == generation_before + 1
        changed = [index for index, (now, before)
                   in enumerate(zip(btb.set_gens, set_gens_before))
                   if now != before]
        assert changed == [ret.set_index]
        assert btb.stats.indirect_flushes == 1

    def test_indirect_flush_with_no_indirect_entries_is_invisible(self):
        btb = BTB(_config("intel"))
        btb.allocate(0x40_0010, 0x1, Kind.DIRECT_JUMP)
        generation_before = btb.generation
        set_gens_before = list(btb.set_gens)
        btb.flush_indirect()
        assert btb.generation == generation_before
        assert btb.set_gens == set_gens_before
        assert btb.stats.indirect_flushes == 1

    def test_superblock_survives_targetless_indirect_flush(self):
        """End-to-end regression: an IBPB against a BTB holding only
        direct-branch entries used to invalidate every cached chain."""
        base = 0x0040_0000
        asm = Assembler(base=base)
        asm.emit("movi", "rcx", 50)
        asm.emit("movi", "rax", 0)
        asm.align(32)
        asm.label("loop")
        asm.emit("addi8", "rax", 3)
        asm.emit("dec", "rcx")
        asm.emit("test", "rcx", "rcx")
        asm.emit("jne8", "loop")
        asm.emit("hlt")
        program = asm.assemble()
        memory = VirtualMemory()
        program.load_into(memory, perms="rwx")
        state = MachineState(memory, rip=base)
        state.setup_stack(0x7FFF_0000)
        set_fast_path(False)
        core = Core(generation("skylake"))
        assert core.run(state).reason is StopReason.HALT
        loop_pc = base + 32
        superblock = build_superblock(memory, core.btb, loop_pc, True)
        assert isinstance(superblock, Superblock)
        assert superblock.btb_valid(core.btb)
        core.btb.flush_indirect()                 # no indirect entries
        assert superblock.btb_valid(core.btb)     # chain survives
        core.btb.flush()                          # full flush kills it
        assert not superblock.btb_valid(core.btb)


# ----------------------------------------------------------------------
# full-observable fast/slow equivalence per backend
# ----------------------------------------------------------------------
def _observables(core, state, results):
    btb = sorted((e.tag, e.set_index, e.offset, e.target, e.kind.value,
                  e.domain) for e in core.btb.valid_entries())
    lbr = [(r.from_pc, r.to_pc, r.elapsed_cycles, r.mispredicted)
           for r in core.lbr.records()]
    runs = [(r.reason, r.retired, r.instructions, r.cycles,
             tuple(r.trace or ()), tuple(r.unit_starts or ()))
            for r in results]
    return {
        "runs": runs,
        "regs": state.regs.snapshot(),
        "flags": state.regs.flags.as_tuple(),
        "rip": state.rip,
        "cycles": core.cycles,
        "total_retired": core.total_retired,
        "btb": btb,
        "lbr": lbr,
    }


def _traversal_program():
    """Call/ret chains hopping across blocks: exercises every backend's
    allocation, replacement, and (on intel) range-hit path."""
    asm = Assembler(base=0x0040_0000)
    asm.emit("movi", "rcx", 40)
    asm.emit("movi", "rax", 0)
    asm.label("loop")
    asm.emit("call", "leaf_a")
    asm.emit("call", "leaf_b")
    asm.emit("dec", "rcx")
    asm.emit("jne", "loop")
    asm.emit("hlt")
    asm.align(32)
    asm.label("leaf_a")
    asm.emit("addi8", "rax", 5)
    asm.emit("ret")
    asm.align(32)
    asm.label("leaf_b")
    asm.emit("subi8", "rax", 2)
    asm.emit("ret")
    return asm.assemble()


def _run_program(program, config, *, fast, max_retired=None):
    previous = set_fast_path(fast)
    try:
        memory = VirtualMemory()
        program.load_into(memory)
        state = MachineState(memory, rip=program.entry)
        state.setup_stack(0x7FFF_0000)
        with telemetry.session():
            core = Core(config)
            results = []
            for _ in range(500_000):
                result = core.run(state, collect_trace=True,
                                  max_retired=max_retired)
                results.append(result)
                if result.reason is not StopReason.RETIRE_LIMIT:
                    break
            else:
                raise AssertionError("program never stopped")
        return _observables(core, state, results)
    finally:
        set_fast_path(previous)


def _run_victim(victim, inputs, config, *, fast):
    previous = set_fast_path(fast)
    try:
        memory = victim.new_memory(inputs)
        state = MachineState(memory)
        state.setup_stack(0x7FFF_0000_0000)
        state.rip = victim.compiled.start
        core = Core(config)
        results = []
        for _ in range(2_000_000):
            result = core.run(state, collect_trace=True)
            results.append(result)
            if result.reason is StopReason.SYSCALL:
                state.regs["rax"] = 0
                continue
            break
        return _observables(core, state, results)
    finally:
        set_fast_path(previous)


@pytest.mark.parametrize("backend", BACKENDS)
class TestBackendEquivalence:
    def test_traversal_full_run_identical(self, backend):
        program = _traversal_program()
        config = _config(backend)
        slow = _run_program(program, config, fast=False)
        fast = _run_program(program, config, fast=True)
        assert slow == fast

    def test_traversal_single_step_identical(self, backend):
        program = _traversal_program()
        config = _config(backend)
        slow = _run_program(program, config, fast=False, max_retired=1)
        fast = _run_program(program, config, fast=True, max_retired=1)
        assert slow == fast

    def test_gcd_victim_identical(self, backend):
        victim = build_gcd_victim("3.0", nlimbs=2)
        inputs = {"ta": 0x1234_5678_9ABC, "tb": 0x0FED_CBA9}
        config = _config(backend)
        slow = _run_victim(victim, inputs, config, fast=False)
        fast = _run_victim(victim, inputs, config, fast=True)
        assert slow == fast
