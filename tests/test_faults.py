"""Fault plans and the seeded injector: validation, scaling, and the
determinism guarantees the robustness sweeps rely on."""

import pytest

from repro.cpu.config import generation
from repro.cpu.core import Core
from repro.faults import (ACCEPTANCE_PLAN, CLEAN_PLAN, HOSTILE_PLAN,
                          FaultInjector, FaultPlan, StepFault,
                          plan_by_name)
from repro.system.kernel import Kernel


# ----------------------------------------------------------------------
# plans
# ----------------------------------------------------------------------
def test_plan_validation():
    with pytest.raises(ValueError):
        FaultPlan(lbr_drop_rate=1.5)
    with pytest.raises(ValueError):
        FaultPlan(lbr_jitter_sigma=-1.0)
    with pytest.raises(ValueError):
        FaultPlan(zero_step_rate=0.6, multi_step_rate=0.6)
    with pytest.raises(ValueError):
        FaultPlan(btb_evictions_per_event=0)
    with pytest.raises(ValueError):
        FaultPlan(preempt_min_retired=10, preempt_max_retired=5)


def test_plan_active():
    assert not CLEAN_PLAN.active
    assert ACCEPTANCE_PLAN.active
    assert FaultPlan(lbr_jitter_sigma=0.5).active


def test_plan_scaling_clamps_and_renormalises():
    plan = ACCEPTANCE_PLAN.scaled(2.0)
    assert plan.lbr_drop_rate == pytest.approx(0.10)
    assert plan.name == "acceptancex2"
    # Rates clamp at 1.0 however hard you scale.
    extreme = HOSTILE_PLAN.scaled(50.0)
    assert extreme.lbr_drop_rate == 1.0
    # The step-fault pair renormalises so their sum stays <= 1
    # (__post_init__ would reject the plan otherwise).
    assert extreme.zero_step_rate + extreme.multi_step_rate \
        <= 1.0 + 1e-9
    with pytest.raises(ValueError):
        ACCEPTANCE_PLAN.scaled(-1.0)


def test_plan_scaled_to_zero_is_inactive():
    assert not ACCEPTANCE_PLAN.scaled(0.0).active


def test_plan_by_name():
    assert plan_by_name("acceptance") is ACCEPTANCE_PLAN
    assert plan_by_name("CLEAN") is CLEAN_PLAN
    with pytest.raises(ValueError):
        plan_by_name("tsunami")


# ----------------------------------------------------------------------
# injector determinism
# ----------------------------------------------------------------------
def _drive(injector, lbr=200, steps=200, slices=0, preempts=200):
    """Consume a fixed number of draws from each surface."""
    for _ in range(lbr):
        injector.lbr_fault()
    for _ in range(steps):
        injector.step_fault()
    for _ in range(preempts):
        injector.preempt_limit()


def test_same_seed_same_schedule():
    plan = HOSTILE_PLAN
    first = FaultInjector(plan, seed=42)
    second = FaultInjector(plan, seed=42)
    _drive(first)
    _drive(second)
    assert first.schedule_signature() == second.schedule_signature()
    assert first.events  # the hostile plan injects plenty


def test_different_seed_different_schedule():
    plan = HOSTILE_PLAN
    first = FaultInjector(plan, seed=1)
    second = FaultInjector(plan, seed=2)
    _drive(first)
    _drive(second)
    # Jitter magnitudes are continuous draws: two seeds collide with
    # probability ~0.
    assert first.schedule_signature() != second.schedule_signature()


def test_surfaces_are_independent_streams():
    """Consuming one surface's stream must not shift another's —
    the LBR drop schedule is identical whether or not the stepper
    is also being faulted."""
    plan = HOSTILE_PLAN
    lbr_only = FaultInjector(plan, seed=7)
    interleaved = FaultInjector(plan, seed=7)
    for _ in range(300):
        lbr_only.lbr_fault()
    for _ in range(300):
        interleaved.step_fault()     # extra draws on another surface
        interleaved.lbr_fault()
        interleaved.preempt_limit()
    assert (lbr_only.events_for("cpu.lbr")
            == interleaved.events_for("cpu.lbr"))


def test_step_fault_distribution_roughly_matches_plan():
    plan = FaultPlan(name="steps", zero_step_rate=0.2,
                     multi_step_rate=0.3)
    injector = FaultInjector(plan, seed=3, record_events=False)
    outcomes = [injector.step_fault() for _ in range(2000)]
    zero = outcomes.count(StepFault.ZERO_STEP) / len(outcomes)
    multi = outcomes.count(StepFault.MULTI_STEP) / len(outcomes)
    assert 0.15 < zero < 0.25
    assert 0.25 < multi < 0.35


def test_clean_plan_injects_nothing():
    injector = FaultInjector(CLEAN_PLAN, seed=9)
    _drive(injector)
    assert injector.schedule_signature() == ()
    assert all(injector.step_fault() is StepFault.NONE
               for _ in range(10))


def test_record_events_off_keeps_schedule_but_no_log():
    injector = FaultInjector(HOSTILE_PLAN, seed=5,
                             record_events=False)
    _drive(injector)
    assert injector.events == []


# ----------------------------------------------------------------------
# wiring
# ----------------------------------------------------------------------
def test_attach_detach():
    kernel = Kernel(Core(generation("coffeelake")))
    injector = FaultInjector(ACCEPTANCE_PLAN, seed=1)
    assert injector.attach(kernel) is injector
    assert kernel.fault_injector is injector
    assert kernel.core.lbr.fault_injector is injector
    injector.detach(kernel)
    assert kernel.fault_injector is None
    assert kernel.core.lbr.fault_injector is None
    # Detaching twice is a no-op.
    injector.detach(kernel)
