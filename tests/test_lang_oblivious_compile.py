"""Compiler properties the data-oblivious victim depends on: Cmp in
value position emits no conditional branch."""

from repro.isa import Kind
from repro.lang import CompileOptions, Compiler, parse_module


def _kinds(source, function):
    compiled = Compiler(CompileOptions(opt_level=2)).compile(
        parse_module(source))
    info = compiled.info(function)
    return [inst.kind for pc, inst in
            compiled.program.instructions.items()
            if info.contains(pc)]


def test_cmp_as_value_is_branchless():
    kinds = _kinds("func f(a, b) { r = a < b; return r * 7; }", "f")
    assert Kind.COND_JUMP not in kinds


def test_if_emits_conditional():
    kinds = _kinds(
        "func f(a) { r = 0; if (a < 3) { r = 1; } return r; }", "f")
    assert Kind.COND_JUMP in kinds


def test_while_condition_only_branches_on_counter():
    source = """
func f(n) {
  s = 0;
  i = 0;
  while (i < n) {
    s = s + (s < 100);
    i = i + 1;
  }
  return s;
}
"""
    kinds = _kinds(source, "f")
    # exactly one conditional: the rotated loop's bottom test
    assert kinds.count(Kind.COND_JUMP) == 1
