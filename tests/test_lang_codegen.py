"""Compiler: correctness at every optimization level + defense passes."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.cpu import MachineState, run_function
from repro.errors import CompileError
from repro.lang import (CompileOptions, Compiler, inline_leaf_calls,
                        parse_module)
from repro.memory import VirtualMemory

_u32 = st.integers(min_value=0, max_value=(1 << 32) - 1)


def compile_and_call(source, function, args, opt_level=0, **options):
    module = parse_module(source)
    compiled = Compiler(CompileOptions(opt_level=opt_level,
                                       **options)).compile(module)
    memory = VirtualMemory()
    compiled.program.load_into(memory)
    memory.map_range(0x900000, 4096, "rw")
    state = MachineState(memory)
    state.setup_stack(0x7FFF00000000)
    run_function(state, compiled.info(function).entry, args=list(args),
                 syscall_handler=lambda s: True)
    return state.regs["rax"], compiled


_ARITH = """
func f(a, b) {
  return (a + b) * 3 - (a & b) + (a ^ b) - (a | b) + a / (b + 1)
         + a % (b + 1) + (a << 2) + (b >> 3);
}
"""


class TestCorrectnessAcrossLevels:
    @settings(max_examples=20, deadline=None)
    @given(_u32, _u32)
    @pytest.mark.parametrize("opt", [0, 2, 3])
    def test_arithmetic(self, opt, a, b):
        expected = (((a + b) * 3 - (a & b) + (a ^ b) - (a | b)
                     + a // (b + 1) + a % (b + 1) + (a << 2)
                     + (b >> 3)) & ((1 << 64) - 1))
        result, _ = compile_and_call(_ARITH, "f", (a, b), opt_level=opt)
        assert result == expected

    @pytest.mark.parametrize("opt", [0, 2, 3])
    def test_euclid_gcd(self, opt):
        source = """
func gcd(a, b) {
  while (b != 0) { t = a % b; a = b; b = t; }
  return a;
}
"""
        result, _ = compile_and_call(source, "gcd", (1071, 462),
                                     opt_level=opt)
        assert result == math.gcd(1071, 462)

    @pytest.mark.parametrize("opt", [0, 2, 3])
    def test_calls_and_arrays(self, opt):
        source = """
func fill(p, n) {
  i = 0;
  while (i < n) { p[i] = i * 3; i = i + 1; }
  return 0;
}
func total(p, n) {
  s = 0;
  i = 0;
  while (i < n) { s = s + p[i]; i = i + 1; }
  return s;
}
func driver(p, n) {
  fill(p, n);
  return total(p, n);
}
"""
        result, _ = compile_and_call(source, "driver", (0x900000, 9),
                                     opt_level=opt)
        assert result == sum(i * 3 for i in range(9))

    @pytest.mark.parametrize("opt", [0, 2, 3])
    def test_signed_comparison(self, opt):
        source = "func f(a, b) { if (a s< b) { return 1; } return 0; }"
        big = (1 << 63) + 5          # negative when signed
        result, _ = compile_and_call(source, "f", (big, 3),
                                     opt_level=opt)
        assert result == 1

    @pytest.mark.parametrize("opt", [0, 2, 3])
    def test_many_locals_spill(self, opt):
        names = [f"v{i}" for i in range(12)]
        decls = "\n".join(f"{n} = {i + 1};"
                          for i, n in enumerate(names))
        total = " + ".join(names)
        source = f"func f() {{ {decls} return {total}; }}"
        result, _ = compile_and_call(source, "f", (), opt_level=opt)
        assert result == sum(range(1, 13))


class TestLayoutDiffersAcrossLevels:
    def test_binaries_differ(self):
        source = """
func helper(x) { return x + 3; }
func f(a, b) {
  s = 0;
  while (a != 0) { t = helper(b); s = s + t; a = a - 1; }
  return s;
}
"""
        module = parse_module(source)
        images = set()
        for opt in (0, 2, 3):
            compiled = Compiler(
                CompileOptions(opt_level=opt)).compile(module)
            images.add(compiled.program.segments[0][1])
        assert len(images) == 3

    def test_functions_are_16_aligned(self):
        _, compiled = compile_and_call(_ARITH, "f", (1, 2))
        assert compiled.info("f").entry % 16 == 0


class TestDefensePasses:
    _LEAKY = """
func pick(s, x) {
  r = 0;
  if (s > 10) { r = x * 3; } else { r = x + 100; r = r + s; }
  return r;
}
"""

    @pytest.mark.parametrize("options", [
        dict(balance_branches=True),
        dict(align_jumps=16),
        dict(cfr=True),
        dict(balance_branches=True, cfr=True),
    ])
    def test_semantics_preserved(self, options):
        for secret, x, expected in ((50, 7, 21), (5, 7, 112)):
            result, _ = compile_and_call(self._LEAKY, "pick",
                                         (secret, x), opt_level=2,
                                         **options)
            assert result == expected

    def test_balancing_equalizes_arm_footprints(self):
        _, compiled = compile_and_call(self._LEAKY, "pick", (50, 7),
                                       opt_level=2,
                                       balance_branches=True)
        arm = compiled.arms_in("pick")[0]
        then_len = arm.then_end - arm.then_start + 5   # + jmp over
        else_len = arm.else_end - arm.else_start
        assert then_len == else_len

    def test_alignment_places_arms_on_16(self):
        _, compiled = compile_and_call(self._LEAKY, "pick", (50, 7),
                                       opt_level=2, align_jumps=16)
        arm = compiled.arms_in("pick")[0]
        assert arm.then_start % 16 == 0
        assert arm.else_start % 16 == 0

    def test_cfr_uses_indirect_trampolines(self):
        _, compiled = compile_and_call(self._LEAKY, "pick", (50, 7),
                                       opt_level=2, cfr=True)
        mnemonics = [inst.mnemonic for inst in
                     compiled.program.instructions.values()]
        assert "jmpr" in mnemonics
        assert any("cmov" in m for m in mnemonics)

    def test_cfr_trampolines_are_randomized_by_seed(self):
        module = parse_module(self._LEAKY)
        layouts = []
        for seed in (1, 2):
            compiled = Compiler(CompileOptions(
                opt_level=2, cfr=True, cfr_seed=seed)).compile(module)
            layouts.append(tuple(base for base, _ in
                                 compiled.program.segments[1:]))
        assert layouts[0] != layouts[1]

    def test_balance_align_combination_rejected(self):
        with pytest.raises(CompileError):
            CompileOptions(balance_branches=True, align_jumps=16)

    def test_bad_opt_level_rejected(self):
        with pytest.raises(CompileError):
            CompileOptions(opt_level=1)


class TestInlining:
    _SOURCE = """
func leaf(x) { return x * 2 + 1; }
func looper(x) { while (x > 100) { x = x - 1; } return x; }
func caller(a) {
  b = leaf(a);
  c = looper(b);
  return leaf(c) + b;
}
"""

    def test_leaf_calls_disappear_at_o3(self):
        module = parse_module(self._SOURCE)
        inlined = inline_leaf_calls(module, limit=8)
        caller = inlined.function("caller")

        def count_calls(stmts):
            from repro.lang import ast as A
            total = 0
            for stmt in stmts:
                if isinstance(stmt, A.Assign) and \
                        isinstance(stmt.value, A.Call):
                    total += 1
            return total

        # leaf() inlined away; looper (has a loop but is itself a
        # leaf and small) may inline too — but no call to `leaf` left
        from repro.lang import ast as A
        for stmt in caller.body:
            if isinstance(stmt, A.Assign) and \
                    isinstance(stmt.value, A.Call):
                assert stmt.value.name != "leaf"

    def test_inlined_semantics_match(self):
        # caller(120): b = 241; c = looper(241) = 100;
        # result = leaf(100) + b = 201 + 241 = 442
        for opt in (0, 3):
            result, _ = compile_and_call(self._SOURCE, "caller",
                                         (120,), opt_level=opt)
            assert result == 442

    def test_inlining_fresh_variable_isolation(self):
        source = """
func leaf(x) { t = x + 1; return t; }
func caller(t) {
  u = leaf(5);
  return t + u;
}
"""
        for opt in (0, 3):
            result, _ = compile_and_call(source, "caller", (10,),
                                         opt_level=opt)
            assert result == 16


class TestArmRegions:
    def test_nested_ifs_all_recorded(self):
        source = """
func f(a) {
  r = 0;
  if (a > 4) {
    if (a > 8) { r = 1; } else { r = 2; }
  } else {
    r = 3;
  }
  return r;
}
"""
        _, compiled = compile_and_call(source, "f", (9,))
        assert len(compiled.arms_in("f")) == 2

    def test_arm_addresses_inside_function(self):
        source = "func f(a) { if (a) { a = 1; } else { a = 2; } return a; }"
        _, compiled = compile_and_call(source, "f", (1,))
        info = compiled.info("f")
        for arm in compiled.arms_in("f"):
            assert info.start <= arm.then_start <= info.end
            assert info.start <= arm.else_end <= info.end
