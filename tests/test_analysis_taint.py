"""Secret-taint dataflow: known victim leaks, the constant-time
negative control, secret-indexed loads, and lattice unit behaviour."""

import pytest

from repro.analysis.cfg import recover_module_cfg
from repro.analysis.lint import (lint_victim, run_lint, victim_regions)
from repro.analysis.taint import (AbsVal, Region, analyze_taint, const,
                                  frame, join_vals, ptr)
from repro.lang import CompileOptions, Compiler, parse_module
from repro.victims.library import (DataLayout, USER_DATA_BASE,
                                   VictimProgram, build_bignum_victim,
                                   build_bn_cmp_victim,
                                   build_gcd_victim)


def _taint_report(victim):
    cfg = recover_module_cfg(victim.compiled)
    return analyze_taint(cfg, victim_regions(victim),
                         victim.secret_inputs)


# ----------------------------------------------------------------------
# corpus: every known leak flagged, nothing outside the allowlist
# ----------------------------------------------------------------------
@pytest.mark.parametrize("version,expected", [
    ("2.5", {"mpi_gcd", "bn_cmp", "bn_is_zero"}),
    ("2.16", {"mpi_gcd", "bn_cmp", "bn_is_zero", "bn_make_odd"}),
    ("3.0", {"mpi_gcd", "bn_cmp", "bn_is_zero", "bn_reduce_step"}),
])
def test_gcd_known_leaks_flagged(version, expected):
    victim = build_gcd_victim(version)
    report = _taint_report(victim)
    assert report.flagged_functions() == frozenset(expected)
    assert all(f.kind == "secret-branch" for f in report.findings)
    assert not report.warnings
    # and the allowlist annotation covers exactly those functions
    assert expected <= set(victim.leak_allowlist)


def test_bn_cmp_known_leak_flagged():
    victim = build_bn_cmp_victim()
    report = _taint_report(victim)
    assert report.flagged_functions() == frozenset({"ipp_bn_cmp"})
    mnemonics = {f.mnemonic for f in report.findings}
    assert mnemonics == {"je", "jae"}


def test_bignum_negative_control_is_clean():
    """Constant-time helpers over a secret operand: the secret flows
    through data (borrows, shifts, copies) but never reaches a branch
    or an address, so the lint must stay silent."""
    report = _taint_report(build_bignum_victim())
    assert report.findings == []
    assert report.warnings == []


# ----------------------------------------------------------------------
# hand-built victims: secret-indexed load, unannotated leak
# ----------------------------------------------------------------------
def _custom_victim(body: str, *, secret, allowlist=(), nlimbs=4):
    layout = DataLayout(USER_DATA_BASE)
    t = layout.add("t", nlimbs)
    s = layout.add("s", nlimbs)
    source = body.format(t=t.address, s=s.address, n=nlimbs)
    compiled = Compiler(CompileOptions()).compile(
        parse_module(source), start="main")
    return VictimProgram(compiled, layout, nlimbs,
                         secret_function="main",
                         secret_inputs=secret,
                         leak_allowlist=allowlist)


def test_secret_indexed_load_flagged():
    victim = _custom_victim("""
func lookup(t, s) {{
  return t[s[0] & 3];
}}
func main() {{
  lookup({t}, {s});
  return 0;
}}
""", secret=("s",))
    report = _taint_report(victim)
    kinds = {f.kind for f in report.findings}
    assert "secret-load" in kinds
    assert "lookup" in report.flagged_functions()


def test_public_indexed_load_not_flagged():
    victim = _custom_victim("""
func lookup(t, s) {{
  return t[s[0] & 3];
}}
func main() {{
  lookup({t}, {s});
  return 0;
}}
""", secret=())                         # nothing declared secret
    report = _taint_report(victim)
    assert report.findings == []


def test_unannotated_leak_fails_lint():
    victim = _custom_victim("""
func peek(t, s) {{
  if (s[0] != 0) {{ return t[0]; }}
  return t[1];
}}
func main() {{
  peek({t}, {s});
  return 0;
}}
""", secret=("s",), allowlist=())
    result = lint_victim("custom", victim)
    assert result.new_findings
    report = run_lint(corpus=[("custom", victim)])
    assert not report.ok
    assert "NEW" in report.render()


def test_allowlisted_leak_passes_lint():
    victim = _custom_victim("""
func peek(t, s) {{
  if (s[0] != 0) {{ return t[0]; }}
  return t[1];
}}
func main() {{
  peek({t}, {s});
  return 0;
}}
""", secret=("s",), allowlist=("peek",))
    report = run_lint(corpus=[("custom", victim)])
    assert report.ok
    assert report.results[0].known_findings


def test_return_before_secret_branch_stays_untainted():
    """Branch-taint precision: the early return on the *public* path
    is not control-dependent on the later secret branch (it is not in
    the branch's remaining block set), so ``classify``'s return value
    reaching ``main`` must not flag ``main``'s branch.  The old
    whole-function implicit-flow rule tainted every return and
    produced a spurious ``main`` finding here."""
    victim = _custom_victim("""
func classify(t, s) {{
  if (t[0] == 0) {{ return 7; }}
  if (s[0] != 0) {{ t[1] = 1; }} else {{ t[2] = 1; }}
  return 7;
}}
func main() {{
  r = classify({t}, {s});
  if (r == 7) {{ return 1; }}
  return 0;
}}
""", secret=("s",))
    report = _taint_report(victim)
    flagged = report.flagged_functions()
    assert "classify" in flagged        # the secret branch itself
    assert "main" not in flagged        # no implicit ret taint leak-through


def test_return_reachable_from_secret_branch_tainted():
    """The conservative side of the same rule: a return the secret
    branch *can* steer (the bn_cmp return-code idiom) still carries
    implicit taint, so the caller's branch on it is flagged."""
    victim = _custom_victim("""
func classify(t, s) {{
  if (s[0] != 0) {{ return 1; }}
  return 0;
}}
func main() {{
  r = classify({t}, {s});
  if (r == 1) {{ return 1; }}
  return 0;
}}
""", secret=("s",))
    flagged = _taint_report(victim).flagged_functions()
    assert {"classify", "main"} <= flagged


def test_secret_inputs_validated():
    with pytest.raises(ValueError):
        _custom_victim("""
func main() {{
  return 0;
}}
""", secret=("nope",))


# ----------------------------------------------------------------------
# lattice units
# ----------------------------------------------------------------------
def test_join_vals_lattice():
    assert join_vals(const(5), const(5)) == const(5)
    assert join_vals(const(5), const(6)).kind == "top"
    # pointer join unions region sets (the v2.16 pointer-swap case)
    j = join_vals(ptr(["a"]), ptr(["b"]))
    assert j.kind == "ptr" and j.regions == frozenset({"a", "b"})
    # taint is sticky under join
    assert join_vals(const(1, taint=True), const(1)).taint
    assert join_vals(frame(8), frame(8)) == frame(8)
    assert join_vals(frame(8), frame(16)).kind == "top"


def test_region_contains():
    region = Region("s", 0x1000, 32)
    assert region.contains(0x1000)
    assert region.contains(0x101F)
    assert not region.contains(0x1020)


def test_absval_with_taint():
    av = ptr(["s"])
    assert not av.taint
    assert av.with_taint(True).taint
    assert av.with_taint(True).regions == av.regions
    assert isinstance(av.with_taint(True), AbsVal)
