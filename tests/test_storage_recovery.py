"""End-to-end durability drills: truncation at every byte offset,
torn-write chaos with resume convergence, service-manifest rebuild
from surviving shards, and DEGRADED completion with exact loss
accounting when a shard checkpoint is destroyed beyond recovery.

The contract under test (ISSUE: durable artifact store): resuming
from a corrupted checkpoint either converges to the same
layout-independent aggregate digest as a clean run, or completes
DEGRADED with exact loss accounting — never an unhandled exception,
never a silent double-count.
"""

import json

import pytest

from repro import telemetry
from repro.errors import ArtifactCorrupt, CampaignError
from repro.faults import DiskFaultInjector
from repro.runner import RunManifest, run_campaign
from repro.runner.jobs import KIND_SELFTEST, JobSpec
from repro.service import (CAMPAIGN_COMPLETED, CAMPAIGN_DEGRADED,
                           ServiceManifest, merge_shards,
                           rebuild_service_manifest,
                           run_service_campaign)
from repro.storage import (clear_disk_faults, install_disk_faults,
                           journal_path, load_checkpoint,
                           reset_tick_cache)


@pytest.fixture(autouse=True)
def _clean_storage_state():
    reset_tick_cache()
    clear_disk_faults()
    yield
    reset_tick_cache()
    clear_disk_faults()


def _selftest(job_id, program="work:2:0.0"):
    return JobSpec(job_id=job_id, kind=KIND_SELFTEST, name=program,
                   seed=0, timeout_s=30.0, max_attempts=2)


def _specs(count=4):
    return [_selftest(f"j{index:02d}") for index in range(count)]


def _aggregate(runs_dir, campaign_id):
    path = runs_dir / campaign_id / "aggregate.json"
    return json.loads(path.read_text())


# ----------------------------------------------------------------------
# property: a journaled checkpoint survives truncation at EVERY offset
# ----------------------------------------------------------------------
def test_manifest_survives_truncation_at_every_byte_offset(tmp_path):
    """Truncate the manifest at every byte offset (journal intact —
    the torn-write crash case): every single load must recover the
    full checkpointed state via the journal, with the exact same
    per-job digests as the untouched manifest."""
    manifest = run_campaign(_specs(3), tmp_path / "runs",
                            campaign_id="clean", seed=3)
    assert manifest.all_completed()
    clean_digests = manifest.digests()
    target = manifest.path
    good = target.read_bytes()
    journal_bytes = journal_path(target).read_bytes()

    for offset in range(len(good)):
        reset_tick_cache()
        work = tmp_path / "prop" / f"o{offset}" / "clean"
        work.mkdir(parents=True)
        (work / "manifest.json").write_bytes(good[:offset])
        journal_path(work / "manifest.json").write_bytes(
            journal_bytes)
        recovered = RunManifest.load(work.parent, "clean")
        assert recovered.digests() == clean_digests, \
            f"divergence at truncation offset {offset}"


def test_journal_truncation_at_every_offset_rolls_back(tmp_path):
    """Truncate the *journal* at every byte offset (a crash mid-WAL
    write, target intact): the load must always return the target's
    state — the torn journal never wins, never crashes the load."""
    path = tmp_path / "manifest.json"
    from repro.storage import checkpoint
    checkpoint(path, {"state": "good"}, "repro.test")
    good = path.read_bytes()
    journal_bytes = journal_path(path).read_bytes()

    for offset in range(len(journal_bytes)):
        reset_tick_cache()
        work = tmp_path / "jprop" / f"o{offset}"
        work.mkdir(parents=True)
        (work / "manifest.json").write_bytes(good)
        journal_path(work / "manifest.json").write_bytes(
            journal_bytes[:offset])
        assert load_checkpoint(work / "manifest.json",
                               "repro.test") == {"state": "good"}, \
            f"divergence at journal truncation offset {offset}"


# ----------------------------------------------------------------------
# torn-write chaos drill: interrupted campaign resumes and converges
# ----------------------------------------------------------------------
def test_torn_write_chaos_resume_converges_to_clean_digest(tmp_path):
    clean = run_campaign(_specs(4), tmp_path / "clean",
                         campaign_id="ref", seed=9)
    assert clean.all_completed()

    install_disk_faults(DiskFaultInjector(
        mode="torn-write", seed=9, strike_after=3))
    from repro.errors import DiskFaultError
    with pytest.raises(DiskFaultError):
        run_campaign(_specs(4), tmp_path / "runs",
                     campaign_id="drill", seed=9)
    clear_disk_faults()
    reset_tick_cache()

    with telemetry.session() as sink:
        resumed = run_campaign([], tmp_path / "runs",
                               campaign_id="drill", seed=9,
                               resume=True)
    assert resumed.all_completed()
    # identical per-job digests: no lost work, no double-count
    assert resumed.digests() == clean.digests()
    # the recovery really went through the corruption machinery
    assert sink.counters.get("storage.corruption_detected", 0) >= 1
    corrupt = list((tmp_path / "runs" / "drill").glob("*.corrupt*"))
    assert corrupt, "torn checkpoint should be quarantined"


def test_bit_flip_chaos_resume_never_crashes(tmp_path):
    install_disk_faults(DiskFaultInjector(
        mode="bit-flip", seed=4, strike_after=2, strikes=1))
    first = run_campaign(_specs(3), tmp_path / "runs",
                         campaign_id="flip", seed=4)
    clear_disk_faults()
    reset_tick_cache()
    # the silent corruption must be *detected* on the next load and
    # healed from the other copy — never an unhandled exception
    recovered = RunManifest.load(tmp_path / "runs", "flip")
    resumed = run_campaign([], tmp_path / "runs", campaign_id="flip",
                           seed=4, resume=True)
    assert resumed.all_completed()
    assert resumed.digests() == first.digests()
    assert recovered.campaign_id == "flip"


# ----------------------------------------------------------------------
# service layer: campaign.json rebuild + DEGRADED loss accounting
# ----------------------------------------------------------------------
def test_service_manifest_rebuilds_from_surviving_shards(tmp_path):
    runs = tmp_path / "runs"
    manifest = run_service_campaign(_specs(6), runs,
                                    campaign_id="svc", seed=2,
                                    shards=2)
    assert manifest.status == CAMPAIGN_COMPLETED
    clean_digest = _aggregate(runs, "svc")["digest"]

    # destroy BOTH copies of the service checkpoint
    campaign_json = runs / "svc" / "campaign.json"
    campaign_json.write_text("garbage", encoding="utf-8")
    journal_path(campaign_json).write_text("also garbage",
                                           encoding="utf-8")
    reset_tick_cache()

    with telemetry.session() as sink:
        rebuilt = ServiceManifest.load(runs, "svc")
    assert sink.counters["storage.rebuilds"] == 1
    assert sink.counters["storage.corruption_detected"] >= 1
    assert sorted(rebuilt.shards) == sorted(manifest.shards)
    assert rebuilt.job_ids() == manifest.job_ids()

    # the rebuilt campaign resumes (idempotently — everything was
    # COMPLETED) and converges to the same layout-independent digest
    reset_tick_cache()
    resumed = run_service_campaign([], runs, campaign_id="svc",
                                   resume=True)
    assert resumed.status == CAMPAIGN_COMPLETED
    assert _aggregate(runs, "svc")["digest"] == clean_digest


def test_destroyed_shard_checkpoint_completes_degraded(tmp_path):
    """A shard manifest corrupted beyond its journal: the campaign
    must complete DEGRADED with that shard's unproven jobs accounted
    as LOST — exactly, not silently dropped."""
    runs = tmp_path / "runs"
    manifest = run_service_campaign(_specs(6), runs,
                                    campaign_id="svc", seed=5,
                                    shards=2)
    assert manifest.status == CAMPAIGN_COMPLETED
    victim = sorted(manifest.shards)[0]
    victim_jobs = sorted(manifest.shards[victim].jobs)
    shard_dir = runs / "svc" / "shards" / victim
    (shard_dir / "manifest.json").write_text("xx", encoding="utf-8")
    journal_path(shard_dir / "manifest.json").write_text(
        "yy", encoding="utf-8")
    reset_tick_cache()

    merged = merge_shards(ServiceManifest.load(runs, "svc"))
    assert merged["status"] == CAMPAIGN_DEGRADED
    accounted = sorted(job for jobs in merged["lost"].values()
                       for job in jobs)
    assert accounted == victim_jobs
    for job_id in victim_jobs:
        assert merged["jobs"][job_id]["status"] == "LOST"
    surviving = [job for job in manifest.job_ids()
                 if job not in victim_jobs]
    for job_id in surviving:
        assert merged["jobs"][job_id]["status"] == "COMPLETED"


def test_rebuild_with_no_surviving_state_raises_service_error(
        tmp_path):
    from repro.errors import ServiceError
    (tmp_path / "runs" / "ghost").mkdir(parents=True)
    with pytest.raises(ServiceError):
        rebuild_service_manifest(tmp_path / "runs", "ghost")


def test_corrupt_manifest_without_journal_raises_artifact_corrupt(
        tmp_path):
    """A pre-durability manifest (no journal) damaged on disk is a
    typed, quarantining error — not a JSONDecodeError crash."""
    directory = tmp_path / "runs" / "old"
    directory.mkdir(parents=True)
    (directory / "manifest.json").write_text("{ torn",
                                             encoding="utf-8")
    with pytest.raises(ArtifactCorrupt):
        RunManifest.load(tmp_path / "runs", "old")
    assert (directory / "manifest.json.corrupt").exists()


def test_legacy_unjournaled_manifest_still_loads(tmp_path):
    """Manifests written before the storage layer (no envelope, no
    journal) load unchanged."""
    manifest = run_campaign(_specs(2), tmp_path / "runs",
                            campaign_id="legacy", seed=1)
    target = manifest.path
    payload = json.loads(target.read_text())
    payload.pop("envelope", None)
    target.write_text(json.dumps(payload, indent=2, sort_keys=True)
                      + "\n", encoding="utf-8")
    journal_path(target).unlink()
    reset_tick_cache()
    loaded = RunManifest.load(tmp_path / "runs", "legacy")
    assert loaded.digests() == manifest.digests()


def test_missing_manifest_still_raises_campaign_error(tmp_path):
    with pytest.raises(CampaignError, match="no manifest"):
        RunManifest.load(tmp_path / "runs", "nope")
