#!/usr/bin/env python3
"""The control-flow-leakage arms race (paper §5.1, Fig. 8, §8.2).

Attacks the same GCD secret under every defense from the paper:

* software: branch balancing, -falign-jumps=16, CFR, balancing+CFR
  — all defeated (they hide counts/decisions, not addresses);
* hardware: IBRS/IBPB — defeated (only indirect entries flushed);
  full BTB flush / BTB partitioning — effective (not deployed);
* data-oblivious GCD — effective (no secret-dependent control flow
  left to observe).

Run:  python examples/defense_arms_race.py
"""

from repro.analysis import ascii_table, pct
from repro.experiments import (run_defense_grid, run_hardware_grid,
                               run_oblivious)


def main() -> None:
    rows = []
    print("running NV-U against each software defense...")
    for name, result in run_defense_grid(runs=8).items():
        rows.append(("software", name, pct(result.accuracy),
                     "LEAKS" if result.accuracy > 0.9 else "holds"))
    print("running NV-U against each hardware mitigation...")
    for name, result in run_hardware_grid(runs=8).items():
        rows.append(("hardware", name, pct(result.accuracy),
                     "LEAKS" if result.accuracy > 0.9 else "holds"))
    print("running NV-U against the data-oblivious GCD...")
    oblivious = run_oblivious()
    rows.append((
        "software", "data-oblivious gcd",
        f"info rate {pct(oblivious.information_rate)}",
        "holds" if oblivious.information_rate == 0.0 else "LEAKS",
    ))
    print()
    print(ascii_table(("layer", "defense", "leak accuracy", "verdict"),
                      rows))
    print("\npaper: every deployed defense fails; only whole-BTB "
          "isolation or data-oblivious code stops NightVision (§8.2)")


if __name__ == "__main__":
    main()
