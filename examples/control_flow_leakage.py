#!/usr/bin/env python3
"""Use case 1 (paper §5, §7.2): leaking RSA-keygen secrets through
the balanced branch in mbedTLS-style GCD — despite the victim being
hardened with the very flag that stops the Frontal attack
(-falign-jumps=16), and despite IBRS/IBPB.

Run:  python examples/control_flow_leakage.py
"""

from repro.analysis import ascii_table, pct
from repro.core import ControlFlowLeakAttack
from repro.cpu import Core, generation
from repro.lang import CompileOptions
from repro.system import Kernel
from repro.victims import build_gcd_victim, generate_keys


def main() -> None:
    # Victim: mbedTLS-3.0-style GCD, -O2, -falign-jumps=16, yielding
    # once per loop iteration (the paper's §7.2 methodology).
    victim = build_gcd_victim(
        "3.0",
        options=CompileOptions(opt_level=2, align_jumps=16),
        nlimbs=2, with_yield=True)

    # Attacker: user-level NightVision on a noisy CoffeeLake with
    # IBRS/IBPB enabled (the paper shows they do not help — §4.1).
    config = generation("coffeelake", timing_noise=2.0, ibrs_ibpb=True)
    kernel = Kernel(Core(config))
    attack = ControlFlowLeakAttack(kernel, victim)
    print(f"monitoring then-arm PW {attack.then_pw} and "
          f"else-arm PW {attack.else_pw}")

    rows = []
    total = correct = 0
    for key in generate_keys(10, seed=42):
        a, b = key.gcd_inputs()
        truth = key.secret_branch_directions()
        result = attack.attack({"ta": a, "tb": b})
        accuracy = result.accuracy_against(truth)
        inferred = "".join("T" if d else "E"
                           for d in result.inferred()[:32])
        rows.append((f"{key.p}*{key.q}", len(truth),
                     pct(accuracy), inferred))
        total += len(truth)
        correct += round(accuracy * len(truth))

    print(ascii_table(
        ("key (p*q)", "iters", "accuracy", "recovered directions"),
        rows))
    print(f"\noverall: {correct}/{total} balanced-branch directions "
          f"recovered = {pct(correct / total)}")
    print("(paper §7.2: 99.3% for GCD, 100% for bn_cmp)")


if __name__ == "__main__":
    main()
