#!/usr/bin/env python3
"""Quickstart: the two BTB behaviours NightVision is built on.

Runs miniature versions of the paper's Experiments 1 and 2 (§2.3,
§2.4) on the simulated SkyLake core and then demonstrates the NV-Core
prime+probe primitive detecting a victim's execution.

Run:  python examples/quickstart.py
"""

from repro.analysis import series_block
from repro.core import NvCore, PwRange
from repro.cpu import Core, generation
from repro.experiments import run_figure2, run_figure4
from repro.isa import Assembler
from repro.system import Kernel, Process


def takeaway_1() -> None:
    print("=" * 64)
    print("Takeaway 1 (Fig. 2): non-branches deallocate BTB entries")
    print("=" * 64)
    result = run_figure2(iterations=3)
    for series in result.series:
        print(" ", series_block(series.label, series.xs, series.ys,
                                "cycles"))
    print(f"  collision window: F2 - F1 in "
          f"{result.findings['gap_deltas']}")
    print(f"  matches the paper's F2 < F1 + 2 boundary: "
          f"{result.findings['boundary_correct']}")


def takeaway_2() -> None:
    print("=" * 64)
    print("Takeaway 2 (Fig. 4): BTB lookups have range semantics")
    print("=" * 64)
    result = run_figure4(iterations=3)
    for series in result.series:
        print(" ", series_block(series.label, series.xs, series.ys,
                                "cycles"))
    print(f"  jmp L2 at offset {result.findings['f2_offset']}; its "
          f"entry is selected while F1 <= {result.findings['f2_offset'] + 1}: "
          f"{result.findings['boundary_correct']}")


def nv_core_demo() -> None:
    print("=" * 64)
    print("NV-Core: did the victim execute bytes in [0x400200, 0x400220)?")
    print("=" * 64)
    kernel = Kernel(Core(generation("skylake")))
    nv = NvCore(kernel)
    session = nv.monitor([PwRange(0x400200, 0x400220)])

    # A victim that may or may not run through the monitored range.
    for label, entry_offset in (("inside", 0x200), ("elsewhere", 0x300)):
        asm = Assembler(base=0x400000 + entry_offset)
        asm.label("entry")
        asm.nops(24)
        asm.emit("hlt")
        program = asm.assemble()
        victim = Process(name=f"victim-{label}",
                         entry=program.address_of("entry"))
        program.load_into(victim.memory)
        kernel.add_process(victim)

        session.prime()                  # attacker primes the BTB
        kernel.run_slice(victim)         # victim fragment runs
        matched = session.probe()[0]     # attacker probes its own LBR
        print(f"  victim running {label!r}: NV-Core says matched="
              f"{matched}")


if __name__ == "__main__":
    takeaway_1()
    takeaway_2()
    nv_core_demo()
