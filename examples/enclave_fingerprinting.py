#!/usr/bin/env python3
"""Use case 2 (paper §6, §7.3): fingerprinting private enclave code.

The victim is an SGX enclave whose binary is *encrypted* (PCL-style):
the attacker never reads a single code byte.  NV-S single-steps the
enclave, binary-searches every dynamic instruction's address with
BTB prime+probe, slices the recovered PC trace at call/ret
boundaries, and identifies the GCD function among a corpus of
reference functions by pure address-set similarity.

Run:  python examples/enclave_fingerprinting.py
(takes a couple of minutes: tens of full enclave re-executions)
"""

from repro.analysis import ascii_table, pct
from repro.cpu import Core, generation
from repro.errors import EnclaveAccessError
from repro.experiments import extract_victim_function
from repro.fingerprint import (FingerprintIndex, generate_corpus,
                               set_similarity)
from repro.lang import CompileOptions
from repro.victims import build_gcd_victim
from repro.victims.library import ENCLAVE_DATA_BASE


def main() -> None:
    config = generation("coffeelake")
    victim = build_gcd_victim(
        "3.0", options=CompileOptions(opt_level=2), nlimbs=1,
        with_yield=False, data_base=ENCLAVE_DATA_BASE)

    # Demonstrate code confidentiality: the platform cannot read the
    # enclave's code pages.
    host, enclave = victim.new_enclave({"ta": 1, "tb": 1})
    code_base = victim.compiled.program.segments[0][0]
    try:
        host.memory.read_bytes(code_base, 16)
        raise AssertionError("EPC should not be readable!")
    except EnclaveAccessError:
        print(f"code at {code_base:#x} is EPC-protected: "
              f"attacker read -> EnclaveAccessError")

    print("extracting the dynamic PC trace with NV-S "
          "(single-step + PW binary search)...")
    artifacts = extract_victim_function(
        victim, {"ta": 2 * 3 * 17 * 23, "tb": 2 * 3 * 29}, config)
    print(f"  extraction used {artifacts.extraction_runs} enclave "
          f"re-executions")
    print(f"  sliced GCD invocation: {len(artifacts.normalized)} "
          f"measured PCs, self-similarity "
          f"{pct(artifacts.self_similarity)}")

    print("scoring against a reference corpus...")
    corpus = generate_corpus(size=300, seed=9)
    scored = [("mpi_gcd (reference)", artifacts.self_similarity)]
    scored += [
        (fn.name, set_similarity(artifacts.normalized, fn.static_pcs))
        for fn in corpus
    ]
    scored.sort(key=lambda item: item[1], reverse=True)
    print(ascii_table(("rank", "reference function", "similarity"),
                      [(rank + 1, name, pct(score))
                       for rank, (name, score) in
                       enumerate(scored[:8])]))
    verdict = "IDENTIFIED" if scored[0][0].startswith("mpi_gcd") \
        else "missed"
    print(f"\n=> the encrypted enclave's GCD was {verdict} among "
          f"{len(corpus)} + 1 candidates")


if __name__ == "__main__":
    main()
