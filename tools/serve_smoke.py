#!/usr/bin/env python
"""End-to-end smoke drill for the sharded campaign service (CI gate).

Drives a real ``repro serve`` subprocess over HTTP and proves the
service's four headline guarantees, failing loudly if any breaks:

1. **clean run** — a submitted campaign completes with a merged
   aggregate digest;
2. **fault-domain recovery** — SIGKILLing one shard's *process group*
   mid-run (from outside, like a box dying) trips the circuit breaker:
   the shard is QUARANTINED and, with the reassignment budget
   exhausted, the campaign completes DEGRADED with exact per-shard
   loss accounting instead of hanging;
3. **resume convergence** — resuming the degraded campaign over HTTP
   recovers the lost jobs and the merged aggregate digest matches the
   clean run **byte for byte**;
4. **backpressure** — submissions beyond the bounded queue depth are
   explicitly rejected with HTTP 429, and SIGTERM shuts the service
   down gracefully (exit 0) with the interrupted state resumable.

Usage: ``python tools/serve_smoke.py [--runs-dir DIR] [--keep]``
"""

from __future__ import annotations

import argparse
import json
import os
import re
import shutil
import signal
import subprocess
import sys
import time
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.errors import AdmissionRejected, ServiceError  # noqa: E402
from repro.service import ServiceClient  # noqa: E402

URL_PATTERN = re.compile(r"serving on (http://[0-9.]+:[0-9]+)")


def _fail(message: str) -> "NoReturn":  # noqa: F821
    print(f"SMOKE FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def _jobs(program: str, count: int = 6) -> list:
    return [{"job_id": f"j{index:02d}", "kind": "selftest",
             "name": program, "seed": 0, "timeout_s": 60.0,
             "max_attempts": 2}
            for index in range(count)]


def _start_server(runs_dir: Path) -> "tuple":
    process = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--runs-dir", str(runs_dir), "--queue-depth", "2", "-v"],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, cwd=str(REPO),
        env={**os.environ,
             "PYTHONPATH": str(REPO / "src"),
             "PYTHONUNBUFFERED": "1"})
    deadline = time.monotonic() + 30.0
    url = None
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            _fail("serve exited before announcing its URL")
        match = URL_PATTERN.search(line)
        if match:
            url = match.group(1)
            break
    if url is None:
        _fail("serve never announced its URL")
    return process, url


def _drain(process) -> None:
    """Keep the serve subprocess's stdout pipe from filling up."""
    import threading

    def pump():
        for line in process.stdout:
            sys.stdout.write(f"    serve| {line}")

    threading.Thread(target=pump, daemon=True).start()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--runs-dir", default="runs-serve-smoke")
    parser.add_argument("--keep", action="store_true",
                        help="keep the runs dir for inspection")
    args = parser.parse_args(argv)
    runs_dir = Path(args.runs_dir).resolve()
    if runs_dir.exists():
        shutil.rmtree(runs_dir)

    process, url = _start_server(runs_dir)
    _drain(process)
    client = ServiceClient(url, timeout=10.0)
    print(f"== service up at {url}")

    try:
        # ------------------------------------------------------ clean
        clean_id = client.submit({
            "jobs": _jobs("work:3:0.05"), "seed": 7, "shards": 2})
        status = client.wait(clean_id, timeout=120.0)
        if status["status"] != "COMPLETED":
            _fail(f"clean campaign ended {status['status']}")
        clean_digest = client.results(clean_id)["digest"]
        print(f"== clean run COMPLETED, digest {clean_digest[:16]}")

        # ------------------------------------- chaos: kill a shard PG
        chaos_id = client.submit({
            "jobs": _jobs("work:3:0.5"), "seed": 7, "shards": 2,
            "options": {"breaker_threshold": 1,
                        "max_reassignments": 0}})
        victim_pgid = None
        deadline = time.monotonic() + 60.0
        while time.monotonic() < deadline:
            snapshot = client.status(chaos_id)
            shards = snapshot.get("shards", {})
            running = [(shard_id, info) for shard_id, info
                       in sorted(shards.items())
                       if info.get("pgid")]
            if snapshot.get("status") == "RUNNING" and running:
                shard_id, info = running[0]
                victim_pgid = int(info["pgid"])
                break
            time.sleep(0.05)
        if victim_pgid is None:
            _fail("never saw a running shard to kill")
        os.killpg(victim_pgid, signal.SIGKILL)
        print(f"== SIGKILLed shard {shard_id} "
              f"(process group {victim_pgid})")

        status = client.wait(chaos_id, timeout=120.0)
        if status["status"] != "DEGRADED":
            _fail(f"expected DEGRADED after losing {shard_id} with "
                  f"no reassignment budget, got {status['status']}")
        lost = status.get("lost", {})
        if set(lost) != {shard_id}:
            _fail(f"loss accounting wrong: {lost}")
        quarantined = [sid for sid, info
                       in status.get("shards", {}).items()
                       if info.get("status") == "QUARANTINED"]
        if quarantined != [shard_id]:
            _fail(f"expected exactly {shard_id} QUARANTINED, "
                  f"got {quarantined}")
        results = client.results(chaos_id)
        lost_jobs = [job for job, entry in results["jobs"].items()
                     if entry["status"] == "LOST"]
        if sorted(lost_jobs) != sorted(lost[shard_id]):
            _fail(f"aggregate LOST jobs {lost_jobs} != "
                  f"accounted {lost[shard_id]}")
        print(f"== chaos run DEGRADED with {shard_id} quarantined, "
              f"{len(lost_jobs)} job(s) exactly accounted")

        # ------------------------------------------- resume converges
        client.resume(chaos_id)
        status = client.wait(chaos_id, timeout=120.0)
        if status["status"] != "COMPLETED":
            _fail(f"resume ended {status['status']}")
        resumed = client.results(chaos_id)
        if resumed["digest"] != clean_digest:
            _fail(f"digest mismatch after resume: "
                  f"{resumed['digest']} != {clean_digest}")
        campaign_json = json.loads(
            (runs_dir / chaos_id / "campaign.json").read_text())
        recovery = [sid for sid in campaign_json["shards"]
                    if "-r" in sid]
        if not recovery:
            _fail("no recovery shard was created on resume")
        print(f"== resume recovered via {recovery} and converged: "
              f"aggregate digest byte-identical to the clean run")

        # ---------------------------------------------- backpressure
        client.submit({"jobs": _jobs("sleep:10", count=1),
                       "shards": 1})
        rejected = 0
        for _ in range(10):
            try:
                client.submit({"jobs": _jobs("sleep:10", count=1),
                               "shards": 1})
            except AdmissionRejected:
                rejected += 1
        if rejected < 7:
            _fail(f"expected >=7 rejections from a depth-2 queue "
                  f"under 10 over-capacity submits, got {rejected}")
        health = client.health()
        if int(health["queued"]) > 2:
            _fail(f"queue grew beyond its bound: {health}")
        print(f"== backpressure: {rejected}/10 over-capacity "
              f"submissions got 429, queue stayed at "
              f"{health['queued']}/2")

    except ServiceError as error:
        _fail(f"service error: {error}")
    finally:
        # ------------------------------------------ graceful SIGTERM
        process.send_signal(signal.SIGTERM)
        try:
            code = process.wait(timeout=30.0)
        except subprocess.TimeoutExpired:
            process.kill()
            _fail("serve did not exit within 30s of SIGTERM")

    if code != 0:
        _fail(f"serve exited {code} after SIGTERM")
    print("== SIGTERM shutdown clean (exit 0)")
    if not args.keep:
        shutil.rmtree(runs_dir, ignore_errors=True)
    print("SERVE SMOKE OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
