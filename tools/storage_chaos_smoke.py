#!/usr/bin/env python
"""End-to-end smoke drill for the durable storage layer (CI gate).

Exercises the checkpoint durability contract through the real CLI,
failing loudly if any guarantee breaks:

1. **clean run** — a campaign completes; its per-job digests are the
   reference;
2. **torn-write chaos** — the seeded disk-fault injector tears the
   Nth checkpoint write mid-campaign (exit 3), leaving a truncated
   ``manifest.json`` and an intact write-ahead journal on disk;
3. **resume convergence** — ``--resume`` quarantines the torn copy to
   ``*.corrupt``, replays the journal, and completes with per-job
   digests **byte-identical** to the clean run;
4. **external bit-flip** — one bit of a *shard* manifest of a
   completed sharded campaign is flipped from outside (bit rot); the
   envelope checksum catches it on resume, the journal heals it, and
   the merged aggregate digest still matches the clean sharded run;
5. **evidence** — every drill leaves its quarantined ``*.corrupt``
   files in place for upload; the runs tree is kept with ``--keep``.

Usage: ``python tools/storage_chaos_smoke.py [--runs-dir DIR] [--keep]``
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: small, fast experiment subset — the drill is about the checkpoints,
#: not the physics
EXPERIMENTS = "fig2,fig4,fig5"
SEED = 7


def _fail(message: str) -> "NoReturn":  # noqa: F821
    print(f"SMOKE FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def _campaign(runs_dir: Path, *extra: str) -> int:
    command = [sys.executable, "-m", "repro", "campaign",
               "--runs-dir", str(runs_dir), *extra]
    print(f"  $ {' '.join(command[2:])}")
    return subprocess.call(
        command, cwd=str(REPO),
        env={**os.environ, "PYTHONPATH": str(REPO / "src")})


def _job_digests(runs_dir: Path, campaign_id: str) -> dict:
    path = runs_dir / campaign_id / "manifest.json"
    manifest = json.loads(path.read_text())
    bad = {job_id: job["status"]
           for job_id, job in manifest["jobs"].items()
           if job["status"] != "COMPLETED"}
    if bad:
        _fail(f"{campaign_id}: non-COMPLETED jobs {bad}")
    return {job_id: job["digest"]
            for job_id, job in manifest["jobs"].items()}


def _aggregate_digest(runs_dir: Path, campaign_id: str) -> str:
    path = runs_dir / campaign_id / "aggregate.json"
    return json.loads(path.read_text())["digest"]


def _corrupt_files(runs_dir: Path) -> list:
    return sorted(str(p.relative_to(runs_dir))
                  for p in runs_dir.rglob("*.corrupt*"))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--runs-dir", default="runs-storage-chaos")
    parser.add_argument("--keep", action="store_true",
                        help="keep the runs dir for inspection")
    args = parser.parse_args(argv)
    runs_dir = Path(args.runs_dir).resolve()
    if runs_dir.exists():
        shutil.rmtree(runs_dir)
    runs_dir.mkdir(parents=True)

    # -------------------------------------------------------- clean
    print("== clean reference run")
    if _campaign(runs_dir, "--fast", "--only", EXPERIMENTS,
                 "--seed", str(SEED), "--campaign-id", "clean") != 0:
        _fail("clean campaign did not complete")
    clean = _job_digests(runs_dir, "clean")
    print(f"== clean run COMPLETED ({len(clean)} jobs)")

    # --------------------------------------------- torn-write chaos
    print("== torn-write chaos drill (expect exit 3)")
    code = _campaign(runs_dir, "--fast", "--only", EXPERIMENTS,
                     "--seed", str(SEED), "--campaign-id", "torn",
                     "--chaos", "torn-write", "--chaos-write", "3")
    if code != 3:
        _fail(f"expected exit 3 (interrupted by storage fault), "
              f"got {code}")
    torn_manifest = runs_dir / "torn" / "manifest.json"
    journal = torn_manifest.with_name("manifest.json.journal")
    if not journal.exists():
        _fail("no write-ahead journal left beside the torn manifest")
    try:
        json.loads(torn_manifest.read_text())
        # a parseable torn manifest is possible (tear on a boundary)
        # but the envelope must still reject it on load — the resume
        # below proves that either way
    except (json.JSONDecodeError, OSError):
        pass
    print("== checkpoint torn mid-write, journal intact")

    print("== resume after torn write")
    if _campaign(runs_dir, "--resume", "torn",
                 "--seed", str(SEED)) != 0:
        _fail("resume after torn write did not complete")
    if _job_digests(runs_dir, "torn") != clean:
        _fail("digests diverged after torn-write resume")
    quarantined = _corrupt_files(runs_dir)
    if not any(q.startswith("torn/") for q in quarantined):
        _fail(f"torn checkpoint was not quarantined: {quarantined}")
    print("== resume converged: digests byte-identical, torn copy "
          "quarantined")

    # ------------------------------------- external shard bit-flip
    print("== sharded reference run")
    if _campaign(runs_dir, "--fast", "--only", EXPERIMENTS,
                 "--seed", str(SEED), "--campaign-id", "svc",
                 "--shards", "2") != 0:
        _fail("sharded campaign did not complete")
    svc_digest = _aggregate_digest(runs_dir, "svc")
    print(f"== sharded run COMPLETED, aggregate digest "
          f"{svc_digest[:16]}")

    shard_manifests = sorted(
        (runs_dir / "svc" / "shards").glob("*/manifest.json"))
    if not shard_manifests:
        _fail("no shard manifests found to corrupt")
    victim = shard_manifests[0]
    data = bytearray(victim.read_bytes())
    data[len(data) // 2] ^= 0x08      # deterministic external bit rot
    victim.write_bytes(bytes(data))
    print(f"== flipped one bit of "
          f"{victim.relative_to(runs_dir)} from outside")

    print("== resume after bit-flip")
    if _campaign(runs_dir, "--resume", "svc") != 0:
        _fail("resume after shard bit-flip did not complete")
    healed = _aggregate_digest(runs_dir, "svc")
    if healed != svc_digest:
        _fail(f"aggregate digest diverged after bit-flip heal: "
              f"{healed} != {svc_digest}")
    quarantined = _corrupt_files(runs_dir)
    if not any(q.startswith("svc/") for q in quarantined):
        _fail(f"flipped shard manifest was not quarantined: "
              f"{quarantined}")
    print("== bit-flip detected by envelope checksum, healed from "
          "journal, aggregate digest unchanged")

    print(f"== quarantine evidence: {quarantined}")
    if not args.keep:
        shutil.rmtree(runs_dir, ignore_errors=True)
    print("STORAGE CHAOS SMOKE OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
