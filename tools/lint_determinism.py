#!/usr/bin/env python3
"""Determinism lint for the simulator core.

The paper's side channel *is* micro-architectural state, so the
simulator layers that produce it — ``repro.cpu``, ``repro.isa``,
``repro.memory`` — must be bit-reproducible: two runs with the same
seed have to retire the same instructions, allocate the same BTB
entries, and record the same LBR stream.  Wall-clock reads and ambient
(module-level, unseeded) randomness silently break that.

The static layers are held to the same bar: ``repro.analysis``
(including the symbolic certifier, whose reports are diffed against a
committed golden byte-for-byte) and ``repro.lang`` (the compiler and
the constant-time rewriter, whose output the certifier re-proves)
must produce identical artifacts on identical inputs.

This lint walks the AST of every module under those packages and
rejects:

* calls to ``time.time`` / ``time.monotonic`` / ``time.perf_counter``
  (any ``time.*`` call, and the bare names when imported via
  ``from time import ...``);
* calls through the *module-level* ``random`` generator
  (``random.random()``, ``random.choice(...)``, ...).  Constructing a
  seeded ``random.Random(seed)`` instance is fine — that is the
  sanctioned pattern (see ``repro.cpu.lbr``).

Allow-listed exceptions (function-level, reviewed by hand):

* the wall-clock *deadline guards* in ``repro.cpu.interp`` — they read
  ``time.monotonic`` purely to abort runaway simulations and never
  feed the result into simulated state.

Run from the repository root::

    python tools/lint_determinism.py

Exit status 0 when clean, 1 with findings (one per line,
``path:line: message``).
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path
from typing import Iterable, List, Optional, Tuple

REPO_ROOT = Path(__file__).resolve().parent.parent
#: packages that must stay deterministic
SCOPED_DIRS = (
    REPO_ROOT / "src" / "repro" / "cpu",
    REPO_ROOT / "src" / "repro" / "isa",
    REPO_ROOT / "src" / "repro" / "memory",
    REPO_ROOT / "src" / "repro" / "analysis",
    REPO_ROOT / "src" / "repro" / "lang",
)

#: (relative path, enclosing function) pairs allowed to read the clock
DEADLINE_GUARD_ALLOWLIST = {
    ("src/repro/cpu/interp.py", "_check_deadline"),
    ("src/repro/cpu/interp.py", "_check_deadline_now"),
}

_BANNED_TIME_NAMES = {"time", "monotonic", "perf_counter",
                      "monotonic_ns", "perf_counter_ns", "time_ns"}


class _Visitor(ast.NodeVisitor):
    def __init__(self, relpath: str):
        self.relpath = relpath
        self.findings: List[Tuple[int, str]] = []
        self._fn_stack: List[str] = []

    # -- scope tracking -------------------------------------------------
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._fn_stack.append(node.name)
        self.generic_visit(node)
        self._fn_stack.pop()

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def _allowed_clock_site(self) -> bool:
        return any((self.relpath, name) in DEADLINE_GUARD_ALLOWLIST
                   for name in self._fn_stack)

    # -- call inspection ------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and isinstance(func.value,
                                                          ast.Name):
            module, attr = func.value.id, func.attr
            if module == "time":
                if not self._allowed_clock_site():
                    self.findings.append((
                        node.lineno,
                        f"wall-clock read time.{attr}() outside the "
                        f"allow-listed deadline guards"))
            elif module == "random" and attr != "Random":
                self.findings.append((
                    node.lineno,
                    f"module-level RNG call random.{attr}() — use a "
                    f"seeded random.Random instance"))
        elif isinstance(func, ast.Name):
            if (func.id in _BANNED_TIME_NAMES
                    and self._imported_from_time(func.id)
                    and not self._allowed_clock_site()):
                self.findings.append((
                    node.lineno,
                    f"wall-clock read {func.id}() outside the "
                    f"allow-listed deadline guards"))
        self.generic_visit(node)

    # -- import bookkeeping ---------------------------------------------
    def visit_Module(self, node: ast.Module) -> None:
        self._from_time: set = set()
        for stmt in ast.walk(node):
            if (isinstance(stmt, ast.ImportFrom)
                    and stmt.module == "time"):
                for alias in stmt.names:
                    self._from_time.add(alias.asname or alias.name)
        self.generic_visit(node)

    def _imported_from_time(self, name: str) -> bool:
        return name in getattr(self, "_from_time", set())


def lint_file(path: Path) -> List[str]:
    try:
        relpath = path.relative_to(REPO_ROOT).as_posix()
    except ValueError:                 # outside the repo (tests)
        relpath = path.as_posix()
    tree = ast.parse(path.read_text(encoding="utf-8"),
                     filename=str(path))
    visitor = _Visitor(relpath)
    visitor.visit(tree)
    return [f"{relpath}:{line}: {message}"
            for line, message in sorted(visitor.findings)]


def lint_paths(dirs: Optional[Iterable[Path]] = None) -> List[str]:
    findings: List[str] = []
    for directory in (SCOPED_DIRS if dirs is None else dirs):
        for path in sorted(directory.rglob("*.py")):
            findings.extend(lint_file(path))
    return findings


def main() -> int:
    findings = lint_paths()
    for finding in findings:
        print(finding)
    if findings:
        print(f"determinism lint: {len(findings)} finding(s)",
              file=sys.stderr)
        return 1
    print("determinism lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
