"""RSA key-generation driver (pure Python).

The paper attacks the GCD *inside* mbedTLS's RSA key generation: the
keygen computes ``gcd(E, phi)`` (checking coprimality of the public
exponent with Euler's phi) on secret-derived values, and the balanced
branch inside GCD leaks them.  Only the GCD runs on the simulated CPU;
this module supplies the surrounding keygen — prime sampling, phi,
and the per-run ground-truth branch directions.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Tuple

from .bignum import binary_gcd_branch_trace

E_DEFAULT = 65537


def is_probable_prime(candidate: int, rng: random.Random,
                      rounds: int = 16) -> bool:
    """Miller–Rabin primality test."""
    if candidate < 2:
        return False
    for small in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37):
        if candidate % small == 0:
            return candidate == small
    d = candidate - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        a = rng.randrange(2, candidate - 1)
        x = pow(a, d, candidate)
        if x in (1, candidate - 1):
            continue
        for _ in range(r - 1):
            x = pow(x, 2, candidate)
            if x == candidate - 1:
                break
        else:
            return False
    return True


def random_prime(bits: int, rng: random.Random) -> int:
    """Sample a random prime with exactly ``bits`` bits."""
    while True:
        candidate = rng.getrandbits(bits) | (1 << (bits - 1)) | 1
        if is_probable_prime(candidate, rng):
            return candidate


@dataclass(frozen=True)
class RsaKey:
    p: int
    q: int
    e: int

    @property
    def n(self) -> int:
        return self.p * self.q

    @property
    def phi(self) -> int:
        return (self.p - 1) * (self.q - 1)

    def gcd_inputs(self) -> Tuple[int, int]:
        """The (a, b) operands of the attacked GCD call — mbedTLS
        checks ``gcd(E, phi) == 1`` during keygen."""
        return self.e, self.phi

    def secret_branch_directions(self) -> List[bool]:
        """Ground-truth balanced-branch directions for this key's
        GCD run (what NightVision tries to recover)."""
        a, b = self.gcd_inputs()
        return binary_gcd_branch_trace(a, b)[1]


def generate_key(bits_per_prime: int = 32, e: int = E_DEFAULT,
                 seed: int = 0) -> RsaKey:
    """Generate one RSA key (scaled-down primes for simulation speed;
    the GCD loop structure is identical at any width)."""
    rng = random.Random(seed)
    while True:
        p = random_prime(bits_per_prime, rng)
        q = random_prime(bits_per_prime, rng)
        if p == q:
            continue
        key = RsaKey(p, q, e)
        from math import gcd as _gcd
        if _gcd(e, key.phi) == 1:
            return key


def generate_keys(count: int, bits_per_prime: int = 32,
                  e: int = E_DEFAULT, seed: int = 0) -> List[RsaKey]:
    """A deterministic batch of keys (one per attack run, §7.2)."""
    return [generate_key(bits_per_prime, e, seed=seed * 100_003 + i)
            for i in range(count)]
