"""Multi-limb big-number routines, in DSL source form.

These are the substrate the paper's two victim functions sit on: the
mbedTLS GCD calls into compare/subtract/shift helpers exactly like
``mbedtls_mpi`` does, which gives the dynamic PC traces their
call/ret structure (needed by the fingerprint slicing of §6.4).

Numbers are little-endian arrays of u64 limbs.  A Python reference
implementation of each routine lives alongside for differential
testing and for generating ground truth.
"""

from __future__ import annotations

from typing import List, Tuple

MASK64 = (1 << 64) - 1

#: DSL source of the bignum helper library.
BIGNUM_SOURCE = """
# ---------------------------------------------------------------- bignum
func bn_is_zero(a, n) {
  i = 0;
  while (i < n) {
    if (a[i] != 0) { return 0; }
    i = i + 1;
  }
  return 1;
}

func bn_is_even(a) {
  return (a[0] & 1) == 0;
}

func bn_cmp(a, b, n) {
  # 0: a == b, 1: a > b, 2: a < b  (cpCmp_BNU-style, most
  # significant limb first)
  i = n;
  while (i != 0) {
    i = i - 1;
    if (a[i] != b[i]) {
      if (a[i] < b[i]) { return 2; }
      return 1;
    }
  }
  return 0;
}

func bn_sub(r, a, b, n) {
  # r = a - b (mod 2^(64n)); returns the final borrow
  borrow = 0;
  i = 0;
  while (i < n) {
    av = a[i];
    bv = b[i];
    d1 = av - bv;
    b1 = av < bv;
    d2 = d1 - borrow;
    b2 = d1 < borrow;
    r[i] = d2;
    borrow = b1 | b2;
    i = i + 1;
  }
  return borrow;
}

func bn_shr1(a, n) {
  # a >>= 1 in place; returns the bit shifted out
  carry = 0;
  i = n;
  while (i != 0) {
    i = i - 1;
    v = a[i];
    a[i] = (v >> 1) | (carry << 63);
    carry = v & 1;
  }
  return carry;
}

func bn_shl1(a, n) {
  # a <<= 1 in place; returns the bit shifted out
  carry = 0;
  i = 0;
  while (i < n) {
    v = a[i];
    a[i] = (v << 1) | carry;
    carry = v >> 63;
    i = i + 1;
  }
  return carry;
}

func bn_copy(d, s, n) {
  i = 0;
  while (i < n) {
    d[i] = s[i];
    i = i + 1;
  }
  return 0;
}
"""


# ----------------------------------------------------------------------
# Python reference model (differential testing / ground truth)
# ----------------------------------------------------------------------
def to_limbs(value: int, nlimbs: int) -> List[int]:
    """Split ``value`` into ``nlimbs`` little-endian u64 limbs."""
    if value < 0:
        raise ValueError("negative bignum")
    if value >> (64 * nlimbs):
        raise ValueError(f"{value:#x} does not fit in {nlimbs} limbs")
    return [(value >> (64 * index)) & MASK64 for index in range(nlimbs)]


def from_limbs(limbs: List[int]) -> int:
    """Inverse of :func:`to_limbs`."""
    value = 0
    for index, limb in enumerate(limbs):
        value |= (limb & MASK64) << (64 * index)
    return value


def limbs_to_bytes(limbs: List[int]) -> bytes:
    out = bytearray()
    for limb in limbs:
        out += (limb & MASK64).to_bytes(8, "little")
    return bytes(out)


def bytes_to_limbs(blob: bytes) -> List[int]:
    if len(blob) % 8:
        raise ValueError("bignum byte length must be a multiple of 8")
    return [int.from_bytes(blob[index:index + 8], "little")
            for index in range(0, len(blob), 8)]


def ref_cmp(a: int, b: int) -> int:
    """Reference for the DSL ``bn_cmp``: 0 equal, 1 greater, 2 less."""
    if a == b:
        return 0
    return 1 if a > b else 2


def binary_gcd_branch_trace(a: int, b: int) -> Tuple[int, List[bool]]:
    """Reference binary GCD, recording the *secret* balanced-branch
    direction per iteration (True = 'then' arm, TA >= TB).

    This mirrors ``mbedtls_mpi_gcd``'s structure and is the ground
    truth the §7.2 accuracy numbers are computed against.
    """
    if a == 0 and b == 0:
        return 0, []
    ta, tb = a, b
    count = 0
    while ta and tb and ta % 2 == 0 and tb % 2 == 0:
        ta >>= 1
        tb >>= 1
        count += 1
    directions: List[bool] = []
    while ta != 0:
        while ta % 2 == 0:
            ta >>= 1
        while tb % 2 == 0:
            tb >>= 1
        if ta >= tb:
            directions.append(True)
            ta = (ta - tb) >> 1
        else:
            directions.append(False)
            tb = (tb - ta) >> 1
    return tb << count, directions


def binary_gcd(a: int, b: int) -> int:
    return binary_gcd_branch_trace(a, b)[0]
