"""Victim programs: bignum substrate (DSL + Python reference), the
mbedTLS-style GCD in eight library versions, the IPP-style bn_cmp, and
the RSA keygen driver that feeds the attacked GCD."""

from .bignum import (
    BIGNUM_SOURCE,
    binary_gcd,
    binary_gcd_branch_trace,
    bytes_to_limbs,
    from_limbs,
    limbs_to_bytes,
    ref_cmp,
    to_limbs,
)
from .bn_cmp import bn_cmp_module, bn_cmp_source
from .gcd import (
    GCD_VERSIONS,
    VERSION_GROUPS,
    gcd_module,
    gcd_source,
    secret_branch_function,
)
from .library import (
    ENCLAVE_DATA_BASE,
    USER_DATA_BASE,
    ArraySpec,
    DataLayout,
    VictimProgram,
    build_bignum_victim,
    build_bn_cmp_victim,
    build_gcd_victim,
)
from .rsa import (
    E_DEFAULT,
    RsaKey,
    generate_key,
    generate_keys,
    is_probable_prime,
    random_prime,
)

__all__ = [
    "ArraySpec",
    "BIGNUM_SOURCE",
    "DataLayout",
    "E_DEFAULT",
    "ENCLAVE_DATA_BASE",
    "GCD_VERSIONS",
    "RsaKey",
    "USER_DATA_BASE",
    "VERSION_GROUPS",
    "VictimProgram",
    "binary_gcd",
    "binary_gcd_branch_trace",
    "bn_cmp_module",
    "bn_cmp_source",
    "build_bignum_victim",
    "build_bn_cmp_victim",
    "build_gcd_victim",
    "bytes_to_limbs",
    "from_limbs",
    "gcd_module",
    "gcd_source",
    "generate_key",
    "generate_keys",
    "is_probable_prime",
    "limbs_to_bytes",
    "random_prime",
    "ref_cmp",
    "secret_branch_function",
    "to_limbs",
]
