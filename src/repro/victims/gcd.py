"""The mbedTLS-style GCD victim, in eight library "versions".

The paper evaluates NightVision against ``mbedtls_mpi_gcd`` (§7.2) and
fingerprints it across mbedTLS versions 2.5–3.1 (§7.3, Fig. 13 left).
Its finding: the *source* of GCD is identical across 2.5–2.15, changes
at 2.16, and changes again for 3.x — fingerprint similarity follows
that block structure.  We reproduce the setup with three genuinely
different source implementations mapped onto eight version labels.

All variants compute the same function (binary GCD over *nonzero*
operands — RSA keygen never passes zero, and mbedTLS guards it
upstream of the binary loop) and contain the same *secret*: a
balanced branch, taken iff ``TA >= TB``, evaluated once per loop
iteration.  The optional ``yield`` after the branch body
is the §7.2 preemption point (victims built for enclave fingerprinting
omit it).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..errors import CompileError
from ..lang import ast as A
from ..lang.parser import parse_module
from .bignum import BIGNUM_SOURCE

#: the version labels evaluated in Fig. 13 (left)
GCD_VERSIONS: Tuple[str, ...] = (
    "2.5", "2.7", "2.12", "2.15", "2.16", "2.24", "3.0", "3.1",
)

#: versions sharing identical GCD source (the paper's observation)
VERSION_GROUPS: Dict[str, Tuple[str, ...]] = {
    "classic": ("2.5", "2.7", "2.12", "2.15"),
    "v216": ("2.16", "2.24"),
    "v3": ("3.0", "3.1"),
}


def _group_of(version: str) -> str:
    for group, members in VERSION_GROUPS.items():
        if version in members:
            return group
    raise CompileError(f"unknown mbedTLS version {version!r}")


# --------------------------------------------------------------------
# variant sources ({yield} is replaced by "yield;" or "")
# --------------------------------------------------------------------
_GCD_CLASSIC = """
# mbedtls_mpi_gcd, versions 2.5 - 2.15 (classic binary GCD)
func mpi_gcd(g, ta, tb, n) {
  count = 0;
  while (bn_is_even(ta) & bn_is_even(tb)) {
    bn_shr1(ta, n);
    bn_shr1(tb, n);
    count = count + 1;
  }
  while (bn_is_zero(ta, n) == 0) {
    while (bn_is_even(ta)) { bn_shr1(ta, n); }
    while (bn_is_even(tb)) { bn_shr1(tb, n); }
    if (bn_cmp(ta, tb, n) != 2) {
      # TA >= TB : the balanced secret branch (then arm)
      bn_sub(ta, ta, tb, n);
      bn_shr1(ta, n);
    } else {
      bn_sub(tb, tb, ta, n);
      bn_shr1(tb, n);
    }
    {yield}
  }
  bn_copy(g, tb, n);
  while (count != 0) {
    bn_shl1(g, n);
    count = count - 1;
  }
  return 0;
}
"""

_GCD_V216 = """
# mbedtls_mpi_gcd, versions 2.16+ (restructured: helper-based odd
# reduction and pointer swap instead of two symmetric arms)
func bn_make_odd(a, n) {
  shifts = 0;
  while (bn_is_even(a)) {
    bn_shr1(a, n);
    shifts = shifts + 1;
  }
  return shifts;
}

func mpi_gcd(g, ta, tb, n) {
  count = 0;
  while (bn_is_even(ta) & bn_is_even(tb)) {
    bn_shr1(ta, n);
    bn_shr1(tb, n);
    count = count + 1;
  }
  while (bn_is_zero(ta, n) == 0) {
    bn_make_odd(ta, n);
    bn_make_odd(tb, n);
    if (bn_cmp(ta, tb, n) == 2) {
      # TA < TB : swap the operand pointers (else arm of the secret)
      tmp = ta;
      ta = tb;
      tb = tmp;
    } else {
      # TA >= TB : keep order (then arm)
      tmp = tb;
      tb = tb;
      ta = ta;
    }
    bn_sub(ta, ta, tb, n);
    bn_shr1(ta, n);
    {yield}
  }
  bn_copy(g, tb, n);
  while (count != 0) {
    bn_shl1(g, n);
    count = count - 1;
  }
  return 0;
}
"""

_GCD_V3 = """
# mbedtls_mpi_gcd, versions 3.x (single helper doing reduce+select,
# flattened main loop)
func bn_reduce_step(ta, tb, n) {
  # one Stein reduction step; returns 1 when the then arm executed
  c = bn_cmp(ta, tb, n);
  r = 0;
  if (c != 2) {
    bn_sub(ta, ta, tb, n);
    bn_shr1(ta, n);
    r = 1;
  } else {
    bn_sub(tb, tb, ta, n);
    bn_shr1(tb, n);
  }
  return r;
}

func mpi_gcd(g, ta, tb, n) {
  count = 0;
  while (bn_is_even(ta) & bn_is_even(tb)) {
    bn_shr1(ta, n);
    bn_shr1(tb, n);
    count = count + 1;
  }
  while (bn_is_zero(ta, n) == 0) {
    while (bn_is_even(ta)) { bn_shr1(ta, n); }
    while (bn_is_even(tb)) { bn_shr1(tb, n); }
    bn_reduce_step(ta, tb, n);
    {yield}
  }
  bn_copy(g, tb, n);
  while (count != 0) {
    bn_shl1(g, n);
    count = count - 1;
  }
  return 0;
}
"""

_SOURCES_BY_GROUP = {
    "classic": _GCD_CLASSIC,
    "v216": _GCD_V216,
    "v3": _GCD_V3,
}


def gcd_source(version: str = "3.0", *, with_yield: bool = False) -> str:
    """Full DSL source (bignum library + GCD) for one mbedTLS version."""
    body = _SOURCES_BY_GROUP[_group_of(version)]
    yield_stmt = "yield;" if with_yield else ""
    return BIGNUM_SOURCE + body.replace("{yield}", yield_stmt)


def gcd_module(version: str = "3.0", *,
               with_yield: bool = False) -> A.Module:
    """Parsed module for one version."""
    return parse_module(gcd_source(version, with_yield=with_yield))


def secret_branch_function(version: str) -> str:
    """Name of the function containing the balanced secret branch."""
    return "bn_reduce_step" if _group_of(version) == "v3" else "mpi_gcd"


def then_arm_means_ta_ge_tb(version: str) -> bool:
    """Does the *then* arm of the secret branch correspond to the
    ``TA >= TB`` direction?  True for the classic and 3.x sources;
    the 2.16 rewrite tests ``TA < TB`` (pointer swap), inverting the
    mapping.  The attacker reads this off the public binary."""
    return _group_of(version) != "v216"
