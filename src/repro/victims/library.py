"""Victim build helpers: compile a victim, lay out its data, and
produce processes / enclaves / ground-truth oracles from one object.

This is the glue every experiment uses: the same compiled binary can be
instantiated as a user-space process (control-flow leakage, §5), as an
SGX enclave (fingerprinting, §6), or run under the fast interpreter
(ground truth), with fresh operand values each run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..cpu.interp import InterpResult, run_function
from ..cpu.state import MachineState
from ..lang import CompileOptions, CompiledModule, Compiler, parse_module
from ..memory.address import PAGE_SIZE, align_up
from ..memory.memory import VirtualMemory
from ..sgx.enclave import Enclave
from ..system.process import Process
from .bignum import BIGNUM_SOURCE, limbs_to_bytes, to_limbs
from .bn_cmp import bn_cmp_source
from .gcd import (VERSION_GROUPS, gcd_source, secret_branch_function,
                  then_arm_means_ta_ge_tb)

#: default placement of victim working data (user-space runs)
USER_DATA_BASE = 0x0000_0000_0090_0000
#: enclave data region base (must match Enclave.load default)
ENCLAVE_DATA_BASE = 0x0000_7000_0000_0000


@dataclass(frozen=True)
class SymbolicDomain:
    """The symbolic slice of one secret input array.

    Bits ``shift .. shift+bits-1`` of limb 0 are free Boolean
    variables; every other bit is pinned by ``forced_or`` (e.g.
    ``forced_or=1`` with ``shift=1`` certifies over *odd* values,
    which is the domain mbedTLS guarantees its binary-GCD loop —
    RSA keygen never passes even/zero operands)."""

    array: str
    bits: int
    shift: int = 0
    forced_or: int = 0


@dataclass(frozen=True)
class CertifySpec:
    """Per-victim parameters for ``repro certify``.

    ``expected`` maps function name -> verdict string
    (``PROVEN_LEAKY`` / ``PROVEN_SAFE`` / ``UNDECIDED``); the ``"*"``
    key is the wildcard for every function not named.  A certified
    verdict that contradicts this table fails the run — the
    annotations are the victims' machine-checked leakage contract."""

    domains: Tuple[SymbolicDomain, ...]
    template: Tuple[Tuple[str, int], ...] = ()
    #: fixed iteration count for secret loops in the CT rewrite; must
    #: dominate the true trip count over the certified domain
    ct_loop_bound: int = 6
    expected: Tuple[Tuple[str, str], ...] = ()

    def template_inputs(self) -> Dict[str, int]:
        return dict(self.template)

    def expected_verdict(self, function: str) -> Optional[str]:
        table = dict(self.expected)
        return table.get(function, table.get("*"))


@dataclass(frozen=True)
class ArraySpec:
    """One named u64-array in the victim's data region."""

    name: str
    address: int
    nlimbs: int

    @property
    def size(self) -> int:
        return self.nlimbs * 8


class DataLayout:
    """Sequential layout of named arrays with guard gaps."""

    def __init__(self, base: int, guard: int = 64):
        self.base = base
        self.guard = guard
        self.arrays: Dict[str, ArraySpec] = {}
        self._cursor = base

    def add(self, name: str, nlimbs: int) -> ArraySpec:
        spec = ArraySpec(name, self._cursor, nlimbs)
        self.arrays[name] = spec
        self._cursor = align_up(self._cursor + spec.size + self.guard, 8)
        return spec

    def __getitem__(self, name: str) -> ArraySpec:
        return self.arrays[name]

    @property
    def size(self) -> int:
        return self._cursor - self.base


class VictimProgram:
    """A compiled victim plus its data layout and input map.

    ``inputs`` maps array names to the integer each run should load
    into that array (missing arrays are zeroed).
    """

    def __init__(self, compiled: CompiledModule, layout: DataLayout,
                 nlimbs: int, *, secret_function: str,
                 fingerprint_function: Optional[str] = None,
                 then_arm_is_truth: bool = True,
                 main: str = "main",
                 secret_inputs: Sequence[str] = (),
                 leak_allowlist: Sequence[str] = (),
                 source: Optional[str] = None,
                 options: Optional[CompileOptions] = None,
                 certify: Optional[CertifySpec] = None):
        self.compiled = compiled
        self.layout = layout
        self.nlimbs = nlimbs
        self.secret_function = secret_function
        #: the function use case 2 fingerprints (defaults to the one
        #: holding the secret branch)
        self.fingerprint_function = (fingerprint_function
                                     if fingerprint_function is not None
                                     else secret_function)
        #: does the secret branch's *then* arm correspond to the
        #: ground-truth True direction? (inverted for mbedTLS 2.16+)
        self.then_arm_is_truth = then_arm_is_truth
        self.main = main
        #: names of layout arrays whose contents are secret — the seed
        #: set for the static taint lint (``repro lint``)
        self.secret_inputs: Tuple[str, ...] = tuple(secret_inputs)
        if set(self.secret_inputs) - set(layout.arrays):
            raise ValueError(
                f"secret inputs not in layout: "
                f"{sorted(set(self.secret_inputs) - set(layout.arrays))}")
        #: functions *known and accepted* to contain secret-dependent
        #: control flow or accesses; the lint reports findings outside
        #: this set as NEW (and fails)
        self.leak_allowlist: Tuple[str, ...] = tuple(leak_allowlist)
        #: DSL source + compile options the victim was built from —
        #: what the constant-time rewriter re-parses and re-compiles
        self.source = source
        self.options = options
        #: symbolic input domains and expected verdicts for
        #: ``repro certify`` (None: the victim is not certifiable)
        self.certify = certify

    # ------------------------------------------------------------------
    # instantiation
    # ------------------------------------------------------------------
    def _data_bytes(self, inputs: Dict[str, int]) -> List[Tuple[int, bytes]]:
        chunks: List[Tuple[int, bytes]] = []
        for name, spec in self.layout.arrays.items():
            value = inputs.get(name, 0)
            chunks.append(
                (spec.address,
                 limbs_to_bytes(to_limbs(value, spec.nlimbs))))
        return chunks

    def new_memory(self, inputs: Dict[str, int]) -> VirtualMemory:
        memory = VirtualMemory()
        self.compiled.program.load_into(memory)
        memory.map_range(self.layout.base,
                         max(self.layout.size, PAGE_SIZE), "rw")
        for address, blob in self._data_bytes(inputs):
            memory.write_bytes(address, blob, check=False)
        return memory

    def new_process(self, inputs: Dict[str, int],
                    name: str = "victim") -> Process:
        """Fresh user-space process with RIP at the start stub."""
        if self.compiled.start is None:
            raise ValueError("victim was compiled without a start stub")
        memory = self.new_memory(inputs)
        process = Process(name=name, memory=memory,
                          entry=self.compiled.start)
        return process

    def new_enclave(self, inputs: Dict[str, int],
                    name: str = "victim-enclave"
                    ) -> Tuple[Process, Enclave]:
        """Host process + loaded enclave with provisioned inputs.

        The victim must have been built with
        ``data_base=ENCLAVE_DATA_BASE`` so its baked-in data addresses
        fall inside EPC.
        """
        enclave = Enclave.from_program(self.compiled.program, name=name)
        host = Process(name=f"{name}-host")
        enclave.load(host, data_base=ENCLAVE_DATA_BASE)
        if self.layout.base != ENCLAVE_DATA_BASE:
            raise ValueError(
                "enclave victim must be built with "
                "data_base=ENCLAVE_DATA_BASE")
        # The enclave stack lives inside EPC (as on real SGX): the top
        # of the data region, far above the input arrays.  Call/ret
        # stack traffic is then visible to the accessed-bit monitor,
        # which the §6.4 call/ret classifier depends on.
        host.state.rsp = ENCLAVE_DATA_BASE + enclave.data_size
        for address, blob in self._data_bytes(inputs):
            enclave.provision(address, blob)
        return host, enclave

    # ------------------------------------------------------------------
    # ground truth
    # ------------------------------------------------------------------
    def ground_truth(self, inputs: Dict[str, int], *,
                     max_instructions: int = 5_000_000) -> InterpResult:
        """Dynamic trace of one full run under the fast interpreter
        (yields are treated as no-ops)."""
        memory = self.new_memory(inputs)
        state = MachineState(memory)
        state.setup_stack(0x7FFF_0000_0000)
        entry = self.compiled.info(self.main).entry
        return run_function(
            state, entry,
            max_instructions=max_instructions,
            syscall_handler=lambda s: True,   # ignore yields
        )

    def expected_unit_starts(self, inputs: Dict[str, int], config,
                             *, max_instructions: int = 5_000_000
                             ) -> List[int]:
        """Ground-truth *retire-unit* leading PCs under ``config``
        (fusion-aware) — what a perfect NV-S extraction would return.

        Runs on a private core so no micro-architectural state leaks
        into or out of the experiment.
        """
        from ..cpu.core import Core, StopReason

        memory = self.new_memory(inputs)
        state = MachineState(memory)
        state.setup_stack(0x7FFF_0000_0000)
        if self.compiled.start is None:
            raise ValueError("victim was compiled without a start stub")
        state.rip = self.compiled.start
        core = Core(config)
        units: List[int] = []
        while True:
            result = core.run(state, collect_trace=True,
                              max_instructions=max_instructions)
            units.extend(result.unit_starts or [])
            if result.reason is StopReason.SYSCALL:
                state.regs["rax"] = 0      # treat yields as no-ops
                continue
            if result.reason is StopReason.HALT:
                return units
            raise ValueError(f"unexpected stop: {result.reason}")

    def secret_branch_events(self, inputs: Dict[str, int]
                             ) -> List[Tuple[int, bool]]:
        """(pc, taken) of conditional branches inside the secret
        function, from ground truth."""
        info = self.compiled.info(self.secret_function)
        result = self.ground_truth(inputs)
        return [(pc, taken) for pc, taken in result.branch_events
                if info.contains(pc)]


# ----------------------------------------------------------------------
# builders
# ----------------------------------------------------------------------
#: functions accepted to branch on secret data, per mbedTLS lineage
#: (the explicit-flow surface the paper's attacks target; audited by
#: the tests in tests/test_analysis_taint.py)
_GCD_LEAK_ALLOWLIST = {
    "classic": ("mpi_gcd", "bn_cmp", "bn_is_zero"),
    "v216": ("mpi_gcd", "bn_cmp", "bn_is_zero", "bn_make_odd"),
    "v3": ("mpi_gcd", "bn_cmp", "bn_is_zero", "bn_reduce_step"),
}


def _gcd_group(version: str) -> str:
    for group, members in VERSION_GROUPS.items():
        if version in members:
            return group
    raise ValueError(f"unknown mbedTLS version {version!r}")


def build_gcd_victim(version: str = "3.0", *,
                     options: Optional[CompileOptions] = None,
                     nlimbs: int = 2,
                     with_yield: bool = True,
                     data_base: int = USER_DATA_BASE) -> VictimProgram:
    """Compile the mbedTLS-style GCD victim.

    Layout arrays: ``g`` (result), ``ta``/``tb`` (operands).  ``main``
    calls ``mpi_gcd(g, ta, tb, nlimbs)``.
    """
    options = options if options is not None else CompileOptions()
    layout = DataLayout(data_base)
    g = layout.add("g", nlimbs)
    ta = layout.add("ta", nlimbs)
    tb = layout.add("tb", nlimbs)
    source = gcd_source(version, with_yield=with_yield) + f"""
func main() {{
  mpi_gcd({g.address}, {ta.address}, {tb.address}, {nlimbs});
  return 0;
}}
"""
    compiled = Compiler(options).compile(parse_module(source),
                                         start="main")
    allowlist = _GCD_LEAK_ALLOWLIST[_gcd_group(version)]
    # certify over odd 3-bit operands (shift 1, forced low bit):
    # mbedTLS guards zero/even upstream of the binary loop, and odd
    # operands keep the even-reduction trip counts small and bounded
    certify = CertifySpec(
        domains=(SymbolicDomain("ta", bits=2, shift=1, forced_or=1),
                 SymbolicDomain("tb", bits=2, shift=1, forced_or=1)),
        ct_loop_bound=6,
        expected=tuple((name, "PROVEN_LEAKY") for name in allowlist)
        + (("*", "PROVEN_SAFE"),))
    return VictimProgram(
        compiled, layout, nlimbs,
        secret_function=secret_branch_function(version),
        fingerprint_function="mpi_gcd",
        then_arm_is_truth=then_arm_means_ta_ge_tb(version),
        secret_inputs=("ta", "tb"),
        leak_allowlist=allowlist,
        source=source, options=options, certify=certify)


def build_bn_cmp_victim(*, options: Optional[CompileOptions] = None,
                        nlimbs: int = 4,
                        iters: int = 1,
                        with_yield: bool = True,
                        data_base: int = USER_DATA_BASE
                        ) -> VictimProgram:
    """Compile the IPP-style bn_cmp victim.

    Layout arrays: ``a``/``b`` (operands), ``out`` (results, one slot
    per iteration).  ``main`` calls ``cmp_loop(a, b, nlimbs, iters,
    out)``.
    """
    options = options if options is not None else CompileOptions()
    layout = DataLayout(data_base)
    a = layout.add("a", nlimbs)
    b = layout.add("b", nlimbs)
    out = layout.add("out", max(iters, 1))
    source = bn_cmp_source(with_yield=with_yield) + f"""
func main() {{
  cmp_loop({a.address}, {b.address}, {nlimbs}, {iters}, {out.address});
  return 0;
}}
"""
    compiled = Compiler(options).compile(parse_module(source),
                                         start="main")
    # secret a in 0..7 against the public threshold b = 5: the
    # worked README example — sign of (a - 5) leaks via one branch
    certify = CertifySpec(
        domains=(SymbolicDomain("a", bits=3),),
        template=(("b", 5),),
        expected=(("ipp_bn_cmp", "PROVEN_LEAKY"),
                  ("*", "PROVEN_SAFE")))
    return VictimProgram(compiled, layout, nlimbs,
                         secret_function="ipp_bn_cmp",
                         secret_inputs=("a",),
                         leak_allowlist=("ipp_bn_cmp",),
                         source=source, options=options,
                         certify=certify)


def build_bignum_victim(*, options: Optional[CompileOptions] = None,
                        nlimbs: int = 4,
                        data_base: int = USER_DATA_BASE
                        ) -> VictimProgram:
    """Compile the bignum-helpers victim — the lint's negative control.

    ``main`` runs the constant-time helpers (``bn_sub``, ``bn_copy``,
    ``bn_shl1``, ``bn_shr1``) over a *secret* operand ``s``: the secret
    flows through data but never into a branch condition or an address,
    so the static leakage lint must report zero findings.
    """
    options = options if options is not None else CompileOptions()
    layout = DataLayout(data_base)
    s = layout.add("s", nlimbs)
    t = layout.add("t", nlimbs)
    out = layout.add("out", nlimbs)
    source = BIGNUM_SOURCE + f"""
func main() {{
  bn_sub({out.address}, {s.address}, {t.address}, {nlimbs});
  bn_shl1({out.address}, {nlimbs});
  bn_shr1({out.address}, {nlimbs});
  bn_copy({out.address}, {s.address}, {nlimbs});
  return 0;
}}
"""
    compiled = Compiler(options).compile(parse_module(source),
                                         start="main")
    # negative control: the secret flows through bn_sub/shift data
    # paths only — every reached branch must certify PROVEN_SAFE
    certify = CertifySpec(
        domains=(SymbolicDomain("s", bits=3),),
        template=(("t", 1),),
        expected=(("*", "PROVEN_SAFE"),))
    return VictimProgram(compiled, layout, nlimbs,
                         secret_function="bn_sub",
                         secret_inputs=("s",),
                         leak_allowlist=(),
                         source=source, options=options,
                         certify=certify)
