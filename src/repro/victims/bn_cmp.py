"""The IPP-Crypto-style big-number comparison victim (§7.2).

Intel IPP's ``cpCmp_BNU`` scans limbs from the most significant and, on
the first difference, takes a perfectly balanced branch on which
operand is larger.  The attacker leaks that branch's direction — i.e.
the sign of a secret comparison — with NV-U.

The attacked wrapper compares a secret against a public threshold in a
loop (one comparison per iteration, one ``sched_yield`` after it),
mirroring how the paper measures 100 runs of the function.
"""

from __future__ import annotations

from ..lang import ast as A
from ..lang.parser import parse_module
from .bignum import BIGNUM_SOURCE

_BN_CMP = """
# cpCmp_BNU-style comparison with the balanced secret branch
func ipp_bn_cmp(a, b, n) {
  i = n;
  while (i != 0) {
    i = i - 1;
    av = a[i];
    bv = b[i];
    if (av != bv) {
      if (av < bv) {
        # a < b  (else-direction of the secret)
        r = 2;
        r = r + 0;
        return r;
      } else {
        # a > b  (then-direction of the secret)
        r = 1;
        r = r + 0;
        return r;
      }
    }
  }
  return 0;
}

# attacked wrapper: one secret comparison per iteration, yielding to
# the (simulated) preemptive scheduler after each — §7.2 methodology
func cmp_loop(a, b, n, iters, out) {
  k = 0;
  while (k < iters) {
    r = ipp_bn_cmp(a, b, n);
    out[k] = r;
    {yield}
    k = k + 1;
  }
  return 0;
}
"""


def bn_cmp_source(*, with_yield: bool = False) -> str:
    yield_stmt = "yield;" if with_yield else ""
    return BIGNUM_SOURCE + _BN_CMP.replace("{yield}", yield_stmt)


def bn_cmp_module(*, with_yield: bool = False) -> A.Module:
    return parse_module(bn_cmp_source(with_yield=with_yield))
