"""Two-pass assembler.

Programs are built through a fluent API::

    asm = Assembler(base=0x40_0000)
    asm.label("F1")
    asm.emit("jmp8", "L1")          # string operand = PC-relative label
    asm.label("L1")
    asm.emit("ret")
    image = asm.assemble()

Because every opcode has a fixed length, sizing is exact on the first
pass and label resolution happens on the second.  ``org`` starts a new
segment at an arbitrary address, which the experiments use to place
colliding code gigabytes apart without materializing padding.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..errors import AssemblerError, EncodeError
from .encoding import encode
from .instructions import Format, Instruction, spec_for
from .registers import register_number


@dataclass(frozen=True)
class Ref:
    """Symbolic reference to ``label + addend``."""

    label: str
    addend: int = 0
    #: "rel" resolves to a PC-relative displacement, "abs" to the
    #: absolute address (for movabs/movi immediates).
    mode: str = "rel"

    def __add__(self, addend: int) -> "Ref":
        return Ref(self.label, self.addend + addend, self.mode)


def rel(label: str, addend: int = 0) -> Ref:
    """PC-relative reference (default for string operands)."""
    return Ref(label, addend, "rel")


def abs_(label: str, addend: int = 0) -> Ref:
    """Absolute-address reference (for ``movabs``/``movi`` immediates)."""
    return Ref(label, addend, "abs")


Operand = Union[int, str, Ref]


@dataclass
class _Item:
    """One assembly-stream item: instruction, label or directive."""

    kind: str                      # "inst" | "label" | "org" | "align" | "bytes"
    mnemonic: str = ""
    operands: Tuple[Operand, ...] = ()
    name: str = ""
    value: int = 0
    data: bytes = b""
    #: filled by pass 1
    address: int = -1
    size: int = 0


@dataclass
class AssembledProgram:
    """The output of :meth:`Assembler.assemble`.

    ``segments`` is a list of ``(base_address, bytes)`` chunks;
    ``symbols`` maps label names to addresses; ``instructions`` maps
    each instruction's address to its decoded form (ground truth for
    the experiments and the fingerprint corpus).
    """

    segments: List[Tuple[int, bytes]] = field(default_factory=list)
    symbols: Dict[str, int] = field(default_factory=dict)
    instructions: Dict[int, Instruction] = field(default_factory=dict)

    @property
    def entry(self) -> int:
        """Address of the first byte of the first segment."""
        if not self.segments:
            raise AssemblerError("empty program has no entry point")
        return self.segments[0][0]

    def address_of(self, label: str) -> int:
        try:
            return self.symbols[label]
        except KeyError:
            raise AssemblerError(f"unknown symbol {label!r}") from None

    def instruction_addresses(self) -> List[int]:
        """Sorted list of every static instruction address."""
        return sorted(self.instructions)

    def load_into(self, memory, perms: str = "rx") -> None:
        """Map and write every segment into a ``VirtualMemory``."""
        for base, blob in self.segments:
            memory.map_range(base, len(blob), perms)
            memory.write_bytes(base, blob, check=False)


class Assembler:
    """Two-pass assembler over the :mod:`repro.isa` instruction set."""

    def __init__(self, base: int = 0x40_0000):
        self._base = base
        self._items: List[_Item] = []

    # ------------------------------------------------------------------
    # stream construction
    # ------------------------------------------------------------------
    def label(self, name: str) -> "Assembler":
        self._items.append(_Item("label", name=name))
        return self

    def emit(self, mnemonic: str, *operands: Operand) -> "Assembler":
        spec = spec_for(mnemonic)  # fail fast on unknown mnemonics
        converted: List[Operand] = []
        for operand in operands:
            if isinstance(operand, str):
                if operand in _REGISTER_STRINGS:
                    converted.append(register_number(operand))
                else:
                    converted.append(Ref(operand))
            else:
                converted.append(operand)
        self._items.append(
            _Item("inst", mnemonic=spec.mnemonic, operands=tuple(converted))
        )
        return self

    def org(self, address: int) -> "Assembler":
        """Start a new segment at ``address``."""
        self._items.append(_Item("org", value=address))
        return self

    def align(self, boundary: int) -> "Assembler":
        """Pad with 1-byte ``nop`` until the next ``boundary`` multiple."""
        if boundary <= 0 or boundary & (boundary - 1):
            raise AssemblerError(f"alignment must be a power of 2: {boundary}")
        self._items.append(_Item("align", value=boundary))
        return self

    def nops(self, count: int) -> "Assembler":
        """Emit ``count`` individual 1-byte nops."""
        for _ in range(count):
            self.emit("nop")
        return self

    def bytes(self, data: bytes) -> "Assembler":
        """Emit raw bytes (data islands; never decoded as code)."""
        self._items.append(_Item("bytes", data=bytes(data)))
        return self

    def comment(self, _text: str) -> "Assembler":
        """No-op, for readable builder code."""
        return self

    # ------------------------------------------------------------------
    # assembly
    # ------------------------------------------------------------------
    def assemble(self) -> AssembledProgram:
        symbols = self._layout()
        return self._emit_segments(symbols)

    def _layout(self) -> Dict[str, int]:
        """Pass 1: assign addresses and record symbols."""
        symbols: Dict[str, int] = {}
        cursor = self._base
        for item in self._items:
            if item.kind == "org":
                if item.value < 0:
                    raise AssemblerError("org address must be non-negative")
                cursor = item.value
                item.address = cursor
            elif item.kind == "label":
                if item.name in symbols:
                    raise AssemblerError(f"duplicate label {item.name!r}")
                symbols[item.name] = cursor
                item.address = cursor
            elif item.kind == "align":
                item.address = cursor
                remainder = cursor % item.value
                item.size = (item.value - remainder) % item.value
                cursor += item.size
            elif item.kind == "bytes":
                item.address = cursor
                item.size = len(item.data)
                cursor += item.size
            elif item.kind == "inst":
                item.address = cursor
                item.size = spec_for(item.mnemonic).length
                cursor += item.size
            else:  # pragma: no cover
                raise AssemblerError(f"unknown item kind {item.kind}")
        return symbols

    def _resolve(self, operand: Operand, symbols: Dict[str, int],
                 pc: int, length: int) -> int:
        if isinstance(operand, int):
            return operand
        if isinstance(operand, Ref):
            try:
                target = symbols[operand.label] + operand.addend
            except KeyError:
                raise AssemblerError(
                    f"undefined label {operand.label!r}"
                ) from None
            if operand.mode == "abs":
                return target
            return target - (pc + length)
        raise AssemblerError(f"unresolvable operand {operand!r}")

    def _emit_segments(self, symbols: Dict[str, int]) -> AssembledProgram:
        program = AssembledProgram(symbols=dict(symbols))
        segments: List[Tuple[int, bytearray]] = []

        def current_segment(address: int) -> bytearray:
            if segments:
                base, blob = segments[-1]
                if base + len(blob) == address:
                    return blob
            segments.append((address, bytearray()))
            return segments[-1][1]

        for item in self._items:
            if item.kind in ("org", "label"):
                continue
            blob = current_segment(item.address)
            if item.kind == "align":
                nop = encode(Instruction(spec_for("nop")))
                for offset in range(item.size):
                    program.instructions[item.address + offset] = Instruction(
                        spec_for("nop")
                    )
                blob += nop * item.size
            elif item.kind == "bytes":
                blob += item.data
            elif item.kind == "inst":
                spec = spec_for(item.mnemonic)
                resolved = tuple(
                    self._resolve(op, symbols, item.address, item.size)
                    for op in item.operands
                )
                instruction = Instruction(spec, resolved)
                try:
                    encoded = encode(instruction)
                except EncodeError as error:
                    raise AssemblerError(
                        f"at {item.address:#x} ({item.mnemonic}): {error}"
                    ) from error
                program.instructions[item.address] = instruction
                blob += encoded

        program.segments = [(base, bytes(blob)) for base, blob in segments]
        self._check_overlap(program.segments)
        return program

    @staticmethod
    def _check_overlap(segments: Sequence[Tuple[int, bytes]]) -> None:
        spans = sorted((base, base + len(blob)) for base, blob in segments)
        for (_, end), (start, _) in zip(spans, spans[1:]):
            if start < end:
                raise AssemblerError(
                    f"overlapping segments near {start:#x}"
                )


#: Register-name strings the emit() convenience layer recognises.
_REGISTER_STRINGS = frozenset(
    name for name in (
        "rax", "rcx", "rdx", "rbx", "rsp", "rbp", "rsi", "rdi",
        "r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15",
    )
)


def relocate(program: AssembledProgram, delta: int) -> AssembledProgram:
    """Return a copy of ``program`` shifted by ``delta`` bytes.

    Only correct for position-independent code (all our control flow is
    PC-relative except ``movabs`` address materialization, which this
    helper does not rewrite); used by the CFR defense to move trampoline
    code to fresh random addresses.
    """
    moved = AssembledProgram(
        segments=[(base + delta, blob) for base, blob in program.segments],
        symbols={name: addr + delta for name, addr in program.symbols.items()},
        instructions={
            addr + delta: inst for addr, inst in program.instructions.items()
        },
    )
    return moved
