"""Disassembler: bytes back to readable text.

Used by examples, debugging helpers and the fingerprint tooling (which
renders reference functions the way Figure 11 of the paper does).
"""

from __future__ import annotations

from typing import Iterator, List, Tuple

from ..errors import DecodeError
from .encoding import decode
from .instructions import Format, Instruction
from .registers import register_name


def format_instruction(instruction: Instruction, pc: int = 0) -> str:
    """Render one instruction, resolving relative targets against ``pc``."""
    spec = instruction.spec
    ops = instruction.operands
    fmt = spec.fmt
    if fmt in (Format.NONE, Format.PAD1, Format.PAD2):
        return spec.mnemonic
    if fmt in (Format.REL8, Format.REL32, Format.REL32_PAD):
        target = pc + spec.length + ops[0]
        return f"{spec.mnemonic} {target:#x}"
    if fmt in (Format.REG, Format.REG_PAD):
        return f"{spec.mnemonic} {register_name(ops[0])}"
    if fmt in (Format.REG_REG, Format.REG_REG_PAD2):
        return (f"{spec.mnemonic} {register_name(ops[0])}, "
                f"{register_name(ops[1])}")
    if fmt in (Format.REG_IMM8, Format.REG_IMM32, Format.REG_IMM64):
        return f"{spec.mnemonic} {register_name(ops[0])}, {ops[1]:#x}"
    if fmt in (Format.REG_REG_DISP8, Format.REG_REG_DISP32):
        if spec.mnemonic in ("store", "storew"):
            return (f"{spec.mnemonic} [{register_name(ops[0])}"
                    f"{ops[2]:+#x}], {register_name(ops[1])}")
        return (f"{spec.mnemonic} {register_name(ops[0])}, "
                f"[{register_name(ops[1])}{ops[2]:+#x}]")
    raise DecodeError(f"unhandled format {fmt}")  # pragma: no cover


def disassemble(blob: bytes, base: int = 0,
                stop_on_error: bool = True) -> Iterator[
                    Tuple[int, Instruction, str]]:
    """Yield ``(address, instruction, text)`` for each instruction.

    With ``stop_on_error=False`` undecodable bytes are skipped one at a
    time and reported as ``.byte`` lines.
    """
    offset = 0
    while offset < len(blob):
        pc = base + offset
        try:
            instruction, length = decode(blob, offset)
        except DecodeError:
            if stop_on_error:
                raise
            yield pc, None, f".byte {blob[offset]:#04x}"  # type: ignore
            offset += 1
            continue
        yield pc, instruction, format_instruction(instruction, pc)
        offset += length


def listing(blob: bytes, base: int = 0) -> str:
    """Return a full textual listing, one instruction per line."""
    lines: List[str] = []
    for pc, _, text in disassemble(blob, base, stop_on_error=False):
        lines.append(f"{pc:#010x}: {text}")
    return "\n".join(lines)
