"""Instruction set definition.

The ISA is a clean-slate 64-bit design whose *instruction lengths mirror
x86-64*.  That matters for this reproduction: NightVision's
fingerprinting use case gets its entropy from variable-length encoding
(§6.4 of the paper), and the BTB experiments depend on 1-byte ``nop``,
1-byte ``ret`` and a 2-byte short ``jmp`` (the shortest possible
prediction-window terminator).

Encoding scheme
---------------
Every instruction is ``[opcode byte][operand bytes ...]``.  The opcode
byte alone determines the format and therefore the total length, which
makes decoding trivial and unambiguous.  Pad bytes (always ``0x00``)
bring each format's length in line with its typical x86-64 encoding
(REX prefixes, ModRM bytes, ...).

Condition codes are packed into dedicated opcode ranges, exactly like
x86's ``0x70+cc`` short-Jcc block.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..errors import EncodeError


class Format(enum.Enum):
    """Operand-byte layout following the opcode byte."""

    NONE = "none"                  # no operand bytes
    PAD1 = "pad1"                  # 1 pad byte
    PAD2 = "pad2"                  # 2 pad bytes
    REL8 = "rel8"                  # 1-byte signed PC-relative displacement
    REL32 = "rel32"                # 4-byte signed PC-relative displacement
    REL32_PAD = "rel32_pad"        # rel32 + 1 pad (6-byte near Jcc)
    REG = "reg"                    # 1 register byte
    REG_PAD = "reg_pad"            # register byte + 1 pad
    REG_REG = "reg_reg"            # packed (dst<<4)|src byte + 1 pad
    REG_REG_PAD2 = "reg_reg_pad2"  # packed regs byte + 2 pads
    REG_IMM8 = "reg_imm8"          # reg byte + imm8 + 1 pad
    REG_IMM32 = "reg_imm32"        # reg byte + imm32 + 1 pad
    REG_IMM64 = "reg_imm64"        # reg byte + imm64
    REG_REG_DISP8 = "reg_reg_disp8"    # packed regs + disp8 + 1 pad
    REG_REG_DISP32 = "reg_reg_disp32"  # packed regs + disp32 + 1 pad


#: Operand bytes contributed by each format (length = 1 + this).
_FORMAT_OPERAND_BYTES: Dict[Format, int] = {
    Format.NONE: 0,
    Format.PAD1: 1,
    Format.PAD2: 2,
    Format.REL8: 1,
    Format.REL32: 4,
    Format.REL32_PAD: 5,
    Format.REG: 1,
    Format.REG_PAD: 2,
    Format.REG_REG: 2,
    Format.REG_REG_PAD2: 3,
    Format.REG_IMM8: 3,
    Format.REG_IMM32: 6,
    Format.REG_IMM64: 9,
    Format.REG_REG_DISP8: 3,
    Format.REG_REG_DISP32: 6,
}


class Cond(enum.IntEnum):
    """Condition codes for ``jcc``/``cmovcc``/``setcc``.

    ``E/NE`` test ZF; ``L/GE/LE/G`` are signed comparisons; ``B/AE/BE/A``
    are unsigned; ``S/NS`` test the sign flag; ``O/NO`` signed overflow.
    """

    E = 0      # equal / zero
    NE = 1
    L = 2      # signed <
    GE = 3
    LE = 4
    G = 5
    B = 6      # unsigned <
    AE = 7
    BE = 8
    A = 9
    S = 10
    NS = 11
    O = 12     # noqa: E741 - matches x86 mnemonic
    NO = 13


COND_NAMES: Dict[Cond, str] = {cond: cond.name.lower() for cond in Cond}
COND_BY_NAME: Dict[str, Cond] = {
    name: cond for cond, name in COND_NAMES.items()
}
# Common aliases.
COND_BY_NAME.update({"z": Cond.E, "nz": Cond.NE, "c": Cond.B, "nc": Cond.AE})


def evaluate_cond(cond: Cond, flags) -> bool:
    """Evaluate condition ``cond`` against a :class:`Flags` object."""
    if cond == Cond.E:
        return flags.zf
    if cond == Cond.NE:
        return not flags.zf
    if cond == Cond.L:
        return flags.sf != flags.of
    if cond == Cond.GE:
        return flags.sf == flags.of
    if cond == Cond.LE:
        return flags.zf or flags.sf != flags.of
    if cond == Cond.G:
        return not flags.zf and flags.sf == flags.of
    if cond == Cond.B:
        return flags.cf
    if cond == Cond.AE:
        return not flags.cf
    if cond == Cond.BE:
        return flags.cf or flags.zf
    if cond == Cond.A:
        return not flags.cf and not flags.zf
    if cond == Cond.S:
        return flags.sf
    if cond == Cond.NS:
        return not flags.sf
    if cond == Cond.O:
        return flags.of
    if cond == Cond.NO:
        return not flags.of
    raise EncodeError(f"unknown condition code {cond!r}")


class Kind(enum.Enum):
    """Control-flow classification used by the BTB and the front end."""

    SEQUENTIAL = "sequential"      # plain ALU / memory / nop
    DIRECT_JUMP = "direct_jump"    # unconditional, PC-relative
    COND_JUMP = "cond_jump"        # conditional, PC-relative
    INDIRECT_JUMP = "indirect_jump"
    CALL = "call"                  # direct call
    INDIRECT_CALL = "indirect_call"
    RET = "ret"
    SYSCALL = "syscall"
    HALT = "halt"


#: Kinds that transfer control (can terminate a prediction window).
CONTROL_KINDS = frozenset({
    Kind.DIRECT_JUMP, Kind.COND_JUMP, Kind.INDIRECT_JUMP,
    Kind.CALL, Kind.INDIRECT_CALL, Kind.RET,
})

#: Kinds whose BTB entries IBRS/IBPB invalidate (indirect predictions).
INDIRECT_KINDS = frozenset({Kind.INDIRECT_JUMP, Kind.INDIRECT_CALL, Kind.RET})


@dataclass(frozen=True)
class InstrSpec:
    """Static description of one opcode."""

    mnemonic: str
    opcode: int
    fmt: Format
    kind: Kind = Kind.SEQUENTIAL
    cond: Optional[Cond] = None
    #: True for ALU ops that can macro-fuse with a following jcc.
    fusible: bool = False

    @property
    def length(self) -> int:
        """Total encoded length in bytes."""
        return 1 + _FORMAT_OPERAND_BYTES[self.fmt]

    @property
    def is_control(self) -> bool:
        return self.kind in CONTROL_KINDS


def _build_table() -> Tuple[Dict[int, InstrSpec], Dict[str, InstrSpec]]:
    by_opcode: Dict[int, InstrSpec] = {}
    by_name: Dict[str, InstrSpec] = {}

    def add(spec: InstrSpec) -> None:
        if spec.opcode in by_opcode:
            raise EncodeError(f"duplicate opcode {spec.opcode:#x}")
        if spec.mnemonic in by_name:
            raise EncodeError(f"duplicate mnemonic {spec.mnemonic}")
        by_opcode[spec.opcode] = spec
        by_name[spec.mnemonic] = spec

    # --- 1-byte instructions (x86: nop/ret/hlt/cmc are all 1 byte) ----
    add(InstrSpec("nop", 0x90, Format.NONE))
    add(InstrSpec("ret", 0xC3, Format.NONE, kind=Kind.RET))
    add(InstrSpec("hlt", 0xF4, Format.NONE, kind=Kind.HALT))
    add(InstrSpec("cmc", 0xF5, Format.NONE))

    # --- control transfers -------------------------------------------
    add(InstrSpec("jmp8", 0xEB, Format.REL8, kind=Kind.DIRECT_JUMP))
    add(InstrSpec("jmp", 0xE9, Format.REL32, kind=Kind.DIRECT_JUMP))
    add(InstrSpec("call", 0xE8, Format.REL32, kind=Kind.CALL))
    # jcc8: opcodes 0x70..0x7D  (2 bytes, like x86 0x70+cc)
    for cond in Cond:
        add(InstrSpec(f"j{COND_NAMES[cond]}8", 0x70 + cond,
                      Format.REL8, kind=Kind.COND_JUMP, cond=cond))
    # jcc near: opcodes 0x40..0x4D (6 bytes, like x86 0F 80+cc)
    for cond in Cond:
        add(InstrSpec(f"j{COND_NAMES[cond]}", 0x40 + cond,
                      Format.REL32_PAD, kind=Kind.COND_JUMP, cond=cond))
    add(InstrSpec("jmpr", 0xFE, Format.REG_PAD, kind=Kind.INDIRECT_JUMP))
    add(InstrSpec("callr", 0xFD, Format.REG_PAD, kind=Kind.INDIRECT_CALL))
    add(InstrSpec("syscall", 0x0F, Format.PAD1, kind=Kind.SYSCALL))

    # --- stack --------------------------------------------------------
    add(InstrSpec("push", 0x50, Format.REG))      # 2 bytes
    add(InstrSpec("pop", 0x58, Format.REG))       # 2 bytes

    # --- moves --------------------------------------------------------
    add(InstrSpec("mov", 0x89, Format.REG_REG))            # 3 bytes
    add(InstrSpec("movi", 0xC7, Format.REG_IMM32))         # 7 bytes
    add(InstrSpec("movabs", 0xB8, Format.REG_IMM64))       # 10 bytes
    add(InstrSpec("xchg", 0x87, Format.REG_REG))           # 3 bytes
    add(InstrSpec("load", 0x8B, Format.REG_REG_DISP8))     # 4 bytes
    add(InstrSpec("loadw", 0x8C, Format.REG_REG_DISP32))   # 7 bytes
    add(InstrSpec("store", 0x88, Format.REG_REG_DISP8))    # 4 bytes
    add(InstrSpec("storew", 0x8D, Format.REG_REG_DISP32))  # 7 bytes
    add(InstrSpec("lea", 0x8E, Format.REG_REG_DISP32))     # 7 bytes

    # --- ALU reg,reg (3 bytes like REX + op + modrm) ------------------
    alu_rr = [
        ("add", 0x01), ("sub", 0x29), ("and", 0x21), ("or", 0x09),
        ("xor", 0x31), ("adc", 0x11), ("sbb", 0x19),
    ]
    for name, opcode in alu_rr:
        add(InstrSpec(name, opcode, Format.REG_REG, fusible=True))
    add(InstrSpec("cmp", 0x39, Format.REG_REG, fusible=True))
    add(InstrSpec("test", 0x85, Format.REG_REG, fusible=True))
    add(InstrSpec("imul", 0xAF, Format.REG_REG_PAD2))      # 4 bytes

    # --- ALU reg,imm8 (4 bytes like REX 83 /n ib) ---------------------
    alu_ri8 = [
        ("addi8", 0x83), ("subi8", 0x84), ("cmpi8", 0x86),
        ("andi8", 0x92), ("ori8", 0x93), ("xori8", 0x94),
        ("shl", 0xC0), ("shr", 0xC1), ("sar", 0xC2),
    ]
    for name, opcode in alu_ri8:
        fusible = name in ("addi8", "subi8", "cmpi8", "andi8")
        add(InstrSpec(name, opcode, Format.REG_IMM8, fusible=fusible))

    # --- ALU reg,imm32 (7 bytes like REX 81 /n id) --------------------
    alu_ri32 = [
        ("addi", 0x81), ("subi", 0x82), ("cmpi", 0x95),
        ("andi", 0x96), ("ori", 0x97), ("xori", 0x98), ("testi", 0xA9),
    ]
    for name, opcode in alu_ri32:
        fusible = name in ("addi", "subi", "cmpi", "andi", "testi")
        add(InstrSpec(name, opcode, Format.REG_IMM32, fusible=fusible))

    # --- one-register ALU (3 bytes like REX FF /n) --------------------
    for name, opcode in [("inc", 0xF6), ("dec", 0xF7), ("neg", 0xF8),
                         ("not", 0xF9), ("mul", 0xFA), ("div", 0xFB)]:
        fusible = name in ("inc", "dec")
        add(InstrSpec(name, opcode, Format.REG_PAD, fusible=fusible))

    # --- conditional moves / sets (4 bytes like x86) ------------------
    for cond in Cond:
        add(InstrSpec(f"cmov{COND_NAMES[cond]}", 0xD0 + cond,
                      Format.REG_REG_PAD2, cond=cond))
    for cond in Cond:
        add(InstrSpec(f"set{COND_NAMES[cond]}", 0x60 + cond,
                      Format.REG_PAD, cond=cond))

    # --- fences -------------------------------------------------------
    add(InstrSpec("lfence", 0xAE, Format.PAD2))            # 3 bytes

    return by_opcode, by_name


SPECS_BY_OPCODE, SPECS_BY_NAME = _build_table()

#: All mnemonics, for fuzzing / property tests.
ALL_MNEMONICS: Tuple[str, ...] = tuple(sorted(SPECS_BY_NAME))


def spec_for(mnemonic: str) -> InstrSpec:
    """Look up the :class:`InstrSpec` for ``mnemonic``.

    Raises :class:`EncodeError` for unknown mnemonics.
    """
    try:
        return SPECS_BY_NAME[mnemonic]
    except KeyError:
        raise EncodeError(f"unknown mnemonic {mnemonic!r}") from None


@dataclass(frozen=True)
class Instruction:
    """One decoded (or to-be-encoded) instruction.

    ``operands`` are already numeric: register numbers, immediates, or
    PC-relative displacements.  Label resolution happens in the
    assembler, before an :class:`Instruction` is constructed.
    """

    spec: InstrSpec
    operands: Tuple[int, ...] = ()

    @property
    def mnemonic(self) -> str:
        return self.spec.mnemonic

    @property
    def length(self) -> int:
        return self.spec.length

    @property
    def kind(self) -> Kind:
        return self.spec.kind

    @property
    def is_control(self) -> bool:
        return self.spec.is_control

    def __repr__(self) -> str:
        return f"Instruction({self.mnemonic}, {self.operands})"
