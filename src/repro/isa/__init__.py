"""ISA and toolchain: registers, instruction table, encoder/decoder,
assembler, disassembler.

Public surface::

    from repro.isa import Assembler, make, decode, encode

The instruction set is a clean-slate 64-bit design with x86-64-like
instruction *lengths*; see :mod:`repro.isa.instructions` for rationale.
"""

from .assembler import AssembledProgram, Assembler, Ref, abs_, rel, relocate
from .disassembler import disassemble, format_instruction, listing
from .encoding import decode, encode, make
from .instructions import (
    ALL_MNEMONICS,
    CONTROL_KINDS,
    INDIRECT_KINDS,
    Cond,
    Format,
    Instruction,
    InstrSpec,
    Kind,
    SPECS_BY_NAME,
    SPECS_BY_OPCODE,
    evaluate_cond,
    spec_for,
)
from .registers import (
    Flags,
    MASK64,
    NUM_REGISTERS,
    REGISTER_NAMES,
    RegisterFile,
    register_name,
    register_number,
    to_signed,
    to_unsigned,
)

__all__ = [
    "ALL_MNEMONICS",
    "AssembledProgram",
    "Assembler",
    "CONTROL_KINDS",
    "Cond",
    "Flags",
    "Format",
    "INDIRECT_KINDS",
    "Instruction",
    "InstrSpec",
    "Kind",
    "MASK64",
    "NUM_REGISTERS",
    "REGISTER_NAMES",
    "Ref",
    "RegisterFile",
    "SPECS_BY_NAME",
    "SPECS_BY_OPCODE",
    "abs_",
    "decode",
    "disassemble",
    "encode",
    "evaluate_cond",
    "format_instruction",
    "listing",
    "make",
    "register_name",
    "register_number",
    "rel",
    "relocate",
    "spec_for",
    "to_signed",
    "to_unsigned",
]
