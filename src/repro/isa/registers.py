"""Register file definition for the simulated ISA.

The machine is a 64-bit, 16-GPR design modelled on x86-64.  Register
*names* follow x86 so victim code and the paper's listings read
naturally, but nothing in the simulator depends on x86 encodings.
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

#: Canonical register names in encoding order (number = index).
REGISTER_NAMES: Tuple[str, ...] = (
    "rax", "rcx", "rdx", "rbx", "rsp", "rbp", "rsi", "rdi",
    "r8", "r9", "r10", "r11", "r12", "r13", "r14", "r15",
)

#: name -> register number
REGISTER_NUMBERS: Dict[str, int] = {
    name: number for number, name in enumerate(REGISTER_NAMES)
}

#: Number of general-purpose registers.
NUM_REGISTERS = len(REGISTER_NAMES)

#: Stack pointer register number.
RSP = REGISTER_NUMBERS["rsp"]

MASK64 = (1 << 64) - 1
SIGN64 = 1 << 63


def register_name(number: int) -> str:
    """Return the canonical name for register ``number``."""
    return REGISTER_NAMES[number]


def register_number(name: str) -> int:
    """Return the register number for ``name`` (case-insensitive)."""
    return REGISTER_NUMBERS[name.lower()]


def to_signed(value: int) -> int:
    """Interpret a 64-bit unsigned value as two's-complement signed."""
    value &= MASK64
    return value - (1 << 64) if value & SIGN64 else value


def to_unsigned(value: int) -> int:
    """Wrap an arbitrary Python int into the 64-bit unsigned range."""
    return value & MASK64


class Flags:
    """Condition flags (the subset our ALU maintains).

    Attributes mirror x86: ``zf`` (zero), ``sf`` (sign), ``cf`` (carry,
    i.e. unsigned overflow/borrow) and ``of`` (signed overflow).
    """

    __slots__ = ("zf", "sf", "cf", "of")

    def __init__(self, zf: bool = False, sf: bool = False,
                 cf: bool = False, of: bool = False):
        self.zf = zf
        self.sf = sf
        self.cf = cf
        self.of = of

    def copy(self) -> "Flags":
        return Flags(self.zf, self.sf, self.cf, self.of)

    def as_tuple(self) -> Tuple[bool, bool, bool, bool]:
        return (self.zf, self.sf, self.cf, self.of)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Flags):
            return NotImplemented
        return self.as_tuple() == other.as_tuple()

    def __repr__(self) -> str:
        bits = "".join(
            name.upper() if value else name
            for name, value in zip("zsco", self.as_tuple())
        )
        return f"Flags({bits})"


class RegisterFile:
    """The 16 general-purpose registers plus flags.

    Values are stored as Python ints already wrapped to 64 bits; writes
    wrap automatically so ALU code can use ordinary arithmetic.
    """

    __slots__ = ("_values", "flags")

    def __init__(self) -> None:
        self._values = [0] * NUM_REGISTERS
        self.flags = Flags()

    def read(self, number: int) -> int:
        return self._values[number]

    def write(self, number: int, value: int) -> None:
        self._values[number] = value & MASK64

    def __getitem__(self, key) -> int:
        if isinstance(key, str):
            key = register_number(key)
        return self._values[key]

    def __setitem__(self, key, value: int) -> None:
        if isinstance(key, str):
            key = register_number(key)
        self._values[key] = value & MASK64

    def items(self) -> Iterator[Tuple[str, int]]:
        for number, name in enumerate(REGISTER_NAMES):
            yield name, self._values[number]

    def snapshot(self) -> Dict[str, int]:
        """Return a name->value dict (used for checkpoint/restore)."""
        return dict(self.items())

    def restore(self, snapshot: Dict[str, int]) -> None:
        for name, value in snapshot.items():
            self[name] = value

    def copy(self) -> "RegisterFile":
        clone = RegisterFile()
        clone._values = list(self._values)
        clone.flags = self.flags.copy()
        return clone

    def __repr__(self) -> str:
        populated = {
            name: f"{value:#x}" for name, value in self.items() if value
        }
        return f"RegisterFile({populated})"
