"""Binary encoding and decoding of instructions.

Encoders take an :class:`Instruction` and produce bytes; the decoder
reads a byte sequence and reconstructs the instruction plus its length.
The mapping is bijective for every legal instruction (see the
property-based round-trip tests).
"""

from __future__ import annotations

import struct
from typing import Tuple

from ..errors import DecodeError, EncodeError
from .instructions import (
    Format,
    Instruction,
    InstrSpec,
    SPECS_BY_OPCODE,
    spec_for,
)

_PAD = 0x00


def _check_reg(value: int) -> int:
    if not 0 <= value <= 15:
        raise EncodeError(f"register number out of range: {value}")
    return value


def _check_signed(value: int, bits: int) -> int:
    low, high = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
    if not low <= value <= high:
        raise EncodeError(
            f"immediate {value} does not fit in {bits} signed bits"
        )
    return value & ((1 << bits) - 1)


def _signed(raw: int, bits: int) -> int:
    if raw & (1 << (bits - 1)):
        return raw - (1 << bits)
    return raw


def _operand_count(fmt: Format) -> int:
    if fmt in (Format.NONE, Format.PAD1, Format.PAD2):
        return 0
    if fmt in (Format.REL8, Format.REL32, Format.REL32_PAD,
               Format.REG, Format.REG_PAD):
        return 1
    if fmt in (Format.REG_REG_DISP8, Format.REG_REG_DISP32):
        return 3
    return 2


def encode(instruction: Instruction) -> bytes:
    """Encode ``instruction`` into bytes."""
    spec = instruction.spec
    ops = instruction.operands
    if len(ops) != _operand_count(spec.fmt):
        raise EncodeError(
            f"{spec.mnemonic} expects {_operand_count(spec.fmt)} "
            f"operand(s), got {len(ops)}"
        )
    fmt = spec.fmt
    out = bytearray([spec.opcode])
    if fmt is Format.NONE:
        pass
    elif fmt is Format.PAD1:
        out.append(_PAD)
    elif fmt is Format.PAD2:
        out += bytes([_PAD, _PAD])
    elif fmt is Format.REL8:
        out.append(_check_signed(ops[0], 8))
    elif fmt is Format.REL32:
        out += struct.pack("<i", ops[0])
    elif fmt is Format.REL32_PAD:
        out += struct.pack("<i", ops[0])
        out.append(_PAD)
    elif fmt is Format.REG:
        out.append(_check_reg(ops[0]))
    elif fmt is Format.REG_PAD:
        out.append(_check_reg(ops[0]))
        out.append(_PAD)
    elif fmt is Format.REG_REG:
        out.append((_check_reg(ops[0]) << 4) | _check_reg(ops[1]))
        out.append(_PAD)
    elif fmt is Format.REG_REG_PAD2:
        out.append((_check_reg(ops[0]) << 4) | _check_reg(ops[1]))
        out += bytes([_PAD, _PAD])
    elif fmt is Format.REG_IMM8:
        out.append(_check_reg(ops[0]))
        out.append(_check_signed(ops[1], 8))
        out.append(_PAD)
    elif fmt is Format.REG_IMM32:
        out.append(_check_reg(ops[0]))
        out += struct.pack("<i", _signed(_check_signed(ops[1], 32), 32))
        out.append(_PAD)
    elif fmt is Format.REG_IMM64:
        out.append(_check_reg(ops[0]))
        out += struct.pack("<Q", ops[1] & ((1 << 64) - 1))
    elif fmt is Format.REG_REG_DISP8:
        out.append((_check_reg(ops[0]) << 4) | _check_reg(ops[1]))
        out.append(_check_signed(ops[2], 8))
        out.append(_PAD)
    elif fmt is Format.REG_REG_DISP32:
        out.append((_check_reg(ops[0]) << 4) | _check_reg(ops[1]))
        out += struct.pack("<i", ops[2])
        out.append(_PAD)
    else:  # pragma: no cover - exhaustiveness guard
        raise EncodeError(f"unhandled format {fmt}")
    assert len(out) == spec.length, (spec, len(out))
    return bytes(out)


def decode(blob: bytes, offset: int = 0) -> Tuple[Instruction, int]:
    """Decode one instruction from ``blob`` starting at ``offset``.

    Returns ``(instruction, length)``.  Raises :class:`DecodeError` if
    the opcode is unknown or the blob is truncated.
    """
    if offset >= len(blob):
        raise DecodeError(f"decode past end of buffer at offset {offset}")
    opcode = blob[offset]
    spec = SPECS_BY_OPCODE.get(opcode)
    if spec is None:
        raise DecodeError(f"unknown opcode {opcode:#04x} at offset {offset}")
    if offset + spec.length > len(blob):
        raise DecodeError(
            f"truncated {spec.mnemonic} at offset {offset}: need "
            f"{spec.length} bytes, have {len(blob) - offset}"
        )
    body = blob[offset + 1:offset + spec.length]
    fmt = spec.fmt
    if fmt in (Format.NONE, Format.PAD1, Format.PAD2):
        ops: Tuple[int, ...] = ()
    elif fmt is Format.REL8:
        ops = (_signed(body[0], 8),)
    elif fmt is Format.REL32 or fmt is Format.REL32_PAD:
        ops = (struct.unpack_from("<i", body, 0)[0],)
    elif fmt is Format.REG:
        ops = (body[0],)
    elif fmt is Format.REG_PAD:
        ops = (body[0],)
    elif fmt is Format.REG_REG or fmt is Format.REG_REG_PAD2:
        ops = (body[0] >> 4, body[0] & 0xF)
    elif fmt is Format.REG_IMM8:
        ops = (body[0], _signed(body[1], 8))
    elif fmt is Format.REG_IMM32:
        ops = (body[0], struct.unpack_from("<i", body, 1)[0])
    elif fmt is Format.REG_IMM64:
        ops = (body[0], struct.unpack_from("<Q", body, 1)[0])
    elif fmt is Format.REG_REG_DISP8:
        ops = (body[0] >> 4, body[0] & 0xF, _signed(body[1], 8))
    elif fmt is Format.REG_REG_DISP32:
        ops = (body[0] >> 4, body[0] & 0xF,
               struct.unpack_from("<i", body, 1)[0])
    else:  # pragma: no cover - exhaustiveness guard
        raise DecodeError(f"unhandled format {fmt}")
    _validate_registers(spec, ops)
    return Instruction(spec, ops), spec.length


#: Formats whose first operand byte is an *unpacked* register number —
#: any value 16..255 there is unencodable and must not decode.
_PLAIN_REG_FORMATS = frozenset({
    Format.REG, Format.REG_PAD,
    Format.REG_IMM8, Format.REG_IMM32, Format.REG_IMM64,
})


def _validate_registers(spec: InstrSpec, ops: Tuple[int, ...]) -> None:
    """Registers decoded from packed (nibble) bytes are always in
    range, but a plain register byte could be 16..255 — reject those so
    decode accepts exactly what encode can produce (the round-trip
    property the disassembler tests rely on)."""
    if spec.fmt in _PLAIN_REG_FORMATS and ops and ops[0] > 15:
        raise DecodeError(
            f"{spec.mnemonic}: register byte {ops[0]} out of range"
        )


def make(mnemonic: str, *operands: int) -> Instruction:
    """Build an :class:`Instruction` from a mnemonic and numeric operands.

    This validates the operand count eagerly by performing a trial
    encoding, so malformed instructions fail at construction time.
    """
    instruction = Instruction(spec_for(mnemonic), tuple(operands))
    encode(instruction)  # validates counts and ranges
    return instruction
