"""Mini-compiler: a C-like DSL over u64 scalars and arrays, compiled to
the simulated ISA with gcc-like optimization levels (O0/O2/O3) and the
paper's defense passes (branch balancing, -falign-jumps=16, CFR)."""

from . import ast
from .codegen import (
    ARG_REGS,
    ArmRegion,
    CompileOptions,
    CompiledModule,
    Compiler,
    FunctionInfo,
    inline_leaf_calls,
)
from .parser import parse_function, parse_module

__all__ = [
    "ArmRegion",
    "ARG_REGS",
    "CompileOptions",
    "CompiledModule",
    "Compiler",
    "FunctionInfo",
    "ast",
    "inline_leaf_calls",
    "parse_function",
    "parse_module",
]
