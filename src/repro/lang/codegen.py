"""Code generation: AST -> assembled machine code.

Implements three optimization levels that matter for the paper's
Figure 13 (right) — different levels must produce *different binaries
of the same source*, the way gcc's do:

* **O0** — everything through the stack: locals in memory slots,
  expression evaluation via push/pop, 32-bit immediate forms, near
  jumps everywhere.
* **O2** — hot locals promoted to callee-saved registers, leaf-operand
  evaluation without stack traffic, 8-bit immediate forms where they
  fit, bottom-tested (rotated) loops, short jumps for short backward
  edges.
* **O3** — O2 plus leaf-function inlining and 16-byte alignment of
  loop headers.

Defense passes (the paper's §5 arms race) are also compiler flags:

* ``balance_branches`` — pad the shorter arm of every if/else with
  nops to the same byte length (branch balancing [42, 46]).
* ``align_jumps=16`` — the ``-falign-jumps=16`` flag that defeats the
  Frontal attack (§7.2): align every branch target to 16 bytes.
* ``cfr`` — control-flow randomization [25]: conditional branches are
  replaced by cmov-selected targets dispatched through an indirect
  jump in a trampoline at a randomized address.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import CompileError
from ..isa.assembler import AssembledProgram, Assembler, abs_
from ..isa.instructions import spec_for
from ..system.syscalls import SYS_SCHED_YIELD
from . import ast as A

#: argument-passing registers, in order
ARG_REGS = ("rdi", "rsi", "rdx", "rcx", "r8", "r9")
#: callee-saved registers available for local promotion at O2+
PROMOTE_REGS = ("rbx", "r12", "r13", "r14", "r15")

_CMP_COND = {
    "==": "e", "!=": "ne",
    "<": "b", "<=": "be", ">": "a", ">=": "ae",        # unsigned
    "s<": "l", "s<=": "le", "s>": "g", "s>=": "ge",     # signed
}
_COND_NEGATION = {
    "e": "ne", "ne": "e", "b": "ae", "ae": "b", "be": "a", "a": "be",
    "l": "ge", "ge": "l", "le": "g", "g": "le",
}


@dataclass(frozen=True)
class CompileOptions:
    """Compiler configuration (one 'gcc invocation')."""

    opt_level: int = 0                  # 0, 2 or 3
    balance_branches: bool = False
    align_jumps: int = 0                # 0 or 16
    cfr: bool = False
    cfr_seed: int = 1234
    base: int = 0x40_0000
    #: where CFR trampolines are randomized into
    cfr_region: int = 0x5000_0000
    #: inline leaf functions with at most this many statements (O3)
    inline_limit: int = 8

    def __post_init__(self):
        if self.opt_level not in (0, 2, 3):
            raise CompileError(f"unsupported opt level {self.opt_level}")
        if self.align_jumps not in (0, 16):
            raise CompileError("align_jumps must be 0 or 16")
        if self.balance_branches and self.align_jumps:
            raise CompileError(
                "balance_branches and align_jumps cannot be combined "
                "(padding lengths become layout-dependent)")


@dataclass
class FunctionInfo:
    """Layout facts about one compiled function."""

    name: str
    entry: int
    start: int
    end: int

    @property
    def size(self) -> int:
        return self.end - self.start

    def contains(self, pc: int) -> bool:
        return self.start <= pc < self.end


@dataclass(frozen=True)
class ArmRegion:
    """Address ranges of one compiled if/else (half-open intervals).

    The control-flow-leakage attacker (victim code public, §5) uses
    these to aim its PW at one side of the secret branch.
    """

    function: str
    then_start: int
    then_end: int
    else_start: int
    else_end: int


@dataclass
class CompiledModule:
    """A compiled module: the binary plus per-function layout."""

    program: AssembledProgram
    functions: Dict[str, FunctionInfo]
    options: CompileOptions
    #: entry point that calls the start function then halts
    start: Optional[int] = None
    #: every compiled if/else, in emission order
    arm_regions: List[ArmRegion] = field(default_factory=list)

    def info(self, name: str) -> FunctionInfo:
        try:
            return self.functions[name]
        except KeyError:
            raise CompileError(f"no function {name!r}") from None

    def static_pcs(self, name: str) -> List[int]:
        """Static instruction addresses of ``name`` (absolute)."""
        info = self.info(name)
        return [pc for pc in self.program.instructions
                if info.contains(pc)]

    def function_of(self, pc: int) -> Optional[str]:
        for name, info in self.functions.items():
            if info.contains(pc):
                return name
        return None

    def arms_in(self, function: str) -> List[ArmRegion]:
        """If/else arm regions belonging to ``function``."""
        return [arm for arm in self.arm_regions
                if arm.function == function]


class _FunctionEmitter:
    """Generates code for one function into the shared assembler."""

    def __init__(self, compiler: "Compiler", function: A.Function):
        self.compiler = compiler
        self.asm = compiler.asm
        self.options = compiler.options
        self.function = function
        self.opt = self.options.opt_level
        self._label_counter = 0
        #: local name -> stack slot index (0-based)
        self.slots: Dict[str, int] = {}
        #: local name -> promoted register (O2+)
        self.regs: Dict[str, str] = {}
        self.epilogue_label = self._fresh("epilogue")
        #: running byte counter for branch balancing
        self._emitted_bytes = 0
        self._byte_counter_valid = True
        #: register arm-region markers with the compiler (off in
        #: dry-run measurement emitters)
        self.record_arms = True

    # ------------------------------------------------------------------
    # infrastructure
    # ------------------------------------------------------------------
    def _fresh(self, hint: str) -> str:
        self._label_counter += 1
        return f"{self.function.name}${hint}{self._label_counter}"

    def emit(self, mnemonic: str, *operands) -> None:
        self.asm.emit(mnemonic, *operands)
        self._emitted_bytes += spec_for(mnemonic).length

    def label(self, name: str) -> None:
        self.asm.label(name)

    def align(self, boundary: int) -> None:
        self.asm.align(boundary)
        self._byte_counter_valid = False

    # ------------------------------------------------------------------
    # local variable discovery and placement
    # ------------------------------------------------------------------
    def _collect_locals(self) -> List[str]:
        names: List[str] = list(self.function.params)
        counts: Counter = Counter(self.function.params)

        def walk_expr(expr: A.Expr) -> None:
            if isinstance(expr, A.Var):
                counts[expr.name] += 1
                if expr.name not in names:
                    names.append(expr.name)
            elif isinstance(expr, A.BinOp) or isinstance(expr, A.Cmp):
                walk_expr(expr.left)
                walk_expr(expr.right)
            elif isinstance(expr, A.Load):
                walk_expr(expr.base)
                walk_expr(expr.index)
            elif isinstance(expr, A.Call):
                for arg in expr.args:
                    walk_expr(arg)

        def walk_stmt(stmt: A.Stmt) -> None:
            if isinstance(stmt, A.Assign):
                counts[stmt.name] += 1
                if stmt.name not in names:
                    names.append(stmt.name)
                walk_expr(stmt.value)
            elif isinstance(stmt, A.Store):
                walk_expr(stmt.base)
                walk_expr(stmt.index)
                walk_expr(stmt.value)
            elif isinstance(stmt, A.If):
                walk_expr(stmt.cond)
                for inner in stmt.then:
                    walk_stmt(inner)
                for inner in stmt.orelse:
                    walk_stmt(inner)
            elif isinstance(stmt, A.While):
                walk_expr(stmt.cond)
                for inner in stmt.body:
                    walk_stmt(inner)
            elif isinstance(stmt, A.Return) and stmt.value is not None:
                walk_expr(stmt.value)
            elif isinstance(stmt, A.ExprStmt):
                walk_expr(stmt.expr)

        for stmt in self.function.body:
            walk_stmt(stmt)
        self._counts = counts
        return names

    def _place_locals(self, names: List[str]) -> None:
        if self.opt >= 2:
            # Promote the most-referenced locals into callee-saved regs.
            hottest = [name for name, _ in self._counts.most_common()]
            for register, name in zip(PROMOTE_REGS, hottest):
                self.regs[name] = register
        slot = 0
        for name in names:
            if name not in self.regs:
                self.slots[name] = slot
                slot += 1
        self.frame_slots = slot

    # ------------------------------------------------------------------
    # variable access
    # ------------------------------------------------------------------
    def _slot_disp(self, name: str) -> int:
        return -8 * (self.slots[name] + 1)

    def _read_var(self, name: str, target: str = "rax") -> None:
        if name in self.regs:
            self.emit("mov", target, self.regs[name])
        elif name in self.slots:
            disp = self._slot_disp(name)
            if -128 <= disp <= 127:
                self.emit("load", target, "rbp", disp)
            else:
                self.emit("loadw", target, "rbp", disp)
        else:
            raise CompileError(
                f"{self.function.name}: use of undefined variable "
                f"{name!r}")

    def _write_var(self, name: str, source: str = "rax") -> None:
        if name in self.regs:
            self.emit("mov", self.regs[name], source)
        else:
            disp = self._slot_disp(name)
            if -128 <= disp <= 127:
                self.emit("store", "rbp", source, disp)
            else:
                self.emit("storew", "rbp", source, disp)

    # ------------------------------------------------------------------
    # expression evaluation (result in rax)
    # ------------------------------------------------------------------
    def _is_leaf(self, expr: A.Expr) -> bool:
        return isinstance(expr, (A.Const, A.Var))

    def _load_const(self, register: str, value: int) -> None:
        value &= (1 << 64) - 1
        if value < (1 << 31):
            self.emit("movi", register, value)
        else:
            self.emit("movabs", register, value)

    def _eval_into(self, expr: A.Expr, register: str) -> None:
        """Evaluate a *leaf* expression directly into ``register``."""
        if isinstance(expr, A.Const):
            self._load_const(register, expr.value)
        elif isinstance(expr, A.Var):
            self._read_var(expr.name, register)
        else:
            raise CompileError("internal: _eval_into on non-leaf")

    def eval_expr(self, expr: A.Expr) -> None:
        """Evaluate ``expr``; the result ends up in rax."""
        if self._is_leaf(expr):
            self._eval_into(expr, "rax")
        elif isinstance(expr, A.BinOp):
            self._eval_binop(expr)
        elif isinstance(expr, A.Cmp):
            self._eval_pair(expr.left, expr.right)
            self.emit("cmp", "rax", "rcx")
            cond = _CMP_COND.get(expr.op)
            if cond is None:
                raise CompileError(f"unknown comparison {expr.op!r}")
            self.emit(f"set{cond}", "rax")
        elif isinstance(expr, A.Load):
            self._eval_pair(expr.base, expr.index)
            self.emit("shl", "rcx", 3)
            self.emit("add", "rax", "rcx")
            self.emit("load", "rax", "rax", 0)
        elif isinstance(expr, A.Call):
            self._eval_call(expr)
        else:
            raise CompileError(f"cannot compile expression {expr!r}")

    def _eval_pair(self, left: A.Expr, right: A.Expr) -> None:
        """left -> rax, right -> rcx."""
        if self._is_leaf(right):
            self.eval_expr(left)
            self._eval_into(right, "rcx")
        elif self.opt >= 2 and self._is_leaf(left):
            self.eval_expr(right)
            self.emit("mov", "rcx", "rax")
            self._eval_into(left, "rax")
        else:
            self.eval_expr(left)
            self.emit("push", "rax")
            self.eval_expr(right)
            self.emit("mov", "rcx", "rax")
            self.emit("pop", "rax")

    def _small_imm(self, expr: A.Expr) -> Optional[int]:
        if isinstance(expr, A.Const) and -128 <= expr.value <= 127:
            return expr.value
        return None

    def _eval_binop(self, expr: A.BinOp) -> None:
        op = expr.op
        if op in ("<<", ">>"):
            if not isinstance(expr.right, A.Const):
                raise CompileError(
                    "shift amounts must be compile-time constants")
            self.eval_expr(expr.left)
            mnemonic = "shl" if op == "<<" else "shr"
            self.emit(mnemonic, "rax", expr.right.value & 63)
            return
        # 8-bit-immediate forms at O2+ (gcc does this always; the level
        # split gives Fig-13 its O0-vs-O2 length differences)
        imm8 = self._small_imm(expr.right) if self.opt >= 2 else None
        if imm8 is not None and op in ("+", "-", "&", "|", "^"):
            table = {"+": "addi8", "-": "subi8", "&": "andi8",
                     "|": "ori8", "^": "xori8"}
            self.eval_expr(expr.left)
            self.emit(table[op], "rax", imm8)
            return
        if (isinstance(expr.right, A.Const)
                and 0 <= expr.right.value < (1 << 31)
                and op in ("+", "-", "&", "|", "^")):
            table = {"+": "addi", "-": "subi", "&": "andi",
                     "|": "ori", "^": "xori"}
            self.eval_expr(expr.left)
            self.emit(table[op], "rax", expr.right.value)
            return
        self._eval_pair(expr.left, expr.right)
        if op == "+":
            self.emit("add", "rax", "rcx")
        elif op == "-":
            self.emit("sub", "rax", "rcx")
        elif op == "&":
            self.emit("and", "rax", "rcx")
        elif op == "|":
            self.emit("or", "rax", "rcx")
        elif op == "^":
            self.emit("xor", "rax", "rcx")
        elif op == "*":
            self.emit("imul", "rax", "rcx")
        elif op in ("/", "%"):
            self.emit("movi", "rdx", 0)
            self.emit("div", "rcx")
            if op == "%":
                self.emit("mov", "rax", "rdx")
        else:
            raise CompileError(f"unknown operator {op!r}")

    def _eval_call(self, expr: A.Call) -> None:
        if len(expr.args) > len(ARG_REGS):
            raise CompileError(
                f"{expr.name}: more than {len(ARG_REGS)} arguments")
        for arg in expr.args:
            self.eval_expr(arg)
            self.emit("push", "rax")
        for register in reversed(ARG_REGS[:len(expr.args)]):
            self.emit("pop", register)
        self.emit("call", self.compiler.function_label(expr.name))

    # ------------------------------------------------------------------
    # conditions: jump to `target` when the condition is False
    # ------------------------------------------------------------------
    def _emit_cond_jump_false(self, cond: A.Expr, target: str) -> None:
        if isinstance(cond, A.Cmp):
            imm8 = self._small_imm(cond.right) if self.opt >= 2 else None
            if imm8 is not None:
                self.eval_expr(cond.left)
                self.emit("cmpi8", "rax", imm8)
            elif (isinstance(cond.right, A.Const)
                  and 0 <= cond.right.value < (1 << 31)):
                self.eval_expr(cond.left)
                self.emit("cmpi", "rax", cond.right.value)
            else:
                self._eval_pair(cond.left, cond.right)
                self.emit("cmp", "rax", "rcx")
            negated = _COND_NEGATION[_CMP_COND[cond.op]]
            self.emit(f"j{negated}", target)
        else:
            self.eval_expr(cond)
            self.emit("test", "rax", "rax")
            self.emit("je", target)

    def _emit_cond_jump_true(self, cond: A.Expr, target: str,
                             short: bool = False) -> None:
        suffix = "8" if short else ""
        if isinstance(cond, A.Cmp):
            imm8 = self._small_imm(cond.right) if self.opt >= 2 else None
            if imm8 is not None:
                self.eval_expr(cond.left)
                self.emit("cmpi8", "rax", imm8)
            elif (isinstance(cond.right, A.Const)
                  and 0 <= cond.right.value < (1 << 31)):
                self.eval_expr(cond.left)
                self.emit("cmpi", "rax", cond.right.value)
            else:
                self._eval_pair(cond.left, cond.right)
                self.emit("cmp", "rax", "rcx")
            self.emit(f"j{_CMP_COND[cond.op]}{suffix}", target)
        else:
            self.eval_expr(cond)
            self.emit("test", "rax", "rax")
            self.emit(f"jne{suffix}", target)

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------
    def emit_block(self, stmts: Sequence[A.Stmt]) -> None:
        for stmt in stmts:
            self.emit_stmt(stmt)

    def emit_stmt(self, stmt: A.Stmt) -> None:
        if isinstance(stmt, A.Assign):
            self.eval_expr(stmt.value)
            self._write_var(stmt.name)
        elif isinstance(stmt, A.Store):
            self._eval_pair(stmt.base, stmt.index)
            self.emit("shl", "rcx", 3)
            self.emit("add", "rax", "rcx")
            self.emit("push", "rax")
            self.eval_expr(stmt.value)
            self.emit("pop", "rcx")
            self.emit("store", "rcx", "rax", 0)
        elif isinstance(stmt, A.If):
            self._emit_if(stmt)
        elif isinstance(stmt, A.While):
            self._emit_while(stmt)
        elif isinstance(stmt, A.Return):
            if stmt.value is not None:
                self.eval_expr(stmt.value)
            else:
                self.emit("movi", "rax", 0)
            self.emit("jmp", self.epilogue_label)
        elif isinstance(stmt, A.ExprStmt):
            self.eval_expr(stmt.expr)
        elif isinstance(stmt, A.Yield):
            self.emit("movi", "rax", SYS_SCHED_YIELD)
            self.emit("syscall")
        else:
            raise CompileError(f"cannot compile statement {stmt!r}")

    # ----- if/else with the defense passes -----------------------------
    def _measure_block(self, stmts: Sequence[A.Stmt]) -> int:
        """Byte size the block would occupy (dry-run emission)."""
        scratch = _FunctionEmitter(self.compiler, self.function)
        scratch.asm = Assembler(base=0)      # decouple from real stream
        scratch.slots = self.slots
        scratch.regs = self.regs
        scratch.record_arms = False
        scratch.emit_block(stmts)
        if not scratch._byte_counter_valid:
            raise CompileError(
                "cannot balance arms containing alignment directives")
        return scratch._emitted_bytes

    def _emit_balanced_arms(self, then: Sequence[A.Stmt],
                            orelse: Sequence[A.Stmt],
                            pad_extra_then: int = 0) -> Tuple[int, int]:
        """Pad the shorter arm with nops so both arms occupy the same
        number of code bytes (branch-balancing defense [42, 46]).

        ``pad_extra_then`` accounts for bytes the then arm will emit
        after its body (its jump over the else arm)."""
        then_size = self._measure_block(then) + pad_extra_then
        else_size = self._measure_block(orelse)
        target = max(then_size, else_size)
        return target - then_size, target - else_size

    def _arm_marker(self) -> Optional[Tuple[str, str, str, str]]:
        if not self.record_arms:
            return None
        return self.compiler.new_arm_marker(self.function.name)

    def _emit_if(self, stmt: A.If) -> None:
        if self.options.cfr:
            self._emit_if_cfr(stmt)
            return
        marks = self._arm_marker()
        else_label = self._fresh("else")
        end_label = self._fresh("endif")
        pad_then = pad_else = 0
        if self.options.balance_branches and stmt.orelse:
            jmp_len = spec_for("jmp").length
            pad_then, pad_else = self._emit_balanced_arms(
                stmt.then, stmt.orelse, pad_extra_then=jmp_len)
        self._emit_cond_jump_false(
            stmt.cond, else_label if stmt.orelse else end_label)
        if self.options.align_jumps:
            self.align(self.options.align_jumps)
        if marks:
            self.label(marks[0])
        self.emit_block(stmt.then)
        for _ in range(pad_then):
            self.emit("nop")
        if marks:
            self.label(marks[1])
        if stmt.orelse:
            self.emit("jmp", end_label)
            self.label(else_label)
            if self.options.align_jumps:
                self.align(self.options.align_jumps)
            if marks:
                self.label(marks[2])
            self.emit_block(stmt.orelse)
            for _ in range(pad_else):
                self.emit("nop")
            if marks:
                self.label(marks[3])
        self.label(end_label)
        if marks and not stmt.orelse:
            self.label(marks[2])
            self.label(marks[3])

    def _emit_if_cfr(self, stmt: A.If) -> None:
        """Control-flow randomization [25]: select the target with a
        cmov and dispatch through an indirect jump placed at a
        randomized address (Fig. 8b)."""
        marks = self._arm_marker()
        then_label = self._fresh("cfr_then")
        else_label = self._fresh("cfr_else")
        end_label = self._fresh("cfr_end")
        trampoline = self.compiler.new_trampoline()
        pad_then = pad_else = 0
        if self.options.balance_branches:
            jmp_len = spec_for("jmp").length
            pad_then, pad_else = self._emit_balanced_arms(
                stmt.then, stmt.orelse, pad_extra_then=jmp_len)
        # rax = cond (0/1)
        self.eval_expr(stmt.cond)
        self.emit("movabs", "r10", abs_(else_label))
        self.emit("movabs", "r11", abs_(then_label))
        self.emit("test", "rax", "rax")
        self.emit("cmovne", "r10", "r11")
        self.emit("jmp", trampoline)      # to the randomized dispatcher
        self.label(then_label)
        if marks:
            self.label(marks[0])
        self.emit_block(stmt.then)
        for _ in range(pad_then):
            self.emit("nop")
        if marks:
            self.label(marks[1])
        self.emit("jmp", end_label)
        self.label(else_label)
        if marks:
            self.label(marks[2])
        self.emit_block(stmt.orelse)
        for _ in range(pad_else):
            self.emit("nop")
        if marks:
            self.label(marks[3])
        self.label(end_label)

    # ----- loops --------------------------------------------------------
    def _emit_while(self, stmt: A.While) -> None:
        if self.opt >= 2:
            # Rotated loop: jump to the test at the bottom.
            body_label = self._fresh("loopbody")
            cond_label = self._fresh("loopcond")
            self.emit("jmp", cond_label)
            if self.opt >= 3 or self.options.align_jumps:
                self.align(self.options.align_jumps or 16)
            self.label(body_label)
            self.emit_block(stmt.body)
            self.label(cond_label)
            self._emit_cond_jump_true(stmt.cond, body_label)
        else:
            head_label = self._fresh("loophead")
            exit_label = self._fresh("loopexit")
            if self.options.align_jumps:
                self.align(self.options.align_jumps)
            self.label(head_label)
            self._emit_cond_jump_false(stmt.cond, exit_label)
            self.emit_block(stmt.body)
            self.emit("jmp", head_label)
            self.label(exit_label)

    # ------------------------------------------------------------------
    # whole function
    # ------------------------------------------------------------------
    def emit_function(self) -> None:
        names = self._collect_locals()
        self._place_locals(names)
        self.asm.align(16)     # functions are 16-byte aligned (gcc-like)
        self.label(self.compiler.function_label(self.function.name))
        self.emit("push", "rbp")
        self.emit("mov", "rbp", "rsp")
        if self.frame_slots:
            self.emit("subi", "rsp", 8 * self.frame_slots)
        used_saved = sorted(set(self.regs.values()))
        for register in used_saved:
            self.emit("push", register)
        for register, param in zip(ARG_REGS, self.function.params):
            self._write_var(param, register)
        self.emit_block(self.function.body)
        # implicit `return 0` fall-through
        self.emit("movi", "rax", 0)
        self.label(self.epilogue_label)
        for register in reversed(used_saved):
            self.emit("pop", register)
        self.emit("mov", "rsp", "rbp")
        self.emit("pop", "rbp")
        self.emit("ret")


class Compiler:
    """Compiles a :class:`Module` into a :class:`CompiledModule`."""

    def __init__(self, options: Optional[CompileOptions] = None):
        self.options = options if options is not None else CompileOptions()
        self.asm = Assembler(base=self.options.base)
        self._trampolines: List[str] = []
        self._arm_markers: List[Tuple[str, Tuple[str, str, str, str]]] = []
        self._rng = random.Random(self.options.cfr_seed)

    def function_label(self, name: str) -> str:
        return f"fn_{name}"

    def new_trampoline(self) -> str:
        name = f"cfr_trampoline{len(self._trampolines)}"
        self._trampolines.append(name)
        return name

    def new_arm_marker(self, function: str) -> Tuple[str, str, str, str]:
        index = len(self._arm_markers)
        labels = tuple(f"__arm{index}_{suffix}"
                       for suffix in ("ts", "te", "es", "ee"))
        self._arm_markers.append((function, labels))  # type: ignore
        return labels  # type: ignore[return-value]

    # ------------------------------------------------------------------
    def compile(self, module: A.Module,
                start: Optional[str] = None) -> CompiledModule:
        """Compile every function; optionally emit a ``_start`` stub
        that calls ``start`` and halts."""
        if self.options.opt_level >= 3:
            module = inline_leaf_calls(module, self.options.inline_limit)
        boundaries: List[Tuple[str, str, str]] = []
        if start is not None:
            module.function(start)   # fail fast on unknown start
            self.asm.label("_start")
            self.asm.emit("call", self.function_label(start))
            self.asm.emit("hlt")
        for function in module.functions:
            begin = f"__begin_{function.name}"
            finish = f"__end_{function.name}"
            self.asm.label(begin)
            _FunctionEmitter(self, function).emit_function()
            self.asm.label(finish)
            boundaries.append((function.name, begin, finish))
        self._emit_trampolines()
        program = self.asm.assemble()
        functions = {
            name: FunctionInfo(
                name=name,
                entry=program.address_of(self.function_label(name)),
                start=program.address_of(begin),
                end=program.address_of(finish),
            )
            for name, begin, finish in boundaries
        }
        arm_regions = [
            ArmRegion(
                function=function,
                then_start=program.address_of(labels[0]),
                then_end=program.address_of(labels[1]),
                else_start=program.address_of(labels[2]),
                else_end=program.address_of(labels[3]),
            )
            for function, labels in self._arm_markers
        ]
        return CompiledModule(
            program=program,
            functions=functions,
            options=self.options,
            start=(program.address_of("_start")
                   if start is not None else None),
            arm_regions=arm_regions,
        )

    def _emit_trampolines(self) -> None:
        """Place each CFR trampoline on its own randomized page."""
        used: set = set()
        for name in self._trampolines:
            while True:
                page = self._rng.randrange(0, 1 << 16)
                offset = self._rng.randrange(0, 4096 - 16)
                address = self.options.cfr_region + page * 4096 + offset
                if address not in used:
                    used.add(address)
                    break
            self.asm.org(address)
            self.asm.label(name)
            self.asm.emit("jmpr", "r10")


# ----------------------------------------------------------------------
# O3 leaf inlining
# ----------------------------------------------------------------------
def _is_leaf_function(function: A.Function) -> bool:
    has_call = False

    def walk_expr(expr: A.Expr) -> None:
        nonlocal has_call
        if isinstance(expr, A.Call):
            has_call = True
        elif isinstance(expr, (A.BinOp, A.Cmp)):
            walk_expr(expr.left)
            walk_expr(expr.right)
        elif isinstance(expr, A.Load):
            walk_expr(expr.base)
            walk_expr(expr.index)

    def walk_stmt(stmt: A.Stmt) -> None:
        if isinstance(stmt, A.Assign):
            walk_expr(stmt.value)
        elif isinstance(stmt, A.Store):
            walk_expr(stmt.base)
            walk_expr(stmt.index)
            walk_expr(stmt.value)
        elif isinstance(stmt, A.If):
            walk_expr(stmt.cond)
            for inner in stmt.then + stmt.orelse:
                walk_stmt(inner)
        elif isinstance(stmt, A.While):
            walk_expr(stmt.cond)
            for inner in stmt.body:
                walk_stmt(inner)
        elif isinstance(stmt, A.Return) and stmt.value is not None:
            walk_expr(stmt.value)
        elif isinstance(stmt, A.ExprStmt):
            walk_expr(stmt.expr)

    for stmt in function.body:
        walk_stmt(stmt)
    return not has_call


def _inlinable(function: A.Function, limit: int) -> bool:
    """Inline only straight-line-ish leaves: no internal Return except
    as the final statement, and small bodies."""
    if len(function.body) > limit or not _is_leaf_function(function):
        return False

    def has_inner_return(stmts: Sequence[A.Stmt], top: bool) -> bool:
        for position, stmt in enumerate(stmts):
            if isinstance(stmt, A.Return):
                if not (top and position == len(stmts) - 1):
                    return True
            elif isinstance(stmt, A.If):
                if has_inner_return(stmt.then, False):
                    return True
                if has_inner_return(stmt.orelse, False):
                    return True
            elif isinstance(stmt, A.While):
                if has_inner_return(stmt.body, False):
                    return True
        return False

    return not has_inner_return(function.body, True)


def _rename(stmts, mapping):
    def map_expr(expr: A.Expr) -> A.Expr:
        if isinstance(expr, A.Var):
            return A.Var(mapping.get(expr.name, expr.name))
        if isinstance(expr, A.BinOp):
            return A.BinOp(expr.op, map_expr(expr.left),
                           map_expr(expr.right))
        if isinstance(expr, A.Cmp):
            return A.Cmp(expr.op, map_expr(expr.left),
                         map_expr(expr.right))
        if isinstance(expr, A.Load):
            return A.Load(map_expr(expr.base), map_expr(expr.index))
        if isinstance(expr, A.Call):
            return A.Call(expr.name,
                          tuple(map_expr(a) for a in expr.args))
        return expr

    def map_stmt(stmt: A.Stmt) -> A.Stmt:
        if isinstance(stmt, A.Assign):
            return A.Assign(mapping.get(stmt.name, stmt.name),
                            map_expr(stmt.value))
        if isinstance(stmt, A.Store):
            return A.Store(map_expr(stmt.base), map_expr(stmt.index),
                           map_expr(stmt.value))
        if isinstance(stmt, A.If):
            return A.If(map_expr(stmt.cond),
                        tuple(map_stmt(s) for s in stmt.then),
                        tuple(map_stmt(s) for s in stmt.orelse))
        if isinstance(stmt, A.While):
            return A.While(map_expr(stmt.cond),
                           tuple(map_stmt(s) for s in stmt.body))
        if isinstance(stmt, A.Return):
            return A.Return(None if stmt.value is None
                            else map_expr(stmt.value))
        if isinstance(stmt, A.ExprStmt):
            return A.ExprStmt(map_expr(stmt.expr))
        return stmt

    return tuple(map_stmt(s) for s in stmts)


def inline_leaf_calls(module: A.Module, limit: int) -> A.Module:
    """Inline ``x = leaf(...)`` / ``leaf(...);`` call sites (O3)."""
    inlinable = {
        function.name: function
        for function in module.functions
        if _inlinable(function, limit)
    }
    counter = [0]

    def expand(stmt: A.Stmt) -> List[A.Stmt]:
        target_call: Optional[A.Call] = None
        assign_to: Optional[str] = None
        if (isinstance(stmt, A.Assign)
                and isinstance(stmt.value, A.Call)
                and stmt.value.name in inlinable):
            target_call = stmt.value
            assign_to = stmt.name
        elif (isinstance(stmt, A.ExprStmt)
              and isinstance(stmt.expr, A.Call)
              and stmt.expr.name in inlinable):
            target_call = stmt.expr
        if target_call is None:
            if isinstance(stmt, A.If):
                return [A.If(
                    stmt.cond,
                    tuple(x for s in stmt.then for x in expand(s)),
                    tuple(x for s in stmt.orelse for x in expand(s)))]
            if isinstance(stmt, A.While):
                return [A.While(
                    stmt.cond,
                    tuple(x for s in stmt.body for x in expand(s)))]
            return [stmt]
        callee = inlinable[target_call.name]
        counter[0] += 1
        prefix = f"__inl{counter[0]}_"
        mapping = {param: prefix + param for param in callee.params}
        body = list(callee.body)
        tail_value: Optional[A.Expr] = None
        if body and isinstance(body[-1], A.Return):
            tail = body.pop()
            tail_value = tail.value
        out: List[A.Stmt] = [
            A.Assign(prefix + param, arg)
            for param, arg in zip(callee.params, target_call.args)
        ]
        # locals of the callee also need freshening
        local_names = set()

        def collect(stmts) -> None:
            for inner in stmts:
                if isinstance(inner, A.Assign):
                    local_names.add(inner.name)
                elif isinstance(inner, A.If):
                    collect(inner.then)
                    collect(inner.orelse)
                elif isinstance(inner, A.While):
                    collect(inner.body)

        collect(body)
        for name in local_names:
            mapping.setdefault(name, prefix + name)
        out.extend(_rename(tuple(body), mapping))
        if assign_to is not None:
            value = (A.Const(0) if tail_value is None
                     else _rename((A.Return(tail_value),),
                                  mapping)[0].value)
            out.append(A.Assign(assign_to, value))
        return out

    functions = []
    for function in module.functions:
        new_body = tuple(
            x for stmt in function.body for x in expand(stmt))
        functions.append(A.Function(function.name, function.params,
                                    new_body))
    return A.Module(tuple(functions))
