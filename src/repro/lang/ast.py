"""AST for the mini-language the victims are written in.

The language is a tiny C-like IR over unsigned 64-bit scalars and
u64-arrays-in-memory — just enough to express the paper's victim
functions (mbedTLS-style binary GCD, IPP-style bignum compare, and the
synthetic corpus functions) while giving the compiler room for real
optimization-level differences.

Nodes are plain frozen dataclasses.  Programs can be built directly
(the victims do this) or parsed from text (:mod:`repro.lang.parser`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple, Union


# ----------------------------------------------------------------------
# expressions
# ----------------------------------------------------------------------
class Expr:
    """Base class for expressions (all evaluate to u64)."""

    __slots__ = ()


@dataclass(frozen=True)
class Const(Expr):
    value: int


@dataclass(frozen=True)
class Var(Expr):
    name: str


@dataclass(frozen=True)
class BinOp(Expr):
    """Arithmetic/logic: + - * / % & | ^ << >> (shifts need const rhs)."""

    op: str
    left: Expr
    right: Expr


@dataclass(frozen=True)
class Cmp(Expr):
    """Comparison producing 0/1.

    Ops: ``== != < <= > >=`` (unsigned) and ``s< s<= s> s>=`` (signed).
    """

    op: str
    left: Expr
    right: Expr


@dataclass(frozen=True)
class Load(Expr):
    """u64 load from ``base + 8*index`` (base/index are expressions)."""

    base: Expr
    index: Expr


@dataclass(frozen=True)
class Call(Expr):
    name: str
    args: Tuple[Expr, ...] = ()


# ----------------------------------------------------------------------
# statements
# ----------------------------------------------------------------------
class Stmt:
    __slots__ = ()


@dataclass(frozen=True)
class Assign(Stmt):
    name: str
    value: Expr


@dataclass(frozen=True)
class Store(Stmt):
    """``base[index] = value`` (u64 at base + 8*index)."""

    base: Expr
    index: Expr
    value: Expr


@dataclass(frozen=True)
class If(Stmt):
    cond: Expr
    then: Tuple[Stmt, ...]
    orelse: Tuple[Stmt, ...] = ()


@dataclass(frozen=True)
class While(Stmt):
    cond: Expr
    body: Tuple[Stmt, ...]


@dataclass(frozen=True)
class Return(Stmt):
    value: Optional[Expr] = None


@dataclass(frozen=True)
class ExprStmt(Stmt):
    """Evaluate for side effects (function calls)."""

    expr: Expr


@dataclass(frozen=True)
class Yield(Stmt):
    """``sched_yield()`` — the victim-side preemption point the
    paper's §7.2 methodology inserts after the secret branch body."""


# ----------------------------------------------------------------------
# top level
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Function:
    name: str
    params: Tuple[str, ...]
    body: Tuple[Stmt, ...]


@dataclass(frozen=True)
class Module:
    functions: Tuple[Function, ...]

    def function(self, name: str) -> Function:
        for function in self.functions:
            if function.name == name:
                return function
        raise KeyError(name)


# ----------------------------------------------------------------------
# ergonomic builders (victim code uses these heavily)
# ----------------------------------------------------------------------
def const(value: int) -> Const:
    return Const(value)


def var(name: str) -> Var:
    return Var(name)


def _expr(value: Union[Expr, int, str]) -> Expr:
    if isinstance(value, Expr):
        return value
    if isinstance(value, int):
        return Const(value)
    if isinstance(value, str):
        return Var(value)
    raise TypeError(f"cannot coerce {value!r} to an expression")


def binop(op: str, left, right) -> BinOp:
    return BinOp(op, _expr(left), _expr(right))


def cmp(op: str, left, right) -> Cmp:
    return Cmp(op, _expr(left), _expr(right))


def load(base, index) -> Load:
    return Load(_expr(base), _expr(index))


def call(name: str, *args) -> Call:
    return Call(name, tuple(_expr(a) for a in args))


def assign(name: str, value) -> Assign:
    return Assign(name, _expr(value))


def store(base, index, value) -> Store:
    return Store(_expr(base), _expr(index), _expr(value))


def if_(cond, then: Sequence[Stmt],
        orelse: Sequence[Stmt] = ()) -> If:
    return If(_expr(cond), tuple(then), tuple(orelse))


def while_(cond, body: Sequence[Stmt]) -> While:
    return While(_expr(cond), tuple(body))


def ret(value=None) -> Return:
    return Return(None if value is None else _expr(value))


def expr_stmt(expr) -> ExprStmt:
    return ExprStmt(_expr(expr))


def yield_() -> Yield:
    return Yield()


def function(name: str, params: Sequence[str],
             body: Sequence[Stmt]) -> Function:
    return Function(name, tuple(params), tuple(body))


def module(*functions: Function) -> Module:
    return Module(tuple(functions))
