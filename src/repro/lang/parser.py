"""Textual front end for the mini-language.

Grammar (C-flavoured)::

    module   := function*
    function := 'func' NAME '(' params? ')' block
    block    := '{' stmt* '}'
    stmt     := NAME '=' expr ';'
              | expr '[' expr ']' '=' expr ';'      (store)
              | 'if' '(' expr ')' block ('else' block)?
              | 'while' '(' expr ')' block
              | 'return' expr? ';'
              | 'yield' ';'
              | expr ';'                            (call statement)
    expr     := comparison with ==, !=, <, <=, >, >= (unsigned)
                and s<, s<=, s>, s>= (signed), over
                | ^ & << >> + - * / %  with C-ish precedence
    primary  := NUMBER | NAME | NAME '(' args ')' | expr '[' expr ']'
              | '(' expr ')'

Numbers may be decimal or ``0x...`` hex.  ``#`` starts a line comment.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from ..errors import ParseError
from . import ast as A

_TOKEN_RE = re.compile(r"""
    (?P<ws>\s+|\#[^\n]*)
  | (?P<num>0x[0-9a-fA-F]+|\d+)
  | (?P<op>s<=|s>=|s<|s>|<<|>>|==|!=|<=|>=|[-+*/%&|^<>=(){}\[\],;])
  | (?P<name>[A-Za-z_][A-Za-z0-9_]*)
""", re.VERBOSE)

_KEYWORDS = {"func", "if", "else", "while", "return", "yield"}


def _tokenize(source: str) -> List[Tuple[str, str, int]]:
    tokens: List[Tuple[str, str, int]] = []
    position = 0
    line = 1
    while position < len(source):
        match = _TOKEN_RE.match(source, position)
        if match is None:
            raise ParseError(
                f"line {line}: unexpected character {source[position]!r}")
        line += source[position:match.end()].count("\n")
        position = match.end()
        if match.lastgroup == "ws":
            continue
        kind = match.lastgroup
        text = match.group()
        if kind == "name" and text in _KEYWORDS:
            kind = text
        tokens.append((kind, text, line))
    tokens.append(("eof", "", line))
    return tokens


class _Parser:
    def __init__(self, source: str):
        self.tokens = _tokenize(source)
        self.position = 0

    # ------------------------------------------------------------------
    def peek(self) -> Tuple[str, str, int]:
        return self.tokens[self.position]

    def advance(self) -> Tuple[str, str, int]:
        token = self.tokens[self.position]
        self.position += 1
        return token

    def expect(self, kind: str, text: Optional[str] = None) -> str:
        token_kind, token_text, line = self.peek()
        if token_kind != kind or (text is not None and token_text != text):
            wanted = text or kind
            raise ParseError(
                f"line {line}: expected {wanted!r}, found "
                f"{token_text or token_kind!r}")
        self.advance()
        return token_text

    def accept(self, kind: str, text: Optional[str] = None) -> bool:
        token_kind, token_text, _ = self.peek()
        if token_kind == kind and (text is None or token_text == text):
            self.advance()
            return True
        return False

    # ------------------------------------------------------------------
    def parse_module(self) -> A.Module:
        functions: List[A.Function] = []
        while not self.accept("eof"):
            functions.append(self.parse_function())
        return A.Module(tuple(functions))

    def parse_function(self) -> A.Function:
        self.expect("func")
        name = self.expect("name")
        self.expect("op", "(")
        params: List[str] = []
        if not self.accept("op", ")"):
            while True:
                params.append(self.expect("name"))
                if self.accept("op", ")"):
                    break
                self.expect("op", ",")
        body = self.parse_block()
        return A.Function(name, tuple(params), body)

    def parse_block(self) -> Tuple[A.Stmt, ...]:
        self.expect("op", "{")
        stmts: List[A.Stmt] = []
        while not self.accept("op", "}"):
            stmts.append(self.parse_stmt())
        return tuple(stmts)

    def parse_stmt(self) -> A.Stmt:
        kind, text, line = self.peek()
        if kind == "if":
            self.advance()
            self.expect("op", "(")
            cond = self.parse_expr()
            self.expect("op", ")")
            then = self.parse_block()
            orelse: Tuple[A.Stmt, ...] = ()
            if self.accept("else"):
                orelse = self.parse_block()
            return A.If(cond, then, orelse)
        if kind == "while":
            self.advance()
            self.expect("op", "(")
            cond = self.parse_expr()
            self.expect("op", ")")
            return A.While(cond, self.parse_block())
        if kind == "return":
            self.advance()
            if self.accept("op", ";"):
                return A.Return(None)
            value = self.parse_expr()
            self.expect("op", ";")
            return A.Return(value)
        if kind == "yield":
            self.advance()
            self.expect("op", ";")
            return A.Yield()
        # assignment, store or expression statement
        if kind == "name":
            next_kind, next_text, _ = self.tokens[self.position + 1]
            if next_kind == "op" and next_text == "=":
                name = self.expect("name")
                self.expect("op", "=")
                value = self.parse_expr()
                self.expect("op", ";")
                return A.Assign(name, value)
        expr = self.parse_expr()
        if self.accept("op", "="):
            if not isinstance(expr, A.Load):
                raise ParseError(
                    f"line {line}: only 'base[index]' may be assigned")
            value = self.parse_expr()
            self.expect("op", ";")
            return A.Store(expr.base, expr.index, value)
        self.expect("op", ";")
        return A.ExprStmt(expr)

    # ------------------------------------------------------------------
    # expressions (precedence climbing)
    # ------------------------------------------------------------------
    _COMPARISONS = {"==", "!=", "<", "<=", ">", ">=",
                    "s<", "s<=", "s>", "s>="}

    def parse_expr(self) -> A.Expr:
        return self.parse_comparison()

    def parse_comparison(self) -> A.Expr:
        left = self.parse_bitor()
        kind, text, _ = self.peek()
        if kind == "op" and text in self._COMPARISONS:
            self.advance()
            right = self.parse_bitor()
            return A.Cmp(text, left, right)
        return left

    def _binary(self, operators, next_level):
        left = next_level()
        while True:
            kind, text, _ = self.peek()
            if kind == "op" and text in operators:
                self.advance()
                left = A.BinOp(text, left, next_level())
            else:
                return left

    def parse_bitor(self) -> A.Expr:
        return self._binary({"|"}, self.parse_bitxor)

    def parse_bitxor(self) -> A.Expr:
        return self._binary({"^"}, self.parse_bitand)

    def parse_bitand(self) -> A.Expr:
        return self._binary({"&"}, self.parse_shift)

    def parse_shift(self) -> A.Expr:
        return self._binary({"<<", ">>"}, self.parse_additive)

    def parse_additive(self) -> A.Expr:
        return self._binary({"+", "-"}, self.parse_multiplicative)

    def parse_multiplicative(self) -> A.Expr:
        return self._binary({"*", "/", "%"}, self.parse_postfix)

    def parse_postfix(self) -> A.Expr:
        expr = self.parse_primary()
        while self.accept("op", "["):
            index = self.parse_expr()
            self.expect("op", "]")
            expr = A.Load(expr, index)
        return expr

    def parse_primary(self) -> A.Expr:
        kind, text, line = self.peek()
        if kind == "num":
            self.advance()
            return A.Const(int(text, 0))
        if kind == "name":
            self.advance()
            if self.accept("op", "("):
                args: List[A.Expr] = []
                if not self.accept("op", ")"):
                    while True:
                        args.append(self.parse_expr())
                        if self.accept("op", ")"):
                            break
                        self.expect("op", ",")
                return A.Call(text, tuple(args))
            return A.Var(text)
        if kind == "op" and text == "(":
            self.advance()
            expr = self.parse_expr()
            self.expect("op", ")")
            return expr
        raise ParseError(f"line {line}: unexpected token {text or kind!r}")


def parse_module(source: str) -> A.Module:
    """Parse DSL source text into a :class:`Module`."""
    return _Parser(source).parse_module()


def parse_function(source: str) -> A.Function:
    """Parse a single function definition."""
    module = parse_module(source)
    if len(module.functions) != 1:
        raise ParseError("expected exactly one function")
    return module.functions[0]
