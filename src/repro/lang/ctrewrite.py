"""Constant-time auto-rewrite of victim modules.

Source-to-source pass that removes every secret-dependent control
transfer from a DSL module, so the rewritten program produces one
fixed BTB event stream for all inputs in the certified domain:

* **Branch flattening** — ``if`` statements become straight-line
  predicated code.  Each assignment under a secret guard ``g`` turns
  into the arithmetic select ``x = x + g*(e - x)`` (exact mod 2**64
  for a 0/1 guard; ``Cmp`` already compiles branch-free via
  ``setcc``), each store into the masked update
  ``b[i] = b[i] + g*(v - b[i])``.
* **Early returns** — a ``__live`` flag and ``__ret`` accumulator
  replace ``return``: the guard of every later statement includes
  ``__live``, so a retired return simply mutes the rest of the
  function without a jump.
* **Secret loops** — a loop whose condition depends on secret data
  runs a *fixed* number of iterations (``bound``, per-victim) with a
  sticky continue-predicate ``__p = __p & cond``; iterations past the
  real exit are fully masked.  Loops whose trip count is public
  (induction variable and bound derived only from parameters and
  constants) are kept as real loops — their directions are the same
  on every input, and masking their induction updates would not
  terminate.
* **Predicated callees** — a callee that (transitively) stores to
  memory gets a ``f__ct(args.., __pred)`` clone whose stores are
  masked by the caller's guard; pure callees are called
  unconditionally and their result masked at the assignment.

The output intentionally contains no ``/`` or ``%`` (division traps)
and no variable-count shifts (the ISA requires constant counts), so
every emitted instruction is constant-time on the simulated core.
The pass proves nothing by itself: ``repro certify`` re-certifies the
output symbolically and replays the original leak witnesses
dynamically (the before-streams must diverge, the after-streams must
be bit-identical).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set, Tuple

from . import ast as A

__all__ = ["rewrite_module", "rewrite_function_names", "DEFAULT_BOUND"]

DEFAULT_BOUND = 6
_CT_SUFFIX = "__ct"


# ----------------------------------------------------------------------
# module-level analyses
# ----------------------------------------------------------------------
def _walk_exprs(stmt: A.Stmt):
    if isinstance(stmt, A.Assign):
        yield stmt.value
    elif isinstance(stmt, A.Store):
        yield stmt.base
        yield stmt.index
        yield stmt.value
    elif isinstance(stmt, A.If):
        yield stmt.cond
        for inner in stmt.then + stmt.orelse:
            yield from _walk_exprs(inner)
    elif isinstance(stmt, A.While):
        yield stmt.cond
        for inner in stmt.body:
            yield from _walk_exprs(inner)
    elif isinstance(stmt, A.Return):
        if stmt.value is not None:
            yield stmt.value
    elif isinstance(stmt, A.ExprStmt):
        yield stmt.expr


def _calls_in(expr: A.Expr):
    if isinstance(expr, A.Call):
        yield expr.name
        for arg in expr.args:
            yield from _calls_in(arg)
    elif isinstance(expr, (A.BinOp, A.Cmp)):
        yield from _calls_in(expr.left)
        yield from _calls_in(expr.right)
    elif isinstance(expr, A.Load):
        yield from _calls_in(expr.base)
        yield from _calls_in(expr.index)


def _contains_store(stmts: Sequence[A.Stmt]) -> bool:
    for stmt in stmts:
        if isinstance(stmt, A.Store):
            return True
        if isinstance(stmt, A.If):
            if _contains_store(stmt.then) or _contains_store(stmt.orelse):
                return True
        elif isinstance(stmt, A.While):
            if _contains_store(stmt.body):
                return True
    return False


def _impure_functions(module: A.Module) -> Set[str]:
    """Functions that (transitively) store to memory — these need a
    predicated ``__ct`` clone."""
    direct = {fn.name: _contains_store(fn.body) for fn in module.functions}
    callees: Dict[str, Set[str]] = {}
    for fn in module.functions:
        names: Set[str] = set()
        for stmt in fn.body:
            for expr in _walk_exprs(stmt):
                names.update(_calls_in(expr))
        callees[fn.name] = names
    impure = {name for name, has in direct.items() if has}
    changed = True
    while changed:
        changed = False
        for name, called in callees.items():
            if name not in impure and called & impure:
                impure.add(name)
                changed = True
    return impure


def _secret_vars(fn: A.Function) -> Set[str]:
    """Variables whose value can depend on memory contents or on
    secret control — everything except pure parameter/constant
    arithmetic.  Loops conditioned only on public variables keep
    their (public) trip counts in the rewrite."""
    secret: Set[str] = set()

    def expr_secret(expr: A.Expr) -> bool:
        if isinstance(expr, (A.Load, A.Call)):
            return True
        if isinstance(expr, A.Var):
            return expr.name in secret
        if isinstance(expr, (A.BinOp, A.Cmp)):
            return expr_secret(expr.left) or expr_secret(expr.right)
        return False

    def walk(stmts: Sequence[A.Stmt], ctx_secret: bool) -> bool:
        changed = False
        for stmt in stmts:
            if isinstance(stmt, A.Assign):
                if ((ctx_secret or expr_secret(stmt.value))
                        and stmt.name not in secret):
                    secret.add(stmt.name)
                    changed = True
            elif isinstance(stmt, A.If):
                inner = ctx_secret or expr_secret(stmt.cond)
                changed |= walk(stmt.then, inner)
                changed |= walk(stmt.orelse, inner)
            elif isinstance(stmt, A.While):
                inner = ctx_secret or expr_secret(stmt.cond)
                changed |= walk(stmt.body, inner)
        return changed

    while walk(fn.body, False):
        pass
    return secret


# ----------------------------------------------------------------------
# the transform
# ----------------------------------------------------------------------
_ONE = A.Const(1)
_ZERO = A.Const(0)


def _as_cond01(expr: A.Expr) -> A.Expr:
    """Coerce an arbitrary condition to a 0/1 value (``Cmp`` already
    is one; everything else gets an explicit ``!= 0``)."""
    if isinstance(expr, A.Cmp):
        return expr
    return A.Cmp("!=", expr, _ZERO)


class _FnRewriter:
    def __init__(self, fn: A.Function, impure: Set[str], bound: int):
        self.fn = fn
        self.impure = impure
        self.bound = bound
        self.secret = _secret_vars(fn)
        self._fresh = 0

    def fresh(self, prefix: str) -> str:
        self._fresh += 1
        return f"__{prefix}{self._fresh}"

    # guard = ctx & __live, where ctx is a 0/1 expression over our
    # own predicate temporaries (Const(1) at function top level)
    @staticmethod
    def _guard(ctx: A.Expr) -> A.Expr:
        live = A.Var("__live")
        if isinstance(ctx, A.Const) and ctx.value == 1:
            return live
        return A.BinOp("&", ctx, live)

    @staticmethod
    def _chain(ctx: A.Expr, cond: A.Expr) -> A.Expr:
        if isinstance(ctx, A.Const) and ctx.value == 1:
            return cond
        return A.BinOp("&", ctx, cond)

    def _expr_secret(self, expr: A.Expr) -> bool:
        if isinstance(expr, (A.Load, A.Call)):
            return True
        if isinstance(expr, A.Var):
            return expr.name in self.secret
        if isinstance(expr, (A.BinOp, A.Cmp)):
            return self._expr_secret(expr.left) or self._expr_secret(
                expr.right)
        return False

    def rewrite_expr(self, expr: A.Expr, ctx: A.Expr) -> A.Expr:
        """Rewrite calls (impure callees take the guard); everything
        else is already branch-free."""
        if isinstance(expr, A.Call):
            args = tuple(self.rewrite_expr(a, ctx) for a in expr.args)
            if expr.name in self.impure:
                return A.Call(expr.name + _CT_SUFFIX,
                              args + (self._guard(ctx),))
            return A.Call(expr.name, args)
        if isinstance(expr, A.BinOp):
            return A.BinOp(expr.op, self.rewrite_expr(expr.left, ctx),
                           self.rewrite_expr(expr.right, ctx))
        if isinstance(expr, A.Cmp):
            return A.Cmp(expr.op, self.rewrite_expr(expr.left, ctx),
                         self.rewrite_expr(expr.right, ctx))
        if isinstance(expr, A.Load):
            return A.Load(self.rewrite_expr(expr.base, ctx),
                          self.rewrite_expr(expr.index, ctx))
        return expr

    @staticmethod
    def _select(target: A.Expr, guard: A.Expr, value: A.Expr) -> A.Expr:
        """``target + guard*(value - target)`` — exact for 0/1 guards."""
        return A.BinOp(
            "+", target,
            A.BinOp("*", guard, A.BinOp("-", value, target)))

    def transform(self, stmts: Sequence[A.Stmt],
                  ctx: A.Expr) -> List[A.Stmt]:
        out: List[A.Stmt] = []
        for stmt in stmts:
            if isinstance(stmt, A.Assign):
                value = self.rewrite_expr(stmt.value, ctx)
                if stmt.name not in self.secret:
                    # public induction/bound variables update
                    # unconditionally — masking them would freeze
                    # public loops when __live drops
                    out.append(A.Assign(stmt.name, value))
                    continue
                temp = self.fresh("t")
                out.append(A.Assign(temp, value))
                out.append(A.Assign(
                    stmt.name,
                    self._select(A.Var(stmt.name), self._guard(ctx),
                                 A.Var(temp))))
            elif isinstance(stmt, A.Store):
                base = self.fresh("b")
                index = self.fresh("x")
                value = self.fresh("v")
                out.append(A.Assign(base,
                                    self.rewrite_expr(stmt.base, ctx)))
                out.append(A.Assign(index,
                                    self.rewrite_expr(stmt.index, ctx)))
                out.append(A.Assign(value,
                                    self.rewrite_expr(stmt.value, ctx)))
                cell = A.Load(A.Var(base), A.Var(index))
                out.append(A.Store(
                    A.Var(base), A.Var(index),
                    self._select(cell, self._guard(ctx), A.Var(value))))
            elif isinstance(stmt, A.If):
                cond = self.fresh("c")
                out.append(A.Assign(cond, _as_cond01(
                    self.rewrite_expr(stmt.cond, ctx))))
                out.extend(self.transform(
                    stmt.then, self._chain(ctx, A.Var(cond))))
                if stmt.orelse:
                    ncond = self.fresh("c")
                    out.append(A.Assign(
                        ncond, A.BinOp("-", _ONE, A.Var(cond))))
                    out.extend(self.transform(
                        stmt.orelse, self._chain(ctx, A.Var(ncond))))
            elif isinstance(stmt, A.While):
                if not self._expr_secret(stmt.cond):
                    out.append(A.While(
                        self.rewrite_expr(stmt.cond, ctx),
                        tuple(self.transform(stmt.body, ctx))))
                    continue
                # secret trip count -> fixed-bound sticky-predicate loop
                pred = self.fresh("p")
                counter = self.fresh("i")
                out.append(A.Assign(pred, ctx))
                out.append(A.Assign(counter, _ZERO))
                body: List[A.Stmt] = []
                cond = self.fresh("c")
                body.append(A.Assign(cond, _as_cond01(
                    self.rewrite_expr(stmt.cond, A.Var(pred)))))
                body.append(A.Assign(
                    pred, A.BinOp("&", A.Var(pred), A.Var(cond))))
                body.extend(self.transform(stmt.body, A.Var(pred)))
                body.append(A.Assign(
                    counter, A.BinOp("+", A.Var(counter), _ONE)))
                out.append(A.While(
                    A.Cmp("<", A.Var(counter), A.Const(self.bound)),
                    tuple(body)))
            elif isinstance(stmt, A.Return):
                value = (self.rewrite_expr(stmt.value, ctx)
                         if stmt.value is not None else _ZERO)
                guard = self.fresh("g")
                out.append(A.Assign(guard, self._guard(ctx)))
                out.append(A.Assign(
                    "__ret", self._select(A.Var("__ret"), A.Var(guard),
                                          value)))
                out.append(A.Assign(
                    "__live",
                    A.BinOp("-", A.Var("__live"), A.Var(guard))))
            elif isinstance(stmt, A.ExprStmt):
                out.append(A.ExprStmt(self.rewrite_expr(stmt.expr, ctx)))
            elif isinstance(stmt, A.Yield):
                # yields run unconditionally: inside bounded loops the
                # count is already input-independent
                out.append(A.Yield())
            else:  # pragma: no cover - exhaustive over the AST
                raise TypeError(f"unhandled statement {stmt!r}")
        return out

    def build(self, *, predicated: bool) -> A.Function:
        body: List[A.Stmt] = []
        if predicated:
            params = self.fn.params + ("__pred",)
            body.append(A.Assign("__live", A.Var("__pred")))
        else:
            params = self.fn.params
            body.append(A.Assign("__live", _ONE))
        body.append(A.Assign("__ret", _ZERO))
        body.extend(self.transform(self.fn.body, _ONE))
        body.append(A.Return(A.Var("__ret")))
        name = self.fn.name + (_CT_SUFFIX if predicated else "")
        return A.Function(name, params, tuple(body))


def rewrite_module(module: A.Module, *,
                   bound: int = DEFAULT_BOUND) -> A.Module:
    """Constant-time rewrite of every function in ``module``.

    ``bound`` is the fixed iteration count substituted for each
    secret-conditioned loop; it must dominate the true trip count on
    every input in the certified domain (the certifier's dynamic
    replay cross-checks functional preservation).
    """
    if bound < 1:
        raise ValueError("ct-rewrite loop bound must be >= 1")
    impure = _impure_functions(module)
    functions: List[A.Function] = []
    for fn in module.functions:
        functions.append(
            _FnRewriter(fn, impure, bound).build(predicated=False))
        if fn.name in impure:
            functions.append(
                _FnRewriter(fn, impure, bound).build(predicated=True))
    return A.Module(tuple(functions))


def rewrite_function_names(module: A.Module) -> Dict[str, Tuple[str, ...]]:
    """original name -> names of its rewritten variants."""
    impure = _impure_functions(module)
    mapping: Dict[str, Tuple[str, ...]] = {}
    for fn in module.functions:
        names = [fn.name]
        if fn.name in impure:
            names.append(fn.name + _CT_SUFFIX)
        mapping[fn.name] = tuple(names)
    return mapping
