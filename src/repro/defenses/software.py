"""Software control-flow-leakage defenses (the §5 arms race).

Each helper returns :class:`CompileOptions` enabling one prior-work
defense.  All of them stop *earlier* attacks and none stops
NightVision — that asymmetry is the paper's use-case-1 result and is
what the E8 benchmark demonstrates.
"""

from __future__ import annotations

from typing import Dict

from ..lang import CompileOptions


def baseline(opt_level: int = 2, **kwargs) -> CompileOptions:
    """No defense."""
    return CompileOptions(opt_level=opt_level, **kwargs)


def branch_balancing(opt_level: int = 2, **kwargs) -> CompileOptions:
    """Branch balancing [42, 46]: pad both if/else arms to identical
    byte counts.  Defeats instruction-counting attacks (CopyCat);
    NightVision ignores counts and reads *addresses*."""
    return CompileOptions(opt_level=opt_level,
                          balance_branches=True, **kwargs)


def align_jumps(opt_level: int = 2, **kwargs) -> CompileOptions:
    """``-falign-jumps=16`` — aligns branch targets to the 16-byte
    fetch window, the documented mitigation for the Frontal attack
    (§7.2).  NightVision observes byte-granular addresses, so
    alignment is irrelevant."""
    return CompileOptions(opt_level=opt_level, align_jumps=16,
                          **kwargs)


def control_flow_randomization(opt_level: int = 2,
                               seed: int = 1234,
                               **kwargs) -> CompileOptions:
    """CFR [25]: secret branches become cmov-selected targets
    dispatched through indirect jumps at randomized addresses.
    Protects the *branch decision* (and IBRS protects the indirect
    dispatch) — but NightVision watches the arm bodies, whose
    addresses CFR does not move."""
    return CompileOptions(opt_level=opt_level, cfr=True,
                          cfr_seed=seed, **kwargs)


def balanced_cfr(opt_level: int = 2, seed: int = 1234,
                 **kwargs) -> CompileOptions:
    """The Fig. 8(b) combination: balancing + CFR together."""
    return CompileOptions(opt_level=opt_level, balance_branches=True,
                          cfr=True, cfr_seed=seed, **kwargs)


#: name -> builder, in the order the E8 benchmark reports them
SOFTWARE_DEFENSES: Dict[str, object] = {
    "none": baseline,
    "balancing": branch_balancing,
    "align-jumps-16": align_jumps,
    "cfr": control_flow_randomization,
    "balancing+cfr": balanced_cfr,
}
