"""Hardware-level BTB mitigations (§4.1 and §8.2).

Builders return a :class:`CpuGeneration` with the mitigation enabled:

* :func:`ibrs_ibpb` — Intel's deployed Spectre-v2 mitigations.  They
  invalidate only *indirect-branch* BTB entries on domain switches;
  the direct-jump entries NightVision primes survive, so the attack
  is unaffected (the paper verified this empirically, §4.1).
* :func:`flush_on_switch` — flush the whole BTB on every context
  switch.  Defeats NightVision; not deployed due to cost (§8.2).
* :func:`partitioned_btb` — tag entries with a security-domain id so
  cross-domain collisions are impossible [38, 70].  Defeats
  NightVision; also not deployed.
"""

from __future__ import annotations

from typing import Dict

from ..cpu.config import CpuGeneration, generation


def stock(name: str = "coffeelake", **overrides) -> CpuGeneration:
    """Unmitigated core (the paper's evaluation machines)."""
    return generation(name, **overrides)


def ibrs_ibpb(name: str = "coffeelake", **overrides) -> CpuGeneration:
    return generation(name, ibrs_ibpb=True, **overrides)


def flush_on_switch(name: str = "coffeelake",
                    **overrides) -> CpuGeneration:
    return generation(name, flush_btb_on_switch=True, **overrides)


def partitioned_btb(name: str = "coffeelake",
                    **overrides) -> CpuGeneration:
    return generation(name, btb_partitioning=True, **overrides)


#: name -> builder, in the order the E14 benchmark reports them
HARDWARE_MITIGATIONS: Dict[str, object] = {
    "stock": stock,
    "ibrs+ibpb": ibrs_ibpb,
    "btb-flush-on-switch": flush_on_switch,
    "btb-partitioning": partitioned_btb,
}
