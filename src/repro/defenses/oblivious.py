"""Data-oblivious GCD (§8.2: "the only reliable software mitigation").

A branch-free binary GCD over u64 operands: every iteration computes
all five possible reduction actions and selects among them with
``cmp``/``setcc`` arithmetic (``sel(c,x,y) = c*x + (1-c)*y``); loop
trip counts are fixed.  The resulting control flow — and therefore the
dynamic PC trace — is completely independent of the operands, so
NightVision's per-iteration arm monitoring reads pure noise.

(Note §8.2's caveat survives here too: the *fingerprinting* use case
is unaffected, because the oblivious GCD still has a distinctive PC
trace — it just no longer depends on the secret.)
"""

from __future__ import annotations

from typing import Optional

from ..lang import CompileOptions, Compiler, parse_module
from ..victims.library import DataLayout, USER_DATA_BASE, VictimProgram

#: fixed reduction iterations: enough for any pair of 64-bit operands
REDUCTION_ITERATIONS = 130
#: fixed left-shift loop bound for restoring common powers of two
SHIFT_ITERATIONS = 64

OBLIVIOUS_GCD_SOURCE = f"""
# sel(c, x, y) with c in {{0, 1}}
func ob_sel(c, x, y) {{
  return c * x + (1 - c) * y;
}}

func gcd_oblivious(a, b) {{
  k = 0;
  n = 0;
  while (n < {REDUCTION_ITERATIONS}) {{
    a_nz = a != 0;
    ae = (a & 1) == 0;
    be = (b & 1) == 0;
    c_both = a_nz * ae * be;
    c_ae = a_nz * ae * (1 - be);
    c_be = a_nz * (1 - ae) * be;
    ageb = a >= b;
    c_sub = a_nz * (1 - ae) * (1 - be) * ageb;
    c_swap = a_nz * (1 - ae) * (1 - be) * (1 - ageb);
    half_a = a >> 1;
    half_diff_ab = (a - b) >> 1;
    half_diff_ba = (b - a) >> 1;
    na = ob_sel(c_both, half_a,
         ob_sel(c_ae, half_a,
         ob_sel(c_sub, half_diff_ab,
         ob_sel(c_swap, half_diff_ba, a))));
    nb = ob_sel(c_both, b >> 1,
         ob_sel(c_be, b >> 1,
         ob_sel(c_swap, a, b)));
    k = k + c_both;
    a = na;
    b = nb;
    n = n + 1;
  }}
  # result = b << k, with a data-independent shift loop
  i = 0;
  while (i < {SHIFT_ITERATIONS}) {{
    grow = i < k;
    b = ob_sel(grow, b << 1, b);
    i = i + 1;
  }}
  return b;
}}
"""


def build_oblivious_gcd_victim(
        *, options: Optional[CompileOptions] = None,
        with_yield: bool = True,
        data_base: int = USER_DATA_BASE) -> VictimProgram:
    """Compile the oblivious GCD as a victim comparable to the leaky
    one: same data layout (``g``/``ta``/``tb``), single-limb operands.

    ``with_yield`` inserts the same per-iteration ``sched_yield`` as
    the leaky victim so NV-U gets the same fragment granularity.
    """
    options = options if options is not None else CompileOptions()
    layout = DataLayout(data_base)
    g = layout.add("g", 1)
    ta = layout.add("ta", 1)
    tb = layout.add("tb", 1)
    source = OBLIVIOUS_GCD_SOURCE
    if with_yield:
        source = source.replace("    n = n + 1;",
                                "    yield;\n    n = n + 1;")
    source += f"""
func main() {{
  p = {ta.address};
  q = {tb.address};
  r = {g.address};
  result = gcd_oblivious(p[0], q[0]);
  r[0] = result;
  return 0;
}}
"""
    compiled = Compiler(options).compile(parse_module(source),
                                         start="main")
    return VictimProgram(compiled, layout, 1,
                         secret_function="gcd_oblivious")
