"""Defense and mitigation models: the §5 software arms race (branch
balancing, -falign-jumps, CFR), the §4.1/§8.2 hardware mitigations
(IBRS/IBPB, BTB flush, BTB partitioning), and the §8.2 data-oblivious
GCD — the only software defense that actually stops use case 1."""

from .hardware import (
    HARDWARE_MITIGATIONS,
    flush_on_switch,
    ibrs_ibpb,
    partitioned_btb,
    stock,
)
from .oblivious import (
    OBLIVIOUS_GCD_SOURCE,
    REDUCTION_ITERATIONS,
    build_oblivious_gcd_victim,
)
from .software import (
    SOFTWARE_DEFENSES,
    align_jumps,
    balanced_cfr,
    baseline,
    branch_balancing,
    control_flow_randomization,
)

__all__ = [
    "HARDWARE_MITIGATIONS",
    "OBLIVIOUS_GCD_SOURCE",
    "REDUCTION_ITERATIONS",
    "SOFTWARE_DEFENSES",
    "align_jumps",
    "balanced_cfr",
    "baseline",
    "branch_balancing",
    "build_oblivious_gcd_victim",
    "control_flow_randomization",
    "flush_on_switch",
    "ibrs_ibpb",
    "partitioned_btb",
    "stock",
]
