"""Experiment 2 — Figure 4: prediction-window range semantics.

Reproduces §2.4: ``jmp L1`` is fixed at block offsets [0x1e, 0x1f];
a second jump ``jmp L2`` (same tag/set, different offset, placed one
alias away) occupies [F2, F2+1].  Executing a nop sled starting at
offset F1 then measures whether the BTB lookup from F1 selects
``jmp L2``'s entry: the with-F2 curve shows a constant extra cost
exactly while ``F1 < F2 + 2`` (entry offset >= fetch offset), proving
the range-query lookup of Takeaway 2.

Layout note: both return targets live in distant blocks so their own
BTB entries cannot perturb the measured set (the paper's Fig. 3 keeps
``L2: ret`` away from the jumps for the same reason).
"""

from __future__ import annotations

from typing import List, Optional

from ..analysis import series_block
from ..cpu.config import CpuGeneration, generation
from ..isa.assembler import AssembledProgram, Assembler
from .common import (CallHarness, FigureResult, RunRequest, Series,
                     register_experiment)

#: 32-byte-aligned base of the measured block
BLOCK = 0x0040_0000
#: offset of jmp L1's first byte (fixed by the paper at 0x1e)
J1_OFFSET = 0x1E


def _build_program(config: CpuGeneration, f1_offset: int,
                   f2_offset: int) -> AssembledProgram:
    asm = Assembler(base=BLOCK + f1_offset)
    asm.label("F1")
    asm.nops(J1_OFFSET - f1_offset)
    asm.label("J1")
    asm.emit("jmp8", "L1")            # occupies [0x1e, 0x1f]
    asm.org(BLOCK + 0x60)             # L1 outside the measured block
    asm.label("L1")
    asm.emit("ret")
    alias = BLOCK + config.collision_distance
    asm.org(alias + f2_offset)
    asm.label("F2")
    asm.emit("jmp8", "L2")            # occupies [F2, F2+1]
    asm.org(alias + 0x80)             # L2 in its own distant block
    asm.label("L2")
    asm.emit("ret")
    return asm.assemble()


def measure_point(config: CpuGeneration, f1_offset: int,
                  f2_offset: int, *, call_f2: bool,
                  iterations: int = 10) -> float:
    """Average cycles to execute the PW from F1 through ``jmp L1``'s
    return (the Figure 4 y-axis)."""
    program = _build_program(config, f1_offset, f2_offset)
    harness = CallHarness(config)
    harness.load(program)
    j1 = program.address_of("J1")
    f1 = program.address_of("F1")
    f2 = program.address_of("F2")
    total = 0.0
    for _ in range(iterations):
        harness.flush_btb()
        harness.call(j1)              # allocate jmp L1's entry
        if call_f2:
            harness.call(f2)          # allocate jmp L2's entry
        start = harness.core.cycles
        harness.call(f1)              # execute the measured PW
        total += harness.core.cycles - start
    return total / iterations


def run_figure4(config: Optional[CpuGeneration] = None, *,
                f2_offset: int = 8,
                f1_offsets: Optional[List[int]] = None,
                iterations: int = 10) -> FigureResult:
    """Sweep the PW start offset F1 and produce both Figure 4 curves."""
    config = config if config is not None else generation("skylake")
    if f1_offsets is None:
        f1_offsets = list(range(0, J1_OFFSET + 1))
    with_f2 = Series("with F2 call")
    without_f2 = Series("without F2 call")
    for f1_offset in f1_offsets:
        with_f2.add(f1_offset, measure_point(
            config, f1_offset, f2_offset, call_f2=True,
            iterations=iterations))
        without_f2.add(f1_offset, measure_point(
            config, f1_offset, f2_offset, call_f2=False,
            iterations=iterations))
    result = FigureResult("figure4", [with_f2, without_f2])
    gap_offsets = [
        offset for offset, with_y, without_y
        in zip(f1_offsets, with_f2.ys, without_f2.ys)
        if with_y - without_y > config.squash_penalty / 2
    ]
    result.findings["f2_offset"] = f2_offset
    result.findings["gap_offsets"] = gap_offsets
    result.findings["expected_gap_offsets"] = [
        offset for offset in f1_offsets if offset < f2_offset + 2
    ]
    result.findings["boundary_correct"] = (
        gap_offsets == result.findings["expected_gap_offsets"]
    )
    # The no-F2 curve must decrease monotonically (fewer nops).
    baseline = without_f2.ys
    result.findings["baseline_monotonic"] = all(
        earlier >= later - 1e-9
        for earlier, later in zip(baseline, baseline[1:])
    )
    return result


@register_experiment("fig4", "Figure 4 — PW range-semantics lookup")
def summarize_figure4(request: RunRequest) -> str:
    result = run_figure4(config=request.config_for("skylake"),
                         iterations=2 if request.fast else 10)
    lines = [series_block(s.label, s.xs, s.ys, "cycles")
             for s in result.series]
    lines.append(f"boundary F1 < F2+2 reproduced: "
                 f"{result.findings['boundary_correct']}")
    return "\n".join(lines)
