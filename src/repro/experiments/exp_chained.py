"""Figure 7: basic vs optimized (chained-PW) NV-Core.

The optimized NV-Core monitors N contiguous PW ranges with one chained
snippet, multiplying per-round coverage without extra victim runs.
This experiment verifies the chained probe localizes which of its
ranges the victim touched, and quantifies the coverage/probe-cost
trade-off the optimization buys.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..cpu.config import CpuGeneration, generation
from ..cpu.core import Core
from ..core.nv_core import NvCore
from ..core.pw import PwRange
from ..isa.assembler import Assembler
from ..memory.address import BLOCK_SIZE
from ..system.kernel import Kernel
from ..system.process import Process
from .common import RunRequest, register_experiment

BASE = 0x0040_0400


@dataclass
class ChainedResult:
    #: per victim-block index, the chained probe's match vector
    localization: Dict[int, List[bool]]
    #: victim runs needed to cover n blocks with a single-PW probe
    single_pw_rounds: int
    #: victim runs needed with the chained probe
    chained_rounds: int

    @property
    def localization_correct(self) -> bool:
        """Each victim block must match exactly its own PW."""
        return all(
            vector == [position == index
                       for position in range(len(vector))]
            for index, vector in self.localization.items()
        )


def _victim_in_block(block_index: int):
    asm = Assembler(base=BASE + block_index * BLOCK_SIZE)
    asm.label("entry")
    asm.nops(BLOCK_SIZE - 8)
    asm.emit("hlt")
    return asm.assemble()


def run_figure7(config: Optional[CpuGeneration] = None, *,
                blocks: int = 4) -> ChainedResult:
    config = config if config is not None else generation("coffeelake")
    ranges = [
        PwRange(BASE + index * BLOCK_SIZE,
                BASE + (index + 1) * BLOCK_SIZE)
        for index in range(blocks)
    ]
    localization: Dict[int, List[bool]] = {}
    for block_index in range(blocks):
        kernel = Kernel(Core(config))
        nv = NvCore(kernel)
        session = nv.monitor(ranges)         # one chained snippet
        program = _victim_in_block(block_index)
        victim = Process(name="victim",
                         entry=program.address_of("entry"))
        program.load_into(victim.memory)
        kernel.add_process(victim)
        session.prime()
        kernel.run_slice(victim)
        localization[block_index] = session.probe()
    return ChainedResult(
        localization=localization,
        single_pw_rounds=blocks,     # one victim run per range
        chained_rounds=1,            # all ranges in one run
    )


@register_experiment("fig7", "Figure 7 — chained PWs")
def summarize_figure7(request: RunRequest) -> str:
    result = run_figure7(config=request.config_for("coffeelake"))
    return (f"localization correct: {result.localization_correct}\n"
            f"victim runs: chained={result.chained_rounds} vs "
            f"single-PW={result.single_pw_rounds}")
