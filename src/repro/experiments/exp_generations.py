"""E16 (§2.3 footnote): tag truncation across CPU generations.

SkyLake-family BTBs ignore address bits 33 and above (8 GiB alias
distance); IceLake ignores bit 34 and above (16 GiB).  Experiment 1
must observe collisions at each generation's own alias distance and
*no* collision when the aliased copy is placed at the other
generation's distance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..analysis import ascii_table
from ..cpu.config import GENERATIONS, generation
from ..isa.assembler import Assembler
from ..memory.address import BLOCK_SIZE
from .common import CallHarness, RunRequest, register_experiment

F1 = 0x0040_0008


def _collides_at(config, distance: int, iterations: int = 5) -> bool:
    """Does a nop sled ``distance`` bytes above F1 deallocate F1's
    jmp entry?"""
    asm = Assembler(base=F1)
    asm.label("F1")
    asm.emit("jmp8", "L1")
    asm.align(BLOCK_SIZE)
    asm.nops(2)
    asm.label("L1")
    asm.emit("ret")
    asm.org(F1 + distance)
    asm.label("F2")
    asm.nops(8)
    asm.emit("ret")
    program = asm.assemble()
    harness = CallHarness(config)
    harness.load(program)
    hits = 0
    for _ in range(iterations):
        harness.flush_btb()
        harness.call(program.address_of("F1"))
        harness.call(program.address_of("F2"))
        harness.call(program.address_of("F1"))
        elapsed = harness.elapsed_after(program.address_of("F1"))
        if elapsed is not None and elapsed > config.squash_penalty / 2:
            hits += 1
    return hits > iterations / 2


@dataclass
class GenerationResult:
    """Per generation: tag bits, collides at 8 GiB, collides at
    16 GiB.  Any *multiple* of the truncation distance aliases, so the
    discriminator is 8 GiB: SkyLake-family (bits >= 33 ignored)
    collides there, IceLake (bits >= 34 ignored) does not."""

    table: Dict[str, Tuple[int, bool, bool]]

    @property
    def all_correct(self) -> bool:
        for keep_bits, at_8g, at_16g in self.table.values():
            if not at_16g:
                return False            # 16 GiB aliases everywhere
            if at_8g != (keep_bits == 33):
                return False
        return True


def run_generation_sweep() -> GenerationResult:
    table: Dict[str, Tuple[int, bool, bool]] = {}
    for name in GENERATIONS:
        config = generation(name)
        table[name] = (
            config.tag_keep_bits,
            _collides_at(config, 1 << 33),
            _collides_at(config, 1 << 34),
        )
    return GenerationResult(table)


@register_experiment("generations", "§2.3 footnote — tag truncation sweep")
def summarize_generation_sweep(request: RunRequest) -> str:
    result = run_generation_sweep()
    return ascii_table(
        ("generation", "tag bits", "@8GiB", "@16GiB"),
        [(name, keep, a, b)
         for name, (keep, a, b) in result.table.items()])
