"""Figure 10: PW traversal pass structure and run counts.

The paper's traversal splits the 4 KiB page into 128 32-byte PWs,
tests N per NV-Core call (``128/N`` enclave executions for pass #1),
then halves per extra run until byte granularity.  This experiment
runs the *paper-strategy* traversal on a small enclave and reports the
per-pass run counts alongside the byte-level extraction accuracy —
plus the adaptive strategy's run count for comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..cpu.config import CpuGeneration, generation
from ..cpu.core import Core
from ..core.nv_supervisor import NvSupervisor
from ..analysis import pct
from ..lang import CompileOptions
from ..system.kernel import Kernel
from ..victims.library import ENCLAVE_DATA_BASE, build_gcd_victim
from .common import RunRequest, register_experiment


@dataclass
class TraversalResult:
    pws_per_call: int
    expected_sweep_runs: int       # ceil(128 / N), the Fig. 10 number
    paper_runs: int
    paper_accuracy: float
    adaptive_runs: int
    adaptive_accuracy: float
    steps: int


def run_figure10(config: Optional[CpuGeneration] = None, *,
                 pws_per_call: int = 8,
                 inputs: Optional[dict] = None) -> TraversalResult:
    config = config if config is not None else generation("coffeelake")
    victim = build_gcd_victim(
        "3.0", options=CompileOptions(opt_level=2), nlimbs=1,
        with_yield=False, data_base=ENCLAVE_DATA_BASE)
    if inputs is None:
        inputs = {"ta": 12, "tb": 8}     # short trace, full structure
    expected = victim.expected_unit_starts(inputs, config)

    results: Dict[str, tuple] = {}
    for strategy in ("paper", "adaptive"):
        kernel = Kernel(Core(config))
        supervisor = NvSupervisor(kernel, pws_per_call=pws_per_call,
                                  strategy=strategy)
        trace = supervisor.extract_trace(victim, inputs)
        results[strategy] = (trace.runs,
                             trace.accuracy_against(expected))

    blocks = 4096 // 32
    return TraversalResult(
        pws_per_call=pws_per_call,
        expected_sweep_runs=-(-blocks // pws_per_call),
        paper_runs=results["paper"][0],
        paper_accuracy=results["paper"][1],
        adaptive_runs=results["adaptive"][0],
        adaptive_accuracy=results["adaptive"][1],
        steps=len(expected),
    )


@register_experiment("traversal", "Figure 10 — PW traversal run counts")
def summarize_figure10(request: RunRequest) -> str:
    result = run_figure10(
        request.config_for("coffeelake"),
        inputs={"ta": 6, "tb": 4} if request.fast
        else {"ta": 12, "tb": 8})
    return (f"steps={result.steps}; 128/N budget="
            f"{result.expected_sweep_runs}; paper strategy "
            f"{result.paper_runs} runs @ {pct(result.paper_accuracy)};"
            f" adaptive {result.adaptive_runs} runs @ "
            f"{pct(result.adaptive_accuracy)}")
