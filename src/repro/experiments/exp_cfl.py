"""Use case 1 (§7.2 + Fig. 8): control-flow leakage accuracy.

* :func:`run_gcd_leak` — the headline §7.2 result: NV-U against the
  mbedTLS-3.0-style GCD inside RSA keygen, hardened with
  ``-falign-jumps=16`` (the flag that stops the Frontal attack).  The
  paper reports 99.3 % branch-direction accuracy over 100 runs of
  ~30 iterations each.
* :func:`run_bncmp_leak` — the IPP bn_cmp result (100 % over 100
  runs).
* :func:`run_defense_grid` — Fig. 8 / §5: the same attack against
  every §5 software defense and the §4.1 hardware mitigations; all
  leak, except a full BTB flush / partitioning / data-oblivious code.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..analysis import ascii_table, pct
from ..cpu.config import CpuGeneration, generation
from ..cpu.core import Core
from ..core.cfl import ControlFlowLeakAttack
from ..defenses.software import SOFTWARE_DEFENSES
from ..lang import CompileOptions
from ..system.kernel import Kernel
from ..victims.bignum import ref_cmp
from ..victims.library import (VictimProgram, build_bn_cmp_victim,
                               build_gcd_victim)
from ..victims.rsa import generate_keys
from .common import RunRequest, register_experiment


@dataclass
class LeakResult:
    """Accuracy of one attack campaign."""

    label: str
    runs: int
    total_iterations: int
    correct_iterations: int
    per_run_accuracy: List[float] = field(default_factory=list)

    @property
    def accuracy(self) -> float:
        if not self.total_iterations:
            return 0.0
        return self.correct_iterations / self.total_iterations


def _attack_gcd(victim: VictimProgram, config: CpuGeneration,
                runs: int, seed: int, label: str) -> LeakResult:
    kernel = Kernel(Core(config))
    attack = ControlFlowLeakAttack(kernel, victim)
    keys = generate_keys(runs, seed=seed)
    result = LeakResult(label=label, runs=runs,
                        total_iterations=0, correct_iterations=0)
    for key in keys:
        a, b = key.gcd_inputs()
        inputs = {"ta": a, "tb": b}
        truth = attack.ground_truth(inputs)
        outcome = attack.attack(inputs)
        accuracy = outcome.accuracy_against(truth)
        result.per_run_accuracy.append(accuracy)
        result.total_iterations += len(truth)
        result.correct_iterations += round(accuracy * len(truth))
    return result


def run_gcd_leak(*, version: str = "3.0",
                 config: Optional[CpuGeneration] = None,
                 options: Optional[CompileOptions] = None,
                 runs: int = 100,
                 timing_noise: float = 2.0,
                 seed: int = 7) -> LeakResult:
    """§7.2: leak the balanced GCD branch with alignment hardening."""
    if config is None:
        config = generation("coffeelake", timing_noise=timing_noise)
    if options is None:
        options = CompileOptions(opt_level=2, align_jumps=16)
    victim = build_gcd_victim(version, options=options, nlimbs=2,
                              with_yield=True)
    return _attack_gcd(victim, config, runs, seed,
                       label=f"GCD v{version} (-falign-jumps=16)")


def run_bncmp_leak(*, config: Optional[CpuGeneration] = None,
                   options: Optional[CompileOptions] = None,
                   runs: int = 100,
                   timing_noise: float = 2.0,
                   nlimbs: int = 4,
                   seed: int = 11) -> LeakResult:
    """§7.2: leak the IPP bn_cmp balanced branch (paper: 100 %)."""
    if config is None:
        config = generation("coffeelake", timing_noise=timing_noise)
    if options is None:
        options = CompileOptions(opt_level=2, align_jumps=16)
    victim = build_bn_cmp_victim(options=options, nlimbs=nlimbs,
                                 iters=1, with_yield=True)
    kernel = Kernel(Core(config))
    attack = ControlFlowLeakAttack(kernel, victim)
    rng = random.Random(seed)
    result = LeakResult(label="bn_cmp (-falign-jumps=16)", runs=runs,
                        total_iterations=0, correct_iterations=0)
    for _ in range(runs):
        # secret pair differing in a random limb: the branch compares
        # the first differing limbs (a > b  <=>  then direction)
        a = rng.getrandbits(nlimbs * 64 - 1)
        b = rng.getrandbits(nlimbs * 64 - 1)
        if a == b:
            a += 1
        truth = [ref_cmp(a, b) == 2]      # then-arm iff a < b
        outcome = attack.attack({"a": a, "b": b})
        accuracy = outcome.accuracy_against(truth)
        result.per_run_accuracy.append(accuracy)
        result.total_iterations += 1
        result.correct_iterations += round(accuracy)
    return result


def run_defense_grid(*, runs: int = 20,
                     timing_noise: float = 2.0,
                     generation_name: str = "coffeelake",
                     ibrs: bool = False,
                     seed: int = 23) -> Dict[str, LeakResult]:
    """Fig. 8 / §5.2: GCD leak accuracy under every software defense
    (optionally with IBRS/IBPB enabled on top — §4.1 says it does not
    help, and it does not)."""
    config = generation(generation_name, timing_noise=timing_noise,
                        ibrs_ibpb=ibrs)
    grid: Dict[str, LeakResult] = {}
    for name, builder in SOFTWARE_DEFENSES.items():
        options = builder()
        victim = build_gcd_victim("3.0", options=options, nlimbs=2,
                                  with_yield=True)
        grid[name] = _attack_gcd(victim, config, runs, seed,
                                 label=f"defense={name}"
                                       + ("+ibrs" if ibrs else ""))
    return grid


@register_experiment("gcd-leak", "§7.2 — GCD secret-branch leak (use case 1)")
def summarize_gcd_leak(request: RunRequest) -> str:
    result = run_gcd_leak(runs=5 if request.fast else 100,
                          **request.seeded())
    return (f"{result.label}: accuracy {pct(result.accuracy)} over "
            f"{result.total_iterations} iterations "
            f"({result.runs} runs; paper: 99.3%)")


@register_experiment("bncmp-leak", "§7.2 — bn_cmp leak (use case 1)")
def summarize_bncmp_leak(request: RunRequest) -> str:
    result = run_bncmp_leak(runs=10 if request.fast else 100,
                            **request.seeded())
    return (f"{result.label}: accuracy {pct(result.accuracy)} "
            f"({result.runs} runs; paper: 100%)")


@register_experiment("defenses", "Figure 8 / §5 — software defense grid")
def summarize_defense_grid(request: RunRequest) -> str:
    grid = run_defense_grid(runs=3 if request.fast else 20,
                            **request.seeded())
    return ascii_table(
        ("defense", "accuracy", "verdict"),
        [(name, pct(r.accuracy),
          "LEAKS" if r.accuracy > 0.9 else "holds")
         for name, r in grid.items()])
