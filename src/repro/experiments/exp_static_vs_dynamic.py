"""Static-vs-dynamic differential validation experiment.

Runs the :mod:`repro.analysis` static analyzer against the live
simulator on two fronts:

1. **Victim corpus** — every victim (gcd lineages, bn_cmp, bignum,
   RSA-keyed gcd) runs start-to-halt on an instrumented core; every
   retired edge, BTB insertion, and false hit must be contained in the
   static prediction, and precision must stay well above chance.
2. **Aliased gadget** — a Figure-2-style pair (a ``jmp`` and a nop
   sled one tag-truncation alias away) drives the false-hit machinery
   on purpose, proving the static false-hit map predicts the event the
   corpus victims never trigger (their code has no 8 GiB aliases).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from .. import telemetry
from ..analysis import ascii_table
from ..analysis.aliasing import build_alias_map
from ..analysis.cfg import CodeImage, linear_sweep
from ..analysis.differential import (DifferentialReport, btb_insertions,
                                     false_hit_blocks, validate_victim)
from ..cpu.config import CpuGeneration, generation
from ..isa.assembler import AssembledProgram, Assembler
from ..memory.address import BLOCK_SIZE
from .common import (CallHarness, RunRequest, register_experiment)

_F1_BLOCK = 0x0040_0000
_F1_OFFSET = 8


def corpus_cases(fast: bool = False
                 ) -> List[Tuple[str, object, Dict[str, int]]]:
    """(name, victim, inputs) for the differential corpus."""
    from ..victims.library import (build_bignum_victim,
                                   build_bn_cmp_victim,
                                   build_gcd_victim)
    from ..victims.rsa import generate_key

    cases: List[Tuple[str, object, Dict[str, int]]] = [
        ("gcd-2.5", build_gcd_victim("2.5"), {"ta": 270, "tb": 192}),
        ("gcd-3.0", build_gcd_victim("3.0"), {"ta": 1155, "tb": 862}),
        ("bn_cmp", build_bn_cmp_victim(), {"a": 99, "b": 77}),
        ("bignum", build_bignum_victim(),
         {"s": 123456789, "t": 1111}),
    ]
    if not fast:
        key = generate_key(bits_per_prime=24, seed=11)
        rsa_a, rsa_b = key.gcd_inputs()
        cases.insert(1, ("gcd-2.16", build_gcd_victim("2.16"),
                         {"ta": 270, "tb": 192}))
        cases.append(("rsa-gcd", build_gcd_victim("2.16"),
                      {"ta": rsa_a, "tb": rsa_b}))
    return cases


def run_corpus_validation(*, fast: bool = False,
                          config: Optional[CpuGeneration] = None
                          ) -> List[DifferentialReport]:
    return [validate_victim(victim, inputs, name=name, config=config)
            for name, victim, inputs in corpus_cases(fast)]


# ----------------------------------------------------------------------
# aliased-gadget false-hit validation
# ----------------------------------------------------------------------
def _gadget_program(config: CpuGeneration) -> AssembledProgram:
    """F1: a taken jump; F2: an aliased nop sled one collision
    distance away (same layout as the Figure 2 experiment)."""
    f1 = _F1_BLOCK + _F1_OFFSET
    asm = Assembler(base=f1)
    asm.label("F1")
    asm.emit("jmp8", "L1")
    asm.align(BLOCK_SIZE)
    asm.nops(2)
    asm.label("L1")
    asm.emit("ret")
    asm.org(f1 + config.collision_distance)
    asm.label("F2")
    asm.nops(16)
    asm.emit("ret")
    return asm.assemble()


def run_gadget_validation(config: Optional[CpuGeneration] = None
                          ) -> Dict[str, object]:
    """Drive a deliberate false hit and check the static prediction.

    Returns ``observed`` / ``predicted`` / ``contained`` plus the raw
    counts the experiment summary renders.
    """
    config = config if config is not None else generation("skylake")
    program = _gadget_program(config)
    amap = build_alias_map(
        linear_sweep(CodeImage.from_program(program)), config)

    with telemetry.session(trace=True) as sink:
        harness = CallHarness(config)
        harness.load(program)
        f1 = program.address_of("F1")
        f2 = program.address_of("F2")
        harness.call(f1)             # allocate the jmp's BTB entry
        harness.call(f2)             # aliased fetch -> false hit

    observed = false_hit_blocks(sink.events)
    predicted = amap.false_hit_blocks
    insertions = btb_insertions(sink.events)
    return {
        "observed_false_hits": sorted(observed),
        "predicted_false_hits": sorted(predicted),
        "false_hits_contained": observed <= predicted,
        "false_hit_observed": bool(observed),
        "insertions_contained": insertions <= amap.coords(),
        "collisions": amap.collision_count(),
    }


@register_experiment("static-vs-dynamic",
                     "analyzer-vs-simulator differential validation")
def summarize_static_vs_dynamic(request: RunRequest) -> str:
    config = request.config_for("skylake")
    reports = run_corpus_validation(fast=request.fast, config=config)
    rows = []
    for report in reports:
        rows.append([
            report.victim,
            "yes" if report.contained else "NO",
            f"{report.recall:.3f}",
            f"{report.precision:.3f}",
            str(max(len(report.observation.trace) - 1, 0)),
            str(len(report.observation.insertions)),
        ])
    lines = [ascii_table(
        ["victim", "contained", "recall", "precision",
         "edges", "insertions"], rows)]
    gadget = run_gadget_validation(config)
    lines.append(
        f"aliased gadget: false hit observed="
        f"{gadget['false_hit_observed']} "
        f"contained={gadget['false_hits_contained']} "
        f"insertions contained={gadget['insertions_contained']}")
    all_contained = (all(r.contained for r in reports)
                     and gadget["false_hits_contained"]
                     and gadget["false_hit_observed"])
    worst = min(r.precision for r in reports)
    lines.append(f"containment: {'PASS' if all_contained else 'FAIL'} "
                 f"(worst precision {worst:.3f})")
    return "\n".join(lines)
