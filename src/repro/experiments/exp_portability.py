"""Attack × BTB-design portability matrix (``exp_portability``).

The paper derives its primitives on one Intel-shaped BTB.  This
experiment re-runs three of them against every backend in
:mod:`repro.cpu.btb_backends` and reports which **work** (Intel-grade
signal), **degrade** (a partial signal survives the design change) or
**die** (no signal at all):

``nv_dealloc``
    The NV-Core deallocation sweep (Figure 2 / :func:`run_figure2`):
    does executing aliased non-branch bytes kill the victim's entry,
    and over which placement window?
``pw_range``
    The prediction-window traversal sweep (Figure 4 /
    :func:`run_figure4`): does a planted aliased entry perturb fetches
    started anywhere below its offset, or only at its exact anchor?
``fingerprint``
    A per-offset plant→run-victim→probe scan of one 32-byte victim
    block: plant a probe entry aliasing every block offset, run two
    victim code fragments, and measure how much of the block layout
    the surviving/mispredicting probes recover (per-fragment Jaccard
    similarity).

Designs with full tags (sodor) have no reachable alias inside the
simulated 47-bit address space, so every aliasing-based primitive dies
by construction — the drills gate on ``collision_distance`` instead of
attempting to assemble out-of-range programs.

Every drill runs a fixed, small iteration count and a zero-noise
config, so the rendered matrix is **byte-stable**: the registered
experiment ignores ``request.fast``/``request.seed`` and CI diffs its
output against ``reports/portability_golden.txt``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

from ..cpu.btb_backends import BACKEND_CLASSES, make_backend
from ..cpu.config import CpuGeneration, backend_generation, generation
from ..isa.assembler import Assembler
from .common import CallHarness, RunRequest, register_experiment
from .exp_btb_dealloc import run_figure2
from .exp_pw_range import run_figure4

#: design families, matrix column order
BACKENDS: Tuple[str, ...] = ("intel", "arm", "sodor", "orcs")

#: drills, matrix row order
DRILLS: Tuple[str, ...] = ("nv_dealloc", "pw_range", "fingerprint")

#: iteration count for the figure-based drills — fixed (never scaled
#: by ``request.fast``) so the matrix is byte-stable
_ITERATIONS = 2

#: no usable alias below this distance bound (the simulated address
#: space is 47-bit)
_ALIAS_LIMIT = 1 << 46

#: 32-byte-aligned victim block for the fingerprint drill
_VBLOCK = 0x0040_0000
#: two victim code fragments: (start offset, nop count); each is
#: ``nops`` 1-byte nops followed by a 1-byte ``ret``
_FRAGMENTS: Tuple[Tuple[int, int], ...] = ((2, 8), (20, 6))


@dataclass(frozen=True)
class DrillVerdict:
    """One matrix cell."""

    verdict: str                # "works" | "degraded" | "dies"
    detail: str


def _span(values: Sequence[int]) -> str:
    """Compact deterministic rendering: ``[a..b]`` for a contiguous
    run, the literal list otherwise."""
    values = sorted(values)
    if not values:
        return "[]"
    if values == list(range(values[0], values[-1] + 1)):
        if len(values) == 1:
            return f"[{values[0]}]"
        return f"[{values[0]}..{values[-1]}]"
    return "[" + ",".join(str(v) for v in values) + "]"


def _no_alias(config: CpuGeneration) -> bool:
    return config.collision_distance > _ALIAS_LIMIT


def _classify_sweep(gap: List[int], expected: List[int],
                    label: str) -> DrillVerdict:
    detail = f"{label} {_span(gap)} (intel-grade {_span(expected)})"
    if gap == expected:
        return DrillVerdict("works", detail)
    if gap:
        return DrillVerdict("degraded", detail)
    return DrillVerdict("dies", detail)


# ----------------------------------------------------------------------
# drills
# ----------------------------------------------------------------------
def drill_nv_dealloc(config: CpuGeneration) -> DrillVerdict:
    """Figure 2 on this design: which F2 placements deallocate F1?"""
    if _no_alias(config):
        return DrillVerdict(
            "dies", "no tag aliasing within the address space")
    result = run_figure2(config, iterations=_ITERATIONS)
    return _classify_sweep(result.findings["gap_deltas"],
                           result.findings["expected_gap_deltas"],
                           "gap deltas")


def drill_pw_range(config: CpuGeneration) -> DrillVerdict:
    """Figure 4 on this design: which fetch offsets see the planted
    aliased entry?"""
    if _no_alias(config):
        return DrillVerdict(
            "dies", "no tag aliasing within the address space")
    result = run_figure4(config, iterations=_ITERATIONS)
    return _classify_sweep(result.findings["gap_offsets"],
                           result.findings["expected_gap_offsets"],
                           "gap offsets")


def _victim_program():
    asm = Assembler(base=_VBLOCK + _FRAGMENTS[0][0])
    for index, (start, nops) in enumerate(_FRAGMENTS):
        asm.org(_VBLOCK + start)
        asm.label(f"V{index}")
        asm.nops(nops)
        asm.emit("ret")
    return asm.assemble()


def _fragment_truth() -> List[Set[int]]:
    """Block offsets each fragment's bytes occupy (nops + ret)."""
    return [set(range(start, start + nops + 1))
            for start, nops in _FRAGMENTS]


def _probe_mispredicts(config: CpuGeneration, offset: int,
                       last_byte_index: bool) -> bool:
    """Plant a probe entry aliasing ``_VBLOCK + offset``, run both
    victim fragments, re-run the probe, and report whether it
    mispredicted (= the victim perturbed the shared entry)."""
    alias = _VBLOCK + config.collision_distance
    # Anchor the probe jmp's *index byte* at ``alias + offset``: its
    # last byte on Intel-family designs, its first byte otherwise.
    probe_pc = alias + offset - 1 if last_byte_index else alias + offset
    asm = Assembler(base=probe_pc)
    asm.label("P")
    asm.emit("jmp8", "PL")
    asm.org(alias + 0x60)          # return target outside the block
    asm.label("PL")
    asm.emit("ret")
    probe = asm.assemble()

    harness = CallHarness(config)
    harness.load(_victim_program())
    harness.load(probe)
    harness.flush_btb()
    harness.call(probe_pc)                       # plant
    for index in range(len(_FRAGMENTS)):
        harness.call(_VBLOCK + _FRAGMENTS[index][0])   # victim
    harness.core.lbr.clear()
    harness.call(probe_pc)                       # probe
    record = harness.core.lbr.find_from(probe_pc)
    return record is not None and record.mispredicted


def _jaccard(a: Set[int], b: Set[int]) -> float:
    union = a | b
    if not union:
        return 1.0
    return len(a & b) / len(union)


def drill_fingerprint(config: CpuGeneration) -> DrillVerdict:
    """Per-offset plant/probe scan of the victim block: how much of
    the two fragments' layout do the probes recover?"""
    if _no_alias(config):
        return DrillVerdict(
            "dies", "no tag aliasing within the address space")
    last_byte_index = make_backend(config).last_byte_index
    # A last-byte-anchored probe ending at block offset 0 *starts* in
    # the previous block, so its re-run lookup opens there and can
    # never hit its own entry: it mispredicts unconditionally and the
    # attacker has no detector at that offset.  Skip it.
    scannable = range(1, 32) if last_byte_index else range(32)
    recovered = {
        offset for offset in scannable
        if _probe_mispredicts(config, offset, last_byte_index)
    }
    truth = _fragment_truth()
    # Score each fragment against the recovered offsets in its half of
    # the block (fragment 0 lives below offset 16, fragment 1 above).
    similarities = [
        _jaccard({o for o in recovered if (o >= 16) == (index == 1)},
                 fragment)
        for index, fragment in enumerate(truth)
    ]
    detail = (f"recovered {len(recovered)}/{len(scannable)} scanned "
              "offsets, similarity "
              + " ".join(f"F{i}={s:.2f}"
                         for i, s in enumerate(similarities)))
    if all(s >= 0.9 for s in similarities):
        return DrillVerdict("works", detail)
    if recovered:
        return DrillVerdict("degraded", detail)
    return DrillVerdict("dies", detail)


_DRILL_FUNCS = {
    "nv_dealloc": drill_nv_dealloc,
    "pw_range": drill_pw_range,
    "fingerprint": drill_fingerprint,
}


# ----------------------------------------------------------------------
# matrix
# ----------------------------------------------------------------------
def run_portability(base: str = "skylake"
                    ) -> Dict[str, Dict[str, DrillVerdict]]:
    """Run every drill against every backend; ``matrix[backend][drill]``."""
    matrix: Dict[str, Dict[str, DrillVerdict]] = {}
    for backend in BACKENDS:
        config = backend_generation(backend, base=generation(base))
        matrix[backend] = {
            drill: _DRILL_FUNCS[drill](config) for drill in DRILLS
        }
    return matrix


def render_matrix(matrix: Dict[str, Dict[str, DrillVerdict]],
                  base: str = "skylake") -> str:
    """Byte-stable report: geometry table, verdict grid, details."""
    lines = ["BTB portability matrix (attack primitive x design family)",
             f"base generation: {base}",
             ""]
    lines.append(f"{'backend':<8} {'geometry':<24} {'anchor':<6} "
                 f"{'hits':<6} replacement")
    for backend in BACKENDS:
        config = backend_generation(backend, base=generation(base))
        strategy = make_backend(config)
        geometry = (f"{strategy.sets}x{strategy.ways} keep "
                    f"{strategy.tag_keep_bits}")
        anchor = "last" if strategy.last_byte_index else "first"
        hits = "range" if strategy.range_hits else "exact"
        lines.append(f"{backend:<8} {geometry:<24} {anchor:<6} "
                     f"{hits:<6} {strategy.replacement}")
    lines.append("")
    header = f"{'primitive':<12}" + "".join(
        f" {backend:<9}" for backend in BACKENDS)
    lines.append(header)
    for drill in DRILLS:
        row = f"{drill:<12}" + "".join(
            f" {matrix[backend][drill].verdict:<9}"
            for backend in BACKENDS)
        lines.append(row.rstrip())
    lines.append("")
    lines.append("details:")
    for backend in BACKENDS:
        for drill in DRILLS:
            cell = matrix[backend][drill]
            lines.append(f"  {backend}/{drill}: {cell.verdict} — "
                         f"{cell.detail}")
    return "\n".join(lines)


@register_experiment("portability",
                     "attack x BTB-design survival matrix")
def summarize_portability(request: RunRequest) -> str:
    """Render the matrix.  Deliberately ignores ``request.fast`` and
    ``request.seed``: the drills are deterministic and fixed-size so
    the output can be diffed against the committed golden in every
    mode (``request.backend`` is ignored too — the matrix spans all
    backends by construction)."""
    del request
    return render_matrix(run_portability())
