"""Experiment harnesses: one module per paper figure/table.  The
benchmarks and examples are thin wrappers over these, so every result
is reproducible (and testable) as library code."""

from .common import CallHarness, FigureResult, Series
from .exp_btb_dealloc import run_figure2
from .exp_certify import certify_cases, run_certification
from .exp_cfl import (LeakResult, run_bncmp_leak, run_defense_grid,
                      run_gcd_leak)
from .exp_chained import ChainedResult, run_figure7
from .exp_fingerprint import (ExtractionArtifacts, FingerprintResult,
                              extract_victim_function, run_figure12)
from .exp_generations import GenerationResult, run_generation_sweep
from .exp_mitigations import (ObliviousResult, run_hardware_grid,
                              run_oblivious)
from .exp_overlap import OverlapResult, run_figure5
from .exp_portability import (DrillVerdict, render_matrix,
                              run_portability)
from .exp_pw_range import run_figure4
from .exp_robustness import (RobustnessPoint, RobustnessResult,
                             run_fingerprint_robustness,
                             run_leak_robustness)
from .exp_static_vs_dynamic import (run_corpus_validation,
                                    run_gadget_validation)
from .exp_traversal import TraversalResult, run_figure10
from .exp_versions import (SimilarityMatrix, run_figure13_optlevels,
                           run_figure13_versions, version_groups)

__all__ = [
    "CallHarness",
    "ChainedResult",
    "DrillVerdict",
    "ExtractionArtifacts",
    "FigureResult",
    "FingerprintResult",
    "GenerationResult",
    "LeakResult",
    "ObliviousResult",
    "OverlapResult",
    "RobustnessPoint",
    "RobustnessResult",
    "Series",
    "SimilarityMatrix",
    "TraversalResult",
    "extract_victim_function",
    "certify_cases",
    "run_bncmp_leak",
    "run_certification",
    "run_defense_grid",
    "run_figure10",
    "run_figure12",
    "run_figure13_optlevels",
    "run_figure13_versions",
    "run_figure2",
    "run_figure4",
    "run_figure5",
    "run_figure7",
    "run_corpus_validation",
    "run_fingerprint_robustness",
    "run_gadget_validation",
    "run_gcd_leak",
    "run_leak_robustness",
    "run_generation_sweep",
    "run_hardware_grid",
    "run_oblivious",
    "render_matrix",
    "run_portability",
    "version_groups",
]
