"""Figure 5: the four attacker/victim PW overlap scenarios.

NV-Core must detect all four ways a victim PW can overlap the
monitored range:

1. victim PW *ends* (taken branch) inside the attacker range, entered
   from below;
2. victim PW ends inside the attacker range, entered from within;
3. victim PW of straight-line code covers the upper part of the range
   and continues past it;
4. victim straight-line code lies entirely within the range.

...and must stay silent when the victim executes elsewhere.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..cpu.config import CpuGeneration, generation
from ..cpu.core import Core
from ..core.nv_core import NvCore
from ..core.pw import PwRange
from ..isa.assembler import AssembledProgram, Assembler
from ..system.kernel import Kernel
from ..system.process import Process
from .common import RunRequest, register_experiment

#: monitored victim range: one aligned 32-byte block
RANGE_START = 0x0040_0200
RANGE_END = RANGE_START + 32


def _scenario_program(scenario: str) -> AssembledProgram:
    """Victim code per scenario; entry label is ``entry``."""
    asm = Assembler(base=RANGE_START - 0x80)
    asm.label("entry")
    if scenario == "branch_from_below":
        # (1) enter below the range, take a branch inside it
        asm.nops((RANGE_START + 6) - (RANGE_START - 0x80))
        asm.emit("jmp8", "out")          # jmp inside [start, end)
        asm.org(RANGE_END + 0x40)
        asm.label("out")
    elif scenario == "branch_within":
        # (2) enter inside the range, take a branch inside it
        asm.org(RANGE_START + 2)
        asm.label("entry2")
        asm.nops(6)
        asm.emit("jmp8", "out")
        asm.org(RANGE_END + 0x40)
        asm.label("out")
    elif scenario == "straightline_through":
        # (3) straight-line code entering mid-range and running past
        asm.org(RANGE_START + 10)
        asm.label("entry2")
        asm.nops(40)
    elif scenario == "straightline_inside":
        # (4) straight-line code fully inside the range
        asm.org(RANGE_START + 4)
        asm.label("entry2")
        asm.nops(20)
    elif scenario == "elsewhere":
        asm.nops(24)
    else:
        raise ValueError(f"unknown scenario {scenario!r}")
    asm.emit("hlt")
    return asm.assemble()


@dataclass
class OverlapResult:
    detections: Dict[str, bool]

    @property
    def all_correct(self) -> bool:
        expected = {
            "branch_from_below": True,
            "branch_within": True,
            "straightline_through": True,
            "straightline_inside": True,
            "elsewhere": False,
        }
        return self.detections == expected


def run_figure5(config: Optional[CpuGeneration] = None, *,
                detector: str = "hybrid") -> OverlapResult:
    config = config if config is not None else generation("coffeelake")
    detections: Dict[str, bool] = {}
    for scenario in ("branch_from_below", "branch_within",
                     "straightline_through", "straightline_inside",
                     "elsewhere"):
        kernel = Kernel(Core(config))
        nv = NvCore(kernel, detector=detector)
        session = nv.monitor([PwRange(RANGE_START, RANGE_END)])
        program = _scenario_program(scenario)
        entry = program.symbols.get("entry2",
                                    program.address_of("entry"))
        victim = Process(name=f"victim-{scenario}", entry=entry)
        program.load_into(victim.memory)
        kernel.add_process(victim)
        session.prime()
        kernel.run_slice(victim)
        detections[scenario] = session.probe()[0]
    return OverlapResult(detections)


@register_experiment("fig5", "Figure 5 — overlap scenarios")
def summarize_figure5(request: RunRequest) -> str:
    result = run_figure5(config=request.config_for("coffeelake"))
    lines = [f"{name}: detected={hit}"
             for name, hit in result.detections.items()]
    lines.append(f"all correct: {result.all_correct}")
    return "\n".join(lines)
