"""Symbolic certification experiment: the static-analysis capstone.

Where ``static-vs-dynamic`` checks that the static analyzer's
*over*-approximation contains the dynamic truth, this experiment runs
the exact engine: symbolic exploration proves every BTB-visible
branch site leaky or safe, synthesizes concrete witness pairs for
each proof of leakage, replays them on the instrumented core (the
streams must diverge), and then validates the constant-time
auto-rewrite end to end (re-certified ``PROVEN_SAFE``, bit-identical
streams on the original witnesses, results preserved over the whole
certified domain).

``--fast`` certifies only the ``bn_cmp`` and ``bignum`` victims —
exercising one proven leak plus one proven-safe corpus entry without
the gcd lineage's rewrite re-certification cost.
"""

from __future__ import annotations

from typing import List, Tuple

from .common import RunRequest, register_experiment


def certify_cases(fast: bool = False) -> List[Tuple[str, object]]:
    """(name, victim) pairs for the certification corpus."""
    if not fast:
        from ..analysis.symbolic import certify_corpus
        return certify_corpus()
    from ..victims.library import (build_bignum_victim,
                                   build_bn_cmp_victim)
    return [("bn_cmp", build_bn_cmp_victim()),
            ("bignum", build_bignum_victim())]


def run_certification(*, fast: bool = False):
    from ..analysis.symbolic import run_certify
    return run_certify(certify_cases(fast))


@register_experiment("certify",
                     "symbolic leakage certification + CT rewrite")
def summarize_certify(request: RunRequest) -> str:
    report = run_certification(fast=request.fast)
    lines = [report.render().rstrip("\n")]
    leaky = sum(len(c.leaky) for c in report.certifications)
    undecided = sum(len(c.undecided) for c in report.certifications)
    repaired = sum(1 for r in report.rewrites if r.ok)
    lines.append(
        f"certification: {'PASS' if report.ok else 'FAIL'} "
        f"({leaky} proven leaks, {undecided} undecided, "
        f"{repaired}/{len(report.rewrites)} rewrites validated)")
    return "\n".join(lines)
