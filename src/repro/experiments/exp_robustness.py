"""Robustness ablation: attack accuracy vs injected fault rate.

Neither the paper's 99.3 % GCD-leak accuracy (§7.2) nor its <100 %
fingerprint self-similarity (§7.3) come from a quiet machine — LBR
records go missing, co-residents thrash the BTB, SGX-Step interrupts
mis-land.  This experiment quantifies what the resilient measurement
stack (:mod:`repro.core.measurement`) buys: the same campaigns run at
increasing multiples of a base :class:`~repro.faults.FaultPlan`, once
with the naive fail-fast probe path and once under a
:class:`MeasurementPolicy`, producing the degradation curves rendered
by :func:`repro.analysis.degradation_block`.

Two sweeps:

* :func:`run_leak_robustness` — the §7.2 NV-U GCD branch leak;
* :func:`run_fingerprint_robustness` — NV-S extraction
  self-similarity (§7.3).  Without a policy, calibration typically
  dies outright under faults (a dropped record aborts the session) —
  those points score 0.0 with ``failed=True``, which *is* the
  headline: resilience is the difference between a noisy result and
  no result.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from ..analysis import degradation_block, pct
from ..cpu.config import CpuGeneration, generation
from ..cpu.core import Core
from ..core.cfl import ControlFlowLeakAttack
from ..core.measurement import MeasurementPolicy
from ..errors import ReproError
from ..faults import ACCEPTANCE_PLAN, FaultInjector, FaultPlan
from ..lang import CompileOptions
from ..system.kernel import Kernel
from ..victims.library import (ENCLAVE_DATA_BASE, build_gcd_victim)
from ..victims.rsa import generate_keys
from .common import RunRequest, register_experiment
from .exp_fingerprint import extract_victim_function


@dataclass
class RobustnessPoint:
    """One (fault scale, configuration) cell of the sweep."""

    factor: float
    resilient: bool
    #: leak accuracy / fingerprint self-similarity at this point
    accuracy: float
    #: mean confidence the attacker itself assigned (1.0 when the
    #: naive path has no notion of confidence)
    confidence: float = 1.0
    #: the campaign died with an attack-layer error (naive calibration
    #: under faults, typically) — accuracy is 0.0 by construction
    failed: bool = False
    #: probe-snippet executions spent (resilience overhead metric)
    attempts: int = 0


@dataclass
class RobustnessResult:
    """A full naive-vs-resilient degradation sweep."""

    label: str
    plan_name: str
    factors: List[float]
    naive: List[RobustnessPoint] = field(default_factory=list)
    resilient: List[RobustnessPoint] = field(default_factory=list)

    def curves(self):
        """``(name, ys)`` pairs for :func:`degradation_block`."""
        return [
            ("naive", [p.accuracy for p in self.naive]),
            ("resilient", [p.accuracy for p in self.resilient]),
        ]

    @property
    def resilient_floor(self) -> float:
        """Worst resilient accuracy across the sweep."""
        return min((p.accuracy for p in self.resilient), default=0.0)

    @property
    def naive_floor(self) -> float:
        return min((p.accuracy for p in self.naive), default=0.0)


DEFAULT_FACTORS = (0.0, 1.0, 2.0, 3.0)


def _leak_campaign(plan: FaultPlan,
                   policy: Optional[MeasurementPolicy],
                   config: CpuGeneration, *,
                   runs: int, seed: int) -> RobustnessPoint:
    victim = build_gcd_victim(
        "3.0", options=CompileOptions(opt_level=2, align_jumps=16),
        nlimbs=2, with_yield=True)
    kernel = Kernel(Core(config))
    attack = ControlFlowLeakAttack(kernel, victim, policy=policy)
    # Attach after the attack calibrates: the leak sweep isolates
    # *measurement* resilience (the fingerprint sweep below exercises
    # calibration-under-faults).
    injector = None
    if plan.active:
        injector = FaultInjector(plan, seed=seed, record_events=False)
        injector.attach(kernel)
    total = correct = 0
    confidences: List[float] = []
    for key in generate_keys(runs, seed=seed):
        a, b = key.gcd_inputs()
        inputs = {"ta": a, "tb": b}
        truth = attack.ground_truth(inputs)
        outcome = attack.attack(inputs)
        total += len(truth)
        correct += round(outcome.accuracy_against(truth) * len(truth))
        confidences.append(outcome.mean_confidence())
    return RobustnessPoint(
        factor=0.0, resilient=policy is not None,
        accuracy=correct / total if total else 0.0,
        confidence=(sum(confidences) / len(confidences)
                    if confidences else 1.0),
        attempts=attack.session.attempts,
    )


def run_leak_robustness(*, base_plan: FaultPlan = ACCEPTANCE_PLAN,
                        factors: Sequence[float] = DEFAULT_FACTORS,
                        runs: int = 8,
                        timing_noise: float = 2.0,
                        seed: int = 7,
                        policy: Optional[MeasurementPolicy] = None
                        ) -> RobustnessResult:
    """Sweep the §7.2 GCD leak across fault-plan multiples."""
    config = generation("coffeelake", timing_noise=timing_noise)
    policy = policy if policy is not None else MeasurementPolicy()
    result = RobustnessResult(
        label="GCD leak accuracy vs fault scale",
        plan_name=base_plan.name, factors=list(factors))
    for factor in factors:
        plan = base_plan.scaled(factor)
        for use_policy in (False, True):
            point = _leak_campaign(
                plan, policy if use_policy else None, config,
                runs=runs, seed=seed)
            point.factor = factor
            (result.resilient if use_policy else result.naive
             ).append(point)
    return result


def _fingerprint_campaign(plan: FaultPlan,
                          policy: Optional[MeasurementPolicy],
                          config: CpuGeneration, *,
                          inputs: dict, seed: int) -> RobustnessPoint:
    victim = build_gcd_victim(
        "3.0", options=CompileOptions(opt_level=2), nlimbs=1,
        with_yield=False, data_base=ENCLAVE_DATA_BASE)
    injector = (FaultInjector(plan, seed=seed, record_events=False)
                if plan.active else None)
    try:
        artifacts = extract_victim_function(
            victim, inputs, config, policy=policy,
            fault_injector=injector)
    except ReproError:
        # The naive path has no recovery: a dropped record during
        # calibration (or a desynchronized traversal) kills the whole
        # extraction.
        return RobustnessPoint(factor=0.0, resilient=policy is not None,
                               accuracy=0.0, confidence=0.0,
                               failed=True)
    return RobustnessPoint(
        factor=0.0, resilient=policy is not None,
        accuracy=artifacts.self_similarity,
        confidence=artifacts.confidence,
        attempts=artifacts.extraction_runs,
    )


def run_fingerprint_robustness(
        *, base_plan: FaultPlan = ACCEPTANCE_PLAN,
        factors: Sequence[float] = (0.0, 1.0, 2.0),
        inputs: Optional[dict] = None,
        seed: int = 7,
        policy: Optional[MeasurementPolicy] = None
        ) -> RobustnessResult:
    """Sweep NV-S fingerprint self-similarity across fault multiples.

    Uses a small GCD instance (extraction re-executes the enclave
    dozens of times); pass larger ``inputs`` for longer traces.
    """
    config = generation("coffeelake")
    if inputs is None:
        inputs = {"ta": 2 * 3 * 17, "tb": 2 * 3 * 5}
    policy = policy if policy is not None else MeasurementPolicy()
    result = RobustnessResult(
        label="fingerprint self-similarity vs fault scale",
        plan_name=base_plan.name, factors=list(factors))
    for factor in factors:
        plan = base_plan.scaled(factor)
        for use_policy in (False, True):
            point = _fingerprint_campaign(
                plan, policy if use_policy else None, config,
                inputs=inputs, seed=seed)
            point.factor = factor
            (result.resilient if use_policy else result.naive
             ).append(point)
    return result


@register_experiment("robustness", "ablation — accuracy vs injected fault rate")
def summarize_robustness(request: RunRequest) -> str:
    plan_kwargs = {}
    if request.plan is not None and request.plan.active:
        plan_kwargs["base_plan"] = request.plan
    leak = run_leak_robustness(
        runs=3 if request.fast else 8,
        factors=(0.0, 1.0) if request.fast else (0.0, 1.0, 2.0, 3.0),
        **plan_kwargs, **request.seeded())
    blocks = [degradation_block(
        f"{leak.label} (plan: {leak.plan_name})",
        leak.factors, leak.curves())]
    blocks.append(f"resilient floor {pct(leak.resilient_floor)} vs "
                  f"naive floor {pct(leak.naive_floor)}")
    if not request.fast:
        fingerprint = run_fingerprint_robustness(
            **plan_kwargs, **request.seeded())
        blocks.append(degradation_block(
            f"{fingerprint.label} (plan: {fingerprint.plan_name})",
            fingerprint.factors, fingerprint.curves()))
        failures = sum(p.failed for p in fingerprint.naive)
        blocks.append(f"naive extractions failed outright: "
                      f"{failures}/{len(fingerprint.naive)}")
    return "\n".join(blocks)
