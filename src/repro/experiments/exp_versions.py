"""Figure 13: fingerprint robustness across library versions and
compiler optimization levels.

Left plot: GCD from eight mbedTLS versions (2.5–3.1), each measured
and scored against each version's static reference.  The paper's
finding is a block structure — versions sharing source (2.5–2.15;
2.16+; 3.x) score high against each other and low across groups.

Right plot: GCD compiled at -O0/-O2/-O3, cross-scored.  Different
levels produce different binaries, so similarity degrades off the
diagonal — the paper's conclusion that the attacker must prepare
references per version *and* per compiler configuration.

Victim traces here use the corpus measurement model (ground truth +
the same fusion/noise artifacts NV-S exhibits); the full NV-S
extraction path is exercised end-to-end in exp_fingerprint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..fingerprint.measurement import measured_trace
from ..fingerprint.similarity import set_similarity
from ..lang import CompileOptions
from ..victims.gcd import GCD_VERSIONS, VERSION_GROUPS
from ..victims.library import VictimProgram, build_gcd_victim
from .common import RunRequest, register_experiment

DEFAULT_INPUTS = {"ta": 2 * 3 * 17 * 23 * 31, "tb": 2 * 3 * 29 * 41}


def measured_function_pcs(victim: VictimProgram, inputs: dict, *,
                          function: Optional[str] = None,
                          error_rate: float = 0.01,
                          drop_rate: float = 0.01,
                          seed: int = 0) -> List[int]:
    """Measured (fusion+noise) relative PCs of one function's
    execution — own nesting level only."""
    function = function or victim.fingerprint_function
    info = victim.compiled.info(function)
    ground = victim.ground_truth(inputs)
    own_level = [pc for pc in ground.trace if info.contains(pc)]
    measured = measured_trace(
        own_level, victim.compiled.program.instructions,
        error_rate=error_rate, drop_rate=drop_rate, seed=seed)
    return [pc - info.entry for pc in measured]


def reference_pcs(victim: VictimProgram,
                  function: Optional[str] = None) -> List[int]:
    function = function or victim.fingerprint_function
    info = victim.compiled.info(function)
    return [pc - info.entry
            for pc in victim.compiled.static_pcs(function)
            if pc >= info.entry]


@dataclass
class SimilarityMatrix:
    labels: Tuple[str, ...]
    #: values[victim_label][reference_label]
    values: Dict[str, Dict[str, float]]

    def value(self, victim: str, reference: str) -> float:
        return self.values[victim][reference]

    def diagonal_min(self) -> float:
        return min(self.values[label][label] for label in self.labels)

    def off_diagonal_max(self, groups: Optional[
            Dict[str, Tuple[str, ...]]] = None) -> float:
        """Largest cross-*group* similarity (same-group pairs share
        source and legitimately score high)."""
        def same_group(a: str, b: str) -> bool:
            if groups is None:
                return a == b
            for members in groups.values():
                if a in members and b in members:
                    return True
            return False
        return max(
            self.values[v][r]
            for v in self.labels for r in self.labels
            if not same_group(v, r)
        )


def run_figure13_versions(*, inputs: Optional[dict] = None,
                          opt_level: int = 2,
                          nlimbs: int = 2,
                          versions: Sequence[str] = GCD_VERSIONS
                          ) -> SimilarityMatrix:
    """Left plot: version x version similarity matrix."""
    inputs = inputs if inputs is not None else DEFAULT_INPUTS
    victims = {
        version: build_gcd_victim(
            version, options=CompileOptions(opt_level=opt_level),
            nlimbs=nlimbs, with_yield=False)
        for version in versions
    }
    measured = {
        version: measured_function_pcs(victim, inputs,
                                       seed=hash(version) & 0xFFFF)
        for version, victim in victims.items()
    }
    references = {
        version: reference_pcs(victim)
        for version, victim in victims.items()
    }
    values = {
        v: {r: set_similarity(measured[v], references[r])
            for r in versions}
        for v in versions
    }
    return SimilarityMatrix(tuple(versions), values)


def run_figure13_optlevels(*, inputs: Optional[dict] = None,
                           version: str = "3.0",
                           nlimbs: int = 2,
                           levels: Sequence[int] = (0, 2, 3)
                           ) -> SimilarityMatrix:
    """Right plot: optimization-level cross-similarity matrix."""
    inputs = inputs if inputs is not None else DEFAULT_INPUTS
    victims = {
        f"O{level}": build_gcd_victim(
            version, options=CompileOptions(opt_level=level),
            nlimbs=nlimbs, with_yield=False)
        for level in levels
    }
    measured = {
        label: measured_function_pcs(victim, inputs,
                                     seed=hash(label) & 0xFFFF)
        for label, victim in victims.items()
    }
    references = {
        label: reference_pcs(victim)
        for label, victim in victims.items()
    }
    labels = tuple(victims)
    values = {
        v: {r: set_similarity(measured[v], references[r])
            for r in labels}
        for v in labels
    }
    return SimilarityMatrix(labels, values)


def version_groups() -> Dict[str, Tuple[str, ...]]:
    return dict(VERSION_GROUPS)


@register_experiment("versions", "Figure 13 — versions × opt levels")
def summarize_figure13(request: RunRequest) -> str:
    left = run_figure13_versions()
    right = run_figure13_optlevels()
    return (f"versions: within-group min "
            f"{left.diagonal_min():.2f} vs cross-group max "
            f"{left.off_diagonal_max(version_groups()):.2f}\n"
            f"opt levels: diagonal min {right.diagonal_min():.2f} vs "
            f"off-diagonal max {right.off_diagonal_max():.2f}")
