"""Experiment 1 — Figure 2: non-control-transfer BTB deallocation.

Reproduces §2.3: ``F1`` holds a 2-byte ``jmp L1``; ``F2`` is a nop
sled placed one tag-truncation alias away (4/8/16 GiB, per CPU
generation).  Sweeping F2's start address around F1 and measuring the
LBR elapsed cycles between ``jmp L1``'s retire and the subsequent
``ret`` shows the deallocation window: the gap between the
with-F2 and without-F2 curves opens exactly while ``F2 < F1 + 2`` —
i.e. while some nop aliases a byte of the jump.
"""

from __future__ import annotations

from typing import List, Optional

from ..analysis import series_block
from ..cpu.config import CpuGeneration, generation
from ..isa.assembler import AssembledProgram, Assembler
from ..memory.address import BLOCK_SIZE
from .common import (CallHarness, FigureResult, RunRequest, Series,
                     register_experiment)

#: F1's offset within its fetch block (paper varies this; any works)
F1_BLOCK_OFFSET = 8
#: base address of the block holding F1 (32-byte aligned)
F1_BLOCK = 0x0040_0000


def _build_program(config: CpuGeneration, f2_delta: int,
                   nops: int = 16) -> AssembledProgram:
    """F1: jmp L1 / L1: ret, plus the aliased nop sled at
    ``F1 + collision_distance + f2_delta``."""
    f1 = F1_BLOCK + F1_BLOCK_OFFSET
    asm = Assembler(base=f1)
    asm.label("F1")
    asm.emit("jmp8", "L1")
    # Keep L1 outside F1's fetch block so the ret's own BTB entry
    # cannot alias the swept nop range.
    asm.align(BLOCK_SIZE)
    asm.nops(2)
    asm.label("L1")
    asm.emit("ret")
    asm.org(f1 + config.collision_distance + f2_delta)
    asm.label("F2")
    asm.nops(nops)
    asm.emit("ret")
    return asm.assemble()


def measure_point(config: CpuGeneration, f2_delta: int, *,
                  call_f2: bool, iterations: int = 10) -> float:
    """Average elapsed cycles between ``jmp L1``'s retire and the
    following ``ret``'s retire (the Figure 2 y-axis)."""
    program = _build_program(config, f2_delta)
    harness = CallHarness(config)
    harness.load(program)
    f1 = program.address_of("F1")
    f2 = program.address_of("F2")
    total = 0.0
    samples = 0
    for _ in range(iterations):
        harness.flush_btb()
        harness.call(f1)            # allocate the BTB entry
        if call_f2:
            harness.call(f2)        # maybe deallocate it
        harness.call(f1)            # measure the prediction outcome
        elapsed = harness.elapsed_after(f1)
        if elapsed is not None:
            total += elapsed
            samples += 1
    return total / max(samples, 1)


def run_figure2(config: Optional[CpuGeneration] = None, *,
                deltas: Optional[List[int]] = None,
                iterations: int = 10) -> FigureResult:
    """Sweep F2 around F1 and produce both Figure 2 curves."""
    config = config if config is not None else generation("skylake")
    if deltas is None:
        deltas = list(range(-8, 9))
    with_f2 = Series("with F2 call")
    without_f2 = Series("without F2 call")
    for delta in deltas:
        with_f2.add(delta, measure_point(
            config, delta, call_f2=True, iterations=iterations))
        without_f2.add(delta, measure_point(
            config, delta, call_f2=False, iterations=iterations))
    result = FigureResult("figure2", [with_f2, without_f2])
    # Headline finding: the gap exists exactly while F2 < F1 + 2.
    gap_deltas = [
        delta for delta, with_y, without_y
        in zip(deltas, with_f2.ys, without_f2.ys)
        if with_y - without_y > config.squash_penalty / 2
    ]
    result.findings["gap_deltas"] = gap_deltas
    result.findings["expected_gap_deltas"] = [
        delta for delta in deltas if delta < 2
    ]
    result.findings["boundary_correct"] = (
        result.findings["gap_deltas"]
        == result.findings["expected_gap_deltas"]
    )
    return result


@register_experiment("fig2", "Figure 2 — non-branch BTB deallocation")
def summarize_figure2(request: RunRequest) -> str:
    result = run_figure2(config=request.config_for("skylake"),
                         iterations=2 if request.fast else 10)
    lines = [series_block(s.label, s.xs, s.ys, "cycles")
             for s in result.series]
    lines.append(f"boundary F2 < F1+2 reproduced: "
                 f"{result.findings['boundary_correct']}")
    return "\n".join(lines)
