"""Figure 12 + §7.3: fingerprinting GCD and bn_cmp among a corpus.

End-to-end use case 2:

1. build the two reference victims as SGX enclaves with encrypted
   code (PCL) and extract their full dynamic PC traces with NV-S;
2. slice and normalize the traces (call/ret + data-access heuristics);
3. build a reference index holding GCD's and bn_cmp's *static*
   relative-PC sets, score every victim function — the two extracted
   functions plus a large synthetic corpus — against each reference;
4. report the Fig. 12 findings: the reference function must be the
   top-1 hit, with the paper-observed less-than-100 % self-similarity
   caused by macro-fusion (§7.3: 75.8 % for GCD, 88.2 % for bn_cmp).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..analysis import pct
from ..cpu.config import CpuGeneration, generation
from ..cpu.core import Core
from ..core.measurement import MeasurementPolicy
from ..core.nv_supervisor import NvSupervisor
from ..fingerprint.corpus import CorpusFunction, generate_corpus
from ..fingerprint.similarity import set_similarity
from ..fingerprint.slicing import (function_traces_of_length,
                                   slice_trace)
from ..lang import CompileOptions
from ..system.kernel import Kernel
from .common import RunRequest, register_experiment
from ..victims.library import (ENCLAVE_DATA_BASE, VictimProgram,
                               build_bn_cmp_victim, build_gcd_victim)


@dataclass
class ExtractionArtifacts:
    """NV-S output for one victim, fingerprint-ready."""

    victim: VictimProgram
    #: extracted PCs of the secret function's invocation, normalized
    normalized: Tuple[int, ...]
    #: reference: static relative PCs of the secret function
    reference: Tuple[int, ...]
    self_similarity: float
    extraction_runs: int
    #: True when extraction stopped early (probe budget exhausted)
    #: and the artifacts below are best-effort
    partial: bool = False
    #: mean per-step confidence of the underlying extracted trace
    confidence: float = 1.0


@dataclass
class FingerprintResult:
    """The Figure 12 reproduction."""

    gcd: ExtractionArtifacts
    bn_cmp: ExtractionArtifacts
    corpus_size: int
    #: top similarities of corpus functions against each reference
    top_vs_gcd: List[float] = field(default_factory=list)
    top_vs_bncmp: List[float] = field(default_factory=list)

    @property
    def gcd_identified(self) -> bool:
        """GCD's own trace scores above every corpus function."""
        ceiling = max(self.top_vs_gcd, default=0.0)
        return self.gcd.self_similarity > ceiling

    @property
    def bncmp_identified(self) -> bool:
        ceiling = max(self.top_vs_bncmp, default=0.0)
        return self.bn_cmp.self_similarity > ceiling


def _reference_pcs(victim: VictimProgram) -> Tuple[int, ...]:
    function = victim.fingerprint_function
    info = victim.compiled.info(function)
    return tuple(pc - info.entry
                 for pc in victim.compiled.static_pcs(function)
                 if pc >= info.entry)


def extract_victim_function(victim: VictimProgram, inputs: dict,
                            config: CpuGeneration, *,
                            policy: Optional[MeasurementPolicy] = None,
                            probe_budget: Optional[int] = None,
                            fault_injector=None
                            ) -> ExtractionArtifacts:
    """Run the full NV-S pipeline and slice out the secret function's
    invocation trace.

    Degrades gracefully: a budget-truncated or fault-mangled trace
    yields low-confidence (possibly empty) artifacts rather than an
    exception, so corpus-scale fingerprinting campaigns survive
    individual bad extractions.
    """
    kernel = Kernel(Core(config))
    supervisor = NvSupervisor(kernel, policy=policy,
                              probe_budget=probe_budget)
    if fault_injector is not None:
        # Attached before any probe session calibrates, so the whole
        # extraction — calibration included — runs under faults.
        fault_injector.attach(kernel)
    trace = supervisor.extract_trace(victim, inputs)
    data_access = [step.data_access for step in trace.steps]
    pcs = [step.pc for step in trace.steps if step.pc is not None]
    flags = [flag for step, flag in zip(trace.steps, data_access)
             if step.pc is not None]
    sliced = function_traces_of_length(slice_trace(pcs, flags))
    reference = _reference_pcs(victim)
    if not sliced:
        # Nothing function-shaped survived slicing (heavily truncated
        # partial trace): report a zero-similarity artifact.
        return ExtractionArtifacts(
            victim=victim,
            normalized=(),
            reference=reference,
            self_similarity=0.0,
            extraction_runs=trace.runs,
            partial=True,
            confidence=trace.mean_confidence,
        )
    info = victim.compiled.info(victim.fingerprint_function)
    # the longest invocation entering at (or ±8 bytes around, for
    # extraction error) the target function's entry
    near = [t for t in sliced if abs(t.entry - info.entry) <= 8]
    best = max(near or sliced, key=len)
    normalized = tuple(best.normalized())
    return ExtractionArtifacts(
        victim=victim,
        normalized=normalized,
        reference=reference,
        self_similarity=set_similarity(normalized, reference),
        extraction_runs=trace.runs,
        partial=trace.partial,
        confidence=trace.mean_confidence,
    )


def run_figure12(config: Optional[CpuGeneration] = None, *,
                 corpus_size: int = 2000,
                 corpus_seed: int = 2023,
                 gcd_inputs: Optional[dict] = None,
                 top: int = 100) -> FingerprintResult:
    config = config if config is not None else generation("coffeelake")
    gcd_victim = build_gcd_victim(
        "3.0", options=CompileOptions(opt_level=2), nlimbs=1,
        with_yield=False, data_base=ENCLAVE_DATA_BASE)
    if gcd_inputs is None:
        gcd_inputs = {"ta": 2 * 3 * 17 * 23, "tb": 2 * 3 * 29}
    gcd_art = extract_victim_function(gcd_victim, gcd_inputs, config)

    bncmp_victim = build_bn_cmp_victim(
        options=CompileOptions(opt_level=2), nlimbs=4, iters=1,
        with_yield=False, data_base=ENCLAVE_DATA_BASE)
    bncmp_art = extract_victim_function(
        bncmp_victim, {"a": (1 << 200) + 12345, "b": (1 << 200) + 777},
        config)

    corpus = generate_corpus(size=corpus_size, seed=corpus_seed)
    vs_gcd = sorted(
        (set_similarity(fn.measured, gcd_art.reference)
         for fn in corpus),
        reverse=True)[:top]
    vs_bncmp = sorted(
        (set_similarity(fn.measured, bncmp_art.reference)
         for fn in corpus),
        reverse=True)[:top]
    return FingerprintResult(
        gcd=gcd_art,
        bn_cmp=bncmp_art,
        corpus_size=len(corpus),
        top_vs_gcd=vs_gcd,
        top_vs_bncmp=vs_bncmp,
    )


@register_experiment("fingerprint", "Figure 12 — function fingerprinting")
def summarize_figure12(request: RunRequest) -> str:
    extra = {} if request.seed is None else {"corpus_seed": request.seed}
    result = run_figure12(corpus_size=200 if request.fast else 2000,
                          **extra)
    return "\n".join([
        f"corpus: {result.corpus_size} functions",
        f"GCD self-sim {pct(result.gcd.self_similarity)}, "
        f"identified: {result.gcd_identified}",
        f"bn_cmp self-sim {pct(result.bn_cmp.self_similarity)}, "
        f"identified: {result.bncmp_identified}",
    ])
