"""E7/E14: hardware mitigations and the data-oblivious defense.

§4.1: IBRS/IBPB (deployed) do *not* stop NightVision — they only drop
indirect-branch BTB entries.  §8.2: a full BTB flush on context switch
or BTB domain partitioning would stop it (not deployed), and
data-oblivious programming removes the secret-dependent control flow
entirely.

Accuracy is measured exactly as in use case 1; "stopped" means the
attack degrades to guessing (we report raw accuracies; chance level is
~0.5 for balanced secrets, and the attacker additionally *knows* it
learned nothing when neither arm PW ever matches).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional

from ..core.nv_core import NvCore
from ..core.nv_user import NvUser
from ..core.pw import PwRange
from ..cpu.core import Core
from ..defenses.hardware import HARDWARE_MITIGATIONS
from ..defenses.oblivious import build_oblivious_gcd_victim
from ..lang import CompileOptions
from ..memory.address import block_end
from ..system.kernel import Kernel
from ..analysis import ascii_table, pct
from ..victims.library import build_gcd_victim
from ..victims.rsa import generate_keys
from .common import RunRequest, register_experiment
from .exp_cfl import LeakResult, _attack_gcd


def run_hardware_grid(*, runs: int = 15,
                      timing_noise: float = 2.0,
                      seed: int = 31) -> Dict[str, LeakResult]:
    """GCD leak accuracy under each hardware mitigation."""
    grid: Dict[str, LeakResult] = {}
    options = CompileOptions(opt_level=2, align_jumps=16)
    for name, builder in HARDWARE_MITIGATIONS.items():
        config = builder(timing_noise=timing_noise)
        victim = build_gcd_victim("3.0", options=options, nlimbs=2,
                                  with_yield=True)
        grid[name] = _attack_gcd(victim, config, runs, seed,
                                 label=f"hw={name}")
    return grid


@dataclass
class ObliviousResult:
    """NV-U against the data-oblivious GCD."""

    #: distinct per-fragment match vectors across different secrets
    distinct_observations: int
    #: fraction of secret keys whose observation sequences differ
    #: from the first key's (0.0 = the channel carries no information)
    information_rate: float


def run_oblivious(*, keys: int = 6, seed: int = 5,
                  timing_noise: float = 0.0) -> ObliviousResult:
    """Show the oblivious GCD's observations are secret-independent."""
    from ..defenses.hardware import stock

    config = stock(timing_noise=timing_noise)
    victim = build_oblivious_gcd_victim(with_yield=True)
    kernel = Kernel(Core(config))
    nv = NvCore(kernel)
    nv_user = NvUser(nv)
    # Monitor two PWs inside the oblivious kernel's body: with no
    # secret-dependent control flow every run lights them identically.
    info = victim.compiled.info("gcd_oblivious")
    start = info.entry + 64
    session = nv.monitor([
        PwRange(start, min(block_end(start), start + 16)),
    ])
    observations = []
    rng = random.Random(seed)
    for _ in range(keys):
        a = rng.getrandbits(48) | 1
        b = rng.getrandbits(48) | 1
        process = victim.new_process({"ta": a, "tb": b})
        kernel.add_process(process)
        outcome = nv_user.run(process, session, max_fragments=400)
        observations.append(tuple(
            tuple(obs.matched) for obs in outcome.observations))
    distinct = len(set(observations))
    differing = sum(1 for obs in observations[1:]
                    if obs != observations[0])
    return ObliviousResult(
        distinct_observations=distinct,
        information_rate=differing / max(len(observations) - 1, 1),
    )


@register_experiment("mitigations", "§8.2 — hardware mitigations + oblivious")
def summarize_mitigations(request: RunRequest) -> str:
    grid = run_hardware_grid(runs=3 if request.fast else 15,
                             **request.seeded())
    rows = [(name, pct(r.accuracy),
             "LEAKS" if r.accuracy > 0.9 else "holds")
            for name, r in grid.items()]
    oblivious = run_oblivious(keys=3 if request.fast else 8,
                              **request.seeded())
    rows.append(("data-oblivious gcd",
                 f"info rate {pct(oblivious.information_rate)}",
                 "holds" if oblivious.information_rate == 0
                 else "LEAKS"))
    return ascii_table(("mitigation", "accuracy", "verdict"), rows)
