"""Shared harness utilities for the figure/table experiments, plus the
experiment registry the CLI and the campaign runner execute from.

Every ``exp_*`` module registers a printable summary runner with
:func:`register_experiment`; the registry decouples "what experiments
exist" from "who runs them" so subprocess workers can resolve a job by
name without importing :mod:`repro.cli`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .. import telemetry
from ..cpu.config import CpuGeneration
from ..cpu.core import Core
from ..cpu.state import MachineState
from ..errors import CampaignError
from ..faults.plans import FaultPlan
from ..isa.assembler import AssembledProgram, Assembler
from ..memory.memory import VirtualMemory

#: where experiment harnesses park their halt gadget
HALT_GADGET = 0x0060_0000


# ----------------------------------------------------------------------
# experiment registry
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RunRequest:
    """One experiment invocation's knobs, as a value object.

    ``seed is None`` means "use the experiment's own default seeds".
    ``plan`` is an optional :class:`repro.faults.FaultPlan` carried by
    campaign jobs; experiments that model environmental noise honour
    it, the rest record it as provenance only.  ``backend`` selects a
    BTB design family (``intel``/``arm``/``sodor``/``orcs``); None
    keeps each experiment's default (the Intel model).
    """

    fast: bool = False
    seed: Optional[int] = None
    plan: Optional[FaultPlan] = None
    backend: Optional[str] = None

    def seeded(self, **kwargs) -> Dict[str, object]:
        """kwargs plus ``seed=`` when the request carries one."""
        if self.seed is not None:
            kwargs["seed"] = self.seed
        return kwargs

    def config_for(self, name: str):
        """A generation preset carrying the request's seed and BTB
        backend (None -> default config, letting the experiment pick
        its own preset)."""
        if self.seed is None and self.backend is None:
            return None
        from ..cpu.config import backend_generation, generation
        config = generation(name, **self.seeded())
        if self.backend is not None:
            config = backend_generation(self.backend, base=config)
        return config


@dataclass(frozen=True)
class ExperimentSpec:
    """A registered experiment: name, paper artefact, summary runner."""

    name: str
    artefact: str
    runner: Callable[[RunRequest], str]


#: experiment name -> spec, in registration (== module import) order
EXPERIMENTS: Dict[str, ExperimentSpec] = {}


def register_experiment(name: str, artefact: str):
    """Class-level decorator registering ``runner(request) -> str``."""
    def wrap(runner: Callable[[RunRequest], str]):
        EXPERIMENTS[name] = ExperimentSpec(name, artefact, runner)
        return runner
    return wrap


def experiment_names() -> Tuple[str, ...]:
    return tuple(EXPERIMENTS)


def run_experiment(name: str, request: RunRequest) -> str:
    """Execute one registered experiment, returning its printable
    summary."""
    try:
        spec = EXPERIMENTS[name]
    except KeyError:
        known = ", ".join(EXPERIMENTS)
        raise CampaignError(
            f"unknown experiment {name!r}; known: {known}") from None
    sink = telemetry.current()
    if sink is None:
        return spec.runner(request)
    sink.count("exp.runs")
    with sink.span(f"exp.{name}"):
        return spec.runner(request)


@dataclass
class CallHarness:
    """Minimal single-core machine for the §2 reverse-engineering
    experiments: load programs, call code addresses, read the LBR.

    ``call`` pushes the halt gadget as the return address and runs to
    the ``hlt`` — the same structure as the paper's Experiment 1/2
    driver loops.
    """

    config: CpuGeneration
    core: Core = field(init=False)
    memory: VirtualMemory = field(init=False)
    state: MachineState = field(init=False)

    def __post_init__(self) -> None:
        self.core = Core(self.config)
        self.memory = VirtualMemory()
        self.state = MachineState(self.memory)
        self.state.setup_stack(0x7FFF_0000_0000)
        gadget = Assembler(base=HALT_GADGET)
        gadget.label("halt")
        gadget.emit("hlt")
        gadget.assemble().load_into(self.memory)

    def load(self, program: AssembledProgram) -> None:
        program.load_into(self.memory)

    def call(self, address: int) -> None:
        """Run the code at ``address`` until it returns (to the halt
        gadget) and the core halts."""
        self.state.push(HALT_GADGET)
        self.state.rip = address
        self.core.run(self.state)

    def flush_btb(self) -> None:
        """The experiments' ``flushBTB()`` (the paper uses the BTB
        cleanup routine from BranchScope [18])."""
        self.core.btb.flush()
        self.core.lbr.clear()

    def elapsed_after(self, from_pc: int) -> Optional[int]:
        return self.core.lbr.elapsed_after(from_pc)


@dataclass
class Series:
    """One measured curve of a figure."""

    label: str
    xs: List[int] = field(default_factory=list)
    ys: List[float] = field(default_factory=list)

    def add(self, x: int, y: float) -> None:
        self.xs.append(x)
        self.ys.append(y)


@dataclass
class FigureResult:
    """A reproduced figure: named series + headline findings."""

    name: str
    series: List[Series] = field(default_factory=list)
    findings: Dict[str, object] = field(default_factory=dict)

    def series_by_label(self, label: str) -> Series:
        for entry in self.series:
            if entry.label == label:
                return entry
        raise KeyError(label)
