"""CPU model configuration and per-generation presets.

The paper reverse-engineers five Intel generations (§2.3).  The
behaviours that differ across them — how many low-order address bits
the BTB tag check keeps — are captured here, along with the first-order
timing model parameters used for cycle accounting.

Timing parameters are *not* calibrated to any specific silicon; the
reproduction claims only relative effects (a mispredict costs a large,
constant number of cycles more than a correct prediction), which is all
Figures 2 and 4 rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional


@dataclass(frozen=True)
class CpuGeneration:
    """All parameters of the simulated core."""

    name: str = "skylake"

    # ----- BTB organisation (paper §2.1, §2.3 footnote 1) -------------
    #: number of BTB sets (set index = PC bits [5, 5+log2(sets)))
    btb_sets: int = 512
    #: associativity
    btb_ways: int = 8
    #: BTB lookups ignore address bits >= tag_keep_bits.  SkyLake-family
    #: parts ignore bit 33 and above (keep 33), IceLake ignores bit 34
    #: and above (keep 34).
    tag_keep_bits: int = 33
    #: BTB design family (strategy key into
    #: :mod:`repro.cpu.btb_backends`): "intel" (the paper's
    #: range-semantics model, default), "arm", "sodor" or "orcs".
    #: Select a non-Intel design via :func:`backend_generation` so the
    #: geometry fields above stay coherent with the strategy.
    btb_backend: str = "intel"

    # ----- front-end / timing -----------------------------------------
    #: cycles charged per prediction-window fetch
    fetch_cycles: float = 1.0
    #: sustained issue width (instructions per cycle)
    issue_width: int = 4
    #: squash/redirect penalty in cycles (mispredict or BTB false hit)
    squash_penalty: float = 20.0
    #: prediction windows the front end finishes fetching+decoding
    #: past a timer interrupt before the pipeline drains.  Decode-time
    #: BTB deallocations (Takeaway 1) still fire for those bytes even
    #: though the instructions never retire — this is the §6.3
    #: behaviour NV-S single-stepping fundamentally relies on.
    #: 0 models an (unrealistic) perfectly-precise front end.
    drain_windows: int = 1
    #: instructions the back end speculatively *executes* past a timer
    #: interrupt (taken-branch BTB allocations/target verifications
    #: included) — the §6.3 behaviour; speculation stops at the first
    #: mispredicted transfer (the squash + pending interrupt win).
    #: 0 disables (unrealistically precise stepping).
    spec_lookahead: int = 12
    #: whether adjacent ALU+Jcc pairs macro-fuse (retire as one op)
    fusion_enabled: bool = True

    # ----- measurement realism -----------------------------------------
    #: stddev of Gaussian noise added to LBR elapsed-cycle readings
    timing_noise: float = 0.0
    #: RNG seed for noise / randomized replacement decisions
    seed: int = 0

    # ----- mitigations (repro of §4.1 / §8.2) ---------------------------
    #: IBRS/IBPB model: context/privilege switches invalidate only
    #: *indirect* BTB entries (never defeats NightVision)
    ibrs_ibpb: bool = False
    #: flush the whole BTB on every context switch (§8.2 mitigation;
    #: defeats NightVision)
    flush_btb_on_switch: bool = False
    #: tag BTB entries with a security-domain id so domains never
    #: collide (§8.2 partitioning mitigation; defeats NightVision)
    btb_partitioning: bool = False

    @property
    def btb_entries(self) -> int:
        return self.btb_sets * self.btb_ways

    @property
    def collision_distance(self) -> int:
        """Smallest address distance at which two PCs can alias in the
        BTB: 2**tag_keep_bits (8 GiB for SkyLake-family, 16 for ICL)."""
        return 1 << self.tag_keep_bits

    def with_(self, **overrides) -> "CpuGeneration":
        """Return a copy with the given fields replaced."""
        return replace(self, **overrides)


#: Presets for the generations evaluated in the paper.  The paper pads
#: F1/F2 by "4/8 GB"; its footnote pins SkyLake-family truncation at
#: bit 33 and IceLake at bit 34, which is what we encode.
GENERATIONS: Dict[str, CpuGeneration] = {
    "skylake": CpuGeneration(name="skylake", tag_keep_bits=33),
    "kabylake": CpuGeneration(name="kabylake", tag_keep_bits=33),
    "coffeelake": CpuGeneration(name="coffeelake", tag_keep_bits=33),
    "cascadelake": CpuGeneration(name="cascadelake", tag_keep_bits=33),
    "icelake": CpuGeneration(name="icelake", tag_keep_bits=34),
}


def generation(name: str, **overrides) -> CpuGeneration:
    """Look up a preset by name, optionally overriding fields."""
    try:
        preset = GENERATIONS[name.lower()]
    except KeyError:
        known = ", ".join(sorted(GENERATIONS))
        raise ValueError(f"unknown generation {name!r}; known: {known}")
    return preset.with_(**overrides) if overrides else preset


#: Geometry each BTB design family carries (applied on top of a base
#: generation by :func:`backend_generation`).  "intel" is empty — the
#: Intel backend uses whatever the generation preset says (512x8,
#: keep 33/34).  The non-Intel entries pin the geometry the design was
#: reverse-engineered / published with:
#:
#: * ``arm`` — 512 sets x 4 ways, partial tags keeping 32 bits (the
#:   Wan 2024 report's closest-alias distance of 4 GiB);
#: * ``sodor`` — direct-mapped (1 way) with full tags: no aliasing
#:   inside the simulated 47-bit address space;
#: * ``orcs`` — OrCS's 128 sets x 4 ways, modelled with SkyLake-style
#:   truncation (keep 33) so aliased probes remain constructible.
BTB_BACKENDS: Dict[str, Dict[str, int]] = {
    "intel": {},
    "arm": {"btb_sets": 512, "btb_ways": 4, "tag_keep_bits": 32},
    "sodor": {"btb_sets": 1024, "btb_ways": 1, "tag_keep_bits": 47},
    "orcs": {"btb_sets": 128, "btb_ways": 4, "tag_keep_bits": 33},
}


def backend_generation(backend: str,
                       base: Optional[CpuGeneration] = None,
                       **overrides) -> CpuGeneration:
    """A config running ``base`` (default: the default generation) on
    the named BTB design, with the design's geometry applied so
    ``collision_distance`` and friends describe that backend."""
    key = backend.lower()
    try:
        geometry = BTB_BACKENDS[key]
    except KeyError:
        known = ", ".join(sorted(BTB_BACKENDS))
        raise ValueError(
            f"unknown BTB backend {backend!r}; known: {known}") from None
    config = base if base is not None else DEFAULT_GENERATION
    return config.with_(btb_backend=key, **geometry, **overrides)


DEFAULT_GENERATION = GENERATIONS["coffeelake"].with_(name="coffeelake")
