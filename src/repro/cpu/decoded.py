"""Decoded-window execution cache for the simulator hot loops.

The paper's own prediction-window structure (§2.2: fetch bundles are
confined to one 32-byte-aligned block) gives the simulator a natural
decode-cache granularity.  A :class:`DecodedWindow` captures, for one
window entry PC, the full straight-line decode up to the block boundary
or the first control transfer: per-instruction compiled thunks
(:func:`repro.cpu.semantics.compile_straightline`), issue-cost extras,
and the fall-through layout.  Both execution engines use it:

* :meth:`repro.cpu.core.Core.run` executes the cached window when the
  BTB prediction cannot interact with it (no entry, or the predicted
  branch-end byte lies at/after the window's terminator region) —
  bit-identical cycle accounting, BTB, LBR and trace behaviour is
  enforced by the differential suite in ``tests/test_fastpath_diff.py``;
* :func:`repro.cpu.interpret` / :func:`repro.cpu.run_function` execute
  it unconditionally (the oracle has no micro-architectural state).

Cache key and invalidation
--------------------------
Windows are keyed by entry PC and stamped with the memory's
``code_generation`` counter.  The counter bumps when

* a write lands on a page that holds cached decodes
  (``VirtualMemory.write_bytes`` — self-modifying code), or
* a page is mapped or unmapped (``PageTable.epoch`` — page swaps).

``set_perms`` deliberately does *not* bump it: decoded bytes are
content, not permissions, and the controlled-channel attacker flips
execute permission on every single step — thrashing the cache there
would defeat the point.  Permissions are instead enforced live: the
core fast path performs one execute check per window (equivalent to
the warm slow path, because a 32-byte block never crosses a page), and
the oracle skips checks exactly as its icache hit path always has.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple

from .. import telemetry
from ..errors import DecodeError, InvalidInstruction, PageFault
from ..isa.encoding import decode as decode_bytes
from ..isa.instructions import Instruction, Kind, SPECS_BY_OPCODE
from ..memory.address import block_end
from .btb import reconstruct_end_byte
from .costs import EXTRA_ISSUE_COST, MEM_WRITERS
from .fusion import can_fuse
from .semantics import compile_straightline

#: kept as module attributes for backwards compatibility — the tables
#: themselves live in :mod:`repro.cpu.costs` (single source of truth).
_MEM_WRITERS = MEM_WRITERS

_ENABLED = os.environ.get("NV_FAST_PATH", "1").strip().lower() not in (
    "0", "false", "off", "no")


def set_fast_path(enabled: bool) -> bool:
    """Globally enable/disable the fast path; returns the previous
    setting (so tests and benchmarks can restore it)."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(enabled)
    return previous


def fast_path_enabled() -> bool:
    """Is the decoded-window fast path currently enabled?

    Defaults to on; ``NV_FAST_PATH=0`` in the environment or
    :func:`set_fast_path` turn it off (the slow path is the reference
    the differential tests compare against).
    """
    return _ENABLED


def decode_at(memory, pc: int) -> Tuple[Instruction, int]:
    """Decode the instruction at ``pc`` and fill the icache.

    The shared miss path of ``interp._fetch`` and ``Core._decode``:
    execute-permission-checked fetch, opcode validation, decode, icache
    insert.  Raises :class:`InvalidInstruction` for junk bytes (decode
    failures included) and lets :class:`PageFault` propagate.
    """
    telemetry.count("cpu.decode.misses")
    first = memory.read_bytes(pc, 1, access="execute")
    spec = SPECS_BY_OPCODE.get(first[0])
    if spec is None:
        raise InvalidInstruction(f"bad opcode {first[0]:#04x} at {pc:#x}")
    blob = memory.read_bytes(pc, spec.length, access="execute")
    try:
        instruction, length = decode_bytes(blob, 0)
    except DecodeError as error:
        raise InvalidInstruction(str(error)) from error
    memory.icache[pc] = (instruction, length)
    return instruction, length


class DecodedWindow:
    """The cached straight-line decode of one prediction window."""

    __slots__ = ("entry_pc", "generation", "limit", "pcs", "instructions",
                 "thunks", "extras", "count", "resume_pc", "has_store",
                 "fuse_holdback", "terminator", "decode_error")

    def __init__(self, entry_pc: int, generation: int, limit: int,
                 pcs: List[int], instructions: List[Instruction],
                 thunks: list, extras: List[float], resume_pc: int,
                 has_store: bool, terminator: Optional[Instruction],
                 decode_error: bool):
        self.entry_pc = entry_pc
        self.generation = generation
        self.limit = limit
        self.pcs = pcs
        self.instructions = instructions
        self.thunks = thunks
        self.extras = extras
        self.count = len(pcs)
        #: PC of the first instruction the generic loop must handle:
        #: the terminator, the undecodable byte, or the fall-through
        #: into the next block.
        self.resume_pc = resume_pc
        self.has_store = has_store
        self.terminator = terminator
        self.decode_error = decode_error
        #: leave the last item to the generic loop when it could
        #: macro-fuse with what follows: a Jcc terminator, or an
        #: unknown successor (window ran to the boundary / stopped on
        #: a decode error).  Fusion retires the pair as one unit, which
        #: the straight-line loop cannot model.
        self.fuse_holdback = bool(
            instructions and instructions[-1].spec.fusible
            and (terminator is None
                 or terminator.spec.kind is Kind.COND_JUMP))

    def __repr__(self) -> str:                     # pragma: no cover
        return (f"DecodedWindow({self.entry_pc:#x}, n={self.count}, "
                f"resume={self.resume_pc:#x}, gen={self.generation})")


def build_window(memory, entry_pc: int) -> DecodedWindow:
    """Decode the window starting at ``entry_pc`` and cache it.

    Decoding stops at the 32-byte block boundary, at the first
    non-sequential instruction (the window terminator: control
    transfer, ``syscall`` or ``hlt``), or at an undecodable/unfetchable
    byte — the latter is *not* an error here; the generic loop
    reproduces the fault at ``resume_pc``.  Empty error windows are not
    cached so a transient fault (e.g. execute permission revoked during
    a controlled-channel probe) does not stick.
    """
    telemetry.count("cpu.decode.window_builds")
    generation = memory.code_generation
    limit = block_end(entry_pc)
    icache = memory.icache
    pcs: List[int] = []
    instructions: List[Instruction] = []
    thunks: list = []
    extras: List[float] = []
    has_store = False
    terminator: Optional[Instruction] = None
    decode_error = False
    pc = entry_pc
    while pc < limit:
        cached = icache.get(pc)
        try:
            instruction, length = (cached if cached is not None
                                   else decode_at(memory, pc))
        except (PageFault, InvalidInstruction):
            decode_error = True
            break
        if instruction.spec.kind is not Kind.SEQUENTIAL:
            terminator = instruction
            break
        pcs.append(pc)
        instructions.append(instruction)
        thunks.append(compile_straightline(instruction, pc))
        extras.append(EXTRA_ISSUE_COST.get(instruction.spec.mnemonic, 0.0))
        if instruction.spec.mnemonic in _MEM_WRITERS:
            has_store = True
        pc += length
    window = DecodedWindow(entry_pc, generation, limit, pcs, instructions,
                           thunks, extras, pc, has_store, terminator,
                           decode_error)
    cache = getattr(memory, "window_cache", None)
    if cache is not None and not (decode_error and not pcs):
        cache[entry_pc] = window
    return window


def get_window(memory, pc: int) -> Optional[DecodedWindow]:
    """Current-generation window for ``pc``, building it on demand.

    Returns ``None`` when ``memory`` has no window cache (exotic
    memory wrappers like the speculative store-buffer overlay).
    """
    cache = getattr(memory, "window_cache", None)
    if cache is None:
        return None
    window = cache.get(pc)
    if window is not None and window.generation == memory.code_generation:
        return window
    return build_window(memory, pc)


# ----------------------------------------------------------------------
# superblocks: chains of windows linked across predicted edges
# ----------------------------------------------------------------------

#: maximum chained edges in one superblock.  Real front ends bound the
#: fetch-ahead distance similarly; eight edges covers every hot loop in
#: the victim corpus (gcd's loop body spans two, the pointer-chase
#: traversal four).
SUPERBLOCK_MAX_LINKS = 8


class SuperblockLink:
    """One window of a superblock plus its chained exit edge.

    Three edge flavours exist:

    * **predicted-taken** (``entry is not None``): the BTB predicts the
      terminator's *exact* last byte and the chain continues at
      ``entry.target``.  The link pins the BTB entry object; that
      reference stays truthful for as long as the entry's set
      generation is unchanged — the superblock's validity condition —
      so the executor compares ``entry.target`` against the
      architectural outcome without a fresh lookup.
    * **fall-through** (``entry is None``, ``term`` set): no BTB entry
      is in range for this window's block, the terminator is a
      conditional jump, and the chain continues at the not-taken
      successor.  The slow path treats this edge as a pure non-event
      (no LBR record, no BTB touch, prediction window stays open),
      which is why it can chain.
    * **boundary** (``term is None``): straight-line code running to
      the 32-byte block limit with no BTB entry in range; the chain
      continues at the next block (``window.resume_pc``), where the
      slow path closes the exhausted window for free and opens a new
      one — so the successor link always ``opens_pw``.
    * **boundary-fused** (``mid_fetch``): the window's held-back ALU
      macro-fuses with a conditional jump that *leads the next block*.
      The slow path executes the ALU in the generic loop, charges the
      fetch and opens the successor's prediction window mid-retire-unit
      (``Core.run``'s fused-Jcc block), then executes the Jcc as the
      same unit.  The link models that: ``term`` is the next block's
      Jcc, ``entry``/``pred_end`` describe *its* window (the prefix
      ran under the previous, predictionless one), and ``term_limit``
      is the next block's 32-byte limit.

    ``opens_pw`` records whether the slow path would open a fresh
    prediction window at this link's entry (charging fetch cycles and
    counting one BTB lookup): true after every taken edge and whenever
    a fall-through crosses into a new 32-byte block, false when a
    fall-through continues inside the block — range semantics guarantee
    the opening lookup's miss covers every later offset in the block.
    """

    __slots__ = ("window", "entry", "pred_end", "term", "term_pc",
                 "term_len", "term_extra", "target", "fused", "count",
                 "units", "insts", "opens_pw", "mid_fetch", "term_limit")

    def __init__(self, window: DecodedWindow, entry,
                 pred_end: Optional[int], term: Optional[Instruction],
                 term_pc: int, target: int, fused: bool, opens_pw: bool,
                 mid_fetch: bool = False,
                 term_limit: Optional[int] = None):
        self.window = window
        self.entry = entry
        self.pred_end = pred_end
        self.term = term
        self.term_pc = term_pc
        self.target = target
        self.fused = fused
        self.opens_pw = opens_pw
        self.mid_fetch = mid_fetch
        #: block limit of the window the *terminator* executes under —
        #: ``window.limit`` except for mid-fetch links, whose Jcc lives
        #: in the successor block.
        self.term_limit = window.limit if term_limit is None else term_limit
        self.count = window.count
        if term is not None:
            self.term_len = term.length
            self.term_extra = EXTRA_ISSUE_COST.get(term.mnemonic, 0.0)
            #: architectural instructions per link (prefix + terminator)
            self.insts = window.count + 1
            #: retire units per link (a fused pair retires as one)
            self.units = window.count + (0 if fused else 1)
        else:
            # Boundary link: prefix only, nothing to terminate.
            self.term_len = 0
            self.term_extra = 0.0
            self.insts = window.count
            self.units = window.count


class Superblock:
    """A cached chain of decoded windows across predicted edges.

    Keyed by entry PC in ``memory.superblock_cache`` and stamped with
    ``memory.code_generation`` plus a BTB signature.  The signature has
    two tiers: the cheap check compares the owning BTB's global
    ``generation`` counter, and when that went stale the chain
    re-validates against just the per-set generations of the sets its
    blocks index into (one 32-byte fetch block maps to exactly one BTB
    set, so those counters cover every lookup result the chain
    depends on).  Unrelated BTB churn — a shared subroutine's ``ret``
    being retargeted every call, victim warm-up allocations in other
    sets — therefore no longer invalidates hot chains; on success the
    global stamp is refreshed so the next dispatch takes the cheap
    path again.  ``loop`` marks chains whose last edge targets the
    entry PC: the dispatcher re-enters them once per iteration.
    """

    __slots__ = ("entry_pc", "code_generation", "btb", "btb_generation",
                 "set_indices", "set_sig", "links", "loop", "loop_taken",
                 "insts_per_pass", "units_per_pass", "has_store")

    def __init__(self, entry_pc: int, code_generation: int, btb,
                 links: List[SuperblockLink], loop: bool,
                 set_indices: Tuple[int, ...]):
        self.entry_pc = entry_pc
        self.code_generation = code_generation
        self.btb = btb
        self.btb_generation = btb.generation
        self.set_indices = set_indices
        self.set_sig = tuple(btb.set_gens[i] for i in set_indices)
        self.links = links
        self.loop = loop
        #: loop closed by a predicted-taken edge: each pass ends with
        #: the prediction window closed, so the dispatcher may run
        #: several passes back-to-back (a fall-through-closing loop
        #: leaves the window open and must return to the outer loop).
        self.loop_taken = loop and links[-1].entry is not None
        self.insts_per_pass = sum(link.insts for link in links)
        self.units_per_pass = sum(link.units for link in links)
        self.has_store = any(link.window.has_store for link in links)

    def btb_valid(self, btb) -> bool:
        """Is every prediction this chain was built on still current?"""
        if btb is not self.btb:
            return False
        if btb.generation == self.btb_generation:
            return True
        gens = btb.set_gens
        sig = self.set_sig
        for j, set_index in enumerate(self.set_indices):
            if gens[set_index] != sig[j]:
                return False
        # Only untouched sets: the chain survived the churn.  Refresh
        # the global stamp so the next dispatch is one compare again.
        self.btb_generation = btb.generation
        return True

    def __repr__(self) -> str:                     # pragma: no cover
        return (f"Superblock({self.entry_pc:#x}, links={len(self.links)}, "
                f"loop={self.loop})")


def build_superblock(memory, btb, entry_pc: int, fusion_enabled: bool):
    """Chain windows from ``entry_pc`` across predicted edges.

    A window extends the chain iff it ends in a control transfer and
    either

    * the BTB predicts the terminator's *exact* anchor byte — its last
      byte on Intel-family designs, its first byte on
      instruction-indexed backends (``reconstruct_end_byte`` of the
      entry's offset equals that anchor): the prediction cannot
      interact with the prefix (no false-hit walk, no mid-prefix
      settle) and the predicted target gives the next window; or
    * no entry is in range at all and the terminator is a conditional
      jump: the not-taken successor gives the next window (see
      :class:`SuperblockLink` for why this edge is chainable).

    Probing uses :meth:`BTB.peek` so build-time probes never perturb
    the lookup stats the differential suite compares.

    Returns the :class:`Superblock`, or — when not even the first edge
    qualifies — a negative marker tuple ``(code_generation, btb,
    set_index, set_gen)`` the caller caches to suppress rebuild
    attempts: ``set_index`` is the entry block's BTB set when the
    verdict depends on BTB contents, or ``-1`` when it is a pure
    code-shape verdict (straight-line window, syscall/hlt terminator,
    decode error) that only a code-generation change can revisit.
    """
    links: List[SuperblockLink] = []
    pc = entry_pc
    seen = {entry_pc}
    loop = False
    opens = True
    set_indices: List[int] = []
    last_byte_index = btb.backend.last_byte_index

    def negative(btb_dependent: bool):
        if btb_dependent:
            set_index = btb.fields(entry_pc)[1]
            return (memory.code_generation, btb, set_index,
                    btb.set_gens[set_index])
        return (memory.code_generation, None, -1, 0)

    btb_dependent = False
    while len(links) < SUPERBLOCK_MAX_LINKS:
        window = get_window(memory, pc)
        if window is None or window.decode_error:
            break
        term = window.terminator
        if term is not None and not term.spec.is_control:
            break                           # syscall / hlt terminator
        if opens:
            entry = btb.peek(pc)
            set_index = btb.fields(pc)[1]
            if set_index not in set_indices:
                set_indices.append(set_index)
        else:
            # Continuation inside the block: the opening lookup missed.
            # Under range semantics every higher offset misses too; the
            # exact-hit designs never re-look-up mid-window at all (the
            # front end probes once per fetch), so entry stays None for
            # every backend.
            entry = None
        term_pc = window.resume_pc
        if term is None:
            # Straight-line to the block limit (boundary edge).
            if entry is not None:
                # A prediction points into straight-line code: the
                # false-hit machinery will burn it down — not
                # chainable until then.
                btb_dependent = True
                break
            if fusion_enabled and window.fuse_holdback:
                nw = get_window(memory, window.resume_pc)
                if (nw is not None and not nw.count
                        and nw.terminator is not None
                        and nw.terminator.spec.kind is Kind.COND_JUMP
                        and can_fuse(window.instructions[-1],
                                     nw.terminator)):
                    # The held-back ALU fuses with the next block's
                    # leading Jcc: a boundary-fused (mid-fetch) link.
                    # The Jcc runs under the *successor's* prediction
                    # window, so its edge must qualify the same way a
                    # taken or fall-through edge would.
                    jcc = nw.terminator
                    jcc_pc = window.resume_pc
                    entry2 = btb.peek(jcc_pc)
                    jcc_anchor = (jcc_pc + jcc.length - 1
                                  if last_byte_index else jcc_pc)
                    if entry2 is not None and reconstruct_end_byte(
                            jcc_pc, entry2.offset) != jcc_anchor:
                        # Prediction interacts with the Jcc (false-hit
                        # walk / mid-unit settle): not chainable until
                        # that entry dies.
                        btb_dependent = True
                        break
                    si2 = btb.fields(jcc_pc)[1]
                    if si2 not in set_indices:
                        set_indices.append(si2)
                    if entry2 is not None:
                        pe2: Optional[int] = jcc_anchor
                        target = entry2.target
                        next_opens = True
                    else:
                        pe2 = None
                        target = jcc_pc + jcc.length
                        next_opens = target >= nw.limit
                    links.append(SuperblockLink(
                        window, entry2, pe2, jcc, jcc_pc, target, True,
                        opens, mid_fetch=True, term_limit=nw.limit))
                    pc = target
                    if pc == entry_pc:
                        loop = True
                        break
                    if pc in seen:
                        break
                    seen.add(pc)
                    opens = next_opens
                    continue
            pred_end: Optional[int] = None
            target = window.resume_pc
            next_opens = True
            fused = False
        elif entry is not None:
            term_anchor = (term_pc + term.length - 1
                           if last_byte_index else term_pc)
            if reconstruct_end_byte(pc, entry.offset) != term_anchor:
                btb_dependent = True
                break
            pred_end = term_anchor
            target = entry.target
            next_opens = True
            fused = bool(fusion_enabled and window.count
                         and can_fuse(window.instructions[-1], term))
        else:
            if term.spec.kind is not Kind.COND_JUMP:
                # An unpredicted jmp/call/ret mispredicts every pass
                # until an entry exists; chainable once it does.
                btb_dependent = True
                break
            pred_end = None
            target = term_pc + term.length
            next_opens = target >= window.limit
            fused = bool(fusion_enabled and window.count
                         and can_fuse(window.instructions[-1], term))
        links.append(SuperblockLink(window, entry, pred_end, term,
                                    term_pc, target, fused, opens))
        pc = target
        if pc == entry_pc:
            loop = True
            break
        if pc in seen:
            break
        seen.add(pc)
        opens = next_opens
    if not links:
        # First edge failed.  "Shape" failures (decode error,
        # syscall/hlt terminator) cannot be cured by BTB changes; the
        # rest hinge on what the entry block's set predicts.
        return negative(btb_dependent)
    return Superblock(entry_pc, memory.code_generation, btb, links, loop,
                      tuple(set_indices))
