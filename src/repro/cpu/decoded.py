"""Decoded-window execution cache for the simulator hot loops.

The paper's own prediction-window structure (§2.2: fetch bundles are
confined to one 32-byte-aligned block) gives the simulator a natural
decode-cache granularity.  A :class:`DecodedWindow` captures, for one
window entry PC, the full straight-line decode up to the block boundary
or the first control transfer: per-instruction compiled thunks
(:func:`repro.cpu.semantics.compile_straightline`), issue-cost extras,
and the fall-through layout.  Both execution engines use it:

* :meth:`repro.cpu.core.Core.run` executes the cached window when the
  BTB prediction cannot interact with it (no entry, or the predicted
  branch-end byte lies at/after the window's terminator region) —
  bit-identical cycle accounting, BTB, LBR and trace behaviour is
  enforced by the differential suite in ``tests/test_fastpath_diff.py``;
* :func:`repro.cpu.interpret` / :func:`repro.cpu.run_function` execute
  it unconditionally (the oracle has no micro-architectural state).

Cache key and invalidation
--------------------------
Windows are keyed by entry PC and stamped with the memory's
``code_generation`` counter.  The counter bumps when

* a write lands on a page that holds cached decodes
  (``VirtualMemory.write_bytes`` — self-modifying code), or
* a page is mapped or unmapped (``PageTable.epoch`` — page swaps).

``set_perms`` deliberately does *not* bump it: decoded bytes are
content, not permissions, and the controlled-channel attacker flips
execute permission on every single step — thrashing the cache there
would defeat the point.  Permissions are instead enforced live: the
core fast path performs one execute check per window (equivalent to
the warm slow path, because a 32-byte block never crosses a page), and
the oracle skips checks exactly as its icache hit path always has.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple

from .. import telemetry
from ..errors import DecodeError, InvalidInstruction, PageFault
from ..isa.encoding import decode as decode_bytes
from ..isa.instructions import Instruction, Kind, SPECS_BY_OPCODE
from ..memory.address import block_end
from .semantics import compile_straightline

#: extra issue cost for slow instructions, in cycles — shared by
#: :class:`repro.cpu.core.Core` and the window builder so cached
#: per-item costs always match what the generic loop would charge.
EXTRA_ISSUE_COST: Dict[str, float] = {
    "mul": 2.0, "imul": 2.0, "div": 20.0,
    "load": 1.0, "loadw": 1.0, "store": 1.0, "storew": 1.0,
    "syscall": 50.0, "lfence": 10.0,
}

#: mnemonics that can modify memory — windows containing one re-check
#: the code generation after every item so self-modifying code bails
#: out mid-window instead of running stale decodes.
_MEM_WRITERS = frozenset({"store", "storew", "push"})

_ENABLED = os.environ.get("NV_FAST_PATH", "1").strip().lower() not in (
    "0", "false", "off", "no")


def set_fast_path(enabled: bool) -> bool:
    """Globally enable/disable the fast path; returns the previous
    setting (so tests and benchmarks can restore it)."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = bool(enabled)
    return previous


def fast_path_enabled() -> bool:
    """Is the decoded-window fast path currently enabled?

    Defaults to on; ``NV_FAST_PATH=0`` in the environment or
    :func:`set_fast_path` turn it off (the slow path is the reference
    the differential tests compare against).
    """
    return _ENABLED


def decode_at(memory, pc: int) -> Tuple[Instruction, int]:
    """Decode the instruction at ``pc`` and fill the icache.

    The shared miss path of ``interp._fetch`` and ``Core._decode``:
    execute-permission-checked fetch, opcode validation, decode, icache
    insert.  Raises :class:`InvalidInstruction` for junk bytes (decode
    failures included) and lets :class:`PageFault` propagate.
    """
    telemetry.count("cpu.decode.misses")
    first = memory.read_bytes(pc, 1, access="execute")
    spec = SPECS_BY_OPCODE.get(first[0])
    if spec is None:
        raise InvalidInstruction(f"bad opcode {first[0]:#04x} at {pc:#x}")
    blob = memory.read_bytes(pc, spec.length, access="execute")
    try:
        instruction, length = decode_bytes(blob, 0)
    except DecodeError as error:
        raise InvalidInstruction(str(error)) from error
    memory.icache[pc] = (instruction, length)
    return instruction, length


class DecodedWindow:
    """The cached straight-line decode of one prediction window."""

    __slots__ = ("entry_pc", "generation", "limit", "pcs", "instructions",
                 "thunks", "extras", "count", "resume_pc", "has_store",
                 "fuse_holdback", "terminator", "decode_error")

    def __init__(self, entry_pc: int, generation: int, limit: int,
                 pcs: List[int], instructions: List[Instruction],
                 thunks: list, extras: List[float], resume_pc: int,
                 has_store: bool, terminator: Optional[Instruction],
                 decode_error: bool):
        self.entry_pc = entry_pc
        self.generation = generation
        self.limit = limit
        self.pcs = pcs
        self.instructions = instructions
        self.thunks = thunks
        self.extras = extras
        self.count = len(pcs)
        #: PC of the first instruction the generic loop must handle:
        #: the terminator, the undecodable byte, or the fall-through
        #: into the next block.
        self.resume_pc = resume_pc
        self.has_store = has_store
        self.terminator = terminator
        self.decode_error = decode_error
        #: leave the last item to the generic loop when it could
        #: macro-fuse with what follows: a Jcc terminator, or an
        #: unknown successor (window ran to the boundary / stopped on
        #: a decode error).  Fusion retires the pair as one unit, which
        #: the straight-line loop cannot model.
        self.fuse_holdback = bool(
            instructions and instructions[-1].spec.fusible
            and (terminator is None
                 or terminator.spec.kind is Kind.COND_JUMP))

    def __repr__(self) -> str:                     # pragma: no cover
        return (f"DecodedWindow({self.entry_pc:#x}, n={self.count}, "
                f"resume={self.resume_pc:#x}, gen={self.generation})")


def build_window(memory, entry_pc: int) -> DecodedWindow:
    """Decode the window starting at ``entry_pc`` and cache it.

    Decoding stops at the 32-byte block boundary, at the first
    non-sequential instruction (the window terminator: control
    transfer, ``syscall`` or ``hlt``), or at an undecodable/unfetchable
    byte — the latter is *not* an error here; the generic loop
    reproduces the fault at ``resume_pc``.  Empty error windows are not
    cached so a transient fault (e.g. execute permission revoked during
    a controlled-channel probe) does not stick.
    """
    telemetry.count("cpu.decode.window_builds")
    generation = memory.code_generation
    limit = block_end(entry_pc)
    icache = memory.icache
    pcs: List[int] = []
    instructions: List[Instruction] = []
    thunks: list = []
    extras: List[float] = []
    has_store = False
    terminator: Optional[Instruction] = None
    decode_error = False
    pc = entry_pc
    while pc < limit:
        cached = icache.get(pc)
        try:
            instruction, length = (cached if cached is not None
                                   else decode_at(memory, pc))
        except (PageFault, InvalidInstruction):
            decode_error = True
            break
        if instruction.spec.kind is not Kind.SEQUENTIAL:
            terminator = instruction
            break
        pcs.append(pc)
        instructions.append(instruction)
        thunks.append(compile_straightline(instruction, pc))
        extras.append(EXTRA_ISSUE_COST.get(instruction.spec.mnemonic, 0.0))
        if instruction.spec.mnemonic in _MEM_WRITERS:
            has_store = True
        pc += length
    window = DecodedWindow(entry_pc, generation, limit, pcs, instructions,
                           thunks, extras, pc, has_store, terminator,
                           decode_error)
    cache = getattr(memory, "window_cache", None)
    if cache is not None and not (decode_error and not pcs):
        cache[entry_pc] = window
    return window


def get_window(memory, pc: int) -> Optional[DecodedWindow]:
    """Current-generation window for ``pc``, building it on demand.

    Returns ``None`` when ``memory`` has no window cache (exotic
    memory wrappers like the speculative store-buffer overlay).
    """
    cache = getattr(memory, "window_cache", None)
    if cache is None:
        return None
    window = cache.get(pc)
    if window is not None and window.generation == memory.code_generation:
        return window
    return build_window(memory, pc)
