"""Last Branch Record model.

The paper's measurement channel (§2.3): a ring buffer logging, for each
*retired taken* control transfer, its source PC, target PC, and the
elapsed cycles since the previous record retired.  The attacker reads
its own LBR after the probe step; a mispredicted probe jump shows up as
a large elapsed-cycle reading on the *following* record.

When the core runs in enclave mode the LBR is disabled (SGX behaviour,
§6.2) — enclave branches are never logged, but the attacker's own
branches outside the enclave still are.

Optional Gaussian timing noise models measurement jitter so that probe
classification is a genuine threshold decision rather than an oracle.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional


@dataclass(frozen=True)
class LbrRecord:
    """One retired taken control transfer."""

    from_pc: int
    to_pc: int
    #: cycles between the previous record's retire and this one's,
    #: with measurement noise applied
    elapsed_cycles: int
    #: whether the branch was predicted correctly (valid for
    #: conditional branches, as on real LBR; we expose it for all)
    mispredicted: bool


class LBR:
    """Fixed-depth ring buffer of :class:`LbrRecord`."""

    DEPTH = 32

    def __init__(self, depth: int = DEPTH, timing_noise: float = 0.0,
                 seed: int = 0, rng: Optional[random.Random] = None):
        self.depth = depth
        self.timing_noise = timing_noise
        #: measurement-noise RNG.  Callers that need coordinated
        #: reproducibility (the --seed plumbing, fault sweeps) inject
        #: their own ``random.Random``; the seeded default keeps the
        #: no-injection path deterministic too — there is no unseeded
        #: RNG anywhere in the measurement channel.
        self._rng = rng if rng is not None else random.Random(seed)
        self._records: Deque[LbrRecord] = deque(maxlen=depth)
        self._last_retire_cycles: Optional[float] = None
        self.enabled = True
        #: optional :class:`repro.faults.FaultInjector` (entry drops,
        #: extra timestamp jitter); None on a clean substrate
        self.fault_injector = None

    def record(self, from_pc: int, to_pc: int, cycles_now: float,
               mispredicted: bool) -> None:
        """Log one retired taken control transfer at time ``cycles_now``."""
        if not self.enabled:
            # Still advance the timestamp: elapsed cycles on the next
            # enabled record must include time spent while disabled.
            self._last_retire_cycles = cycles_now
            return
        if self._last_retire_cycles is None:
            elapsed = 0.0
        else:
            elapsed = cycles_now - self._last_retire_cycles
        if self.timing_noise > 0.0:
            elapsed += self._rng.gauss(0.0, self.timing_noise)
        if self.fault_injector is not None:
            dropped, jitter = self.fault_injector.lbr_fault()
            if dropped:
                # The branch retired but its record never made it into
                # the buffer; the timestamp still advances.
                self._last_retire_cycles = cycles_now
                return
            elapsed += jitter
        self._records.append(LbrRecord(
            from_pc=from_pc,
            to_pc=to_pc,
            elapsed_cycles=max(0, round(elapsed)),
            mispredicted=mispredicted,
        ))
        self._last_retire_cycles = cycles_now

    # ------------------------------------------------------------------
    # reading (what the attacker does)
    # ------------------------------------------------------------------
    def records(self) -> List[LbrRecord]:
        """All records, oldest first."""
        return list(self._records)

    def last(self) -> Optional[LbrRecord]:
        return self._records[-1] if self._records else None

    def find_from(self, from_pc: int) -> Optional[LbrRecord]:
        """Most recent record whose source is ``from_pc``."""
        for record in reversed(self._records):
            if record.from_pc == from_pc:
                return record
        return None

    def elapsed_after(self, from_pc: int) -> Optional[int]:
        """Elapsed cycles of the record *following* the most recent
        record sourced at ``from_pc`` — the paper's Figure 2 metric
        (time between the jump's retire and the next transfer, e.g. the
        subsequent ``ret``)."""
        records = self._records
        for index in range(len(records) - 1, -1, -1):
            if records[index].from_pc == from_pc:
                if index + 1 < len(records):
                    return records[index + 1].elapsed_cycles
                return None
        return None

    def clear(self) -> None:
        self._records.clear()
        self._last_retire_cycles = None

    def __len__(self) -> int:
        return len(self._records)
