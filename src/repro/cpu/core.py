"""Cycle-accounted pipelined front-end model.

This is the substrate whose behaviour the whole reproduction rests on.
It executes instructions architecturally (via
:mod:`repro.cpu.semantics`) while modelling the *front end* the way the
paper describes modern Intel cores:

* **Prediction windows** — instructions are fetched in bundles confined
  to one 32-byte-aligned block; each bundle either ends with a taken
  control transfer or runs to the block boundary (§2.2).
* **BTB range lookups** — each new PW performs one BTB lookup with
  range semantics (Takeaway 2); a hit predicts where the PW's
  terminating branch *ends* (entries are indexed by the branch's last
  byte, matching the measured ``F2 < F1+2`` / ``F1 < F2+2`` boundaries
  of Figures 2 and 4) and where it goes.
* **False hits** — when decode discovers the predicted "branch" is a
  non-control-transfer instruction (or not aligned with any
  instruction's last byte), the pipeline squashes and the BTB entry is
  **deallocated** (Takeaway 1), even though the triggering instruction
  itself executes and retires normally.
* **Cycle accounting** — a first-order timing model: per-PW fetch cost,
  per-instruction issue cost, and a constant squash penalty for every
  misprediction/false hit.  LBR records retire-to-retire elapsed
  cycles, which is exactly what the paper measures.
* **Macro-fusion** — fusible ALU + Jcc pairs retire as one unit, so a
  single-step interrupt cannot split them (§7.3).
* **Speculative look-ahead** — optionally, instructions past a retire
  stop keep updating the BTB before the pipeline drains (§6.3 "Impact
  of Speculative Execution").

The BTB, LBR and cycle counter are *core* state, shared by every
process/enclave context-switched onto this core.  That sharing is the
side channel.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .. import telemetry
from ..errors import (
    InvalidInstruction,
    PageFault,
    SimulationTimeout,
)
from ..isa.instructions import Instruction, Kind
from ..memory.address import block_end
from .btb import BTB, BTBEntry
from .config import CpuGeneration, DEFAULT_GENERATION
from .costs import EXTRA_ISSUE_COST
from .decoded import (Superblock, build_superblock, build_window,
                      decode_at, fast_path_enabled)
from .fusion import can_fuse
from .interp import (_DEADLINE_STRIDE, _check_deadline_now,
                     _effective_deadline)
from .lbr import LBR
from .semantics import Outcome, execute
from .state import MachineState


class StopReason(enum.Enum):
    """Why :meth:`Core.run` returned."""

    HALT = "halt"
    SYSCALL = "syscall"
    RETIRE_LIMIT = "retire_limit"     # timer interrupt / single step
    PAGE_FAULT = "page_fault"


@dataclass
class RunResult:
    """Outcome of one :meth:`Core.run` invocation."""

    reason: StopReason
    retired: int = 0                   # retire units (fused pair = 1)
    instructions: int = 0              # architectural instructions
    cycles: float = 0.0                # cycles consumed by this run
    fault: Optional[PageFault] = None
    #: retired instruction PCs, in order (only if collect_trace)
    trace: Optional[List[int]] = None
    #: leading PC of each retire unit (only if collect_trace)
    unit_starts: Optional[List[int]] = None


@dataclass
class _PredictionWindow:
    """Prediction context for the bundle currently being fetched."""

    entry: Optional[BTBEntry]
    #: address of the predicted branch's last byte, or None on BTB miss
    pred_end: Optional[int]
    limit: int


class _SpecMemory:
    """Store-buffer overlay used during speculative look-ahead.

    Reads see speculative stores; writes never reach real memory.
    Exposes the subset of the :class:`VirtualMemory` interface the
    semantics layer touches.
    """

    def __init__(self, memory):
        self._memory = memory
        self._stores: Dict[int, int] = {}
        self.page_table = memory.page_table
        self.icache = memory.icache
        self.access_filter = memory.access_filter
        self.context = memory.context

    def read_u64(self, address: int, **kwargs) -> int:
        if address in self._stores:
            return self._stores[address]
        return self._memory.read_u64(address, **kwargs)

    def write_u64(self, address: int, value: int, **kwargs) -> None:
        self._stores[address] = value & (1 << 64) - 1

    def read_bytes(self, address: int, size: int, **kwargs) -> bytes:
        return self._memory.read_bytes(address, size, **kwargs)

    def write_bytes(self, address: int, data: bytes, **kwargs) -> None:
        # Byte-granular speculative stores are rare; model as dropped.
        return None


class Core:
    """One simulated hardware thread's shared micro-architecture."""

    #: hard runaway guard (architectural instructions per run call)
    DEFAULT_INSTRUCTION_GUARD = 20_000_000

    def __init__(self, config: Optional[CpuGeneration] = None, *,
                 lbr_rng=None):
        self.config = config if config is not None else DEFAULT_GENERATION
        self.btb = BTB(self.config)
        #: does the BTB design anchor a branch at its last byte (Intel)
        #: or its first?  Cached: decides both the byte passed to
        #: ``allocate`` and what an aligned prediction looks like.
        self._last_byte_index = self.btb.backend.last_byte_index
        self.lbr = LBR(timing_noise=self.config.timing_noise,
                       seed=self.config.seed, rng=lbr_rng)
        self.cycles: float = 0.0
        self.total_retired: int = 0
        #: extra issue cost for slow instructions, in cycles — shared
        #: with the decoded-window builder so cached per-item costs
        #: match the generic loop exactly.
        self._extra_cost = dict(EXTRA_ISSUE_COST)
        self._issue_cost = 1.0 / self.config.issue_width
        self._enclave_mode = False
        #: Telemetry sink captured at construction (None → disabled).
        #: Rare events (false hits, squashes) emit directly; per-run
        #: totals fold in once at each :meth:`run` return.
        self._tel: Optional[telemetry.TelemetrySink] = telemetry.current()

    def attach_telemetry(
            self, sink: Optional[telemetry.TelemetrySink]) -> None:
        """(Re)bind this core — and its BTB — to ``sink``.  Needed when
        the core outlives the session it was built in (or was built
        before one opened), e.g. the differential validator."""
        self._tel = sink
        self.btb.bind_telemetry(sink)

    # ------------------------------------------------------------------
    # mode / context management (called by the system layer)
    # ------------------------------------------------------------------
    def context_switch(self, domain: Optional[int] = None) -> None:
        """Apply the configured mitigation behaviour on a switch."""
        if self.config.flush_btb_on_switch:
            self.btb.flush()
        elif self.config.ibrs_ibpb:
            self.btb.flush_indirect()
        if domain is not None:
            self.btb.current_domain = domain

    def set_enclave_mode(self, enabled: bool) -> None:
        """Enclave entry disables LBR recording (SGX behaviour)."""
        self._enclave_mode = enabled
        self.lbr.enabled = not enabled

    @property
    def enclave_mode(self) -> bool:
        return self._enclave_mode

    # ------------------------------------------------------------------
    # decode
    # ------------------------------------------------------------------
    def _decode(self, state: MachineState,
                pc: int) -> Tuple[Instruction, int]:
        memory = state.memory
        cached = memory.icache.get(pc)
        if cached is not None:
            # Permission check still applies on every fetch (controlled-
            # channel attacks depend on seeing every executed page).
            # The oracle's ``interp._fetch`` deliberately skips this on
            # hits — see its docstring.
            if memory.access_filter is not None:
                memory.access_filter(pc, 1, "execute", memory.context)
            memory.page_table.check(pc, "execute")
            return cached  # type: ignore[return-value]
        return decode_at(memory, pc)

    # ------------------------------------------------------------------
    # main run loop
    # ------------------------------------------------------------------
    def run(self, state: MachineState, *,
            max_retired: Optional[int] = None,
            max_instructions: Optional[int] = None,
            collect_trace: bool = False,
            speculate_on_stop: Optional[bool] = None) -> RunResult:
        """Execute from ``state.rip`` until a stop condition.

        ``max_retired`` counts *retire units* (a macro-fused pair is
        one unit) — this is the timer-interrupt / single-step knob.
        On return, ``state.rip`` points at the next unexecuted
        instruction (or at the faulting one for PAGE_FAULT).
        """
        guard = max_instructions or self.DEFAULT_INSTRUCTION_GUARD
        start_cycles = self.cycles
        retired = 0
        instructions = 0
        trace: Optional[List[int]] = [] if collect_trace else None
        unit_starts: Optional[List[int]] = [] if collect_trace else None
        pw: Optional[_PredictionWindow] = None
        # Fast-path telemetry is kept in plain locals (two integer adds
        # per *window*, not per instruction) and folded into the sink
        # once per run() — the disabled-mode hot loop stays untouched.
        fp_windows = 0
        fp_instructions = 0
        fp_bailouts = 0
        sb_builds = 0
        sb_hits = 0
        sb_bailouts = 0
        sb_invalidations = 0

        def result(reason: StopReason,
                   fault: Optional[PageFault] = None) -> RunResult:
            if reason is StopReason.RETIRE_LIMIT:
                # The front end is ahead of retirement: it finishes
                # decoding the in-flight prediction window(s), firing
                # decode-time BTB deallocations for instructions that
                # will never retire (§6.3).
                self._drain_fetch_ahead(state, pw)
                do_spec = (self.config.spec_lookahead > 0
                           if speculate_on_stop is None
                           else speculate_on_stop)
                if do_spec:
                    self._speculative_lookahead(state)
            elif reason in (StopReason.HALT, StopReason.SYSCALL):
                # Fetch ran ahead of the halting/trapping instruction
                # too: the rest of its prediction window was decoded,
                # so decode-time BTB effects still fire.
                self._drain_fetch_ahead(state, pw)
            tel = self._tel
            if tel is not None:
                tel.count("cpu.core.runs")
                if instructions:
                    tel.count("cpu.core.instructions", instructions)
                if retired:
                    tel.count("cpu.core.retired", retired)
                if fp_windows:
                    tel.count("cpu.core.fastpath.windows", fp_windows)
                    tel.count("cpu.core.fastpath.instructions",
                              fp_instructions)
                if fp_bailouts:
                    tel.count("cpu.core.fastpath.bailouts", fp_bailouts)
                if sb_builds:
                    tel.count("cpu.superblock.builds", sb_builds)
                if sb_hits:
                    tel.count("cpu.superblock.hits", sb_hits)
                if sb_bailouts:
                    tel.count("cpu.superblock.bailouts", sb_bailouts)
                if sb_invalidations:
                    tel.count("cpu.superblock.invalidations",
                              sb_invalidations)
            return RunResult(
                reason=reason, retired=retired, instructions=instructions,
                cycles=self.cycles - start_cycles, fault=fault,
                trace=trace, unit_starts=unit_starts,
            )

        deadline = _effective_deadline(None)
        memory = state.memory
        window_cache = getattr(memory, "window_cache", None)
        superblock_cache = getattr(memory, "superblock_cache", None)
        fast = fast_path_enabled() and window_cache is not None
        issue_cost = self._issue_cost
        fusion_enabled = self.config.fusion_enabled
        next_deadline_check = _DEADLINE_STRIDE
        while True:
            if instructions >= guard:
                raise SimulationTimeout(
                    f"{instructions} instructions without stopping",
                    budget=guard, executed=instructions)
            if instructions >= next_deadline_check:
                next_deadline_check = instructions + _DEADLINE_STRIDE
                _check_deadline_now(instructions, deadline)
            pc = state.rip
            if pw is None:
                # ----- superblock dispatch ----------------------------
                # At a fresh bundle boundary, a cached chain of windows
                # linked across predicted-taken edges can run whole hot
                # loops without re-opening prediction windows.  Validity
                # is two integer compares (code generation + BTB
                # generation) plus a BTB identity check; the executor
                # commits cycles/retires/trace/LBR bit-identically to
                # the slow path and bails mid-chain on misprediction or
                # self-modification.  One pass per dispatch: loop
                # superblocks re-enter through this check each
                # iteration, which keeps the guard and deadline strides
                # of the outer loop authoritative.
                if (fast and superblock_cache is not None
                        and memory.access_filter is None):
                    sb = superblock_cache.get(pc)
                    if sb is not None:
                        if isinstance(sb, Superblock):
                            if (sb.code_generation
                                    != memory.code_generation
                                    or not sb.btb_valid(self.btb)):
                                sb_invalidations += 1
                                sb = None       # stale: rebuild below
                        elif (sb[0] != memory.code_generation
                                or (sb[1] is not None
                                    and (sb[1] is not self.btb
                                         or self.btb.set_gens[sb[2]]
                                         != sb[3]))):
                            sb = None           # stale negative: retry
                        else:
                            sb = False          # known-unchainable pc
                    if sb is None:
                        sb = build_superblock(memory, self.btb, pc,
                                              fusion_enabled)
                        superblock_cache[pc] = sb
                        if isinstance(sb, Superblock):
                            sb_builds += 1
                        else:
                            sb = False          # negative marker cached
                    if sb is not False and (
                            instructions + sb.insts_per_pass <= guard
                            and (max_retired is None
                                 or retired + sb.units_per_pass
                                 <= max_retired)):
                        # Budget gate is for the *whole* pass: a pass
                        # that would clip mid-chain falls back to the
                        # window path, which clips bit-identically.
                        sb_hits += 1
                        passes = 1
                        if sb.loop_taken:
                            # Taken-edge loop: amortize the dispatch
                            # over as many passes as the instruction /
                            # retire budgets and the deadline-check
                            # stride allow.
                            room = ((guard - instructions)
                                    // sb.insts_per_pass)
                            if max_retired is not None:
                                r = ((max_retired - retired)
                                     // sb.units_per_pass)
                                if r < room:
                                    room = r
                            d = ((next_deadline_check - instructions)
                                 // sb.insts_per_pass) + 1
                            if d < room:
                                room = d
                            if room > 1:
                                passes = room
                        (sb_insts, sb_units, fault, error,
                         live_pw, bailed) = self._run_superblock(
                            sb, state, memory, trace, unit_starts,
                            passes)
                        instructions += sb_insts
                        retired += sb_units
                        if bailed:
                            sb_bailouts += 1
                        # ``live_pw`` is whatever prediction window the
                        # slow path would have open right now: one is
                        # handed back both on mid-chain bails and when
                        # a pass *ends* on a fall-through edge (the
                        # not-taken conditional leaves the window open,
                        # so re-opening one here would double-charge
                        # fetch and lookups).
                        pw = live_pw
                        if fault is not None:
                            return result(StopReason.PAGE_FAULT, fault)
                        if error is not None:
                            raise error
                        if (max_retired is not None
                                and retired >= max_retired):
                            return result(StopReason.RETIRE_LIMIT)
                        continue
                self.cycles += self.config.fetch_cycles
                pw = self._open_window(pc)

            # A predicted branch-end byte we have walked past did not
            # align with any instruction: false hit, deallocate.
            while pw.pred_end is not None and pw.pred_end < pc:
                self._false_hit(pw, pc)

            if pc >= pw.limit:
                # Bundle ran to the 32-byte boundary: next PW.
                pw = None
                continue

            # ----- decoded-window fast path ----------------------------
            # Execute the window's cached straight-line prefix in one go
            # when the prediction cannot interact with it: a BTB miss,
            # or a predicted branch-end byte at/after the terminator
            # region (``resume_pc``).  Predictions inside the prefix,
            # access filters, control transfers and faults all use the
            # generic loop below — the differential suite proves the two
            # paths bit-identical on state, traces, cycles, BTB and LBR.
            if fast and memory.access_filter is None:
                window = window_cache.get(pc)
                if (window is None
                        or window.generation != memory.code_generation):
                    window = build_window(memory, pc)
                k = window.count
                if k and (pw.pred_end is None
                          or pw.pred_end >= window.resume_pc):
                    if fusion_enabled and window.fuse_holdback:
                        k -= 1
                    if instructions + k > guard:
                        k = guard - instructions
                    if max_retired is not None and retired + k > max_retired:
                        k = max_retired - retired
                    if k > 0:
                        try:
                            # One execute check covers the whole prefix:
                            # a 32-byte block never crosses a page, so
                            # this equals the warm slow path's per-fetch
                            # first-byte check.
                            memory.page_table.check(pc, "execute")
                        except PageFault as fault:
                            return result(StopReason.PAGE_FAULT, fault)
                        pcs = window.pcs
                        thunks = window.thunks
                        extras = window.extras
                        cycles_now = self.cycles
                        fault = None
                        error = None
                        i = 0
                        try:
                            if window.has_store:
                                generation = window.generation
                                while i < k:
                                    thunks[i](state)
                                    cycles_now += issue_cost + extras[i]
                                    i += 1
                                    if (memory.code_generation
                                            != generation):
                                        break   # self-modifying code
                            else:
                                while i < k:
                                    thunks[i](state)
                                    cycles_now += issue_cost + extras[i]
                                    i += 1
                        except PageFault as page_fault:
                            fault = page_fault
                        except BaseException as exc:
                            error = exc
                        self.cycles = cycles_now
                        instructions += i
                        retired += i
                        self.total_retired += i
                        fp_windows += 1
                        fp_instructions += i
                        if (window.has_store and i < k
                                and fault is None and error is None):
                            fp_bailouts += 1  # self-modified mid-window
                        if trace is not None:
                            trace.extend(pcs[:i])
                            unit_starts.extend(pcs[:i])
                        if fault is not None:
                            # The faulting instruction is not counted,
                            # charged or traced; RIP points at it.
                            state.rip = pcs[i]
                            return result(StopReason.PAGE_FAULT, fault)
                        if error is not None:
                            state.rip = pcs[i]
                            raise error
                        state.rip = (pcs[i] if i < window.count
                                     else window.resume_pc)
                        if max_retired is not None and retired >= max_retired:
                            return result(StopReason.RETIRE_LIMIT)
                        continue

            try:
                instruction, length = self._decode(state, pc)
            except PageFault as fault:
                return result(StopReason.PAGE_FAULT, fault)

            predicted_here = self._settle_prediction(pw, pc, length,
                                                     instruction)

            # ----- macro-fusion lookahead ------------------------------
            fused_next: Optional[Tuple[Instruction, int]] = None
            if (self.config.fusion_enabled and instruction.spec.fusible
                    and not predicted_here):
                try:
                    candidate = self._decode(state, pc + length)
                    if can_fuse(instruction, candidate[0]):
                        fused_next = candidate
                except (PageFault, InvalidInstruction):
                    fused_next = None

            # ----- architectural execution -----------------------------
            try:
                outcome = execute(state, instruction, pc)
            except PageFault as fault:
                return result(StopReason.PAGE_FAULT, fault)
            instructions += 1
            self.cycles += self._issue_cost + self._extra_cost.get(
                instruction.mnemonic, 0.0)
            if trace is not None:
                trace.append(pc)
            if unit_starts is not None:
                unit_starts.append(pc)
            state.rip = outcome.next_pc

            pw_ended = False
            if instruction.is_control:
                pw_ended = self._resolve_control(
                    pw, pc, length, instruction, outcome, predicted_here)
            if outcome.halt:
                retired += 1
                return result(StopReason.HALT)
            if outcome.syscall:
                retired += 1
                return result(StopReason.SYSCALL)

            # ----- execute the fused Jcc as part of this retire unit ---
            if fused_next is not None and state.rip == pc + length:
                jcc, jcc_length = fused_next
                jcc_pc = state.rip
                while pw.pred_end is not None and pw.pred_end < jcc_pc:
                    self._false_hit(pw, jcc_pc)
                if jcc_pc >= pw.limit:
                    # The jcc begins a new bundle; fusion still holds
                    # micro-architecturally (one retire unit).
                    self.cycles += self.config.fetch_cycles
                    pw = self._open_window(jcc_pc)
                jcc_predicted = self._settle_prediction(
                    pw, jcc_pc, jcc_length, jcc)
                try:
                    jcc_outcome = execute(state, jcc, jcc_pc)
                except PageFault as fault:
                    retired += 1
                    return result(StopReason.PAGE_FAULT, fault)
                instructions += 1
                self.cycles += self._issue_cost
                if trace is not None:
                    trace.append(jcc_pc)
                state.rip = jcc_outcome.next_pc
                pw_ended = self._resolve_control(
                    pw, jcc_pc, jcc_length, jcc, jcc_outcome,
                    jcc_predicted)

            retired += 1
            self.total_retired += 1
            if pw_ended:
                pw = None
            if max_retired is not None and retired >= max_retired:
                return result(StopReason.RETIRE_LIMIT)

    # ------------------------------------------------------------------
    # superblock executor
    # ------------------------------------------------------------------
    def _run_superblock(self, sb: Superblock, state: MachineState,
                        memory, trace: Optional[List[int]],
                        unit_starts: Optional[List[int]],
                        passes: int = 1):
        """Execute up to ``passes`` passes over a validated superblock.

        Returns ``(instructions, units, fault, error, live_pw, bailed)``.
        Cycle, retire, trace, BTB and LBR effects are committed exactly
        as the generic loop + window fast path would have produced them
        — the float accumulation order per item is identical, the LBR
        timestamp is the pre-penalty retire time, and every link that
        opens a prediction window counts one BTB lookup (plus a hit
        when the edge is predicted), mirroring the per-window
        ``_open_window`` the dispatch replaced; fall-through links that
        continue inside an open window charge nothing, exactly like
        the slow path.  On a mispredicted edge the committed partial
        state is handed to :meth:`_resolve_control`, which performs
        the squash / target-update / allocation bookkeeping (bumping
        the affected BTB set's generation and thereby invalidating
        this superblock).  ``live_pw`` is the prediction window the
        slow path would have open on return: set on mid-prefix
        self-modification bails and whenever execution stops inside a
        fall-through window (including a completed pass whose last
        edge fell through), ``None`` after taken edges.
        """
        issue_cost = self._issue_cost
        fetch_cycles = self.config.fetch_cycles
        stats = self.btb.stats
        lbr = self.lbr
        touch = self.btb.touch
        page_check = memory.page_table.check
        code_gen = sb.code_generation
        cycles_now = self.cycles
        insts = 0
        units = 0
        chain = sb.links if passes == 1 else sb.links * passes
        first_link = True
        for link in chain:
            window = link.window
            pc = window.entry_pc
            if first_link:
                first_link = False
            else:
                if memory.code_generation != code_gen:
                    # A previous link's terminator wrote code pages
                    # (e.g. a call pushing onto a code-holding page):
                    # later cached links may be stale, so hand back to
                    # the generic machinery, which re-decodes.
                    self.cycles = cycles_now
                    self.total_retired += units
                    state.rip = pc
                    live = None
                    if not link.opens_pw:
                        # Mid-block fall-through: the window is open.
                        live = _PredictionWindow(entry=None,
                                                 pred_end=None,
                                                 limit=window.limit)
                    return insts, units, None, None, live, True
            if link.opens_pw:
                # Same fetch charge and lookup count as
                # ``_open_window``; a hit only when the edge is
                # predicted (fall-through openers looked up and
                # missed).
                cycles_now += fetch_cycles
                stats.lookups += 1
                if link.entry is not None and not link.mid_fetch:
                    # (A mid-fetch link's ``entry`` belongs to the
                    # successor block's window; this opener missed.)
                    stats.hits += 1
            try:
                # One execute check covers the link: a 32-byte block
                # never crosses a page (see the window fast path).
                page_check(pc, "execute")
            except PageFault as fault:
                self.cycles = cycles_now
                self.total_retired += units
                state.rip = pc
                return insts, units, fault, None, None, True
            k = window.count
            pcs = window.pcs
            thunks = window.thunks
            extras = window.extras
            fault = None
            error = None
            i = 0
            try:
                if window.has_store:
                    while i < k:
                        thunks[i](state)
                        cycles_now += issue_cost + extras[i]
                        i += 1
                        if memory.code_generation != code_gen:
                            break       # self-modifying code
                else:
                    while i < k:
                        thunks[i](state)
                        cycles_now += issue_cost + extras[i]
                        i += 1
            except PageFault as page_fault:
                fault = page_fault
            except BaseException as exc:
                error = exc
            insts += i
            units += i
            if trace is not None:
                trace.extend(pcs[:i])
                unit_starts.extend(pcs[:i])
            if fault is not None or error is not None:
                # Same observable state as the window path: the
                # faulting item is not counted, charged or traced, and
                # RIP points at it.
                self.cycles = cycles_now
                self.total_retired += units
                state.rip = pcs[i]
                return insts, units, fault, error, None, True
            if memory.code_generation != code_gen:
                # A store in this prefix hit code pages; the cached
                # terminator may be stale.  Resume with the prediction
                # window still open, exactly like the window path.
                self.cycles = cycles_now
                self.total_retired += units
                state.rip = pcs[i] if i < k else window.resume_pc
                # The window open over the prefix: predictionless for
                # mid-fetch links (their ``entry`` describes the
                # successor block's window, not this one).
                if link.mid_fetch:
                    live = _PredictionWindow(entry=None, pred_end=None,
                                             limit=window.limit)
                else:
                    live = _PredictionWindow(entry=link.entry,
                                             pred_end=link.pred_end,
                                             limit=window.limit)
                return insts, units, None, None, live, True
            # ----- the link's terminating control transfer -----------
            term = link.term
            if term is None:
                # Boundary link: straight-line to the 32-byte limit.
                # The slow path closes the exhausted window for free;
                # the next link re-opens one (fetch charge + lookup).
                state.rip = window.resume_pc
                continue
            term_pc = link.term_pc
            fused = link.fused
            if link.mid_fetch:
                # Boundary-fused link: the Jcc leads the next 32-byte
                # block.  The slow path's lookahead decode checks its
                # page (fusion silently fails on a fault — the ALU
                # retires standalone and the window closes at the
                # limit), then charges the fetch and opens the
                # successor's prediction window mid-retire-unit.
                try:
                    page_check(term_pc, "execute")
                except PageFault:
                    self.cycles = cycles_now
                    self.total_retired += units
                    state.rip = term_pc
                    return insts, units, None, None, None, True
                cycles_now += fetch_cycles
                stats.lookups += 1
                if link.entry is not None:
                    stats.hits += 1
            try:
                outcome = execute(state, term, term_pc)
            except PageFault as page_fault:
                self.cycles = cycles_now
                if fused:
                    # Mirrors the slow path's fused-Jcc fault handling
                    # (dead in practice: a conditional jump cannot
                    # fault): the pair's unit retires, but is not added
                    # to ``total_retired`` there either.
                    self.total_retired += units - 1
                    state.rip = term_pc
                    return insts, units, page_fault, None, None, True
                self.total_retired += units
                state.rip = term_pc
                return insts, units, page_fault, None, None, True
            except BaseException as exc:
                self.cycles = cycles_now
                if fused:
                    units -= 1  # the fused ALU's unit never retired
                self.total_retired += units
                state.rip = term_pc
                return insts, units, None, exc, None, True
            insts += 1
            if fused:
                cycles_now += issue_cost
            else:
                cycles_now += issue_cost + link.term_extra
                units += 1
            if trace is not None:
                trace.append(term_pc)
                if not fused:
                    unit_starts.append(term_pc)
            state.rip = outcome.next_pc
            if link.entry is not None:
                if outcome.taken and outcome.next_pc == link.target:
                    # Correctly predicted edge: LRU refresh + LBR
                    # record at the pre-penalty retire time (same
                    # order as ``_resolve_control``'s happy path).
                    touch(link.entry)
                    lbr.record(term_pc, outcome.next_pc, cycles_now,
                               False)
                    continue
            elif not outcome.taken:
                # Fall-through edge held: the slow path's not-taken
                # unpredicted conditional is a pure non-event (no LBR,
                # no touch, window stays open).
                continue
            # Mispredicted (wrong target, not taken, or an unpredicted
            # edge taken): commit, then let the reference machinery
            # squash/update/allocate.  That bookkeeping bumps the
            # affected BTB set's generation, so the superblock is
            # rebuilt on the next dispatch.  (A fused pair's unit was
            # already counted with its ALU in the prefix loop.)
            self.cycles = cycles_now
            self.total_retired += units
            live = _PredictionWindow(entry=link.entry,
                                     pred_end=link.pred_end,
                                     limit=link.term_limit)
            self._resolve_control(live, term_pc, link.term_len, term,
                                  outcome, link.entry is not None)
            return insts, units, None, None, None, True
        self.cycles = cycles_now
        self.total_retired += units
        last = sb.links[-1]
        live = None
        if last.entry is None:
            # The pass ended on a fall-through edge: the slow path's
            # prediction window is still open (the outer loop closes
            # it for free if the successor crossed the block boundary).
            live = _PredictionWindow(entry=None, pred_end=None,
                                     limit=last.term_limit)
        return insts, units, None, None, live, False

    # ------------------------------------------------------------------
    # prediction machinery
    # ------------------------------------------------------------------
    def _open_window(self, pc: int) -> _PredictionWindow:
        entry = self.btb.lookup(pc)
        pred_end = (self.btb.predicted_end_byte(pc, entry)
                    if entry is not None else None)
        return _PredictionWindow(
            entry=entry, pred_end=pred_end, limit=block_end(pc))

    def _false_hit(self, pw: _PredictionWindow, pc: int,
                   charge: bool = True) -> None:
        """Squash + deallocate + re-predict from ``pc`` (Takeaway 1)."""
        assert pw.entry is not None
        if charge:
            self.cycles += self.config.squash_penalty
        if self._tel is not None:
            entry = pw.entry
            # This event *is* the Takeaway-1 deallocation record: pc is
            # where decode had reached, (tag, set, off) the dying entry.
            self._tel.emit("cpu.core.false_hit", {
                "pc": pc, "tag": entry.tag, "set": entry.set_index,
                "off": entry.offset, "charged": charge})
            if charge:
                self._tel.count("cpu.core.squashes")
        self.btb.deallocate(pw.entry)
        pw.entry = self.btb.lookup(pc)
        pw.pred_end = (self.btb.predicted_end_byte(pc, pw.entry)
                       if pw.entry is not None else None)

    def _settle_prediction(self, pw: _PredictionWindow, pc: int,
                           length: int, instruction: Instruction,
                           charge: bool = True) -> bool:
        """Reconcile the BTB prediction with the decoded instruction at
        ``[pc, pc+length)``.

        Returns True when the prediction legitimately points at this
        instruction (a control transfer whose anchor byte — last byte
        on Intel-family designs, first byte otherwise — is the
        predicted end byte).  Any prediction landing *inside* the
        instruction otherwise is a false hit: deallocate and re-check
        (several aliasing entries can burn down in sequence).
        """
        aligned = (pc + length - 1) if self._last_byte_index else pc
        while pw.pred_end is not None and pc <= pw.pred_end < pc + length:
            if instruction.is_control and pw.pred_end == aligned:
                return True
            self._false_hit(pw, pc, charge)
        return False

    def _resolve_control(self, pw: _PredictionWindow, pc: int,
                         length: int, instruction: Instruction,
                         outcome: Outcome, predicted_here: bool) -> bool:
        """Handle prediction bookkeeping for a control transfer.

        Returns True when the PW ends (taken transfer or redirect).
        """
        entry = pw.entry if predicted_here else None
        if outcome.taken:
            mispredicted = True
            if entry is not None and entry.target == outcome.next_pc:
                mispredicted = False
                self.btb.touch(entry)
            # LBR logs with the *pre-penalty* retire time: the penalty
            # delays everything after the branch, not the branch itself.
            self.lbr.record(pc, outcome.next_pc, self.cycles, mispredicted)
            if mispredicted:
                self.cycles += self.config.squash_penalty
                if self._tel is not None:
                    self._tel.count("cpu.core.squashes")
                if entry is not None:
                    # Right location, wrong target: fix the entry.
                    self.btb.update_target(entry, outcome.next_pc,
                                           instruction.kind)
                else:
                    # Unpredicted taken transfer: allocate, indexed by
                    # the design's anchor byte — the branch's last byte
                    # on Intel (§2.1).  Note: an entry predicting a
                    # *later* position in the window is left alone —
                    # Figure 4's data shows jmp L2's execution does not
                    # disturb jmp L1's entry.
                    self.btb.allocate(
                        self.btb.anchor_pc(pc + length - 1, length),
                        outcome.next_pc, instruction.kind)
            return True
        # Not-taken conditional.
        if entry is not None:
            # BTB said taken, execution fell through: squash; the entry
            # survives (direction mispredict, not a false hit).
            self.cycles += self.config.squash_penalty
            if self._tel is not None:
                self._tel.count("cpu.core.squashes")
            return True  # redirect restarts fetch at the fall-through
        return False

    # ------------------------------------------------------------------
    # fetch-ahead drain past a single-step stop (§6.3)
    # ------------------------------------------------------------------
    def _drain_fetch_ahead(self, state: MachineState,
                           pw: Optional[_PredictionWindow]) -> None:
        """Finish fetching+decoding the in-flight prediction window(s).

        Runs in decode-only mode: no architectural state changes, no
        cycle charges, but Takeaway-1 deallocations fire exactly as
        they do on hardware (the BTB entry dies "as soon as
        instruction decoding finishes and even if the instruction
        causing the false hit doesn't retire", §1).  Follows predicted
        redirects and decode-resolvable direct jumps; stops at
        conditional/indirect transfers it cannot resolve, at NX pages
        (speculative fetches do not fault architecturally), and after
        ``config.drain_windows`` windows.
        """
        budget = self.config.drain_windows
        if budget <= 0 or pw is None:
            # The unit ended with a taken transfer (or redirect): the
            # squash drained the pipeline and the pending interrupt
            # preempts the refetch, so there is nothing in flight.
            return
        cur = state.rip
        windows_used = 1
        guard = 0
        while guard < 64 * budget:
            guard += 1
            if pw is None:
                if windows_used >= budget:
                    return
                pw = self._open_window(cur)
                windows_used += 1
            while pw.pred_end is not None and pw.pred_end < cur:
                self._false_hit(pw, cur, charge=False)
            if cur >= pw.limit:
                pw = None
                continue
            try:
                instruction, length = self._decode(state, cur)
            except PageFault:
                return          # NX page: speculative fetch stalls
            except InvalidInstruction:
                # Junk bytes still flow through the decoders (real
                # ISAs decode almost anything); a prediction claiming
                # a branch ends inside junk is a false hit like any
                # other non-control-transfer byte.
                if pw.pred_end is not None and pw.pred_end == cur:
                    self._false_hit(pw, cur, charge=False)
                cur += 1
                continue
            predicted_here = self._settle_prediction(
                pw, cur, length, instruction, charge=False)
            if instruction.is_control:
                if predicted_here:
                    cur = pw.entry.target      # follow the prediction
                    pw = None
                    continue
                if instruction.kind in (Kind.DIRECT_JUMP, Kind.CALL):
                    # Decode-resolvable target: the branch-address
                    # calculator redirects fetch at decode and the BTB
                    # entry is installed right away — unretired direct
                    # transfers therefore leave allocations behind
                    # (the effect that makes Fig. 5 cases 1/2 visible
                    # to a single-stepping attacker).  Any entry
                    # predicting a later position is left alone
                    # (Figure 4).
                    target = cur + length + instruction.operands[0]
                    self.btb.allocate(
                        self.btb.anchor_pc(cur + length - 1, length),
                        target, instruction.kind)
                    cur = target
                    pw = None
                    continue
                if instruction.kind is Kind.COND_JUMP:
                    # BTB miss: static prediction is not-taken, the
                    # front end keeps fetching the fall-through path
                    cur += length
                    continue
                return   # ret/indirect: decode cannot resolve; the
                         # speculative execute pass handles these
            cur += length

    # ------------------------------------------------------------------
    # speculative look-ahead past a single-step stop (§6.3)
    # ------------------------------------------------------------------
    def _speculative_lookahead(self, state: MachineState) -> None:
        """Let the front end run ``spec_lookahead`` more instructions,
        updating the BTB but never committing architectural state."""
        depth = self.config.spec_lookahead
        if depth <= 0:
            return
        spec_state = MachineState(memory=_SpecMemory(state.memory),
                                  rip=state.rip)
        spec_state.regs = state.regs.copy()
        pw: Optional[_PredictionWindow] = None
        for _ in range(depth):
            pc = spec_state.rip
            if pw is None:
                pw = self._open_window(pc)
            while pw.pred_end is not None and pw.pred_end < pc:
                self._false_hit(pw, pc, charge=False)
            if pc >= pw.limit:
                pw = self._open_window(pc)
            try:
                instruction, length = self._decode(spec_state, pc)
            except (PageFault, InvalidInstruction):
                return
            if instruction.mnemonic == "lfence":
                return  # serializing: speculation drains
            predicted_here = self._settle_prediction(
                pw, pc, length, instruction, charge=False)
            try:
                outcome = execute(spec_state, instruction, pc)
            except Exception:
                return  # any spec-path trap just drains the pipeline
            if outcome.halt or outcome.syscall:
                return
            if instruction.is_control and outcome.taken:
                entry = pw.entry if predicted_here else None
                if entry is not None and entry.target != outcome.next_pc:
                    # Speculative target verification: the entry is
                    # corrected before retirement (§6.3) — and the
                    # resulting squash plus the pending interrupt end
                    # speculation here.
                    self.btb.update_target(entry, outcome.next_pc,
                                           instruction.kind)
                    return
                if entry is None:
                    self.btb.allocate(
                        self.btb.anchor_pc(pc + length - 1, length),
                        outcome.next_pc, instruction.kind)
                    return   # mispredicted: squash ends speculation
                pw = None    # correctly predicted: keep speculating
            elif instruction.is_control and pw.entry is not None \
                    and predicted_here:
                return       # predicted taken, fell through: squash
            spec_state.rip = outcome.next_pc
