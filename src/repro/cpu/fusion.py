"""Macro-fusion model.

Modern Intel cores fuse an ALU instruction that sets flags with an
immediately following conditional branch into one macro-op, which then
*retires as a unit*.  The paper (§7.3) finds this is precisely why
NightVision's single-stepping misses some PCs: one timer interrupt
retires the whole fused pair, so only the leading instruction's PC is
ever measured — producing the 75.8 % / 88.2 % (rather than 100 %)
self-similarity for GCD / bn_cmp.
"""

from __future__ import annotations

from ..isa.instructions import Instruction, Kind


def can_fuse(first: Instruction, second: Instruction) -> bool:
    """Can ``first`` (at pc) macro-fuse with ``second`` (at pc+len)?

    Requires a flag-setting, fusion-capable ALU op followed directly by
    a conditional jump.  (Real cores add cache-line-crossing
    restrictions; those don't change any of the paper's conclusions and
    are not modelled.)
    """
    return first.spec.fusible and second.kind is Kind.COND_JUMP
