"""Fast functional interpreter — the ground-truth oracle.

Runs programs architecturally with *no* micro-architectural modelling
(no BTB, no cycles, no fusion).  Used for:

* ground-truth dynamic PC traces to validate NightVision's extraction
  accuracy (Figures 12/13, the §7.2 accuracy numbers);
* cheap corpus-scale trace generation for the fingerprint evaluation;
* differential testing of the cycle-accounted core (both must agree on
  architectural state — see the property tests).
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from .. import telemetry
from ..errors import SimulationTimeout
from ..isa.instructions import Instruction
from .decoded import build_window, decode_at, fast_path_enabled
from .semantics import execute
from .state import MachineState

#: optional syscall hook: handler(state) -> True to continue, False to stop
SyscallHandler = Callable[[MachineState], bool]

#: how many instructions pass between wall-clock deadline checks
#: (``time.monotonic`` per instruction would dominate the loop)
_DEADLINE_STRIDE = 2048

#: ambient wall-clock deadline (``time.monotonic`` timestamp) applied
#: to every run when the caller passes none — the campaign worker sets
#: this so a non-terminating victim raises :class:`SimulationTimeout`
#: in-band instead of hanging until the watchdog SIGKILLs the process.
_AMBIENT_DEADLINE: Optional[float] = None


def set_ambient_deadline(deadline: Optional[float]) -> None:
    """Install (or clear, with ``None``) the process-wide wall-clock
    deadline consulted by :func:`interpret` / :func:`run_function`."""
    global _AMBIENT_DEADLINE
    _AMBIENT_DEADLINE = deadline


def _effective_deadline(deadline: Optional[float]) -> Optional[float]:
    if deadline is not None:
        return deadline
    return _AMBIENT_DEADLINE


def _check_deadline(count: int, deadline: Optional[float]) -> None:
    # ``count`` must be non-zero: instruction 0 of every run used to
    # pay a pointless ``time.monotonic`` call here.
    if (deadline is not None and count and count % _DEADLINE_STRIDE == 0
            and time.monotonic() > deadline):
        raise SimulationTimeout(
            f"wall-clock deadline expired after {count} instructions",
            executed=count, deadline=True)


def _check_deadline_now(count: int, deadline: Optional[float]) -> None:
    """Unconditional deadline check, for threshold-strided loops.

    The run loops track ``next_deadline_check = count + stride``
    instead of testing ``count % stride`` — the decoded-window fast
    path advances ``count`` by whole windows, which would hop over
    exact multiples of the stride.
    """
    if deadline is not None and time.monotonic() > deadline:
        raise SimulationTimeout(
            f"wall-clock deadline expired after {count} instructions",
            executed=count, deadline=True)


class InterpStop(enum.Enum):
    HALT = "halt"
    SYSCALL = "syscall"
    LIMIT = "limit"
    RETURNED = "returned"   # ret with empty call depth (run_function)


@dataclass
class InterpResult:
    reason: InterpStop
    instructions: int
    #: dynamic PC trace of every executed instruction, in order
    trace: List[int] = field(default_factory=list)
    #: (pc, taken) for every conditional branch executed
    branch_events: List[Tuple[int, bool]] = field(default_factory=list)


def _fetch(state: MachineState, pc: int) -> Tuple[Instruction, int]:
    """Oracle fetch: icache hits skip *all* permission checks.

    This asymmetry with ``Core._decode`` (which re-checks execute
    permission on every fetch) is intentional: the oracle produces
    ground-truth traces and must not observe the supervisor attacker's
    controlled-channel permission flips.  The miss path — shared with
    the core via :func:`repro.cpu.decoded.decode_at` — does check,
    exactly as it always has.
    """
    cached = state.memory.icache.get(pc)
    if cached is not None:
        return cached  # type: ignore[return-value]
    return decode_at(state.memory, pc)


def _fold_run_counters(prefix: str, count: int) -> None:
    """Fold one oracle run's instruction total into the active sink.

    Called from a ``finally`` so aborted runs (deadline, fault) still
    report the instructions they executed; per-instruction hot loops
    never touch telemetry directly.
    """
    sink = telemetry.current()
    if sink is not None:
        sink.count(f"{prefix}.runs")
        if count:
            sink.count(f"{prefix}.instructions", count)


def interpret(state: MachineState, *,
              max_instructions: int = 5_000_000,
              collect_trace: bool = True,
              syscall_handler: Optional[SyscallHandler] = None,
              raise_on_limit: bool = True,
              deadline: Optional[float] = None) -> InterpResult:
    """Run until ``hlt``, an unhandled syscall, or the budget.

    ``deadline`` is an absolute ``time.monotonic`` timestamp; past it
    the run raises :class:`SimulationTimeout` (checked every
    ``_DEADLINE_STRIDE`` instructions).  When omitted, the ambient
    deadline installed by :func:`set_ambient_deadline` applies.
    """
    deadline = _effective_deadline(deadline)
    memory = state.memory
    window_cache = getattr(memory, "window_cache", None)
    fast = fast_path_enabled() and window_cache is not None
    trace: List[int] = []
    branch_events: List[Tuple[int, bool]] = []
    count = 0
    next_deadline_check = _DEADLINE_STRIDE
    try:
        while count < max_instructions:
            if count >= next_deadline_check:
                next_deadline_check = count + _DEADLINE_STRIDE
                _check_deadline_now(count, deadline)
            pc = state.rip
            if fast:
                window = window_cache.get(pc)
                if (window is None
                        or window.generation != memory.code_generation):
                    window = build_window(memory, pc)
                k = window.count
                i = 0
                if k:
                    if count + k > max_instructions:
                        k = max_instructions - count
                    pcs = window.pcs
                    thunks = window.thunks
                    try:
                        if window.has_store:
                            generation = window.generation
                            while i < k:
                                thunks[i](state)
                                i += 1
                                if memory.code_generation != generation:
                                    break   # self-modifying: re-decode
                        else:
                            while i < k:
                                thunks[i](state)
                                i += 1
                    except BaseException:
                        # Same observable state as the slow path: the
                        # faulting instruction is not counted or traced
                        # and RIP points at it.
                        count += i
                        if collect_trace:
                            trace.extend(pcs[:i])
                        state.rip = pcs[i]
                        raise
                    count += i
                    if collect_trace:
                        trace.extend(pcs[:i])
                    if i < window.count:
                        state.rip = pcs[i]
                        continue
                    state.rip = window.resume_pc
                # Chain straight into the window's terminator: the
                # cached decode replaces the ``_fetch`` the generic
                # loop would do at ``resume_pc`` (both skip permission
                # checks — the bytes were icached at build).
                term = window.terminator
                if (term is not None and i == window.count
                        and count < max_instructions
                        and memory.code_generation == window.generation):
                    pc = window.resume_pc
                    outcome = execute(state, term, pc)
                    count += 1
                    if collect_trace:
                        trace.append(pc)
                    if (outcome.taken is not None
                            and term.spec.cond is not None):
                        branch_events.append((pc, outcome.taken))
                    state.rip = outcome.next_pc
                    if outcome.halt:
                        return InterpResult(InterpStop.HALT, count,
                                            trace, branch_events)
                    if outcome.syscall:
                        if (syscall_handler is None
                                or not syscall_handler(state)):
                            return InterpResult(InterpStop.SYSCALL,
                                                count, trace,
                                                branch_events)
                    continue
                if k:
                    continue
            instruction, _ = _fetch(state, pc)
            outcome = execute(state, instruction, pc)
            count += 1
            if collect_trace:
                trace.append(pc)
            if (outcome.taken is not None
                    and instruction.spec.cond is not None):
                branch_events.append((pc, outcome.taken))
            state.rip = outcome.next_pc
            if outcome.halt:
                return InterpResult(InterpStop.HALT, count, trace,
                                    branch_events)
            if outcome.syscall:
                if syscall_handler is None:
                    return InterpResult(InterpStop.SYSCALL, count, trace,
                                        branch_events)
                if not syscall_handler(state):
                    return InterpResult(InterpStop.SYSCALL, count, trace,
                                        branch_events)
    finally:
        _fold_run_counters("cpu.interp", count)
    if raise_on_limit:
        raise SimulationTimeout(
            f"interpreter exceeded {max_instructions} instructions",
            budget=max_instructions, executed=count)
    return InterpResult(InterpStop.LIMIT, count, trace, branch_events)


def run_function(state: MachineState, entry: int, *,
                 args: Optional[List[int]] = None,
                 max_instructions: int = 5_000_000,
                 collect_trace: bool = True,
                 syscall_handler: Optional[SyscallHandler] = None,
                 deadline: Optional[float] = None,
                 ) -> InterpResult:
    """Call the function at ``entry`` with the standard convention
    (args in rdi/rsi/rdx/rcx/r8/r9) and run until it returns.

    The function's return is detected with a sentinel return address.
    ``deadline`` behaves as in :func:`interpret`.
    """
    deadline = _effective_deadline(deadline)
    sentinel = 0xDEAD_0000_0000_0000 & ((1 << 48) - 1)  # canonical-ish
    arg_regs = ("rdi", "rsi", "rdx", "rcx", "r8", "r9")
    for register, value in zip(arg_regs, args or []):
        state.regs[register] = value
    state.push(sentinel)
    state.rip = entry

    memory = state.memory
    window_cache = getattr(memory, "window_cache", None)
    fast = fast_path_enabled() and window_cache is not None
    trace: List[int] = []
    branch_events: List[Tuple[int, bool]] = []
    count = 0
    next_deadline_check = _DEADLINE_STRIDE
    try:
        while count < max_instructions:
            if count >= next_deadline_check:
                next_deadline_check = count + _DEADLINE_STRIDE
                _check_deadline_now(count, deadline)
            pc = state.rip
            if pc == sentinel:
                return InterpResult(InterpStop.RETURNED, count, trace,
                                    branch_events)
            if fast:
                window = window_cache.get(pc)
                if (window is None
                        or window.generation != memory.code_generation):
                    window = build_window(memory, pc)
                k = window.count
                i = 0
                if k:
                    if count + k > max_instructions:
                        k = max_instructions - count
                    pcs = window.pcs
                    thunks = window.thunks
                    try:
                        if window.has_store:
                            generation = window.generation
                            while i < k:
                                thunks[i](state)
                                i += 1
                                if memory.code_generation != generation:
                                    break   # self-modifying: re-decode
                        else:
                            while i < k:
                                thunks[i](state)
                                i += 1
                    except BaseException:
                        count += i
                        if collect_trace:
                            trace.extend(pcs[:i])
                        state.rip = pcs[i]
                        raise
                    count += i
                    if collect_trace:
                        trace.extend(pcs[:i])
                    if i < window.count:
                        state.rip = pcs[i]
                        continue
                    state.rip = window.resume_pc
                # Chain straight into the window's terminator (see
                # :func:`interpret`).
                term = window.terminator
                if (term is not None and i == window.count
                        and count < max_instructions
                        and memory.code_generation == window.generation):
                    pc = window.resume_pc
                    outcome = execute(state, term, pc)
                    count += 1
                    if collect_trace:
                        trace.append(pc)
                    if (outcome.taken is not None
                            and term.spec.cond is not None):
                        branch_events.append((pc, outcome.taken))
                    state.rip = outcome.next_pc
                    if outcome.halt:
                        return InterpResult(InterpStop.HALT, count,
                                            trace, branch_events)
                    if outcome.syscall:
                        if (syscall_handler is None
                                or not syscall_handler(state)):
                            return InterpResult(InterpStop.SYSCALL,
                                                count, trace,
                                                branch_events)
                    continue
                if k:
                    continue
            instruction, _ = _fetch(state, pc)
            outcome = execute(state, instruction, pc)
            count += 1
            if collect_trace:
                trace.append(pc)
            if (outcome.taken is not None
                    and instruction.spec.cond is not None):
                branch_events.append((pc, outcome.taken))
            state.rip = outcome.next_pc
            if outcome.halt:
                return InterpResult(InterpStop.HALT, count, trace,
                                    branch_events)
            if outcome.syscall:
                if syscall_handler is None or not syscall_handler(state):
                    return InterpResult(InterpStop.SYSCALL, count, trace,
                                        branch_events)
    finally:
        _fold_run_counters("cpu.interp", count)
    raise SimulationTimeout(
        f"run_function exceeded {max_instructions} instructions",
        budget=max_instructions, executed=count)
