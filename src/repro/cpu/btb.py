"""Branch Target Buffer model.

Implements the behaviour the paper reverse-engineers:

* **Organisation** (§2.1): set-associative; every access derives a
  5-bit *offset* (byte within the 32-byte fetch block), a *set index*,
  and a *truncated tag* — address bits at and above ``tag_keep_bits``
  (33 for SkyLake-family, 34 for IceLake) are ignored, so PCs that are
  8/16 GiB apart alias onto the same entry.

* **Takeaway 2** (§2.4): a lookup from fetch PC *p* hits an entry iff
  the entry has the same tag and set index and an offset **greater than
  or equal to** *p*'s offset; among multiple hits, the smallest such
  offset wins.  This gives BTB lookups range-query semantics over the
  prediction window.

* **Takeaway 1** (§2.3): when the predicted entry turns out to describe
  a non-control-transfer instruction (a *false hit*), the entry is
  **deallocated** as soon as decode detects the problem — even if the
  triggering instruction never retires.  Deallocation is performed by
  the front end (:mod:`repro.cpu.core`) via :meth:`BTB.deallocate`.

The optional *partitioning* mode models the §8.2 mitigation: entries
are tagged with a security-domain id, so cross-domain collisions become
impossible and NightVision is defeated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .. import telemetry
from ..memory.address import BLOCK_SHIFT
from ..isa.instructions import INDIRECT_KINDS, Kind
from .btb_backends import (BTBBackend, backend_fields, btb_set_bits,
                           make_backend)
from .config import CpuGeneration, DEFAULT_GENERATION


# ----------------------------------------------------------------------
# pure indexing functions
# ----------------------------------------------------------------------
# The BTB's address math, exposed as stateless module-level functions so
# the static analyzer (:mod:`repro.analysis.aliasing`) can predict
# collisions without instantiating a BTB.  :class:`BTB` delegates to
# the same implementation through its backend strategy
# (:mod:`repro.cpu.btb_backends`) — there is exactly one implementation
# of each organisation.

def btb_fields(pc: int, *, tag_keep_bits: int,
               btb_sets: int) -> Tuple[int, int, int]:
    """Split ``pc`` into ``(tag, set_index, offset)`` after truncating
    away address bits at and above ``tag_keep_bits`` (§2.1) — the
    Intel-backend specialisation of
    :func:`repro.cpu.btb_backends.backend_fields`."""
    return backend_fields(pc, tag_keep_bits=tag_keep_bits,
                          btb_sets=btb_sets, index_shift=BLOCK_SHIFT)


def btb_aliases(a: int, b: int, *, tag_keep_bits: int,
                btb_sets: int) -> bool:
    """Do two PCs map to the same (tag, set, offset) triple?"""
    return (btb_fields(a, tag_keep_bits=tag_keep_bits, btb_sets=btb_sets)
            == btb_fields(b, tag_keep_bits=tag_keep_bits,
                          btb_sets=btb_sets))


def pw_range_hit(fetch_offset: int, entry_offset: int) -> bool:
    """Takeaway 2's range predicate: an entry is eligible for a lookup
    from ``fetch_offset`` iff its offset is greater or equal."""
    return entry_offset >= fetch_offset


def reconstruct_end_byte(fetch_pc: int, entry_offset: int) -> int:
    """Address of the predicted branch's last byte, assuming (as the
    front end does) that the entry's branch lives in ``fetch_pc``'s
    32-byte fetch block — the assumption false hits violate."""
    return (fetch_pc & ~((1 << BLOCK_SHIFT) - 1)) | entry_offset


@dataclass
class BTBEntry:
    """One BTB entry: a (truncated) branch PC mapped to its target.

    Entries are indexed by the **last byte** of the branch instruction.
    This matches the paper's measured boundaries: Figure 2 shows
    collisions for ``F2 < F1 + 2`` (a nop landing on either byte of the
    2-byte ``jmp`` deallocates its entry) and Figure 4 shows the range
    lookup selecting ``jmp L2``'s entry while ``F1 <= F2 + 1``.
    """

    valid: bool = False
    tag: int = 0
    set_index: int = 0
    offset: int = 0            # 5-bit byte offset within the fetch block
    target: int = 0            # full predicted target PC
    kind: Kind = Kind.DIRECT_JUMP
    domain: int = 0            # security domain (partitioning mode only)
    lru: int = 0               # last-touch stamp

    def matches(self, tag: int, domain: int, partitioned: bool) -> bool:
        if not self.valid or self.tag != tag:
            return False
        return (not partitioned) or self.domain == domain


@dataclass
class BTBStats:
    """Counters exposed for tests and benchmarks."""

    lookups: int = 0
    hits: int = 0
    allocations: int = 0
    target_updates: int = 0
    deallocations: int = 0
    evictions: int = 0
    spurious_evictions: int = 0
    indirect_flushes: int = 0
    full_flushes: int = 0

    def reset(self) -> None:
        for name in self.__dataclass_fields__:
            setattr(self, name, 0)


class BTB:
    """Branch Target Buffer behind a design-family strategy.

    The default (``intel``) backend is the paper's set-associative
    range-query design; alternative organisations (arm / sodor / orcs)
    plug in via :mod:`repro.cpu.btb_backends`, varying geometry,
    indexing, hit semantics and replacement while every front-end
    behaviour above the lookup (prediction windows, false-hit
    deallocation, generation stamping) stays shared."""

    def __init__(self, config: Optional[CpuGeneration] = None):
        self.config = config if config is not None else DEFAULT_GENERATION
        #: the design-family strategy (geometry/index/hit/replacement)
        self.backend: BTBBackend = make_backend(self.config)
        sets = self.config.btb_sets
        self._set_bits = btb_set_bits(sets)
        #: hit-semantics flag cached for the lookup hot path
        self._range_hits = self.backend.range_hits
        self._sets: List[List[BTBEntry]] = [
            [BTBEntry() for _ in range(self.config.btb_ways)]
            for _ in range(sets)
        ]
        self._clock = 0
        #: Security domain of the code currently executing (only
        #: consulted when ``config.btb_partitioning`` is set).
        self._current_domain = 0
        #: Lookup-visibility generation.  Bumped by every mutation that
        #: can change a *lookup result* — allocate (including the
        #: eviction it may imply), target update, deallocation, spurious
        #: eviction, flushes, and domain switches under partitioning.
        #: ``touch`` does NOT bump it: LRU refreshes change future
        #: eviction choices but never the outcome of a lookup, and any
        #: LRU-driven eviction itself happens inside ``allocate`` (which
        #: bumps).  Superblocks (:mod:`repro.cpu.decoded`) are stamped
        #: with this counter, so one integer compare validates every
        #: predicted edge in a chain at once.
        self.generation = 0
        #: Per-set refinement of :attr:`generation`.  A lookup's result
        #: depends only on its set's contents, and one 32-byte fetch
        #: block maps to exactly one set — so a superblock whose global
        #: stamp went stale can re-validate against just the sets its
        #: blocks index into, surviving unrelated BTB churn (e.g. a
        #: shared subroutine's ``ret`` entry being retargeted every
        #: call would otherwise invalidate every cached chain).
        self.set_gens: List[int] = [0] * sets
        self.stats = BTBStats()
        #: Telemetry sink captured at construction (None → disabled;
        #: the hot paths then pay one ``is None`` check per rare
        #: event).  Per-lookup counters are not emitted individually —
        #: the registered stats source folds the :class:`BTBStats`
        #: totals in when the sink finalizes.
        self._tel: Optional[telemetry.TelemetrySink] = None
        sink = telemetry.current()
        if sink is not None:
            self.bind_telemetry(sink)

    def bind_telemetry(self,
                       sink: Optional[telemetry.TelemetrySink]) -> None:
        """(Re)attach this BTB to ``sink`` — used when the BTB was
        constructed outside the telemetry session that observes it."""
        if sink is self._tel:
            return
        self._tel = sink
        if sink is not None:
            sink.register(self._stat_counters)

    def _stat_counters(self) -> Dict[str, int]:
        return {f"cpu.btb.{name}": getattr(self.stats, name)
                for name in BTBStats.__dataclass_fields__}

    @property
    def current_domain(self) -> int:
        return self._current_domain

    @current_domain.setter
    def current_domain(self, domain: int) -> None:
        if domain != self._current_domain:
            self._current_domain = domain
            # Under partitioning a domain switch changes which entries a
            # lookup can see; without it lookups are domain-blind, but
            # newly allocated entries are stamped with the new domain,
            # so bumping unconditionally keeps the invariant simple.
            self._bump_all_sets()

    def _bump_all_sets(self) -> None:
        """Whole-BTB visibility change: advance every set generation."""
        self.generation += 1
        gens = self.set_gens
        for i in range(len(gens)):
            gens[i] += 1

    # ------------------------------------------------------------------
    # field extraction
    # ------------------------------------------------------------------
    def fields(self, pc: int) -> Tuple[int, int, int]:
        """Split ``pc`` into ``(tag, set_index, offset)`` under this
        BTB's design (delegates to the backend's pure split)."""
        return self.backend.split(pc)

    def aliases(self, a: int, b: int) -> bool:
        """Do two PCs map to the same (tag, set, offset) triple?"""
        return self.fields(a) == self.fields(b)

    def anchor_pc(self, last_byte_pc: int, length: int) -> int:
        """The byte this design indexes a branch by, given the
        branch's last byte and length (see
        :meth:`BTBBackend.anchor_pc`)."""
        return self.backend.anchor_pc(last_byte_pc, length)

    # ------------------------------------------------------------------
    # access (fetch-time prediction)
    # ------------------------------------------------------------------
    def lookup(self, fetch_pc: int) -> Optional[BTBEntry]:
        """Backend-semantics lookup.

        Under the range-hit designs (Takeaway 2) this returns the valid
        entry with the same tag/set whose offset is >= the fetch PC's
        offset, preferring the smallest such offset; under tag-exact
        designs only an entry anchored exactly at the fetch PC hits.
        ``None`` on a miss.  Does not modify any entry.
        """
        self.stats.lookups += 1
        best = self.peek(fetch_pc)
        if best is not None:
            self.stats.hits += 1
        return best

    def peek(self, fetch_pc: int) -> Optional[BTBEntry]:
        """:meth:`lookup` without the stats counting.

        Used by the superblock builder, which probes predictions while
        *constructing* a chain: those probes have no slow-path
        equivalent, so counting them would make ``cpu.btb.lookups``
        diverge between the fast and reference paths.  The executor
        instead bulk-counts one lookup+hit per chained edge when a
        superblock actually runs (see ``Core.run``).
        """
        tag, set_index, offset = self.fields(fetch_pc)
        partitioned = self.config.btb_partitioning
        domain = self._current_domain
        if not self._range_hits:
            # Tag-exact designs: at most one entry can match (allocate
            # updates same-anchor entries in place).
            for entry in self._sets[set_index]:
                if (entry.matches(tag, domain, partitioned)
                        and entry.offset == offset):
                    return entry
            return None
        best: Optional[BTBEntry] = None
        for entry in self._sets[set_index]:
            if not entry.matches(tag, domain, partitioned):
                continue
            if entry.offset < offset:
                continue
            if best is None or entry.offset < best.offset:
                best = entry
        return best

    def predicted_end_byte(self, fetch_pc: int, entry: BTBEntry) -> int:
        """Reconstruct the address of the predicted branch's *anchor
        byte* (its last byte on Intel-family designs, its first byte on
        instruction-indexed designs) within ``fetch_pc``'s fetch block.

        Only the low ``tag_keep_bits`` of the branch PC are stored in
        the BTB; the front end assumes the branch lives in the current
        fetch block (which is how false hits arise)."""
        return reconstruct_end_byte(fetch_pc, entry.offset)

    # ------------------------------------------------------------------
    # update
    # ------------------------------------------------------------------
    def allocate(self, anchor_pc: int, target: int,
                 kind: Kind) -> BTBEntry:
        """Install (or refresh) the entry for a taken branch.

        ``anchor_pc`` is the byte the design indexes the branch by —
        its **last byte** (``pc + length - 1``) on the default Intel
        backend, its first byte on instruction-indexed backends (the
        front end computes it via :meth:`anchor_pc`)."""
        tag, set_index, offset = self.fields(anchor_pc)
        ways = self._sets[set_index]
        partitioned = self.config.btb_partitioning
        victim: Optional[BTBEntry] = None
        in_place = False
        for entry in ways:
            if (entry.matches(tag, self.current_domain, partitioned)
                    and entry.offset == offset):
                victim = entry          # same branch: update in place
                in_place = True
                break
        if victim is None:
            victim, evicted = self.backend.pick_victim(ways)
            if evicted:
                self.stats.evictions += 1
        # Counting keys off the *same-branch* match above (which
        # includes the security domain): a replacement victim that
        # merely shares (tag, offset) — e.g. a cross-domain twin under
        # partitioning — is an eviction + allocation, not an in-place
        # target update.
        if in_place:
            self.stats.target_updates += 1
        else:
            self.stats.allocations += 1
        if self._tel is not None:
            self._tel.emit("cpu.btb.insert", {
                "tag": tag, "set": set_index, "off": offset,
                "target": target, "kind": kind.name})
        victim.valid = True
        victim.tag = tag
        victim.set_index = set_index
        victim.offset = offset
        victim.target = target
        victim.kind = kind
        victim.domain = self._current_domain
        self.generation += 1
        self.set_gens[set_index] += 1
        self.backend.stamp_insert(self, victim)
        return victim

    def update_target(self, entry: BTBEntry, target: int,
                      kind: Optional[Kind] = None) -> None:
        """Correct the target of an existing entry (wrong-target case)."""
        entry.target = target
        if kind is not None:
            entry.kind = kind
        self.generation += 1
        self.set_gens[entry.set_index] += 1
        self.stats.target_updates += 1
        if self._tel is not None:
            self._tel.emit("cpu.btb.update", {
                "tag": entry.tag, "set": entry.set_index,
                "off": entry.offset, "target": target,
                "kind": entry.kind.name})
        self.backend.stamp_insert(self, entry)

    def _invalidate(self, entry: BTBEntry) -> None:
        """Shared entry-invalidation path: clears validity *and* the
        backend's replacement bookkeeping, then bumps the visibility
        generations.  Every invalidation (deallocate, spurious
        eviction, flush) must route through here — mutating
        ``entry.valid`` directly would leave clock-style replacement
        stamps stale and desynchronise fault drills from real
        evictions."""
        entry.valid = False
        self.backend.clear_entry(entry)
        self.generation += 1
        self.set_gens[entry.set_index] += 1

    def deallocate(self, entry: BTBEntry) -> None:
        """Invalidate an entry after a false hit (Takeaway 1)."""
        if entry.valid:
            self._invalidate(entry)
            self.stats.deallocations += 1

    def evict_spurious(self, rng) -> Optional[BTBEntry]:
        """Invalidate one random valid entry (fault injection's
        co-resident-noise model).  Goes through the same
        entry-invalidation state change as a capacity eviction — the
        lookup/allocate/replacement semantics are never bypassed."""
        candidates = self.valid_entries()
        if not candidates:
            return None
        victim = rng.choice(candidates)
        self._invalidate(victim)
        self.stats.spurious_evictions += 1
        return victim

    def touch(self, entry: BTBEntry) -> None:
        """Refresh replacement state after a correct prediction (a
        no-op on designs whose stamps are written only at insert)."""
        self.backend.stamp_touch(self, entry)

    # ------------------------------------------------------------------
    # flush operations (mitigations, §4.1 / §8.2)
    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Invalidate everything (the §8.2 flush-on-switch mitigation).

        Only sets that actually held a valid entry advance their
        generation (and the global generation only moves when at least
        one set changed): flushing an empty BTB changes no lookup
        result, so it must not invalidate every cached superblock."""
        self._flush_where(lambda entry: True)
        self.stats.full_flushes += 1

    def flush_indirect(self) -> None:
        """IBRS/IBPB model (§4.1): only entries for *indirect* control
        transfers are invalidated; direct jumps and conditional branches
        survive, which is why NightVision is unaffected.  Per-set
        generation stamps advance only where an indirect entry was
        actually dropped, so direct-branch superblock chains survive."""
        self._flush_where(lambda entry: entry.kind in INDIRECT_KINDS)
        self.stats.indirect_flushes += 1

    def _flush_where(self, predicate) -> None:
        """Invalidate every valid entry satisfying ``predicate``,
        advancing only the generations of sets that changed."""
        clear_entry = self.backend.clear_entry
        gens = self.set_gens
        any_changed = False
        for set_index, ways in enumerate(self._sets):
            changed = False
            for entry in ways:
                if entry.valid and predicate(entry):
                    entry.valid = False
                    clear_entry(entry)
                    changed = True
            if changed:
                gens[set_index] += 1
                any_changed = True
        if any_changed:
            self.generation += 1

    # ------------------------------------------------------------------
    # introspection (tests / debugging only — attack code never calls)
    # ------------------------------------------------------------------
    def valid_entries(self) -> List[BTBEntry]:
        return [
            entry
            for ways in self._sets
            for entry in ways
            if entry.valid
        ]

    def entry_for(self, branch_pc: int) -> Optional[BTBEntry]:
        """Exact-match probe (same tag/set/offset), for tests."""
        tag, set_index, offset = self.fields(branch_pc)
        for entry in self._sets[set_index]:
            if (entry.matches(tag, self.current_domain,
                              self.config.btb_partitioning)
                    and entry.offset == offset):
                return entry
        return None

    def occupancy(self) -> int:
        return len(self.valid_entries())
