"""BTB backend strategies: the design space behind :class:`~repro.cpu.btb.BTB`.

The paper reverse-engineers *one* BTB — the Intel-shaped design whose
range-query lookups and last-byte indexing NightVision exploits.  Other
real front ends organise their BTBs differently, and the portability
question ("which attack primitives survive which design?") needs those
organisations to be first-class.  A :class:`BTBBackend` bundles the
four axes a design varies on:

* **geometry** — set count, associativity, how many low address bits
  the tag check keeps (``tag_keep_bits``; fewer bits = closer aliases);
* **indexing** — how a PC splits into ``(tag, set_index, offset)``,
  including which byte of a branch anchors its entry (Intel indexes the
  branch's *last* byte, §2.1; instruction-granular designs index the
  first byte);
* **hit semantics** — Takeaway 2's range predicate (entry offset >=
  fetch offset, smallest wins) vs. ordinary tag-exact matching;
* **replacement** — LRU with touch-refresh on correct predictions vs.
  clock stamps written only at allocation, vs. direct-mapped overwrite.

Concrete backends:

``intel``
    The paper's design, byte-identical to the pre-refactor model: range
    hits, last-byte anchor, truncated tags (keep 33/34), LRU.
``arm``
    Modelled on the Arm BTB reverse-engineering report (Wan, 2024,
    PAPERS.md): tag-exact hits on the branch *instruction* address,
    16-byte fetch-granule indexing, partial tags (keep 32 — aliases
    exist, 4 GiB apart), pseudo-LRU approximated as LRU.
``sodor``
    riscv-sodor's direct-mapped BTB (SNIPPETS.md): one way per set,
    instruction-granular index (``pc >> 2``), full tags (no aliasing
    within the simulated 47-bit address space), unconditional overwrite.
``orcs``
    OrCS's 128-set x 4-way BTB (SNIPPETS.md): instruction-granular
    index ``(pc >> 2) & 0x7F``, clock-field eviction (victim = smallest
    allocation stamp; correct predictions do *not* refresh), modelled
    here with SkyLake-style tag truncation so cross-address-space
    probes remain constructible.

Every strategy is stateless apart from precomputed masks; mutable
replacement state (the stamp counter, per-entry stamps) stays on the
owning :class:`~repro.cpu.btb.BTB` so two BTBs never share clocks.
"""

from __future__ import annotations

from typing import Dict, List, Tuple, Type

from ..errors import CpuError
from ..memory.address import BLOCK_SHIFT, block_offset, truncate


def btb_set_bits(btb_sets: int) -> int:
    """log2 of the set count (validated power of two)."""
    if btb_sets <= 0 or btb_sets & (btb_sets - 1):
        raise CpuError(f"btb_sets must be a power of two: {btb_sets}")
    return btb_sets.bit_length() - 1


def backend_fields(pc: int, *, tag_keep_bits: int, btb_sets: int,
                   index_shift: int = BLOCK_SHIFT) -> Tuple[int, int, int]:
    """Generalised field split: truncate ``pc`` to ``tag_keep_bits``,
    take the set index from bits ``[index_shift, index_shift +
    log2(btb_sets))`` and the tag from everything above; the offset is
    always the byte within the 32-byte fetch block (a front-end
    property — prediction windows are 32-byte bundles regardless of how
    the BTB indexes them)."""
    truncated = truncate(pc, tag_keep_bits)
    offset = block_offset(truncated)
    set_index = (truncated >> index_shift) & (btb_sets - 1)
    tag = truncated >> (index_shift + btb_set_bits(btb_sets))
    return tag, set_index, offset


class BTBBackend:
    """Base strategy: Intel-style geometry maths + LRU replacement.

    Subclasses override the class attributes (and, for replacement, the
    hook methods).  Instances precompute the split masks from the
    owning config's geometry, so :meth:`split` is pure integer ops.
    """

    #: registry key (also ``CpuGeneration.btb_backend``)
    kind = "intel"
    #: Takeaway-2 range predicate vs. tag-exact matching
    range_hits = True
    #: entries anchored at the branch's last byte (Intel) or first byte
    last_byte_index = False
    #: low bit of the set-index field
    index_shift = BLOCK_SHIFT
    #: human-readable replacement-policy name for reports
    replacement = "lru"

    def __init__(self, config) -> None:
        self.sets = config.btb_sets
        self.ways = config.btb_ways
        self.tag_keep_bits = config.tag_keep_bits
        self.set_bits = btb_set_bits(self.sets)
        self._keep_mask = (1 << self.tag_keep_bits) - 1
        self._set_mask = self.sets - 1
        self._tag_shift = self.index_shift + self.set_bits
        self._block_mask = (1 << BLOCK_SHIFT) - 1

    # ------------------------------------------------------------------
    # indexing
    # ------------------------------------------------------------------
    def split(self, pc: int) -> Tuple[int, int, int]:
        """``(tag, set_index, offset)`` of ``pc`` under this design."""
        truncated = pc & self._keep_mask
        return (truncated >> self._tag_shift,
                (truncated >> self.index_shift) & self._set_mask,
                truncated & self._block_mask)

    def anchor_pc(self, last_byte_pc: int, length: int) -> int:
        """The byte this design indexes a branch by, given the branch's
        last byte and length: the last byte itself on Intel-family
        designs (the paper's §2.1 finding), the first byte on
        instruction-indexed designs."""
        if self.last_byte_index:
            return last_byte_pc
        return last_byte_pc - (length - 1)

    # ------------------------------------------------------------------
    # replacement policy hooks (mutable state lives on the BTB)
    # ------------------------------------------------------------------
    def pick_victim(self, ways: List) -> Tuple[object, bool]:
        """Choose the entry a new allocation overwrites; the second
        element reports whether a live entry is being evicted."""
        for entry in ways:
            if not entry.valid:
                return entry, False
        return min(ways, key=lambda e: e.lru), True

    def stamp_insert(self, btb, entry) -> None:
        """Replacement bookkeeping on allocate / target update."""
        btb._clock += 1
        entry.lru = btb._clock

    def stamp_touch(self, btb, entry) -> None:
        """Replacement bookkeeping on a correct prediction."""
        btb._clock += 1
        entry.lru = btb._clock

    def clear_entry(self, entry) -> None:
        """Replacement bookkeeping when an entry is invalidated
        (deallocation, spurious eviction, flush).  Resetting the stamp
        keeps invalidated slots first in line for reuse on designs
        whose victim choice reads the stamp directly."""
        entry.lru = 0


class IntelRangeBackend(BTBBackend):
    """The paper's design (default): range hits, last-byte anchor."""

    kind = "intel"
    range_hits = True
    last_byte_index = True
    index_shift = BLOCK_SHIFT
    replacement = "lru"


class ArmExactBackend(BTBBackend):
    """Arm-style BTB per the Wan 2024 reverse-engineering report:
    tag-exact hits on the branch instruction address, 16-byte-granule
    set indexing, partial tags (keep 32), LRU-ish replacement."""

    kind = "arm"
    range_hits = False
    last_byte_index = False
    index_shift = 4
    replacement = "lru"


class SodorDirectBackend(BTBBackend):
    """riscv-sodor's direct-mapped BTB: one way, instruction-granular
    index (``pc >> 2``), full tag compare, unconditional overwrite."""

    kind = "sodor"
    range_hits = False
    last_byte_index = False
    index_shift = 2
    replacement = "overwrite"

    def pick_victim(self, ways: List) -> Tuple[object, bool]:
        victim = ways[0]
        return victim, victim.valid


class OrcsClockBackend(BTBBackend):
    """OrCS's 128x4 BTB: instruction-granular index, clock eviction —
    the victim is the way with the smallest allocation stamp, and a
    correct prediction does *not* refresh the stamp (FIFO-like)."""

    kind = "orcs"
    range_hits = False
    last_byte_index = False
    index_shift = 2
    replacement = "clock"

    def pick_victim(self, ways: List) -> Tuple[object, bool]:
        victim = min(ways, key=lambda e: e.lru)
        return victim, victim.valid

    def stamp_touch(self, btb, entry) -> None:
        return None


#: backend kind -> strategy class
BACKEND_CLASSES: Dict[str, Type[BTBBackend]] = {
    cls.kind: cls
    for cls in (IntelRangeBackend, ArmExactBackend, SodorDirectBackend,
                OrcsClockBackend)
}


def make_backend(config) -> BTBBackend:
    """Instantiate the strategy named by ``config.btb_backend``."""
    kind = getattr(config, "btb_backend", "intel")
    try:
        cls = BACKEND_CLASSES[kind]
    except KeyError:
        known = ", ".join(sorted(BACKEND_CLASSES))
        raise CpuError(
            f"unknown BTB backend {kind!r}; known: {known}") from None
    return cls(config)
