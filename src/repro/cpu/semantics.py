"""Architectural instruction semantics.

This module is shared by the cycle-accounted front-end model
(:mod:`repro.cpu.core`) and the fast functional interpreter
(:mod:`repro.cpu.interp`): both call :func:`execute` so there is a
single source of truth for what each instruction *does*.  Timing,
prediction and BTB effects are deliberately absent here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from ..errors import CpuError, DivideError, HaltError
from ..isa.instructions import Instruction, Kind, evaluate_cond
from ..isa.registers import MASK64, SIGN64, to_signed
from .state import MachineState


@dataclass(frozen=True)
class Outcome:
    """Result of architecturally executing one instruction."""

    next_pc: int
    #: for control transfers: did it take? (None for sequential insts)
    taken: Optional[bool] = None
    #: resolved target for taken transfers (== next_pc when taken)
    kind: Kind = Kind.SEQUENTIAL
    syscall: bool = False
    halt: bool = False


Handler = Callable[[MachineState, Instruction, int], Outcome]

_HANDLERS: Dict[str, Handler] = {}


def _register(*mnemonics: str):
    def wrap(function: Handler) -> Handler:
        for mnemonic in mnemonics:
            _HANDLERS[mnemonic] = function
        return function
    return wrap


def _seq(state: MachineState, pc: int, length: int) -> Outcome:
    return Outcome(next_pc=pc + length)


# ----------------------------------------------------------------------
# flag helpers
# ----------------------------------------------------------------------
def _set_zs(flags, result: int) -> None:
    flags.zf = result == 0
    flags.sf = bool(result & SIGN64)


def _add(flags, a: int, b: int, carry_in: int = 0) -> int:
    total = a + b + carry_in
    result = total & MASK64
    flags.cf = total > MASK64
    flags.of = bool(~(a ^ b) & (a ^ result) & SIGN64)
    _set_zs(flags, result)
    return result


def _sub(flags, a: int, b: int, borrow_in: int = 0) -> int:
    total = a - b - borrow_in
    result = total & MASK64
    flags.cf = total < 0
    flags.of = bool((a ^ b) & (a ^ result) & SIGN64)
    _set_zs(flags, result)
    return result


def _logic(flags, result: int) -> int:
    result &= MASK64
    flags.cf = False
    flags.of = False
    _set_zs(flags, result)
    return result


# ----------------------------------------------------------------------
# sequential instructions
# ----------------------------------------------------------------------
@_register("nop", "lfence")
def _h_nop(state, inst, pc):
    return _seq(state, pc, inst.length)


@_register("cmc")
def _h_cmc(state, inst, pc):
    state.regs.flags.cf = not state.regs.flags.cf
    return _seq(state, pc, inst.length)


@_register("mov")
def _h_mov(state, inst, pc):
    dst, src = inst.operands
    state.regs.write(dst, state.regs.read(src))
    return _seq(state, pc, inst.length)


@_register("xchg")
def _h_xchg(state, inst, pc):
    dst, src = inst.operands
    a, b = state.regs.read(dst), state.regs.read(src)
    state.regs.write(dst, b)
    state.regs.write(src, a)
    return _seq(state, pc, inst.length)


@_register("movi")
def _h_movi(state, inst, pc):
    dst, imm = inst.operands
    state.regs.write(dst, imm & MASK64)  # sign-extended by decode
    return _seq(state, pc, inst.length)


@_register("movabs")
def _h_movabs(state, inst, pc):
    dst, imm = inst.operands
    state.regs.write(dst, imm & MASK64)
    return _seq(state, pc, inst.length)


@_register("load")
def _h_load(state, inst, pc):
    dst, base, disp = inst.operands
    address = (state.regs.read(base) + disp) & MASK64
    state.regs.write(dst, state.memory.read_u64(address))
    return _seq(state, pc, inst.length)


@_register("loadw")
def _h_loadw(state, inst, pc):
    return _h_load(state, inst, pc)


@_register("store")
def _h_store(state, inst, pc):
    base, src, disp = inst.operands
    address = (state.regs.read(base) + disp) & MASK64
    state.memory.write_u64(address, state.regs.read(src))
    return _seq(state, pc, inst.length)


@_register("storew")
def _h_storew(state, inst, pc):
    return _h_store(state, inst, pc)


@_register("lea")
def _h_lea(state, inst, pc):
    dst, base, disp = inst.operands
    state.regs.write(dst, (state.regs.read(base) + disp) & MASK64)
    return _seq(state, pc, inst.length)


@_register("push")
def _h_push(state, inst, pc):
    state.push(state.regs.read(inst.operands[0]))
    return _seq(state, pc, inst.length)


@_register("pop")
def _h_pop(state, inst, pc):
    state.regs.write(inst.operands[0], state.pop())
    return _seq(state, pc, inst.length)


# ----------------------------------------------------------------------
# ALU
# ----------------------------------------------------------------------
def _alu_rr(op):
    def handler(state, inst, pc):
        dst, src = inst.operands
        flags = state.regs.flags
        result = op(flags, state.regs.read(dst), state.regs.read(src))
        if result is not None:
            state.regs.write(dst, result)
        return _seq(state, pc, inst.length)
    return handler


def _alu_ri(op):
    def handler(state, inst, pc):
        dst, imm = inst.operands
        flags = state.regs.flags
        result = op(flags, state.regs.read(dst), imm & MASK64)
        if result is not None:
            state.regs.write(dst, result)
        return _seq(state, pc, inst.length)
    return handler


_register("add")(_alu_rr(lambda f, a, b: _add(f, a, b)))
_register("sub")(_alu_rr(lambda f, a, b: _sub(f, a, b)))
_register("adc")(_alu_rr(lambda f, a, b: _add(f, a, b, int(f.cf))))
_register("sbb")(_alu_rr(lambda f, a, b: _sub(f, a, b, int(f.cf))))
_register("and")(_alu_rr(lambda f, a, b: _logic(f, a & b)))
_register("or")(_alu_rr(lambda f, a, b: _logic(f, a | b)))
_register("xor")(_alu_rr(lambda f, a, b: _logic(f, a ^ b)))
_register("cmp")(_alu_rr(lambda f, a, b: (_sub(f, a, b), None)[1]))
_register("test")(_alu_rr(lambda f, a, b: (_logic(f, a & b), None)[1]))

_register("addi", "addi8")(_alu_ri(lambda f, a, b: _add(f, a, b)))
_register("subi", "subi8")(_alu_ri(lambda f, a, b: _sub(f, a, b)))
_register("cmpi", "cmpi8")(_alu_ri(lambda f, a, b: (_sub(f, a, b), None)[1]))
_register("andi", "andi8")(_alu_ri(lambda f, a, b: _logic(f, a & b)))
_register("ori", "ori8")(_alu_ri(lambda f, a, b: _logic(f, a | b)))
_register("xori", "xori8")(_alu_ri(lambda f, a, b: _logic(f, a ^ b)))
_register("testi")(_alu_ri(lambda f, a, b: (_logic(f, a & b), None)[1]))


@_register("imul")
def _h_imul(state, inst, pc):
    dst, src = inst.operands
    flags = state.regs.flags
    product = to_signed(state.regs.read(dst)) * to_signed(
        state.regs.read(src))
    result = product & MASK64
    overflow = to_signed(result) != product
    flags.cf = overflow
    flags.of = overflow
    _set_zs(flags, result)
    state.regs.write(dst, result)
    return _seq(state, pc, inst.length)


@_register("shl")
def _h_shl(state, inst, pc):
    dst, imm = inst.operands
    count = imm & 63
    flags = state.regs.flags
    value = state.regs.read(dst)
    if count:
        flags.cf = bool((value >> (64 - count)) & 1)
        value = (value << count) & MASK64
        flags.of = False
        _set_zs(flags, value)
        state.regs.write(dst, value)
    return _seq(state, pc, inst.length)


@_register("shr")
def _h_shr(state, inst, pc):
    dst, imm = inst.operands
    count = imm & 63
    flags = state.regs.flags
    value = state.regs.read(dst)
    if count:
        flags.cf = bool((value >> (count - 1)) & 1)
        value >>= count
        flags.of = False
        _set_zs(flags, value)
        state.regs.write(dst, value)
    return _seq(state, pc, inst.length)


@_register("sar")
def _h_sar(state, inst, pc):
    dst, imm = inst.operands
    count = imm & 63
    flags = state.regs.flags
    value = state.regs.read(dst)
    if count:
        signed = to_signed(value)
        flags.cf = bool((value >> (count - 1)) & 1)
        value = (signed >> count) & MASK64
        flags.of = False
        _set_zs(flags, value)
        state.regs.write(dst, value)
    return _seq(state, pc, inst.length)


@_register("inc")
def _h_inc(state, inst, pc):
    dst = inst.operands[0]
    flags = state.regs.flags
    carry = flags.cf                      # inc preserves CF
    result = _add(flags, state.regs.read(dst), 1)
    flags.cf = carry
    state.regs.write(dst, result)
    return _seq(state, pc, inst.length)


@_register("dec")
def _h_dec(state, inst, pc):
    dst = inst.operands[0]
    flags = state.regs.flags
    carry = flags.cf                      # dec preserves CF
    result = _sub(flags, state.regs.read(dst), 1)
    flags.cf = carry
    state.regs.write(dst, result)
    return _seq(state, pc, inst.length)


@_register("neg")
def _h_neg(state, inst, pc):
    dst = inst.operands[0]
    flags = state.regs.flags
    value = state.regs.read(dst)
    result = _sub(flags, 0, value)
    flags.cf = value != 0
    state.regs.write(dst, result)
    return _seq(state, pc, inst.length)


@_register("not")
def _h_not(state, inst, pc):
    dst = inst.operands[0]
    state.regs.write(dst, ~state.regs.read(dst) & MASK64)
    return _seq(state, pc, inst.length)


@_register("mul")
def _h_mul(state, inst, pc):
    src = inst.operands[0]
    flags = state.regs.flags
    product = state.regs.read(0) * state.regs.read(src)   # rax * src
    low = product & MASK64
    high = (product >> 64) & MASK64
    state.regs.write(0, low)      # rax
    state.regs.write(2, high)     # rdx
    flags.cf = high != 0
    flags.of = high != 0
    _set_zs(flags, low)
    return _seq(state, pc, inst.length)


@_register("div")
def _h_div(state, inst, pc):
    src = inst.operands[0]
    divisor = state.regs.read(src)
    if divisor == 0:
        raise DivideError(f"divide by zero at {pc:#x}")
    numerator = (state.regs.read(2) << 64) | state.regs.read(0)
    quotient = numerator // divisor
    if quotient > MASK64:
        raise DivideError(f"divide overflow at {pc:#x}")
    state.regs.write(0, quotient)
    state.regs.write(2, numerator % divisor)
    return _seq(state, pc, inst.length)


# ----------------------------------------------------------------------
# conditional data movement
# ----------------------------------------------------------------------
def _h_cmov(state, inst, pc):
    dst, src = inst.operands
    if evaluate_cond(inst.spec.cond, state.regs.flags):
        state.regs.write(dst, state.regs.read(src))
    return _seq(state, pc, inst.length)


def _h_set(state, inst, pc):
    dst = inst.operands[0]
    state.regs.write(
        dst, 1 if evaluate_cond(inst.spec.cond, state.regs.flags) else 0
    )
    return _seq(state, pc, inst.length)


# ----------------------------------------------------------------------
# control transfers
# ----------------------------------------------------------------------
@_register("jmp", "jmp8")
def _h_jmp(state, inst, pc):
    target = (pc + inst.length + inst.operands[0]) & MASK64
    return Outcome(next_pc=target, taken=True, kind=inst.kind)


def _h_jcc(state, inst, pc):
    taken = evaluate_cond(inst.spec.cond, state.regs.flags)
    if taken:
        target = (pc + inst.length + inst.operands[0]) & MASK64
        return Outcome(next_pc=target, taken=True, kind=inst.kind)
    return Outcome(next_pc=pc + inst.length, taken=False, kind=inst.kind)


@_register("call")
def _h_call(state, inst, pc):
    target = (pc + inst.length + inst.operands[0]) & MASK64
    state.push(pc + inst.length)
    return Outcome(next_pc=target, taken=True, kind=inst.kind)


@_register("callr")
def _h_callr(state, inst, pc):
    target = state.regs.read(inst.operands[0])
    state.push(pc + inst.length)
    return Outcome(next_pc=target, taken=True, kind=inst.kind)


@_register("jmpr")
def _h_jmpr(state, inst, pc):
    target = state.regs.read(inst.operands[0])
    return Outcome(next_pc=target, taken=True, kind=inst.kind)


@_register("ret")
def _h_ret(state, inst, pc):
    target = state.pop()
    return Outcome(next_pc=target, taken=True, kind=inst.kind)


@_register("syscall")
def _h_syscall(state, inst, pc):
    return Outcome(next_pc=pc + inst.length, syscall=True,
                   kind=Kind.SYSCALL)


@_register("hlt")
def _h_hlt(state, inst, pc):
    return Outcome(next_pc=pc + inst.length, halt=True, kind=Kind.HALT)


def _register_conditionals() -> None:
    from ..isa.instructions import COND_NAMES, Cond
    for cond in Cond:
        name = COND_NAMES[cond]
        _HANDLERS[f"j{name}"] = _h_jcc
        _HANDLERS[f"j{name}8"] = _h_jcc
        _HANDLERS[f"cmov{name}"] = _h_cmov
        _HANDLERS[f"set{name}"] = _h_set


_register_conditionals()


def execute(state: MachineState, instruction: Instruction,
            pc: int) -> Outcome:
    """Architecturally execute ``instruction`` fetched from ``pc``.

    Mutates ``state`` (registers, flags, memory) and returns an
    :class:`Outcome` describing control flow and traps.  ``state.rip``
    is *not* updated — the caller owns the program counter.
    """
    handler = _HANDLERS.get(instruction.mnemonic)
    if handler is None:  # pragma: no cover - table covers every opcode
        raise CpuError(f"no semantics for {instruction.mnemonic}")
    return handler(state, instruction, pc)


def covered_mnemonics() -> frozenset:
    """The set of mnemonics with semantics (for exhaustiveness tests)."""
    return frozenset(_HANDLERS)


# ======================================================================
# straight-line thunk compilers (decoded-window fast path)
# ======================================================================
# :func:`compile_straightline` specialises one *sequential* instruction
# into a bare ``state -> None`` callable with its operands, condition
# code and immediates bound at compile time, so the decoded-window fast
# path (:mod:`repro.cpu.decoded`) executes cached code without the
# per-instruction mnemonic lookup, operand unpacking and
# :class:`Outcome` allocation of :func:`execute`.
#
# Every compiler below MUST be architecturally identical to the handler
# of the same mnemonic (same flag math — the helpers ``_add``/``_sub``/
# ``_logic`` are shared on purpose — same masking, same trap behaviour).
# The differential suite in ``tests/test_fastpath_diff.py`` enforces
# this for the whole victim corpus; any mnemonic without a compiler
# transparently falls back to its generic handler.

ThunkCompiler = Callable[[Instruction, int], Callable[[MachineState], None]]

_COMPILERS: Dict[str, ThunkCompiler] = {}


def _compiler(*mnemonics: str):
    def wrap(function: ThunkCompiler) -> ThunkCompiler:
        for mnemonic in mnemonics:
            _COMPILERS[mnemonic] = function
        return function
    return wrap


@_compiler("nop", "lfence")
def _c_nop(inst, pc):
    def thunk(state):
        return None
    return thunk


@_compiler("cmc")
def _c_cmc(inst, pc):
    def thunk(state):
        flags = state.regs.flags
        flags.cf = not flags.cf
    return thunk


@_compiler("mov")
def _c_mov(inst, pc):
    dst, src = inst.operands

    def thunk(state):
        values = state.regs._values
        values[dst] = values[src]
    return thunk


@_compiler("xchg")
def _c_xchg(inst, pc):
    dst, src = inst.operands

    def thunk(state):
        values = state.regs._values
        values[dst], values[src] = values[src], values[dst]
    return thunk


@_compiler("movi", "movabs")
def _c_movi(inst, pc):
    dst, imm = inst.operands
    imm &= MASK64

    def thunk(state):
        state.regs._values[dst] = imm
    return thunk


@_compiler("load", "loadw")
def _c_load(inst, pc):
    dst, base, disp = inst.operands

    def thunk(state):
        values = state.regs._values
        values[dst] = state.memory.read_u64((values[base] + disp) & MASK64)
    return thunk


@_compiler("store", "storew")
def _c_store(inst, pc):
    base, src, disp = inst.operands

    def thunk(state):
        values = state.regs._values
        state.memory.write_u64((values[base] + disp) & MASK64, values[src])
    return thunk


@_compiler("lea")
def _c_lea(inst, pc):
    dst, base, disp = inst.operands

    def thunk(state):
        values = state.regs._values
        values[dst] = (values[base] + disp) & MASK64
    return thunk


@_compiler("push")
def _c_push(inst, pc):
    src = inst.operands[0]

    def thunk(state):
        state.push(state.regs._values[src])
    return thunk


@_compiler("pop")
def _c_pop(inst, pc):
    dst = inst.operands[0]

    def thunk(state):
        state.regs._values[dst] = state.pop()
    return thunk


def _c_alu_rr(op):
    """Compiler for reg,reg ALU ops writing their result."""
    def compiler(inst, pc):
        dst, src = inst.operands

        def thunk(state):
            regs = state.regs
            values = regs._values
            values[dst] = op(regs.flags, values[dst], values[src])
        return thunk
    return compiler


def _c_alu_ri(op):
    """Compiler for reg,imm ALU ops writing their result."""
    def compiler(inst, pc):
        dst, imm = inst.operands
        imm &= MASK64

        def thunk(state):
            regs = state.regs
            values = regs._values
            values[dst] = op(regs.flags, values[dst], imm)
        return thunk
    return compiler


_COMPILERS["add"] = _c_alu_rr(_add)
_COMPILERS["sub"] = _c_alu_rr(_sub)
_COMPILERS["adc"] = _c_alu_rr(lambda f, a, b: _add(f, a, b, int(f.cf)))
_COMPILERS["sbb"] = _c_alu_rr(lambda f, a, b: _sub(f, a, b, int(f.cf)))
_COMPILERS["and"] = _c_alu_rr(lambda f, a, b: _logic(f, a & b))
_COMPILERS["or"] = _c_alu_rr(lambda f, a, b: _logic(f, a | b))
_COMPILERS["xor"] = _c_alu_rr(lambda f, a, b: _logic(f, a ^ b))

for _name in ("addi", "addi8"):
    _COMPILERS[_name] = _c_alu_ri(_add)
for _name in ("subi", "subi8"):
    _COMPILERS[_name] = _c_alu_ri(_sub)
for _name in ("andi", "andi8"):
    _COMPILERS[_name] = _c_alu_ri(lambda f, a, b: _logic(f, a & b))
for _name in ("ori", "ori8"):
    _COMPILERS[_name] = _c_alu_ri(lambda f, a, b: _logic(f, a | b))
for _name in ("xori", "xori8"):
    _COMPILERS[_name] = _c_alu_ri(lambda f, a, b: _logic(f, a ^ b))
del _name


@_compiler("cmp")
def _c_cmp(inst, pc):
    dst, src = inst.operands

    def thunk(state):
        regs = state.regs
        values = regs._values
        _sub(regs.flags, values[dst], values[src])
    return thunk


@_compiler("test")
def _c_test(inst, pc):
    dst, src = inst.operands

    def thunk(state):
        regs = state.regs
        values = regs._values
        _logic(regs.flags, values[dst] & values[src])
    return thunk


@_compiler("cmpi", "cmpi8")
def _c_cmpi(inst, pc):
    dst, imm = inst.operands
    imm &= MASK64

    def thunk(state):
        regs = state.regs
        _sub(regs.flags, regs._values[dst], imm)
    return thunk


@_compiler("testi")
def _c_testi(inst, pc):
    dst, imm = inst.operands
    imm &= MASK64

    def thunk(state):
        regs = state.regs
        _logic(regs.flags, regs._values[dst] & imm)
    return thunk


@_compiler("inc")
def _c_inc(inst, pc):
    dst = inst.operands[0]

    def thunk(state):
        flags = state.regs.flags
        values = state.regs._values
        carry = flags.cf                  # inc preserves CF
        result = _add(flags, values[dst], 1)
        flags.cf = carry
        values[dst] = result
    return thunk


@_compiler("dec")
def _c_dec(inst, pc):
    dst = inst.operands[0]

    def thunk(state):
        flags = state.regs.flags
        values = state.regs._values
        carry = flags.cf                  # dec preserves CF
        result = _sub(flags, values[dst], 1)
        flags.cf = carry
        values[dst] = result
    return thunk


@_compiler("neg")
def _c_neg(inst, pc):
    dst = inst.operands[0]

    def thunk(state):
        flags = state.regs.flags
        values = state.regs._values
        value = values[dst]
        result = _sub(flags, 0, value)
        flags.cf = value != 0
        values[dst] = result
    return thunk


@_compiler("not")
def _c_not(inst, pc):
    dst = inst.operands[0]

    def thunk(state):
        values = state.regs._values
        values[dst] = ~values[dst] & MASK64
    return thunk


@_compiler("shl")
def _c_shl(inst, pc):
    dst, imm = inst.operands
    count = imm & 63
    if count == 0:
        def thunk(state):
            return None
        return thunk

    def thunk(state):
        flags = state.regs.flags
        values = state.regs._values
        value = values[dst]
        flags.cf = bool((value >> (64 - count)) & 1)
        value = (value << count) & MASK64
        flags.of = False
        _set_zs(flags, value)
        values[dst] = value
    return thunk


@_compiler("shr")
def _c_shr(inst, pc):
    dst, imm = inst.operands
    count = imm & 63
    if count == 0:
        def thunk(state):
            return None
        return thunk

    def thunk(state):
        flags = state.regs.flags
        values = state.regs._values
        value = values[dst]
        flags.cf = bool((value >> (count - 1)) & 1)
        value >>= count
        flags.of = False
        _set_zs(flags, value)
        values[dst] = value
    return thunk


@_compiler("sar")
def _c_sar(inst, pc):
    dst, imm = inst.operands
    count = imm & 63
    if count == 0:
        def thunk(state):
            return None
        return thunk

    def thunk(state):
        flags = state.regs.flags
        values = state.regs._values
        value = values[dst]
        signed = to_signed(value)
        flags.cf = bool((value >> (count - 1)) & 1)
        value = (signed >> count) & MASK64
        flags.of = False
        _set_zs(flags, value)
        values[dst] = value
    return thunk


@_compiler("imul")
def _c_imul(inst, pc):
    dst, src = inst.operands

    def thunk(state):
        flags = state.regs.flags
        values = state.regs._values
        product = to_signed(values[dst]) * to_signed(values[src])
        result = product & MASK64
        overflow = to_signed(result) != product
        flags.cf = overflow
        flags.of = overflow
        _set_zs(flags, result)
        values[dst] = result
    return thunk


@_compiler("mul")
def _c_mul(inst, pc):
    src = inst.operands[0]

    def thunk(state):
        flags = state.regs.flags
        values = state.regs._values
        product = values[0] * values[src]     # rax * src
        low = product & MASK64
        high = (product >> 64) & MASK64
        values[0] = low                       # rax
        values[2] = high                      # rdx
        flags.cf = high != 0
        flags.of = high != 0
        _set_zs(flags, low)
    return thunk


@_compiler("div")
def _c_div(inst, pc):
    src = inst.operands[0]

    def thunk(state):
        values = state.regs._values
        divisor = values[src]
        if divisor == 0:
            raise DivideError(f"divide by zero at {pc:#x}")
        numerator = (values[2] << 64) | values[0]
        quotient = numerator // divisor
        if quotient > MASK64:
            raise DivideError(f"divide overflow at {pc:#x}")
        values[0] = quotient
        values[2] = numerator % divisor
    return thunk


def _c_cmov(inst, pc):
    dst, src = inst.operands
    cond = inst.spec.cond

    def thunk(state):
        regs = state.regs
        if evaluate_cond(cond, regs.flags):
            values = regs._values
            values[dst] = values[src]
    return thunk


def _c_set(inst, pc):
    dst = inst.operands[0]
    cond = inst.spec.cond

    def thunk(state):
        regs = state.regs
        regs._values[dst] = 1 if evaluate_cond(cond, regs.flags) else 0
    return thunk


def _register_conditional_compilers() -> None:
    from ..isa.instructions import COND_NAMES, Cond
    for cond in Cond:
        name = COND_NAMES[cond]
        _COMPILERS[f"cmov{name}"] = _c_cmov
        _COMPILERS[f"set{name}"] = _c_set


_register_conditional_compilers()


def _c_generic(instruction: Instruction, pc: int):
    """Fallback thunk: the generic handler, Outcome discarded."""
    handler = _HANDLERS[instruction.mnemonic]

    def thunk(state):
        handler(state, instruction, pc)
    return thunk


def compile_straightline(instruction: Instruction,
                         pc: int) -> Callable[[MachineState], None]:
    """Compile one *sequential* instruction into a specialised thunk.

    The caller (the decoded-window builder) guarantees
    ``instruction.kind is Kind.SEQUENTIAL``; control transfers,
    ``syscall`` and ``hlt`` terminate windows and always go through
    :func:`execute`.
    """
    compiler = _COMPILERS.get(instruction.mnemonic, _c_generic)
    return compiler(instruction, pc)
