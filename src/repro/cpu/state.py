"""Architectural machine state: registers + memory + program counter.

One :class:`MachineState` belongs to one process (or enclave thread).
The micro-architectural state (BTB, LBR, cycle counter) lives in the
:class:`~repro.cpu.core.Core` and is *shared* between processes on the
same core — that sharing is the side channel.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..isa.registers import RSP, RegisterFile
from ..memory.memory import VirtualMemory


class MachineState:
    """Registers, flags, memory and RIP for one hardware thread."""

    __slots__ = ("regs", "memory", "rip")

    def __init__(self, memory: Optional[VirtualMemory] = None,
                 rip: int = 0):
        self.regs = RegisterFile()
        self.memory = memory if memory is not None else VirtualMemory()
        self.rip = rip

    # ------------------------------------------------------------------
    # stack helpers
    # ------------------------------------------------------------------
    @property
    def rsp(self) -> int:
        return self.regs.read(RSP)

    @rsp.setter
    def rsp(self, value: int) -> None:
        self.regs.write(RSP, value)

    def push(self, value: int) -> None:
        self.rsp = self.rsp - 8
        self.memory.write_u64(self.rsp, value)

    def pop(self) -> int:
        value = self.memory.read_u64(self.rsp)
        self.rsp = self.rsp + 8
        return value

    def setup_stack(self, top: int, size: int = 64 * 1024) -> None:
        """Map a stack region ending at ``top`` and point RSP at it."""
        self.memory.map_range(top - size, size, "rw")
        self.rsp = top

    # ------------------------------------------------------------------
    # checkpoint/restore (deterministic replay for multi-pass attacks)
    # ------------------------------------------------------------------
    def snapshot_registers(self) -> Dict[str, int]:
        snap = self.regs.snapshot()
        snap["__rip__"] = self.rip
        return snap

    def restore_registers(self, snapshot: Dict[str, int]) -> None:
        clean = dict(snapshot)
        self.rip = clean.pop("__rip__")
        self.regs.restore(clean)

    def __repr__(self) -> str:
        return f"MachineState(rip={self.rip:#x})"
