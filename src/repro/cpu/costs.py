"""Shared issue-cost and fusion-holdback tables.

Single source of truth for the per-mnemonic cycle charges and the
"which instructions can write memory" set.  Both the generic loop in
:class:`repro.cpu.core.Core` and the decoded-window builder in
:mod:`repro.cpu.decoded` consult these tables; keeping one copy is what
makes the cached per-item costs provably identical to what the slow
path would charge (``tests/test_costs.py`` asserts it per mnemonic).
"""

from __future__ import annotations

from typing import Dict

#: extra issue cost for slow instructions, in cycles, added on top of
#: the generation's base issue cost (1 / issue_width).  Mnemonics not
#: listed here cost the base issue cost only.
EXTRA_ISSUE_COST: Dict[str, float] = {
    "mul": 2.0, "imul": 2.0, "div": 20.0,
    "load": 1.0, "loadw": 1.0, "store": 1.0, "storew": 1.0,
    "syscall": 50.0, "lfence": 10.0,
}

#: mnemonics that can modify memory — windows containing one re-check
#: the code generation after every item so self-modifying code bails
#: out mid-window instead of running stale decodes.
MEM_WRITERS = frozenset({"store", "storew", "push"})


def extra_cost(mnemonic: str) -> float:
    """The extra issue cycles charged for ``mnemonic`` (0.0 for most)."""
    return EXTRA_ISSUE_COST.get(mnemonic, 0.0)
