"""CPU model: BTB (with the paper's two takeaways), prediction-window
front end with cycle accounting, LBR, macro-fusion, speculative
look-ahead, and a fast ground-truth interpreter."""

from .btb import BTB, BTBEntry, BTBStats
from .config import (
    CpuGeneration,
    DEFAULT_GENERATION,
    GENERATIONS,
    generation,
)
from .core import Core, RunResult, StopReason
from .decoded import (
    DecodedWindow,
    Superblock,
    SuperblockLink,
    build_superblock,
    build_window,
    fast_path_enabled,
    get_window,
    set_fast_path,
)
from .fusion import can_fuse
from .interp import InterpResult, InterpStop, interpret, run_function
from .lbr import LBR, LbrRecord
from .semantics import Outcome, execute
from .state import MachineState
from .vector import VectorGroup, VectorLane, run_many_seeds

__all__ = [
    "BTB",
    "BTBEntry",
    "BTBStats",
    "Core",
    "CpuGeneration",
    "DEFAULT_GENERATION",
    "DecodedWindow",
    "GENERATIONS",
    "Superblock",
    "SuperblockLink",
    "VectorGroup",
    "VectorLane",
    "build_superblock",
    "build_window",
    "fast_path_enabled",
    "get_window",
    "set_fast_path",
    "InterpResult",
    "InterpStop",
    "LBR",
    "LbrRecord",
    "MachineState",
    "Outcome",
    "RunResult",
    "StopReason",
    "can_fuse",
    "execute",
    "generation",
    "interpret",
    "run_function",
    "run_many_seeds",
]
