"""Vectorized many-seeds execution: N lockstep runs, decode once.

A campaign multiplies *seeds*: the same victim binary executed under N
different inputs.  Decode artifacts — icache fills and decoded-window
builds (:mod:`repro.cpu.decoded`) — depend only on the code bytes,
which every seed shares, so a :class:`VectorGroup` steps N lanes in
lockstep through **shared** decode state: the first lane to touch a PC
decodes it, every other lane executes the cached result.  Superblock
caches are deliberately *not* shared: a superblock pins the owning
core's BTB (per-set generation signature), and each lane has its own
BTB — sharing would make every lane invalidate every other lane's
chains on each dispatch.

Determinism argument
--------------------
Lane isolation is complete for everything observable: registers, data
pages, page tables, BTB, LBR, cycle accounting all live per lane.  The
only shared objects are content-addressed decode artifacts validated
by ``code_generation`` stamps, so lockstep results are bit-identical
to running each lane alone *provided every lane's code bytes are
identical whenever their generation stamps agree*.  The group enforces
that invariant structurally:

* at construction, all lanes must report the same ``code_generation``
  (same load sequence, same image — data inputs may differ freely);
* after every turn, any lane whose generation moved (a seed-dependent
  self-modifying write, a page map/unmap) raises
  :class:`VectorizationError` instead of silently publishing its
  rebuilt windows to sibling lanes.

Victims that self-modify identically across seeds could in principle
keep sharing; the group refuses anyway — the failure mode (one lane
executing another lane's bytes) is silent corruption, and the victims
this mode exists for (traversal sweeps, §5 campaigns) never write
their code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from .. import telemetry
from ..errors import VectorizationError
from .core import Core, RunResult, StopReason
from .state import MachineState

#: retire units per lane per lockstep turn.  Large enough that the
#: per-turn ``Core.run`` entry/exit cost is noise, small enough that
#: lanes stay interleaved (a cold PC decoded by one lane is warm for
#: the rest within the same phase of the victim).
DEFAULT_STRIDE = 16_384


@dataclass
class VectorLane:
    """One seed's run: private core + state, shared decode caches."""

    index: int
    seed: Optional[int]
    core: Core
    state: MachineState
    #: per-lane instruction guard handed to every ``Core.run`` turn
    max_instructions: Optional[int] = None
    finished: bool = False
    instructions: int = 0
    #: stop reason of the final turn (HALT unless a handler ended it)
    reason: Optional[StopReason] = None

    @property
    def memory(self):
        return self.state.memory


#: a syscall handler: return True to resume the lane, False to finish
#: it (the lane's ``reason`` stays SYSCALL).
SyscallHandler = Callable[[VectorLane, RunResult], bool]


class VectorGroup:
    """N lanes stepping in lockstep through shared decode state."""

    def __init__(self, lanes: List[VectorLane]):
        if not lanes:
            raise VectorizationError("a vector group needs >= 1 lane")
        generations = {lane.memory.code_generation for lane in lanes}
        if len(generations) != 1:
            raise VectorizationError(
                f"lanes disagree on code_generation at share time "
                f"({sorted(generations)}); all lanes must load the "
                f"same image the same way")
        self.lanes = lanes
        lead = lanes[0].memory
        for lane in lanes[1:]:
            memory = lane.memory
            memory.icache = lead.icache
            memory.window_cache = lead.window_cache
            # superblock_cache stays per-lane: chains pin the owning
            # core's BTB and validate against its set generations.
        self._generation = lead.code_generation
        telemetry.count("cpu.vector.lanes", len(lanes))

    def _check_generation(self, lane: VectorLane) -> None:
        generation = lane.memory.code_generation
        if generation != self._generation:
            raise VectorizationError(
                f"lane {lane.index} (seed={lane.seed}) moved "
                f"code_generation {self._generation} -> {generation} "
                f"mid-run; self-modifying victims cannot share decode "
                f"state across seeds")

    def run(self, *, stride: int = DEFAULT_STRIDE,
            collect_trace: bool = False,
            on_syscall: Optional[SyscallHandler] = None
            ) -> List[VectorLane]:
        """Round-robin every lane in ``stride``-retire turns until all
        lanes halt (or a handler finishes them).  Returns the lanes.

        Each turn is an ordinary ``Core.run`` slice, so per-lane
        behaviour — cycles, traces, BTB, LBR, stop reasons — is exactly
        what the same slicing would produce stand-alone; only decode
        work is amortized across lanes.
        """
        if stride < 1:
            raise VectorizationError("stride must be >= 1")
        active = [lane for lane in self.lanes if not lane.finished]
        while active:
            telemetry.count("cpu.vector.turns")
            still_active: List[VectorLane] = []
            for lane in active:
                result = lane.core.run(
                    lane.state, collect_trace=collect_trace,
                    max_retired=stride,
                    max_instructions=lane.max_instructions)
                lane.instructions += result.instructions
                lane.reason = result.reason
                self._check_generation(lane)
                if result.reason is StopReason.RETIRE_LIMIT:
                    still_active.append(lane)
                    continue
                if (result.reason is StopReason.SYSCALL
                        and on_syscall is not None
                        and on_syscall(lane, result)):
                    still_active.append(lane)
                    continue
                lane.finished = True
            active = still_active
        return self.lanes


def run_many_seeds(make_lane: Callable[[int, int], VectorLane],
                   seeds: List[int], *,
                   stride: int = DEFAULT_STRIDE,
                   collect_trace: bool = False,
                   on_syscall: Optional[SyscallHandler] = None,
                   vectorize: bool = True) -> List[VectorLane]:
    """Run one lane per seed; lockstep+shared when ``vectorize``.

    ``make_lane(index, seed)`` builds a fresh lane.  With
    ``vectorize=False`` the same lanes run sequentially with *private*
    caches and the same ``stride`` slicing — the N×1 reference the
    vectorized mode is benchmarked (and differentially tested)
    against: architectural and micro-architectural results are
    bit-identical either way.
    """
    lanes = [make_lane(index, seed) for index, seed in enumerate(seeds)]
    if vectorize:
        VectorGroup(lanes).run(stride=stride, collect_trace=collect_trace,
                               on_syscall=on_syscall)
        return lanes
    for lane in lanes:
        VectorGroup([lane]).run(stride=stride, collect_trace=collect_trace,
                                on_syscall=on_syscall)
    return lanes
