"""NightVision reproduction (ISCA 2023).

A full-system simulation reproduction of *"All Your PC Are Belong to
Us: Exploiting Non-control-Transfer Instruction BTB Updates for
Dynamic PC Extraction"* (Yu, Jaeger, Fletcher).

Layers (bottom-up):

* :mod:`repro.isa` / :mod:`repro.memory` — a 64-bit ISA with
  x86-like instruction lengths, assembler/disassembler, paged sparse
  virtual memory;
* :mod:`repro.cpu` — the front-end model: a BTB implementing the
  paper's two reverse-engineered takeaways (range-semantics lookups,
  false-hit deallocation), prediction-window fetch with cycle
  accounting, LBR, macro-fusion, post-interrupt fetch-ahead and
  speculation;
* :mod:`repro.system` / :mod:`repro.sgx` — kernel, scheduler,
  enclaves with encrypted code (PCL), SGX-Step, controlled channels;
* :mod:`repro.lang` / :mod:`repro.victims` / :mod:`repro.defenses` —
  a mini-compiler (O0/O2/O3 + defense passes), the mbedTLS-style GCD
  and IPP-style bn_cmp victims, and every defense the paper defeats
  (plus the ones that work);
* :mod:`repro.core` — **NightVision itself**: NV-Core prime+probe,
  NV-U, NV-S with full dynamic-PC-trace extraction;
* :mod:`repro.fingerprint` / :mod:`repro.experiments` — use case 2
  and the harnesses reproducing every figure and table.

Quick start::

    from repro.experiments import run_figure2
    result = run_figure2()
    print(result.findings["boundary_correct"])   # True

See README.md for the full tour and DESIGN.md for the
paper-to-module map.
"""

__version__ = "1.0.0"

from . import (  # noqa: F401  (re-exported subpackages)
    analysis,
    core,
    cpu,
    defenses,
    errors,
    experiments,
    faults,
    fingerprint,
    isa,
    lang,
    memory,
    runner,
    sgx,
    system,
    telemetry,
    victims,
)

__all__ = [
    "__version__",
    "analysis",
    "core",
    "cpu",
    "defenses",
    "errors",
    "experiments",
    "faults",
    "fingerprint",
    "isa",
    "lang",
    "memory",
    "runner",
    "sgx",
    "system",
    "telemetry",
    "victims",
]
