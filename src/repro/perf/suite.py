"""Perf-regression microbenchmark suite (``repro bench``).

Five workloads cover the simulator's hot loops:

* ``interp_straightline`` — the functional oracle on a long
  straight-line ALU loop (the decoded-window fast path's best case);
* ``core_loop`` — the cycle-accounted core on the same kind of loop
  (fast path plus full BTB/LBR/fusion machinery);
* ``core_traversal_e2e`` — a complete GCD-victim run through
  ``Core.run`` with trace collection, the paper's Figure 10/12 shape;
* ``many_seeds`` — N seeds of the GCD victim: vectorized lockstep with
  shared decode state (:mod:`repro.cpu.vector`) on the fast side, N×1
  sequential private-cache runs on the slow side;
* ``campaign_smoke`` — one registered experiment end-to-end
  (``fig2``), i.e. the unit of work campaigns multiply.

Each workload runs both sides — decoded-window fast path forced *off*,
then forced *on* — so every report carries its own control.  Every
side takes one untimed warmup run and then best-of-K timed runs
(recorded as ``{median, min, runs}``); the **speedup ratio** (slow
``min`` over fast ``min``, same machine, same process) is the number
the CI gate enforces.  Minima are compared because timing noise on a
shared box is one-sided — preemption and thermal throttling only ever
add time — so the single-timing ratios the gate used to compare
flapped by 25%+ purely from variance.

``run_suite`` returns a JSON-ready payload; ``write_report`` persists
it through the crash-safe atomic writer; ``compare_to_baseline``
implements the regression gate used by the ``perf-smoke`` CI job.
"""

from __future__ import annotations

import argparse
import json
import random
import statistics
import sys
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from .. import telemetry
from ..cpu import (Core, MachineState, StopReason, fast_path_enabled,
                   interpret, set_fast_path)
from ..cpu.config import DEFAULT_GENERATION
from ..isa.assembler import Assembler
from ..memory.memory import VirtualMemory

#: bump when the payload layout changes incompatibly.
#: v2: per-side ``{median, min, runs}`` timing records (best-of-K with
#: warmup) and the ``many_seeds`` vectorized workload.
SCHEMA_VERSION = 2

#: default regression threshold for baseline comparison (25%)
DEFAULT_THRESHOLD = 0.25

#: budget for telemetry-enabled runtime overhead on the core hot loop.
#: Disabled mode does strictly less work at every instrumentation site
#: (a single ``is None`` check at most), so gating the *enabled* cost
#: below this bound also bounds the disabled cost from above.
TELEMETRY_THRESHOLD = 0.03


def _side_payload(runs: List[float]) -> Dict[str, object]:
    return {
        "median": round(statistics.median(runs), 6),
        "min": round(min(runs), 6),
        "runs": [round(sample, 6) for sample in runs],
    }


@dataclass
class BenchResult:
    """One workload's paired (slow, fast) best-of-K measurement."""

    name: str
    unit: str                 # what ``work`` counts
    work: int                 # work items per measured run
    slow_runs: List[float]    # timed samples, fast path off
    fast_runs: List[float]    # timed samples, fast path on

    @property
    def slow_seconds(self) -> float:
        return min(self.slow_runs) if self.slow_runs else 0.0

    @property
    def fast_seconds(self) -> float:
        return min(self.fast_runs) if self.fast_runs else 0.0

    @property
    def slow_rate(self) -> float:
        return self.work / self.slow_seconds if self.slow_seconds else 0.0

    @property
    def fast_rate(self) -> float:
        return self.work / self.fast_seconds if self.fast_seconds else 0.0

    @property
    def speedup(self) -> float:
        return (self.slow_seconds / self.fast_seconds
                if self.fast_seconds else 0.0)

    def payload(self) -> Dict[str, object]:
        return {
            "unit": self.unit,
            "work": self.work,
            "slow": _side_payload(self.slow_runs),
            "fast": _side_payload(self.fast_runs),
            "slow_rate": round(self.slow_rate, 1),
            "fast_rate": round(self.fast_rate, 1),
            "speedup": round(self.speedup, 3),
        }


def _measure(workload: Callable[[], int], *,
             rounds: int) -> Tuple[int, List[float], List[float]]:
    """Time ``workload`` with the fast path forced off, then on.

    Each side runs once untimed (cache warmup — the steady state is
    what the ratio gate tracks, and the first run's build cost is the
    noisiest sample of all) and then ``rounds`` timed runs.  Returns
    ``(work, slow_runs, fast_runs)``; consumers reduce the run lists
    (the suite's gate ratio uses the minima — noise is one-sided).
    """
    work = 0
    slow_runs: List[float] = []
    fast_runs: List[float] = []
    for enabled, samples in ((False, slow_runs), (True, fast_runs)):
        previous = set_fast_path(enabled)
        try:
            workload()                      # warmup, untimed
            for _ in range(rounds):
                started = time.perf_counter()
                work = workload()
                samples.append(time.perf_counter() - started)
        finally:
            set_fast_path(previous)
    return work, slow_runs, fast_runs


# ----------------------------------------------------------------------
# workloads
# ----------------------------------------------------------------------
def _straightline_program(iterations: int):
    """A loop whose body is a long run of sequential ALU/mem work —
    several full 32-byte windows between conditional branches."""
    asm = Assembler(base=0x0040_1000)
    asm.emit("movi", "rcx", iterations)
    asm.emit("movi", "rax", 0)
    asm.emit("movi", "rsi", 0x0090_0000)
    asm.label("loop")
    for _ in range(4):
        asm.emit("addi8", "rax", 7)
        asm.emit("xor", "rdx", "rdx")
        asm.emit("add", "rdx", "rax")
        asm.emit("shl", "rdx", 1)
        asm.emit("sub", "rdx", "rax")
        asm.emit("store", "rsi", "rdx", 0)
        asm.emit("load", "rbx", "rsi", 0)
        asm.emit("subi8", "rax", 3)
    asm.emit("dec", "rcx")
    asm.emit("jne8", "loop")
    asm.emit("hlt")
    return asm.assemble()


def _fresh_state(program) -> MachineState:
    memory = VirtualMemory()
    program.load_into(memory)
    memory.map_range(0x0090_0000, 4096, "rw")
    state = MachineState(memory, rip=program.entry)
    state.setup_stack(0x7FFF_0000)
    return state


def _bench_interp_straightline(quick: bool) -> BenchResult:
    program = _straightline_program(4_000 if quick else 20_000)

    def workload() -> int:
        state = _fresh_state(program)
        result = interpret(state, collect_trace=False,
                           max_instructions=50_000_000)
        return result.instructions

    work, slow, fast = _measure(workload, rounds=2 if quick else 3)
    return BenchResult("interp_straightline", "instructions", work,
                       slow, fast)


def _bench_core_loop(quick: bool) -> BenchResult:
    program = _straightline_program(1_000 if quick else 5_000)

    def workload() -> int:
        state = _fresh_state(program)
        core = Core()
        result = core.run(state)
        return result.instructions

    work, slow, fast = _measure(workload, rounds=2 if quick else 3)
    return BenchResult("core_loop", "instructions", work, slow, fast)


def _bench_core_traversal(quick: bool) -> BenchResult:
    from ..victims.library import build_gcd_victim

    victim = build_gcd_victim(nlimbs=2 if quick else 4)
    bits = victim.nlimbs * 64 - 2
    inputs = {
        "ta": (0x6DB6_DB6D_B6DB_6DB7 << (bits - 63)) | 0x1_0001,
        "tb": (0x5A5A_5A5A_5A5A_5A5B << (bits - 63)) | 0x3,
    }

    def workload() -> int:
        memory = victim.new_memory(inputs)
        state = MachineState(memory)
        state.setup_stack(0x7FFF_0000_0000)
        state.rip = victim.compiled.start
        core = Core(DEFAULT_GENERATION)
        executed = 0
        while True:
            result = core.run(state, collect_trace=True,
                              max_instructions=5_000_000)
            executed += result.instructions
            if result.reason is StopReason.SYSCALL:
                state.regs["rax"] = 0          # yields are no-ops
                continue
            if result.reason is StopReason.HALT:
                return executed
            raise RuntimeError(f"unexpected stop: {result.reason}")

    work, slow, fast = _measure(workload, rounds=2 if quick else 3)
    return BenchResult("core_traversal_e2e", "instructions", work,
                       slow, fast)


#: lanes in the ``many_seeds`` workload (the paper's campaigns sweep
#: seeds by the thousand; eight is enough to amortize shared decode)
MANY_SEEDS_LANES = 8


def _bench_many_seeds(quick: bool) -> BenchResult:
    """N seeds of the GCD victim, vectorized vs N×1 sequential.

    The fast side runs :class:`repro.cpu.vector.VectorGroup` — eight
    lanes in lockstep through shared icache/window state with the fast
    path on.  The slow side (fast path forced off by ``_measure``)
    runs the same eight lanes sequentially with private caches: the
    N×1 reference a campaign without ``--vectorize`` executes.
    Architectural results are bit-identical either way (pinned by
    ``tests/test_vector.py``); only the wall-clock differs.
    """
    from ..cpu.vector import VectorLane, run_many_seeds
    from ..victims.library import build_gcd_victim

    victim = build_gcd_victim(nlimbs=2 if quick else 4)
    bits = victim.nlimbs * 64 - 2

    def inputs_for(seed: int) -> Dict[str, int]:
        rng = random.Random(f"many-seeds:{seed}")
        return {
            "ta": rng.getrandbits(bits - 1) | (1 << (bits - 2)) | 1,
            "tb": rng.getrandbits(bits - 1) | (1 << (bits - 2)) | 1,
        }

    def make_lane(index: int, seed: int) -> VectorLane:
        memory = victim.new_memory(inputs_for(seed))
        state = MachineState(memory)
        state.setup_stack(0x7FFF_0000_0000)
        state.rip = victim.compiled.start
        return VectorLane(index=index, seed=seed,
                          core=Core(DEFAULT_GENERATION), state=state,
                          max_instructions=5_000_000)

    def on_syscall(lane: VectorLane, result) -> bool:
        lane.state.regs["rax"] = 0         # yields are no-ops
        return True

    def workload() -> int:
        lanes = run_many_seeds(make_lane, list(range(MANY_SEEDS_LANES)),
                               collect_trace=True, on_syscall=on_syscall,
                               vectorize=fast_path_enabled())
        for lane in lanes:
            if lane.reason is not StopReason.HALT:
                raise RuntimeError(f"unexpected stop: {lane.reason}")
        return sum(lane.instructions for lane in lanes)

    work, slow, fast = _measure(workload, rounds=2)
    return BenchResult("many_seeds", "instructions", work, slow, fast)


def _bench_campaign_smoke(quick: bool) -> BenchResult:
    from ..experiments.common import RunRequest, run_experiment

    def workload() -> int:
        output = run_experiment("fig2", RunRequest(fast=True, seed=0))
        return 1 if output else 0

    work, slow, fast = _measure(workload, rounds=2)
    return BenchResult("campaign_smoke", "runs", work, slow, fast)


_WORKLOADS: Tuple[Callable[[bool], BenchResult], ...] = (
    _bench_interp_straightline,
    _bench_core_loop,
    _bench_core_traversal,
    _bench_many_seeds,
    _bench_campaign_smoke,
)


# ----------------------------------------------------------------------
# telemetry overhead
# ----------------------------------------------------------------------
def measure_telemetry_overhead(*, quick: bool = False
                               ) -> Dict[str, object]:
    """Pair the core hot loop with telemetry off (no sink — the
    default) against a counters-only session.

    Rounds interleave the two modes and each side keeps its best time,
    so scheduler jitter cancels instead of accumulating on one side.
    The returned ``overhead`` is ``enabled/disabled - 1``; the sampled
    counter snapshot documents what the enabled run recorded.
    """
    program = _straightline_program(1_000 if quick else 5_000)

    def workload() -> int:
        state = _fresh_state(program)
        core = Core()
        return core.run(state).instructions

    rounds = 3 if quick else 5
    disabled_s = float("inf")
    enabled_s = float("inf")
    work = 0
    counters: Dict[str, int] = {}
    previous = set_fast_path(True)
    try:
        workload()                       # warm the decode caches
        for _ in range(rounds):
            started = time.perf_counter()
            work = workload()
            disabled_s = min(disabled_s,
                             time.perf_counter() - started)
            with telemetry.session() as sink:
                started = time.perf_counter()
                work = workload()
                enabled_s = min(enabled_s,
                                time.perf_counter() - started)
            counters = sink.snapshot()
    finally:
        set_fast_path(previous)
    overhead = (enabled_s / disabled_s - 1.0) if disabled_s else 0.0
    return {
        "unit": "instructions",
        "work": work,
        "disabled_seconds": round(disabled_s, 6),
        "enabled_seconds": round(enabled_s, 6),
        "overhead": round(overhead, 4),
        "counters": counters,
    }


def check_telemetry_overhead(payload: Dict[str, object],
                             threshold: float = TELEMETRY_THRESHOLD
                             ) -> List[str]:
    """The <3% gate: telemetry-enabled runtime must stay within
    ``threshold`` of the disabled runtime (which upper-bounds the
    disabled-mode cost — see :data:`TELEMETRY_THRESHOLD`).  Returns
    human-readable failures; empty means pass."""
    info = payload.get("telemetry")
    if not isinstance(info, dict):
        return ["telemetry: overhead section missing from report"]
    overhead = float(info.get("overhead", 0.0))
    if overhead > threshold:
        return [f"telemetry: enabled-mode overhead {overhead:.1%} "
                f"exceeds the {threshold:.0%} budget"]
    return []


# ----------------------------------------------------------------------
# suite driver
# ----------------------------------------------------------------------
def run_suite(*, quick: bool = False,
              echo: Optional[Callable[[str], None]] = None
              ) -> Dict[str, object]:
    """Run every workload; return the ``BENCH_perf.json`` payload."""
    say = echo if echo is not None else (lambda line: None)
    benchmarks: Dict[str, object] = {}
    for bench in _WORKLOADS:
        result = bench(quick)
        benchmarks[result.name] = result.payload()
        say(f"{result.name:24s} slow {result.slow_rate:12.1f} "
            f"{result.unit}/s  fast {result.fast_rate:12.1f} "
            f"{result.unit}/s  speedup {result.speedup:5.2f}x")
    overhead = measure_telemetry_overhead(quick=quick)
    say(f"{'telemetry_overhead':24s} disabled "
        f"{overhead['disabled_seconds']:.6f}s  enabled "
        f"{overhead['enabled_seconds']:.6f}s  overhead "
        f"{float(overhead['overhead']):+.1%}")
    return {
        "schema": SCHEMA_VERSION,
        "suite": "perf",
        "quick": quick,
        "benchmarks": benchmarks,
        "telemetry": overhead,
    }


def write_report(payload: Dict[str, object], path: str):
    from ..storage import atomic_write_json
    return atomic_write_json(path, payload)


def compare_to_baseline(current: Dict[str, object],
                        baseline: Dict[str, object],
                        threshold: float = DEFAULT_THRESHOLD
                        ) -> List[str]:
    """Regression check: every speedup ratio present in both reports
    must be within ``threshold`` of the baseline's.  Ratios are used
    (not absolute rates) so baselines recorded on one machine gate runs
    on another.  Returns human-readable regression messages; empty
    means pass."""
    regressions: List[str] = []
    base_benches = baseline.get("benchmarks", {})
    cur_benches = current.get("benchmarks", {})
    for name, base in base_benches.items():
        cur = cur_benches.get(name)
        if cur is None:
            regressions.append(f"{name}: missing from current report")
            continue
        base_speedup = float(base.get("speedup", 0.0))
        cur_speedup = float(cur.get("speedup", 0.0))
        floor = base_speedup * (1.0 - threshold)
        if cur_speedup < floor:
            regressions.append(
                f"{name}: speedup {cur_speedup:.2f}x fell below "
                f"{floor:.2f}x (baseline {base_speedup:.2f}x "
                f"- {threshold:.0%} allowance)")
    return regressions


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro bench",
        description="simulator perf suite: fast path off vs on")
    parser.add_argument("--quick", action="store_true",
                        help="reduced iteration counts (CI smoke)")
    parser.add_argument("--out", default="BENCH_perf.json",
                        help="report path (default: BENCH_perf.json)")
    parser.add_argument("--profile", default=None, metavar="PATH",
                        help="also cProfile the suite and dump pstats "
                             "data to PATH")
    parser.add_argument("--compare", default=None, metavar="BASELINE",
                        help="diff speedup ratios against a baseline "
                             "report; non-zero exit on regression")
    parser.add_argument("--threshold", type=float,
                        default=DEFAULT_THRESHOLD,
                        help="allowed fractional speedup regression "
                             "(default: 0.25)")
    parser.add_argument("--telemetry-threshold", type=float,
                        default=TELEMETRY_THRESHOLD,
                        help="allowed fractional telemetry overhead "
                             "on the core hot loop (default: 0.03)")
    args = parser.parse_args(argv)

    def echo(line: str) -> None:
        print(line)

    if args.profile:
        import cProfile
        profiler = cProfile.Profile()
        profiler.enable()
        payload = run_suite(quick=args.quick, echo=echo)
        profiler.disable()
        profiler.dump_stats(args.profile)
        print(f"profile written to {args.profile}")
    else:
        payload = run_suite(quick=args.quick, echo=echo)

    path = write_report(payload, args.out)
    print(f"report written atomically to {path}")

    if args.compare:
        with open(args.compare) as handle:
            baseline = json.load(handle)
        regressions = compare_to_baseline(payload, baseline,
                                          args.threshold)
        regressions += check_telemetry_overhead(
            payload, args.telemetry_threshold)
        if regressions:
            for line in regressions:
                print(f"PERF REGRESSION: {line}", file=sys.stderr)
            return 1
        print(f"no regressions vs {args.compare} "
              f"(threshold {args.threshold:.0%}, telemetry "
              f"{args.telemetry_threshold:.0%})")
    return 0


if __name__ == "__main__":                        # pragma: no cover
    sys.exit(main())
