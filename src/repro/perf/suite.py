"""Perf-regression microbenchmark suite (``repro bench``).

Four workloads cover the simulator's hot loops:

* ``interp_straightline`` — the functional oracle on a long
  straight-line ALU loop (the decoded-window fast path's best case);
* ``core_loop`` — the cycle-accounted core on the same kind of loop
  (fast path plus full BTB/LBR/fusion machinery);
* ``core_traversal_e2e`` — a complete GCD-victim run through
  ``Core.run`` with trace collection, the paper's Figure 10/12 shape;
* ``campaign_smoke`` — one registered experiment end-to-end
  (``fig2``), i.e. the unit of work campaigns multiply.

Each workload runs twice per round — decoded-window fast path forced
*off*, then forced *on* — so every report carries its own control.
The **speedup ratio** (fast over slow, same machine, same process) is
the number the CI gate enforces: absolute instructions/second vary
with hardware, ratios do not.

``run_suite`` returns a JSON-ready payload; ``write_report`` persists
it through the crash-safe atomic writer; ``compare_to_baseline``
implements the regression gate used by the ``perf-smoke`` CI job.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from .. import telemetry
from ..cpu import Core, MachineState, StopReason, interpret, set_fast_path
from ..cpu.config import DEFAULT_GENERATION
from ..isa.assembler import Assembler
from ..memory.memory import VirtualMemory

#: bump when the payload layout changes incompatibly
SCHEMA_VERSION = 1

#: default regression threshold for baseline comparison (25%)
DEFAULT_THRESHOLD = 0.25

#: budget for telemetry-enabled runtime overhead on the core hot loop.
#: Disabled mode does strictly less work at every instrumentation site
#: (a single ``is None`` check at most), so gating the *enabled* cost
#: below this bound also bounds the disabled cost from above.
TELEMETRY_THRESHOLD = 0.03


@dataclass
class BenchResult:
    """One workload's paired (slow, fast) measurement."""

    name: str
    unit: str                 # what ``work`` counts
    work: int                 # work items per measured run
    slow_seconds: float
    fast_seconds: float

    @property
    def slow_rate(self) -> float:
        return self.work / self.slow_seconds if self.slow_seconds else 0.0

    @property
    def fast_rate(self) -> float:
        return self.work / self.fast_seconds if self.fast_seconds else 0.0

    @property
    def speedup(self) -> float:
        return (self.slow_seconds / self.fast_seconds
                if self.fast_seconds else 0.0)

    def payload(self) -> Dict[str, object]:
        return {
            "unit": self.unit,
            "work": self.work,
            "slow_seconds": round(self.slow_seconds, 6),
            "fast_seconds": round(self.fast_seconds, 6),
            "slow_rate": round(self.slow_rate, 1),
            "fast_rate": round(self.fast_rate, 1),
            "speedup": round(self.speedup, 3),
        }


def _measure(workload: Callable[[], int], *,
             rounds: int) -> Tuple[int, float, float]:
    """Best-of-``rounds`` timing of ``workload`` with the fast path
    forced off, then on.  Returns (work, slow_s, fast_s)."""
    work = 0
    slow_s = float("inf")
    fast_s = float("inf")
    for enabled, attr in ((False, "slow"), (True, "fast")):
        previous = set_fast_path(enabled)
        try:
            for _ in range(rounds):
                started = time.perf_counter()
                work = workload()
                elapsed = time.perf_counter() - started
                if attr == "slow":
                    slow_s = min(slow_s, elapsed)
                else:
                    fast_s = min(fast_s, elapsed)
        finally:
            set_fast_path(previous)
    return work, slow_s, fast_s


# ----------------------------------------------------------------------
# workloads
# ----------------------------------------------------------------------
def _straightline_program(iterations: int):
    """A loop whose body is a long run of sequential ALU/mem work —
    several full 32-byte windows between conditional branches."""
    asm = Assembler(base=0x0040_1000)
    asm.emit("movi", "rcx", iterations)
    asm.emit("movi", "rax", 0)
    asm.emit("movi", "rsi", 0x0090_0000)
    asm.label("loop")
    for _ in range(4):
        asm.emit("addi8", "rax", 7)
        asm.emit("xor", "rdx", "rdx")
        asm.emit("add", "rdx", "rax")
        asm.emit("shl", "rdx", 1)
        asm.emit("sub", "rdx", "rax")
        asm.emit("store", "rsi", "rdx", 0)
        asm.emit("load", "rbx", "rsi", 0)
        asm.emit("subi8", "rax", 3)
    asm.emit("dec", "rcx")
    asm.emit("jne8", "loop")
    asm.emit("hlt")
    return asm.assemble()


def _fresh_state(program) -> MachineState:
    memory = VirtualMemory()
    program.load_into(memory)
    memory.map_range(0x0090_0000, 4096, "rw")
    state = MachineState(memory, rip=program.entry)
    state.setup_stack(0x7FFF_0000)
    return state


def _bench_interp_straightline(quick: bool) -> BenchResult:
    program = _straightline_program(4_000 if quick else 20_000)

    def workload() -> int:
        state = _fresh_state(program)
        result = interpret(state, collect_trace=False,
                           max_instructions=50_000_000)
        return result.instructions

    work, slow_s, fast_s = _measure(workload, rounds=1 if quick else 2)
    return BenchResult("interp_straightline", "instructions", work,
                       slow_s, fast_s)


def _bench_core_loop(quick: bool) -> BenchResult:
    program = _straightline_program(1_000 if quick else 5_000)

    def workload() -> int:
        state = _fresh_state(program)
        core = Core()
        result = core.run(state)
        return result.instructions

    work, slow_s, fast_s = _measure(workload, rounds=1 if quick else 2)
    return BenchResult("core_loop", "instructions", work, slow_s, fast_s)


def _bench_core_traversal(quick: bool) -> BenchResult:
    from ..victims.library import build_gcd_victim

    victim = build_gcd_victim(nlimbs=2 if quick else 4)
    bits = victim.nlimbs * 64 - 2
    inputs = {
        "ta": (0x6DB6_DB6D_B6DB_6DB7 << (bits - 63)) | 0x1_0001,
        "tb": (0x5A5A_5A5A_5A5A_5A5B << (bits - 63)) | 0x3,
    }

    def workload() -> int:
        memory = victim.new_memory(inputs)
        state = MachineState(memory)
        state.setup_stack(0x7FFF_0000_0000)
        state.rip = victim.compiled.start
        core = Core(DEFAULT_GENERATION)
        executed = 0
        while True:
            result = core.run(state, collect_trace=True,
                              max_instructions=5_000_000)
            executed += result.instructions
            if result.reason is StopReason.SYSCALL:
                state.regs["rax"] = 0          # yields are no-ops
                continue
            if result.reason is StopReason.HALT:
                return executed
            raise RuntimeError(f"unexpected stop: {result.reason}")

    work, slow_s, fast_s = _measure(workload, rounds=1 if quick else 2)
    return BenchResult("core_traversal_e2e", "instructions", work,
                       slow_s, fast_s)


def _bench_campaign_smoke(quick: bool) -> BenchResult:
    from ..experiments.common import RunRequest, run_experiment

    def workload() -> int:
        output = run_experiment("fig2", RunRequest(fast=True, seed=0))
        return 1 if output else 0

    work, slow_s, fast_s = _measure(workload, rounds=1)
    return BenchResult("campaign_smoke", "runs", work, slow_s, fast_s)


_WORKLOADS: Tuple[Callable[[bool], BenchResult], ...] = (
    _bench_interp_straightline,
    _bench_core_loop,
    _bench_core_traversal,
    _bench_campaign_smoke,
)


# ----------------------------------------------------------------------
# telemetry overhead
# ----------------------------------------------------------------------
def measure_telemetry_overhead(*, quick: bool = False
                               ) -> Dict[str, object]:
    """Pair the core hot loop with telemetry off (no sink — the
    default) against a counters-only session.

    Rounds interleave the two modes and each side keeps its best time,
    so scheduler jitter cancels instead of accumulating on one side.
    The returned ``overhead`` is ``enabled/disabled - 1``; the sampled
    counter snapshot documents what the enabled run recorded.
    """
    program = _straightline_program(1_000 if quick else 5_000)

    def workload() -> int:
        state = _fresh_state(program)
        core = Core()
        return core.run(state).instructions

    rounds = 3 if quick else 5
    disabled_s = float("inf")
    enabled_s = float("inf")
    work = 0
    counters: Dict[str, int] = {}
    previous = set_fast_path(True)
    try:
        workload()                       # warm the decode caches
        for _ in range(rounds):
            started = time.perf_counter()
            work = workload()
            disabled_s = min(disabled_s,
                             time.perf_counter() - started)
            with telemetry.session() as sink:
                started = time.perf_counter()
                work = workload()
                enabled_s = min(enabled_s,
                                time.perf_counter() - started)
            counters = sink.snapshot()
    finally:
        set_fast_path(previous)
    overhead = (enabled_s / disabled_s - 1.0) if disabled_s else 0.0
    return {
        "unit": "instructions",
        "work": work,
        "disabled_seconds": round(disabled_s, 6),
        "enabled_seconds": round(enabled_s, 6),
        "overhead": round(overhead, 4),
        "counters": counters,
    }


def check_telemetry_overhead(payload: Dict[str, object],
                             threshold: float = TELEMETRY_THRESHOLD
                             ) -> List[str]:
    """The <3% gate: telemetry-enabled runtime must stay within
    ``threshold`` of the disabled runtime (which upper-bounds the
    disabled-mode cost — see :data:`TELEMETRY_THRESHOLD`).  Returns
    human-readable failures; empty means pass."""
    info = payload.get("telemetry")
    if not isinstance(info, dict):
        return ["telemetry: overhead section missing from report"]
    overhead = float(info.get("overhead", 0.0))
    if overhead > threshold:
        return [f"telemetry: enabled-mode overhead {overhead:.1%} "
                f"exceeds the {threshold:.0%} budget"]
    return []


# ----------------------------------------------------------------------
# suite driver
# ----------------------------------------------------------------------
def run_suite(*, quick: bool = False,
              echo: Optional[Callable[[str], None]] = None
              ) -> Dict[str, object]:
    """Run every workload; return the ``BENCH_perf.json`` payload."""
    say = echo if echo is not None else (lambda line: None)
    benchmarks: Dict[str, object] = {}
    for bench in _WORKLOADS:
        result = bench(quick)
        benchmarks[result.name] = result.payload()
        say(f"{result.name:24s} slow {result.slow_rate:12.1f} "
            f"{result.unit}/s  fast {result.fast_rate:12.1f} "
            f"{result.unit}/s  speedup {result.speedup:5.2f}x")
    overhead = measure_telemetry_overhead(quick=quick)
    say(f"{'telemetry_overhead':24s} disabled "
        f"{overhead['disabled_seconds']:.6f}s  enabled "
        f"{overhead['enabled_seconds']:.6f}s  overhead "
        f"{float(overhead['overhead']):+.1%}")
    return {
        "schema": SCHEMA_VERSION,
        "suite": "perf",
        "quick": quick,
        "benchmarks": benchmarks,
        "telemetry": overhead,
    }


def write_report(payload: Dict[str, object], path: str):
    from ..storage import atomic_write_json
    return atomic_write_json(path, payload)


def compare_to_baseline(current: Dict[str, object],
                        baseline: Dict[str, object],
                        threshold: float = DEFAULT_THRESHOLD
                        ) -> List[str]:
    """Regression check: every speedup ratio present in both reports
    must be within ``threshold`` of the baseline's.  Ratios are used
    (not absolute rates) so baselines recorded on one machine gate runs
    on another.  Returns human-readable regression messages; empty
    means pass."""
    regressions: List[str] = []
    base_benches = baseline.get("benchmarks", {})
    cur_benches = current.get("benchmarks", {})
    for name, base in base_benches.items():
        cur = cur_benches.get(name)
        if cur is None:
            regressions.append(f"{name}: missing from current report")
            continue
        base_speedup = float(base.get("speedup", 0.0))
        cur_speedup = float(cur.get("speedup", 0.0))
        floor = base_speedup * (1.0 - threshold)
        if cur_speedup < floor:
            regressions.append(
                f"{name}: speedup {cur_speedup:.2f}x fell below "
                f"{floor:.2f}x (baseline {base_speedup:.2f}x "
                f"- {threshold:.0%} allowance)")
    return regressions


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro bench",
        description="simulator perf suite: fast path off vs on")
    parser.add_argument("--quick", action="store_true",
                        help="reduced iteration counts (CI smoke)")
    parser.add_argument("--out", default="BENCH_perf.json",
                        help="report path (default: BENCH_perf.json)")
    parser.add_argument("--profile", default=None, metavar="PATH",
                        help="also cProfile the suite and dump pstats "
                             "data to PATH")
    parser.add_argument("--compare", default=None, metavar="BASELINE",
                        help="diff speedup ratios against a baseline "
                             "report; non-zero exit on regression")
    parser.add_argument("--threshold", type=float,
                        default=DEFAULT_THRESHOLD,
                        help="allowed fractional speedup regression "
                             "(default: 0.25)")
    parser.add_argument("--telemetry-threshold", type=float,
                        default=TELEMETRY_THRESHOLD,
                        help="allowed fractional telemetry overhead "
                             "on the core hot loop (default: 0.03)")
    args = parser.parse_args(argv)

    def echo(line: str) -> None:
        print(line)

    if args.profile:
        import cProfile
        profiler = cProfile.Profile()
        profiler.enable()
        payload = run_suite(quick=args.quick, echo=echo)
        profiler.disable()
        profiler.dump_stats(args.profile)
        print(f"profile written to {args.profile}")
    else:
        payload = run_suite(quick=args.quick, echo=echo)

    path = write_report(payload, args.out)
    print(f"report written atomically to {path}")

    if args.compare:
        with open(args.compare) as handle:
            baseline = json.load(handle)
        regressions = compare_to_baseline(payload, baseline,
                                          args.threshold)
        regressions += check_telemetry_overhead(
            payload, args.telemetry_threshold)
        if regressions:
            for line in regressions:
                print(f"PERF REGRESSION: {line}", file=sys.stderr)
            return 1
        print(f"no regressions vs {args.compare} "
              f"(threshold {args.threshold:.0%}, telemetry "
              f"{args.telemetry_threshold:.0%})")
    return 0


if __name__ == "__main__":                        # pragma: no cover
    sys.exit(main())
