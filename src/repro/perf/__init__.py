"""Performance measurement layer for the simulator.

:mod:`repro.perf.suite` is the microbenchmark suite behind
``repro bench`` and ``benchmarks/bench_perf_suite.py``: it times the
two execution engines with the decoded-window fast path forced off and
on, records absolute throughput plus the machine-independent speedup
ratios in ``BENCH_perf.json``, and can diff a run against a committed
baseline (the CI ``perf-smoke`` job's regression gate).
"""

from .suite import (BenchResult, compare_to_baseline, run_suite,
                    main, write_report)

__all__ = [
    "BenchResult",
    "compare_to_baseline",
    "main",
    "run_suite",
    "write_report",
]
