"""Page tables with permissions and accessed/dirty tracking.

The supervisor attacker in the paper manipulates exactly these bits:
controlled-channel attacks flip execute permission to learn the
page-granular PC trace, and call/ret classification (§6.4 step 1)
checks whether a suspected call/ret touched a *data* page via the
accessed bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Optional, Set, Tuple

from ..errors import PageFault
from .address import PAGE_SIZE, page_number


@dataclass
class PageEntry:
    """One page-table entry."""

    readable: bool = True
    writable: bool = False
    executable: bool = False
    accessed: bool = False
    dirty: bool = False

    def perms(self) -> str:
        return "".join((
            "r" if self.readable else "-",
            "w" if self.writable else "-",
            "x" if self.executable else "-",
        ))


def _parse_perms(perms: str) -> Tuple[bool, bool, bool]:
    unknown = set(perms) - set("rwx-")
    if unknown:
        raise ValueError(f"bad permission string {perms!r}")
    return "r" in perms, "w" in perms, "x" in perms


class PageTable:
    """Sparse map of virtual page number -> :class:`PageEntry`."""

    def __init__(self) -> None:
        self._entries: Dict[int, PageEntry] = {}
        #: bumped on map/unmap: remapping changes what bytes live at an
        #: address, so cached decodes keyed on the code generation
        #: (:mod:`repro.cpu.decoded`) must re-verify.  ``set_perms``
        #: deliberately leaves it alone — permissions are enforced at
        #: execution time, and the controlled-channel attacker flips
        #: them on every single step.
        self.epoch = 0

    def map_page(self, vpn: int, perms: str = "rw") -> PageEntry:
        readable, writable, executable = _parse_perms(perms)
        entry = PageEntry(readable, writable, executable)
        self._entries[vpn] = entry
        self.epoch += 1
        return entry

    def unmap_page(self, vpn: int) -> None:
        if self._entries.pop(vpn, None) is not None:
            self.epoch += 1

    def entry(self, vpn: int) -> Optional[PageEntry]:
        return self._entries.get(vpn)

    def entry_for_address(self, address: int) -> Optional[PageEntry]:
        return self._entries.get(page_number(address))

    def is_mapped(self, address: int) -> bool:
        return page_number(address) in self._entries

    def set_perms(self, vpn: int, perms: str) -> None:
        entry = self._entries.get(vpn)
        if entry is None:
            raise PageFault(vpn * PAGE_SIZE, "read",
                            f"set_perms on unmapped page {vpn:#x}")
        entry.readable, entry.writable, entry.executable = _parse_perms(perms)

    def check(self, address: int, access: str) -> PageEntry:
        """Permission-check one byte; sets accessed/dirty on success."""
        entry = self._entries.get(page_number(address))
        if entry is None:
            raise PageFault(address, access, "unmapped page")
        if access == "read" and not entry.readable:
            raise PageFault(address, access)
        if access == "write" and not entry.writable:
            raise PageFault(address, access)
        if access == "execute" and not entry.executable:
            raise PageFault(address, access)
        entry.accessed = True
        if access == "write":
            entry.dirty = True
        return entry

    # ------------------------------------------------------------------
    # supervisor-attacker facilities
    # ------------------------------------------------------------------
    def clear_accessed_dirty(self) -> None:
        """Reset all A/D bits (the attacker does this between probes)."""
        for entry in self._entries.values():
            entry.accessed = False
            entry.dirty = False

    def accessed_pages(self) -> Set[int]:
        return {
            vpn for vpn, entry in self._entries.items() if entry.accessed
        }

    def dirty_pages(self) -> Set[int]:
        return {vpn for vpn, entry in self._entries.items() if entry.dirty}

    def mapped_pages(self) -> Iterator[int]:
        return iter(sorted(self._entries))

    def __len__(self) -> int:
        return len(self._entries)
