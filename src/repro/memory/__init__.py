"""Virtual memory substrate: sparse storage, 4 KiB paging with R/W/X
permissions and accessed/dirty bits, and address arithmetic helpers
(32-byte fetch blocks, BTB tag truncation)."""

from .address import (
    ADDRESS_BITS,
    ADDRESS_MASK,
    BLOCK_MASK,
    BLOCK_SHIFT,
    BLOCK_SIZE,
    PAGE_MASK,
    PAGE_SHIFT,
    PAGE_SIZE,
    align_up,
    bits,
    block_base,
    block_end,
    block_offset,
    page_base,
    page_number,
    page_offset,
    ranges_overlap,
    same_block,
    same_page,
    truncate,
)
from .memory import VirtualMemory
from .paging import PageEntry, PageTable

__all__ = [
    "ADDRESS_BITS",
    "ADDRESS_MASK",
    "BLOCK_MASK",
    "BLOCK_SHIFT",
    "BLOCK_SIZE",
    "PAGE_MASK",
    "PAGE_SHIFT",
    "PAGE_SIZE",
    "PageEntry",
    "PageTable",
    "VirtualMemory",
    "align_up",
    "bits",
    "block_base",
    "block_end",
    "block_offset",
    "page_base",
    "page_number",
    "page_offset",
    "ranges_overlap",
    "same_block",
    "same_page",
    "truncate",
]
