"""Address arithmetic helpers shared across the simulator.

Two granularities matter throughout the paper:

* 4 KiB pages — the controlled-channel attack and SGX paging operate
  here;
* 32-byte fetch blocks — prediction windows (PWs) are confined to one
  32-byte-aligned block, and the BTB's 5-bit offset field addresses
  bytes within such a block.
"""

from __future__ import annotations

PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT          # 4096
PAGE_MASK = PAGE_SIZE - 1

BLOCK_SHIFT = 5
BLOCK_SIZE = 1 << BLOCK_SHIFT        # 32
BLOCK_MASK = BLOCK_SIZE - 1

ADDRESS_BITS = 64
ADDRESS_MASK = (1 << ADDRESS_BITS) - 1


def page_number(address: int) -> int:
    """Virtual page number of ``address``."""
    return address >> PAGE_SHIFT


def page_offset(address: int) -> int:
    """Offset of ``address`` within its 4 KiB page."""
    return address & PAGE_MASK


def page_base(address: int) -> int:
    """First address of the page containing ``address``."""
    return address & ~PAGE_MASK


def block_base(address: int) -> int:
    """First address of the 32-byte fetch block containing ``address``."""
    return address & ~BLOCK_MASK


def block_offset(address: int) -> int:
    """Offset of ``address`` within its 32-byte fetch block (the BTB
    'offset' field, 5 bits)."""
    return address & BLOCK_MASK


def block_end(address: int) -> int:
    """One past the last address of the fetch block of ``address``."""
    return block_base(address) + BLOCK_SIZE


def bits(value: int, low: int, high: int) -> int:
    """Extract bits ``[low, high)`` of ``value`` (LSB = bit 0)."""
    if not 0 <= low <= high:
        raise ValueError(f"invalid bit range [{low}, {high})")
    return (value >> low) & ((1 << (high - low)) - 1)


def truncate(address: int, keep_bits: int) -> int:
    """Keep only the low ``keep_bits`` bits of ``address``.

    This is the BTB tag-truncation behaviour: SkyLake-family BTBs ignore
    address bits 33 and above (``keep_bits = 33``), IceLake ignores 34
    and above (``keep_bits = 34``) — paper §2.3, footnote 1.
    """
    return address & ((1 << keep_bits) - 1)


def same_page(a: int, b: int) -> bool:
    return page_number(a) == page_number(b)


def same_block(a: int, b: int) -> bool:
    return block_base(a) == block_base(b)


def align_up(address: int, boundary: int) -> int:
    """Round ``address`` up to the next multiple of ``boundary``."""
    if boundary <= 0 or boundary & (boundary - 1):
        raise ValueError(f"boundary must be a power of two: {boundary}")
    return (address + boundary - 1) & ~(boundary - 1)


def ranges_overlap(a_start: int, a_end: int, b_start: int, b_end: int) -> bool:
    """Half-open interval overlap test."""
    return a_start < b_end and b_start < a_end
