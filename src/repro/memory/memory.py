"""Sparse virtual memory with paging and an access-control hook.

One :class:`VirtualMemory` instance is one address space (one process).
Storage is sparse — pages materialize on first touch — so experiments
can place code regions 4/8 GiB apart (the paper's BTB tag-truncation
setup) without cost.

The ``access_filter`` hook lets the SGX layer enforce EPC isolation:
it is consulted *before* page-table checks and can reject an access
outright (raising :class:`ProtectionFault`) or redact reads.
"""

from __future__ import annotations

import struct
from typing import Callable, Dict, Optional

from ..errors import PageFault, ProtectionFault
from .address import PAGE_MASK, PAGE_SHIFT, PAGE_SIZE, page_number
from .paging import PageEntry, PageTable

#: access_filter(address, size, access, context) -> None or raises.
AccessFilter = Callable[[int, int, str, Optional[object]], None]

#: pre-compiled u64 codec for the typed-access fast paths.
_U64 = struct.Struct("<Q")
_U64_MASK = (1 << 64) - 1


class DecodeCache(dict):
    """The icache dict, plus a registry of pages holding cached decodes.

    ``code_pages`` lets :meth:`VirtualMemory.write_bytes` decide in O(1)
    whether a write can possibly invalidate cached code — data stores
    skip the invalidation sweep entirely, and only genuinely
    code-modifying writes bump the code generation counter that keys
    the decoded-window cache (:mod:`repro.cpu.decoded`).
    """

    __slots__ = ("code_pages",)

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.code_pages: set = set()
        for pc, value in self.items():
            self._register(pc, value)

    def _register(self, pc: int, value) -> None:
        self.code_pages.add(pc >> PAGE_SHIFT)
        try:
            last_byte = pc + value[1] - 1     # value = (instr, length)
        except (TypeError, IndexError, KeyError):
            last_byte = pc
        self.code_pages.add(last_byte >> PAGE_SHIFT)

    def __setitem__(self, pc, value) -> None:
        self._register(pc, value)
        dict.__setitem__(self, pc, value)


class VirtualMemory:
    """A 64-bit sparse byte-addressable address space."""

    def __init__(self, page_table: Optional[PageTable] = None):
        self.pages: Dict[int, bytearray] = {}
        self.page_table = page_table if page_table is not None else PageTable()
        #: decoded-instruction cache: address -> (Instruction, length).
        #: Maintained by the CPU front end; writes invalidate it.
        self.icache: DecodeCache = DecodeCache()
        #: decoded-window cache: entry PC -> DecodedWindow (see
        #: :mod:`repro.cpu.decoded`); invalidated by generation compare.
        self.window_cache: Dict[int, object] = {}
        #: superblock cache: entry PC -> Superblock or a negative
        #: marker (see ``Core.run``); entries self-validate against
        #: ``code_generation`` and the owning BTB's generation, so no
        #: eager invalidation happens here.
        self.superblock_cache: Dict[int, object] = {}
        #: bumped whenever a write lands on a page holding cached
        #: decodes (one half of :attr:`code_generation`).
        self._write_epoch = 0
        self.access_filter: Optional[AccessFilter] = None
        #: Current execution context (e.g. an Enclave object) used by
        #: the access filter; ``None`` means normal/untrusted mode.
        self.context: Optional[object] = None

    @property
    def code_generation(self) -> int:
        """Monotonic counter identifying the current code contents.

        Changes when executable bytes may have changed: writes
        overlapping pages with cached decodes, and page map/unmap
        (page swaps).  Permission changes do *not* affect it — decoded
        bytes are content, and permissions are enforced at execution
        time (``set_perms`` is the controlled-channel attacker's
        per-single-step tool; bumping here would thrash the cache).
        """
        return self._write_epoch + self.page_table.epoch

    # ------------------------------------------------------------------
    # mapping helpers
    # ------------------------------------------------------------------
    def map_range(self, start: int, size: int, perms: str = "rw") -> None:
        """Map every page overlapping ``[start, start+size)``."""
        if size <= 0:
            return
        first = page_number(start)
        last = page_number(start + size - 1)
        for vpn in range(first, last + 1):
            self.page_table.map_page(vpn, perms)

    def is_mapped(self, address: int) -> bool:
        return self.page_table.is_mapped(address)

    def _backing(self, vpn: int) -> bytearray:
        page = self.pages.get(vpn)
        if page is None:
            page = bytearray(PAGE_SIZE)
            self.pages[vpn] = page
        return page

    def _check(self, address: int, size: int, access: str,
               check: bool) -> None:
        if self.access_filter is not None:
            self.access_filter(address, size, access, self.context)
        if not check:
            return
        first = page_number(address)
        last = page_number(address + size - 1)
        for vpn in range(first, last + 1):
            self.page_table.check(vpn << PAGE_SHIFT, access)

    # ------------------------------------------------------------------
    # raw byte access
    # ------------------------------------------------------------------
    def read_bytes(self, address: int, size: int, *,
                   access: str = "read", check: bool = True) -> bytes:
        if size <= 0:
            return b""
        self._check(address, size, access, check)
        out = bytearray()
        remaining = size
        cursor = address
        while remaining:
            vpn = page_number(cursor)
            offset = cursor & PAGE_MASK
            chunk = min(remaining, PAGE_SIZE - offset)
            page = self.pages.get(vpn)
            if page is None:
                out += b"\x00" * chunk
            else:
                out += page[offset:offset + chunk]
            cursor += chunk
            remaining -= chunk
        return bytes(out)

    def write_bytes(self, address: int, data: bytes, *,
                    check: bool = True) -> None:
        if not data:
            return
        self._check(address, len(data), "write", check)
        icache = self.icache
        if icache.code_pages:
            first = (address - 9) >> PAGE_SHIFT
            last = (address + len(data) - 1) >> PAGE_SHIFT
            if any(vpn in icache.code_pages
                   for vpn in range(first, last + 1)):
                # The write may hit cached code: invalidate any decode
                # overlapping the written range (instructions are at
                # most 10 bytes long) and retire the code generation so
                # decoded windows re-verify (self-modifying code).
                self._write_epoch += 1
                for stale in range(address - 9, address + len(data)):
                    icache.pop(stale, None)
        cursor = address
        view = memoryview(data)
        while view:
            vpn = page_number(cursor)
            offset = cursor & PAGE_MASK
            chunk = min(len(view), PAGE_SIZE - offset)
            self._backing(vpn)[offset:offset + chunk] = view[:chunk]
            cursor += chunk
            view = view[chunk:]

    # ------------------------------------------------------------------
    # typed access
    # ------------------------------------------------------------------
    def read_u64(self, address: int, *, check: bool = True) -> int:
        # Single-page fast path: the bulk of simulated data traffic is
        # aligned 8-byte limb loads/stores, for which the generic
        # byte-copy loop is pure overhead.  Observable behaviour is
        # identical: the same page-aligned permission check (faults
        # carry the same address), zeros for unmaterialized pages.
        offset = address & PAGE_MASK
        if offset <= PAGE_SIZE - 8 and self.access_filter is None:
            vpn = address >> PAGE_SHIFT
            if check:
                self.page_table.check(vpn << PAGE_SHIFT, "read")
            page = self.pages.get(vpn)
            if page is None:
                return 0
            return _U64.unpack_from(page, offset)[0]
        return struct.unpack(
            "<Q", self.read_bytes(address, 8, check=check)
        )[0]

    def write_u64(self, address: int, value: int, *,
                  check: bool = True) -> None:
        offset = address & PAGE_MASK
        if offset <= PAGE_SIZE - 8 and self.access_filter is None:
            vpn = address >> PAGE_SHIFT
            code_pages = self.icache.code_pages
            # Same possible-code-write test as ``write_bytes`` (the
            # 8-byte store spans at most vpn-1..vpn given the
            # single-page offset): anything near cached code takes the
            # generic path with its invalidation sweep.
            if (vpn not in code_pages
                    and (address - 9) >> PAGE_SHIFT not in code_pages):
                if check:
                    self.page_table.check(vpn << PAGE_SHIFT, "write")
                page = self.pages.get(vpn)
                if page is None:
                    page = bytearray(PAGE_SIZE)
                    self.pages[vpn] = page
                _U64.pack_into(page, offset, value & _U64_MASK)
                return
        self.write_bytes(
            address, struct.pack("<Q", value & _U64_MASK), check=check
        )

    def read_u8(self, address: int, *, check: bool = True) -> int:
        return self.read_bytes(address, 1, check=check)[0]

    def fetch(self, address: int, size: int) -> bytes:
        """Instruction fetch: execute-permission-checked read."""
        return self.read_bytes(address, size, access="execute")

    # ------------------------------------------------------------------
    # convenience
    # ------------------------------------------------------------------
    def load_program(self, program, perms: str = "rx") -> None:
        """Map and copy an :class:`AssembledProgram` into this space."""
        program.load_into(self, perms)

    def protect(self, start: int, size: int, perms: str) -> None:
        """Change permissions for every page in ``[start, start+size)``."""
        first = page_number(start)
        last = page_number(start + size - 1)
        for vpn in range(first, last + 1):
            self.page_table.set_perms(vpn, perms)

    def page_entry(self, address: int) -> Optional[PageEntry]:
        return self.page_table.entry_for_address(address)

    def footprint_pages(self) -> int:
        """Number of materialized backing pages (for resource tests)."""
        return len(self.pages)
