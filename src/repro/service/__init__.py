"""Sharded campaign service: fault-domain scheduling over the
single-host campaign runner.

``repro.runner`` gives one process-pool crash tolerance (worker
watchdogs, retries, checkpointed manifests).  This package promotes it
into a *service*: a campaign's jobs are partitioned across N **shards**
— each a supervised process group and an explicit fault domain — with
shard health tracking (heartbeat lease + consecutive-failure circuit
breaker), quarantine + job reassignment, admission-controlled
submissions over a stdlib HTTP/JSON API, graceful DEGRADED completion
with exact loss accounting, and a seed-stable cross-shard aggregate
digest that is byte-identical between clean and chaos-recovered runs.

See DESIGN.md §12 for the architecture and the fault-injection drills
that gate it in CI.
"""

from .client import ServiceClient
from .http import DEFAULT_QUEUE_DEPTH, MAX_BODY_BYTES, ServiceServer
from .partition import partition_jobs, shard_name
from .scheduler import (AGGREGATE_NAME, AGGREGATE_SCHEMA_TAG,
                        CAMPAIGN_COMPLETED, CAMPAIGN_DEGRADED,
                        CAMPAIGN_FAILED, CAMPAIGN_INTERRUPTED,
                        CAMPAIGN_QUEUED, CAMPAIGN_RUNNING,
                        CHAOS_KILL_SHARD, CHAOS_STALL_SHARD,
                        DEFAULT_OPTIONS, SERVICE_MANIFEST_NAME,
                        SERVICE_SCHEMA_TAG, TERMINAL_STATES,
                        CampaignService, ServiceChaos, ServiceManifest,
                        ShardEntry, create_service_campaign,
                        list_service_campaigns, load_or_adopt_campaign,
                        merge_shards, rebuild_service_manifest,
                        resume_service_campaign, run_service_campaign)
from .shards import (SHARD_COMPLETED, SHARD_HEARTBEAT_INTERVAL,
                     SHARD_PENDING, SHARD_QUARANTINED, SHARD_RUNNING,
                     ShardHandle)

__all__ = [
    "AGGREGATE_NAME",
    "AGGREGATE_SCHEMA_TAG",
    "CAMPAIGN_COMPLETED",
    "CAMPAIGN_DEGRADED",
    "CAMPAIGN_FAILED",
    "CAMPAIGN_INTERRUPTED",
    "CAMPAIGN_QUEUED",
    "CAMPAIGN_RUNNING",
    "CHAOS_KILL_SHARD",
    "CHAOS_STALL_SHARD",
    "CampaignService",
    "DEFAULT_OPTIONS",
    "DEFAULT_QUEUE_DEPTH",
    "MAX_BODY_BYTES",
    "SERVICE_MANIFEST_NAME",
    "SERVICE_SCHEMA_TAG",
    "SHARD_COMPLETED",
    "SHARD_HEARTBEAT_INTERVAL",
    "SHARD_PENDING",
    "SHARD_QUARANTINED",
    "SHARD_RUNNING",
    "ServiceChaos",
    "ServiceClient",
    "ServiceManifest",
    "ServiceServer",
    "ShardEntry",
    "ShardHandle",
    "TERMINAL_STATES",
    "create_service_campaign",
    "list_service_campaigns",
    "load_or_adopt_campaign",
    "merge_shards",
    "partition_jobs",
    "rebuild_service_manifest",
    "resume_service_campaign",
    "run_service_campaign",
    "shard_name",
]
