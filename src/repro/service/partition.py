"""Deterministic, seed-stable job partitioning across shards.

The partitioner decides which shard owns which job.  Three properties
matter for the service's convergence guarantees:

* **deterministic** — the same (job ids, seed, shard count) always
  yields the same assignment, so a resumed campaign re-creates exactly
  the shard layout the interrupted one checkpointed;
* **order-independent** — assignment depends on the job *ids*, never
  on submission order, so two clients building the same manifest in
  different orders produce identical shards;
* **balanced** — shard sizes differ by at most one job: jobs are
  ranked by a salted content hash and dealt round-robin, instead of
  hash-mod (which skews badly at campaign sizes of a few hundred
  jobs per shard).

The assignment is *placement only*: job result digests are content
digests and the campaign's aggregate digest (see
:mod:`repro.service.scheduler`) is computed over per-job results, so
re-partitioning (e.g. a quarantine reassignment) never changes what a
campaign's merged output looks like.
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Optional, Sequence

from ..errors import ServiceError
from ..runner.jobs import JobSpec

#: shard ids are zero-padded so directory listings sort naturally
SHARD_ID_FORMAT = "s{index:02d}"


def _rank(job_id: str, salt: str) -> bytes:
    return hashlib.sha256(f"{salt}:{job_id}".encode("utf-8")).digest()


def shard_name(index: int) -> str:
    return SHARD_ID_FORMAT.format(index=index)


def partition_jobs(specs: Sequence[JobSpec], num_shards: int, *,
                   seed: Optional[int] = None
                   ) -> Dict[str, List[JobSpec]]:
    """Split ``specs`` into at most ``num_shards`` shards.

    Returns ``{shard_id: [spec, ...]}`` in shard order.  The shard
    count is clamped to the job count so no empty shards are created,
    and the campaign seed salts the ranking hash so distinct campaigns
    spread differently while any single (manifest, seed) pair stays
    stable across resumes.
    """
    if num_shards < 1:
        raise ServiceError("num_shards must be >= 1")
    if not specs:
        raise ServiceError("cannot partition an empty job list")
    ids = [spec.job_id for spec in specs]
    if len(set(ids)) != len(ids):
        raise ServiceError("duplicate job ids in partition input")
    num_shards = min(num_shards, len(specs))
    salt = f"seed={seed if seed is not None else ''}"
    ranked = sorted(specs, key=lambda spec: _rank(spec.job_id, salt))
    shards: Dict[str, List[JobSpec]] = {
        shard_name(index): [] for index in range(num_shards)}
    for position, spec in enumerate(ranked):
        shards[shard_name(position % num_shards)].append(spec)
    return shards
