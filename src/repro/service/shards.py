"""Shard fault domains: one supervised worker-pool process group each.

A *shard* is the unit of failure the service reasons about.  Each
shard runs as its own child process which immediately calls
``os.setsid()`` — so the shard **and every worker it forks** live in a
private process group that one ``killpg`` erases, exactly the fault a
real box dying takes with it.  Inside the shard, the existing
:class:`repro.runner.CampaignRunner` provides the per-job guarantees
(subprocess workers, watchdog, retry/backoff, checkpointed manifest);
this module adds the parent-side view the scheduler supervises:

* a **heartbeat lease** — the shard stamps a shared monotonic value
  twice per second; a stamp older than the lease means the shard is
  stalled (SIGSTOPped, deadlocked, swapping) even if its process is
  technically alive;
* a structured **uplink pipe** — per-job lifecycle transitions stream
  up for live progress accounting, followed by one terminal
  ``("done", summary)`` / ``("error", text)`` message;
* **group kill** — quarantine and chaos both address the whole
  process group, never just the supervisor process.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from ..runner import CampaignRunner, RunManifest
from ..runner.jobs import JobStatus

#: seconds between shard heartbeat stamps (the scheduler's lease
#: should be a comfortable multiple of this)
SHARD_HEARTBEAT_INTERVAL = 0.5

#: shard lifecycle states tracked by the service manifest
SHARD_PENDING = "PENDING"
SHARD_RUNNING = "RUNNING"
SHARD_COMPLETED = "COMPLETED"
SHARD_QUARANTINED = "QUARANTINED"


def _beat(heartbeat, stop: threading.Event) -> None:
    while not stop.is_set():
        heartbeat.value = time.monotonic()
        stop.wait(SHARD_HEARTBEAT_INTERVAL)


def shard_main(manifest_dir: str, options: dict, conn,
               heartbeat) -> None:
    """Entry point of a shard supervisor child process.

    Loads the checkpointed shard manifest from ``manifest_dir``
    (``runs/<campaign>/shards/<shard>/`` — or the campaign directory
    itself for an adopted legacy v1 manifest), makes every
    non-COMPLETED job runnable again, and drives the shard engine to
    completion, streaming transitions to the parent scheduler.
    """
    os.setsid()             # own process group: killpg == shard death
    stop = threading.Event()
    thread = threading.Thread(target=_beat, args=(heartbeat, stop),
                              daemon=True)
    thread.start()

    def uplink(record) -> None:
        try:
            conn.send(("job", record.job_id, record.status.value,
                       record.attempts))
        except OSError:     # parent gone; keep checkpointing to disk
            pass

    try:
        directory = Path(manifest_dir)
        manifest = RunManifest.load(directory.parent, directory.name)
        manifest.reset_for_resume()
        runner = CampaignRunner(
            manifest,
            max_workers=int(options.get("workers_per_shard", 2)),
            stall_timeout=float(options.get("stall_timeout", 10.0)),
            backoff_base=float(options.get("backoff_base", 0.25)),
            backoff_cap=float(options.get("backoff_cap", 4.0)),
            on_transition=uplink)
        runner.run()
        counts = manifest.counts()
        conn.send(("done", counts))
    except BaseException as error:      # noqa: BLE001 - report upward
        try:
            conn.send(("error", f"{type(error).__name__}: {error}"))
        except OSError:
            pass
    finally:
        stop.set()
        try:
            conn.close()
        except OSError:
            pass


@dataclass
class ShardHandle:
    """Parent-side view of one running shard process group."""

    shard_id: str
    process: object                     # multiprocessing.Process
    conn: object                        # receiving end of the uplink
    heartbeat: object                   # multiprocessing.Value("d")
    started: float = field(default_factory=time.monotonic)

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid

    @property
    def pgid(self) -> Optional[int]:
        """After ``setsid`` the shard's pid *is* its process group."""
        return self.process.pid

    def alive(self) -> bool:
        return self.process.is_alive()

    def last_beat(self) -> float:
        """Most recent heartbeat stamp, falling back to launch time
        until the first beat lands (monotonic clock, like
        :mod:`repro.runner.watchdog`)."""
        beat = self.heartbeat.value
        return beat if beat > 0 else self.started

    def lease_expired(self, lease_s: float,
                      now: Optional[float] = None) -> bool:
        now = time.monotonic() if now is None else now
        return now - self.last_beat() > lease_s

    def signal_group(self, signum: int) -> bool:
        """Deliver ``signum`` to the whole shard process group."""
        pgid = self.pgid
        if pgid is None:
            return False
        try:
            os.killpg(pgid, signum)
            return True
        except (ProcessLookupError, PermissionError, OSError):
            return False

    def kill_group(self) -> None:
        """SIGKILL the shard and every worker it forked (idempotent).

        SIGKILL terminates SIGSTOPped processes too, so this also
        reaps a stalled shard without needing a SIGCONT first.
        """
        self.signal_group(signal.SIGKILL)
        self.process.join(timeout=5.0)
        try:
            self.conn.close()
        except OSError:
            pass


def load_shard_manifest(directory: Path) -> RunManifest:
    """Load a shard's checkpointed manifest from its directory."""
    directory = Path(directory)
    return RunManifest.load(directory.parent, directory.name)


def unfinished_jobs(manifest: RunManifest) -> list:
    """Specs of every job a dead shard still owed (anything not
    COMPLETED — their artifacts, if any, were never recorded)."""
    return [record.spec for record in manifest.records()
            if record.status is not JobStatus.COMPLETED]
