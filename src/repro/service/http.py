"""Stdlib-only HTTP/JSON front end for the sharded campaign service.

``repro serve`` runs one :class:`ServiceServer`: a
``ThreadingHTTPServer`` for the API plus a single scheduler thread
that drains a **bounded** submission queue.  Endpoints:

* ``GET  /health`` — liveness + queue occupancy;
* ``GET  /healthz`` — kubernetes-style liveness: always ``200`` while
  the process serves, with breaker/quarantine state in the body;
* ``GET  /readyz`` — readiness: ``503`` while the scheduler is
  quarantining shards (re-homing work after a circuit breaker trip),
  ``200`` otherwise;
* ``POST /campaigns`` — submit a job payload; ``202`` with the
  campaign id, or ``429`` (:class:`repro.errors.AdmissionRejected`)
  when the queue is full — the service *rejects* rather than buffering
  unboundedly — or ``503`` while quarantining (load shedding).
  Submissions may carry an idempotency key (``"idempotency_key"`` in
  the payload or an ``Idempotency-Key`` header); the campaign id is
  then *derived* from the key, so a retried submit — even against a
  restarted server — returns the existing campaign (``"duplicate":
  true``) instead of spawning a second one;
* ``GET  /campaigns`` — list known campaigns;
* ``GET  /campaigns/<id>`` — live status snapshot (includes shard
  process-group ids while running — the chaos smoke drill targets
  them) or the persisted terminal state;
* ``GET  /campaigns/<id>/results`` — the merged aggregate, ``409``
  until the campaign reaches a terminal state;
* ``POST /campaigns/<id>/resume`` — enqueue a resume of an
  interrupted/degraded campaign.

Memory stays bounded under a sustained over-capacity submit loop: a
submission is partitioned and persisted to disk *at admission time*,
so the queue holds only campaign-id strings, and finished-campaign
status is answered from disk, never from an ever-growing cache.
"""

from __future__ import annotations

import hashlib
import json
import threading
from collections import deque
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Callable, Dict, Optional, Tuple

from .. import telemetry
from ..errors import AdmissionRejected, CampaignError, ServiceError
from ..runner.artifacts import read_json
from ..runner.jobs import specs_from_payload
from .scheduler import (CAMPAIGN_QUEUED, SERVICE_MANIFEST_NAME,
                        TERMINAL_STATES, CampaignService,
                        ServiceManifest, create_service_campaign,
                        list_service_campaigns,
                        resume_service_campaign)

#: refuse request bodies above this size outright (HTTP 413)
MAX_BODY_BYTES = 1 << 20

#: default bound on queued campaigns (submissions beyond it get 429)
DEFAULT_QUEUE_DEPTH = 8


class ServiceServer:
    """The campaign service process: HTTP front end + scheduler."""

    def __init__(self, runs_dir, *, host: str = "127.0.0.1",
                 port: int = 0,
                 queue_depth: int = DEFAULT_QUEUE_DEPTH,
                 options: Optional[Dict[str, object]] = None,
                 on_event: Optional[Callable[[str, str],
                                             None]] = None):
        if queue_depth < 1:
            raise ServiceError("queue_depth must be >= 1")
        self.runs_dir = Path(runs_dir)
        self.runs_dir.mkdir(parents=True, exist_ok=True)
        self.queue_depth = queue_depth
        self.default_options = dict(options or {})
        self._on_event = on_event
        self._lock = threading.Lock()
        #: (campaign_id, resume?) — ids only; payloads live on disk
        self._pending: deque = deque()
        self._queued_ids: set = set()
        self._current: Optional[CampaignService] = None
        self._current_id: Optional[str] = None
        self._finished = 0
        self._stop = threading.Event()
        self._httpd = _ServiceHTTPServer((host, port), _Handler)
        self._httpd.service = self
        self._http_thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-serve-http", daemon=True)
        self._scheduler_thread = threading.Thread(
            target=self._scheduler_loop,
            name="repro-serve-scheduler", daemon=True)

    # ------------------------------------------------------------------
    @property
    def address(self) -> Tuple[str, int]:
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> None:
        self._http_thread.start()
        self._scheduler_thread.start()

    def stop(self, timeout: float = 30.0) -> None:
        """Graceful shutdown: the running campaign checkpoints as
        INTERRUPTED (resumable), queued submissions stay on disk."""
        self._stop.set()
        self._httpd.shutdown()
        self._httpd.server_close()
        self._scheduler_thread.join(timeout=timeout)

    def wait(self) -> None:
        """Block until :meth:`stop` is called (signal handlers)."""
        while not self._stop.wait(0.2):
            pass
        self._scheduler_thread.join(timeout=30.0)

    # ------------------------------------------------------------------
    # admission control
    # ------------------------------------------------------------------
    @property
    def shedding(self) -> bool:
        """True while the running campaign's scheduler is quarantining
        shards — the window in which new submissions are shed (503)
        rather than piled onto a service that is busy re-homing work."""
        with self._lock:
            current = self._current
        return current is not None and current.quarantining

    @staticmethod
    def idempotent_campaign_id(key: str) -> str:
        """The campaign id an idempotency key maps to.

        Deriving the id from the key (instead of keeping a lookup
        table) makes deduplication crash-proof: the persisted campaign
        directory *is* the index, so a retried submit after a server
        restart still finds its original campaign.
        """
        digest = hashlib.sha256(str(key).encode("utf-8")).hexdigest()
        return f"idem-{digest[:20]}"

    def submit(self, payload: Dict[str, object]
               ) -> Tuple[str, bool]:
        """Admit a campaign submission.

        Returns ``(campaign_id, duplicate)``; raises
        :class:`AdmissionRejected` when the bounded queue is full.  A
        payload carrying ``idempotency_key`` (and no explicit
        ``campaign_id``) deduplicates: the retry of an already-admitted
        submission returns the existing campaign id with
        ``duplicate=True`` instead of spawning a second campaign.
        """
        specs = specs_from_payload(payload)
        seed = payload.get("seed")
        if seed is not None:
            seed = int(seed)
        shards = int(payload.get("shards", 2))
        options = {**self.default_options,
                   **dict(payload.get("options", {}) or {})}
        campaign_id = payload.get("campaign_id")
        idempotent = False
        if not campaign_id and payload.get("idempotency_key"):
            campaign_id = self.idempotent_campaign_id(
                str(payload["idempotency_key"]))
            idempotent = True
        with self._lock:
            if idempotent:
                cid = str(campaign_id)
                exists = (cid == self._current_id
                          or cid in self._queued_ids
                          or (self.runs_dir / cid /
                              SERVICE_MANIFEST_NAME).is_file())
                if exists:
                    telemetry.count("service.http.deduplicated")
                    return cid, True
            if len(self._pending) >= self.queue_depth:
                telemetry.count("service.http.rejected")
                raise AdmissionRejected(
                    f"submission queue full "
                    f"({len(self._pending)}/{self.queue_depth})",
                    queue_depth=self.queue_depth,
                    pending=len(self._pending))
            try:
                manifest = create_service_campaign(
                    specs, self.runs_dir,
                    campaign_id=(str(campaign_id) if campaign_id
                                 else None),
                    seed=seed, shards=shards, options=options)
            except ServiceError:
                if idempotent:
                    # Lost the race with an identical retry: the
                    # campaign already exists on disk, which is
                    # exactly what idempotency promises.
                    telemetry.count("service.http.deduplicated")
                    return str(campaign_id), True
                raise
            self._pending.append((manifest.campaign_id, False))
            self._queued_ids.add(manifest.campaign_id)
        telemetry.count("service.http.submitted")
        return manifest.campaign_id, False

    def enqueue_resume(self, campaign_id: str) -> None:
        with self._lock:
            if campaign_id == self._current_id or \
                    campaign_id in self._queued_ids:
                raise ServiceError(
                    f"campaign {campaign_id!r} is already "
                    f"queued or running")
            if len(self._pending) >= self.queue_depth:
                telemetry.count("service.http.rejected")
                raise AdmissionRejected(
                    f"submission queue full "
                    f"({len(self._pending)}/{self.queue_depth})",
                    queue_depth=self.queue_depth,
                    pending=len(self._pending))
            # raises ServiceError if the campaign does not exist
            ServiceManifest.load(self.runs_dir, campaign_id)
            self._pending.append((campaign_id, True))
            self._queued_ids.add(campaign_id)

    # ------------------------------------------------------------------
    # scheduler thread
    # ------------------------------------------------------------------
    def _scheduler_loop(self) -> None:
        while not self._stop.is_set():
            with self._lock:
                if not self._pending:
                    item = None
                else:
                    item = self._pending.popleft()
            if item is None:
                self._stop.wait(0.05)
                continue
            campaign_id, resume = item
            try:
                if resume:
                    manifest = resume_service_campaign(
                        self.runs_dir, campaign_id)
                else:
                    manifest = ServiceManifest.load(
                        self.runs_dir, campaign_id)
                service = CampaignService(
                    manifest, stop_event=self._stop,
                    on_event=self._on_event)
                with self._lock:
                    self._current = service
                    self._current_id = campaign_id
                    self._queued_ids.discard(campaign_id)
                service.run()
            except Exception as error:  # noqa: BLE001 - keep serving
                telemetry.count("service.http.campaign_errors")
                if self._on_event is not None:
                    self._on_event(campaign_id,
                                   f"campaign error: {error}")
            finally:
                with self._lock:
                    self._current = None
                    self._current_id = None
                    self._queued_ids.discard(campaign_id)
                    self._finished += 1

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    def health(self) -> Dict[str, object]:
        with self._lock:
            return {
                "status": "ok",
                "queued": len(self._pending),
                "queue_depth": self.queue_depth,
                "running": self._current_id,
                "finished": self._finished,
                "runs_dir": str(self.runs_dir),
            }

    def healthz(self) -> Dict[str, object]:
        """Liveness + breaker/quarantine state (always HTTP 200: the
        process is alive as long as it can answer)."""
        payload = self.health()
        with self._lock:
            current = self._current
        quarantined = 0
        strikes = 0
        if current is not None:
            snapshot = current.status_snapshot()
            shards = snapshot.get("shards", {})
            if isinstance(shards, dict):
                for shard in shards.values():
                    strikes += int(shard.get("strikes", 0))
                    if shard.get("status") == "QUARANTINED":
                        quarantined += 1
        payload.update({
            "quarantined_shards": quarantined,
            "breaker_strikes": strikes,
            "shedding": self.shedding,
        })
        return payload

    def readyz(self) -> Tuple[int, Dict[str, object]]:
        """Readiness: 503 while the scheduler is quarantining shards
        (submissions would be shed anyway), 200 otherwise."""
        if self.shedding:
            return 503, {"ready": False,
                         "reason": "scheduler is quarantining shards"}
        return 200, {"ready": True}

    def campaigns(self) -> Dict[str, object]:
        return {"campaigns": list_service_campaigns(self.runs_dir)}

    def campaign_status(self, campaign_id: str) -> Dict[str, object]:
        with self._lock:
            if campaign_id == self._current_id and \
                    self._current is not None:
                return self._current.status_snapshot()
            queued = campaign_id in self._queued_ids
        manifest = ServiceManifest.load(self.runs_dir, campaign_id)
        status = CAMPAIGN_QUEUED if queued else manifest.status
        payload: Dict[str, object] = {
            "campaign_id": campaign_id,
            "status": status,
            "seed": manifest.seed,
            "shards": {shard_id: {
                "status": entry.status,
                "strikes": entry.strikes,
                "restarts": entry.restarts,
                "origin": entry.origin,
                "jobs": len(entry.jobs),
                "pgid": None,
            } for shard_id, entry in manifest.shards.items()},
            "total_jobs": len(manifest.job_ids()),
            "lost": {shard: list(jobs)
                     for shard, jobs in manifest.lost.items()},
        }
        if manifest.aggregate_path.exists():
            payload["digest"] = read_json(
                manifest.aggregate_path).get("digest")
        return payload

    def campaign_results(self, campaign_id: str
                         ) -> Tuple[int, Dict[str, object]]:
        manifest = ServiceManifest.load(self.runs_dir, campaign_id)
        if manifest.status in TERMINAL_STATES and \
                manifest.aggregate_path.exists():
            return 200, read_json(manifest.aggregate_path)
        return 409, {"error": "campaign not finished",
                     "status": manifest.status}


class _ServiceHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True
    service: ServiceServer


class _Handler(BaseHTTPRequestHandler):
    server: _ServiceHTTPServer
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------
    def log_message(self, format, *args):  # noqa: A002 - stdlib name
        pass                               # keep the service quiet

    def _shed(self) -> None:
        telemetry.count("service.http.shed")
        self._reply(503, {"error": "scheduler is quarantining "
                                   "shards; retry with backoff",
                          "shedding": True})

    def _reply(self, code: int, payload: Dict[str, object]) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> Optional[Dict[str, object]]:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            # drain in small chunks (never buffering the oversized
            # body) so the client can finish sending and read the 413
            remaining = length
            while remaining > 0:
                chunk = self.rfile.read(min(65536, remaining))
                if not chunk:
                    break
                remaining -= len(chunk)
            self.close_connection = True
            self._reply(413, {"error": "payload too large",
                              "limit": MAX_BODY_BYTES})
            return None
        raw = self.rfile.read(length) if length else b"{}"
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            self._reply(400, {"error": "body is not valid JSON"})
            return None
        if not isinstance(payload, dict):
            self._reply(400, {"error": "body must be a JSON object"})
            return None
        return payload

    # ------------------------------------------------------------------
    def do_GET(self) -> None:                    # noqa: N802
        service = self.server.service
        parts = [part for part in self.path.split("?")[0].split("/")
                 if part]
        try:
            if parts == ["health"]:
                self._reply(200, service.health())
            elif parts == ["healthz"]:
                self._reply(200, service.healthz())
            elif parts == ["readyz"]:
                code, payload = service.readyz()
                self._reply(code, payload)
            elif parts == ["campaigns"]:
                self._reply(200, service.campaigns())
            elif len(parts) == 2 and parts[0] == "campaigns":
                self._reply(200, service.campaign_status(parts[1]))
            elif len(parts) == 3 and parts[0] == "campaigns" and \
                    parts[2] == "results":
                code, payload = service.campaign_results(parts[1])
                self._reply(code, payload)
            else:
                self._reply(404, {"error": f"no route {self.path!r}"})
        except ServiceError as error:
            self._reply(404, {"error": str(error)})
        except Exception as error:  # noqa: BLE001 - never kill handler
            self._reply(500, {"error": str(error)})

    def do_POST(self) -> None:                   # noqa: N802
        service = self.server.service
        parts = [part for part in self.path.split("?")[0].split("/")
                 if part]
        try:
            if parts == ["campaigns"]:
                payload = self._read_body()
                if payload is None:
                    return
                header_key = self.headers.get("Idempotency-Key")
                if header_key and "idempotency_key" not in payload:
                    payload["idempotency_key"] = header_key
                if service.shedding:
                    self._shed()
                    return
                campaign_id, duplicate = service.submit(payload)
                if duplicate:
                    self._reply(200, {"campaign_id": campaign_id,
                                      "duplicate": True})
                else:
                    self._reply(202, {"campaign_id": campaign_id,
                                      "duplicate": False,
                                      "status": CAMPAIGN_QUEUED})
            elif len(parts) == 3 and parts[0] == "campaigns" and \
                    parts[2] == "resume":
                if service.shedding:
                    self._shed()
                    return
                service.enqueue_resume(parts[1])
                self._reply(202, {"campaign_id": parts[1],
                                  "status": CAMPAIGN_QUEUED})
            else:
                self._reply(404, {"error": f"no route {self.path!r}"})
        except AdmissionRejected as error:
            self._reply(429, {"error": str(error), "rejected": True,
                              "queue_depth": error.queue_depth,
                              "pending": error.pending})
        except (ServiceError, CampaignError) as error:
            self._reply(400, {"error": str(error)})
        except Exception as error:  # noqa: BLE001 - never kill handler
            self._reply(500, {"error": str(error)})
