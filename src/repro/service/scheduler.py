"""The sharded campaign scheduler: explicit fault domains on top of
the single-host shard engine.

``CampaignService`` drives one campaign whose jobs were partitioned
into shards (:mod:`repro.service.partition`), each shard running as a
supervised process group (:mod:`repro.service.shards`).  The
cross-shard robustness layer lives here:

* **heartbeat lease** — a shard whose stamp goes stale is killed and
  struck, on the monotonic clock (like the per-worker watchdog);
* **circuit breaker** — ``breaker_threshold`` *consecutive* strikes
  quarantine the shard: its process group is erased and its
  non-COMPLETED jobs are **reassigned** to a healthy shard (an idle or
  finished one is preferred; otherwise a fresh recovery shard is
  spun up).  COMPLETED work in a quarantined shard is never re-run —
  its artifacts were atomically persisted before the manifest recorded
  them;
* **graceful degradation** — a job that exhausts its reassignment
  budget is recorded as LOST against the shard that lost it, and the
  campaign completes ``DEGRADED`` with exact per-shard loss accounting
  instead of hanging or silently dropping results;
* **cross-shard merge** — when every shard is terminal the per-shard
  manifests and telemetry counter snapshots merge into one seed-stable
  ``aggregate.json`` whose digest is byte-identical between a clean
  run and any interrupted/quarantined/resumed run that recovered every
  job (the digest covers job results, merged counters, losses, and
  status — never campaign ids or shard layout).

All service state checkpoints into ``runs/<id>/campaign.json`` via
atomic writes, so a SIGKILL of the service process at any instant
leaves a resumable campaign.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import random
import signal
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from .. import telemetry
from ..errors import ArtifactCorrupt, CampaignError, ServiceError
from ..runner import RunManifest, new_campaign_id
from ..runner.jobs import JobSpec, JobStatus
from ..runner.manifest import MANIFEST_NAME
from ..storage import (JOURNAL_SUFFIX, checkpoint, load_checkpoint,
                       write_envelope)
from .partition import partition_jobs
from .shards import (SHARD_COMPLETED, SHARD_PENDING, SHARD_QUARANTINED,
                     SHARD_RUNNING, ShardHandle, load_shard_manifest,
                     shard_main, unfinished_jobs)

SERVICE_MANIFEST_NAME = "campaign.json"
AGGREGATE_NAME = "aggregate.json"
SERVICE_SCHEMA_VERSION = 1
#: envelope schema tags on the service's durable documents
SERVICE_SCHEMA_TAG = "repro.service.campaign"
AGGREGATE_SCHEMA_TAG = "repro.service.aggregate"

#: campaign lifecycle states
CAMPAIGN_QUEUED = "QUEUED"
CAMPAIGN_RUNNING = "RUNNING"
CAMPAIGN_INTERRUPTED = "INTERRUPTED"
CAMPAIGN_COMPLETED = "COMPLETED"
CAMPAIGN_DEGRADED = "DEGRADED"
CAMPAIGN_FAILED = "FAILED"

TERMINAL_STATES = (CAMPAIGN_COMPLETED, CAMPAIGN_DEGRADED,
                   CAMPAIGN_FAILED)

#: scheduler knobs persisted with the campaign (resume reuses them)
DEFAULT_OPTIONS: Dict[str, object] = {
    "workers_per_shard": 2,
    "concurrent_shards": 0,          # 0 = every shard at once
    "lease_s": 5.0,
    "breaker_threshold": 2,
    "max_reassignments": 1,
    "stall_timeout": 10.0,
    "backoff_base": 0.25,
    "backoff_cap": 4.0,
    "poll_interval": 0.02,
}

#: chaos modes the service understands (the campaign runner keeps its
#: own worker-level ``kill-worker`` drill)
CHAOS_KILL_SHARD = "kill-shard"
CHAOS_STALL_SHARD = "stall-shard"


# ----------------------------------------------------------------------
# persisted service state
# ----------------------------------------------------------------------
@dataclass
class ShardEntry:
    """One shard's persisted supervision state."""

    shard_id: str
    #: manifest directory relative to the campaign directory
    #: ("." = the campaign directory itself, for adopted v1 manifests)
    directory: str
    jobs: List[str] = field(default_factory=list)
    status: str = SHARD_PENDING
    #: consecutive failures since the last successful completion
    strikes: int = 0
    restarts: int = 0
    #: quarantined shard this one recovered jobs from ("" = original)
    origin: str = ""

    def to_dict(self) -> Dict[str, object]:
        return {
            "shard_id": self.shard_id,
            "directory": self.directory,
            "jobs": list(self.jobs),
            "status": self.status,
            "strikes": self.strikes,
            "restarts": self.restarts,
            "origin": self.origin,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "ShardEntry":
        return cls(
            shard_id=str(payload["shard_id"]),
            directory=str(payload["directory"]),
            jobs=[str(job) for job in payload.get("jobs", [])],
            status=str(payload.get("status", SHARD_PENDING)),
            strikes=int(payload.get("strikes", 0)),
            restarts=int(payload.get("restarts", 0)),
            origin=str(payload.get("origin", "")),
        )


@dataclass
class ServiceManifest:
    """All persisted state of one sharded campaign."""

    campaign_id: str
    directory: Path
    created: str = ""
    seed: Optional[int] = None
    status: str = CAMPAIGN_QUEUED
    options: Dict[str, object] = field(default_factory=dict)
    shards: Dict[str, ShardEntry] = field(default_factory=dict)
    #: shard id -> jobs lost when that shard became irrecoverable
    lost: Dict[str, List[str]] = field(default_factory=dict)
    #: job id -> times it has been reassigned after a quarantine
    reassignments: Dict[str, int] = field(default_factory=dict)

    @property
    def path(self) -> Path:
        return self.directory / SERVICE_MANIFEST_NAME

    @property
    def aggregate_path(self) -> Path:
        return self.directory / AGGREGATE_NAME

    def shard_dir(self, entry: ShardEntry) -> Path:
        if entry.directory in ("", "."):
            return self.directory
        return self.directory / entry.directory

    def job_ids(self) -> List[str]:
        """Every unique job in the campaign, sorted."""
        ids = set()
        for entry in self.shards.values():
            ids.update(entry.jobs)
        return sorted(ids)

    def save(self) -> None:
        payload = {
            "schema": SERVICE_SCHEMA_VERSION,
            "campaign_id": self.campaign_id,
            "created": self.created,
            "seed": self.seed,
            "status": self.status,
            "options": self.options,
            "shards": {shard_id: entry.to_dict()
                       for shard_id, entry in self.shards.items()},
            "lost": {shard_id: sorted(jobs)
                     for shard_id, jobs in self.lost.items()},
            "reassignments": dict(sorted(self.reassignments.items())),
        }
        checkpoint(self.path, payload, SERVICE_SCHEMA_TAG)

    @classmethod
    def load(cls, runs_dir: Path,
             campaign_id: str) -> "ServiceManifest":
        directory = Path(runs_dir) / campaign_id
        path = directory / SERVICE_MANIFEST_NAME
        try:
            # Journaled load: a checkpoint interrupted between WAL and
            # target replays; a corrupted target heals from the WAL.
            payload = load_checkpoint(
                path, expect_schema=SERVICE_SCHEMA_TAG)
        except FileNotFoundError:
            raise ServiceError(
                f"no service manifest for campaign {campaign_id!r} "
                f"under {runs_dir}") from None
        except ArtifactCorrupt:
            # Both copies are damaged (already quarantined to
            # ``*.corrupt``): reconstruct the supervision state from
            # the surviving per-shard manifests instead of crashing.
            return rebuild_service_manifest(runs_dir, campaign_id)
        schema = payload.get("schema") \
            if isinstance(payload, dict) else None
        if schema != SERVICE_SCHEMA_VERSION:
            raise ServiceError(
                f"service manifest schema {schema!r} "
                f"!= supported {SERVICE_SCHEMA_VERSION}")
        manifest = cls(
            campaign_id=str(payload["campaign_id"]),
            directory=directory,
            created=str(payload.get("created", "")),
            seed=payload.get("seed"),
            status=str(payload.get("status", CAMPAIGN_QUEUED)),
            options=dict(payload.get("options", {})),
            lost={shard: [str(job) for job in jobs]
                  for shard, jobs in payload.get("lost", {}).items()},
            reassignments={job: int(count) for job, count in
                           payload.get("reassignments", {}).items()},
        )
        for shard_id, entry in payload.get("shards", {}).items():
            manifest.shards[shard_id] = ShardEntry.from_dict(entry)
        return manifest


def list_service_campaigns(runs_dir: Path) -> List[str]:
    """Campaign ids with a service manifest under ``runs_dir``."""
    runs_dir = Path(runs_dir)
    if not runs_dir.is_dir():
        return []
    return sorted(entry.name for entry in runs_dir.iterdir()
                  if (entry / SERVICE_MANIFEST_NAME).is_file())


def _load_shard_or_none(manifest: "ServiceManifest",
                        entry: "ShardEntry"
                        ) -> Optional[RunManifest]:
    """A shard's manifest, or None when it is unrecoverable (missing
    or corrupt beyond its journal — the load itself quarantines the
    damage and bumps ``storage.corruption_detected``)."""
    try:
        return load_shard_manifest(manifest.shard_dir(entry))
    except (CampaignError, ArtifactCorrupt):
        return None


def rebuild_service_manifest(runs_dir,
                             campaign_id: str) -> "ServiceManifest":
    """Reconstruct ``campaign.json`` from surviving shard manifests.

    The last resort when both the service checkpoint and its journal
    are damaged: every per-shard manifest is itself journaled, so the
    ground truth — which jobs exist and which completed — survives in
    the shards.  What cannot be reconstructed (loss accounting,
    reassignment budgets, tuned options) resets to defaults; the
    campaign is left INTERRUPTED so an explicit resume re-drives it,
    and :func:`merge_shards` re-derives exact loss accounting from
    what the shards actually hold.
    """
    runs_dir = Path(runs_dir)
    directory = runs_dir / campaign_id
    shards_dir = directory / "shards"
    candidates: List[Path] = []
    if shards_dir.is_dir():
        candidates = sorted(path for path in shards_dir.iterdir()
                            if path.is_dir())
    if (directory / MANIFEST_NAME).exists() or \
            (directory / f"{MANIFEST_NAME}{JOURNAL_SUFFIX}").exists():
        # adopted legacy v1 campaign: the shard is the campaign dir
        candidates.append(directory)
    manifest = ServiceManifest(
        campaign_id=campaign_id, directory=directory,
        status=CAMPAIGN_INTERRUPTED, options=dict(DEFAULT_OPTIONS))
    for shard_dir in candidates:
        adopted = shard_dir == directory
        shard_id = "s00" if adopted else shard_dir.name
        relative = "." if adopted else f"shards/{shard_dir.name}"
        try:
            shard_manifest = load_shard_manifest(shard_dir)
        except (CampaignError, ArtifactCorrupt):
            # This shard's checkpoint is gone too; keep the fault
            # domain on the books so the merge can account its jobs.
            manifest.shards[shard_id] = ShardEntry(
                shard_id=shard_id, directory=relative,
                status=SHARD_QUARANTINED)
            continue
        if manifest.seed is None:
            manifest.seed = shard_manifest.seed
        manifest.created = manifest.created or shard_manifest.created
        status = (SHARD_COMPLETED if shard_manifest.all_completed()
                  else SHARD_PENDING)
        manifest.shards[shard_id] = ShardEntry(
            shard_id=shard_id, directory=relative,
            jobs=sorted(shard_manifest.jobs), status=status)
    if not manifest.shards:
        raise ServiceError(
            f"campaign {campaign_id!r} is unrecoverable: service "
            f"manifest corrupt and no shard manifests survive "
            f"under {directory}")
    telemetry.count("storage.rebuilds")
    manifest.save()
    return manifest


# ----------------------------------------------------------------------
# chaos: shard-level failure drills
# ----------------------------------------------------------------------
@dataclass
class ServiceChaos:
    """Deterministically strikes shard process groups mid-campaign.

    ``kill-shard`` SIGKILLs the whole group (a box dying);
    ``stall-shard`` SIGSTOPs it (a frozen/overloaded box) — the
    heartbeat lease, on the monotonic clock, must then trip the
    circuit breaker within its budget.  Unlike the worker-level
    ``kill-worker`` drill, the service is expected to *self-heal*:
    restart or quarantine + reassign, and still converge.
    """

    mode: str = CHAOS_KILL_SHARD
    strikes: int = 1
    delay_s: float = 0.2
    seed: int = 0
    #: pin the victim shard (tests); None picks pseudo-randomly
    target: Optional[str] = None

    def __post_init__(self) -> None:
        if self.mode not in (CHAOS_KILL_SHARD, CHAOS_STALL_SHARD):
            raise ServiceError(
                f"unknown service chaos mode {self.mode!r}; known: "
                f"{CHAOS_KILL_SHARD}, {CHAOS_STALL_SHARD}")
        self._rng = random.Random(f"service-chaos:{self.seed}")
        self._struck = 0
        #: (monotonic stamp, shard id) per strike, for lease-budget
        #: regression tests
        self.events: List[Tuple[float, str]] = []

    @property
    def exhausted(self) -> bool:
        return self._struck >= self.strikes

    def maybe_strike(self, handles: List[ShardHandle],
                     age: float) -> Optional[str]:
        if self.exhausted or age < self.delay_s or not handles:
            return None
        candidates = sorted(handles, key=lambda h: h.shard_id)
        if self.target is not None:
            candidates = [handle for handle in candidates
                          if handle.shard_id == self.target]
        if not candidates:
            return None
        victim = self._rng.choice(candidates)
        signum = (signal.SIGKILL if self.mode == CHAOS_KILL_SHARD
                  else signal.SIGSTOP)
        victim.signal_group(signum)
        self._struck += 1
        self.events.append((time.monotonic(), victim.shard_id))
        return victim.shard_id


# ----------------------------------------------------------------------
# creation / resume
# ----------------------------------------------------------------------
def create_service_campaign(specs: List[JobSpec], runs_dir, *,
                            campaign_id: Optional[str] = None,
                            seed: Optional[int] = None,
                            shards: int = 2,
                            options: Optional[Dict[str, object]] = None,
                            created: str = "") -> ServiceManifest:
    """Partition ``specs`` into shard manifests and persist the
    service manifest (status QUEUED — run it with
    :class:`CampaignService`)."""
    runs_dir = Path(runs_dir)
    campaign_id = campaign_id or new_campaign_id("service")
    directory = runs_dir / campaign_id
    if (directory / SERVICE_MANIFEST_NAME).exists() or \
            (directory / MANIFEST_NAME).exists():
        raise ServiceError(
            f"campaign {campaign_id!r} already exists under "
            f"{runs_dir}; use resume")
    assignment = partition_jobs(specs, shards, seed=seed)
    manifest = ServiceManifest(
        campaign_id=campaign_id, directory=directory, created=created,
        seed=seed, options={**DEFAULT_OPTIONS, **(options or {})})
    for shard_id, shard_specs in assignment.items():
        shard_manifest = RunManifest.create(
            shard_id, directory / "shards", specs=shard_specs,
            seed=seed, created=created, shard_id=shard_id,
            parent=campaign_id)
        shard_manifest.save()
        manifest.shards[shard_id] = ShardEntry(
            shard_id=shard_id, directory=f"shards/{shard_id}",
            jobs=[spec.job_id for spec in shard_specs])
    manifest.save()
    return manifest


def load_or_adopt_campaign(runs_dir, campaign_id: str,
                           ) -> ServiceManifest:
    """Load a service campaign — or adopt a legacy (schema-v1,
    pre-service) single-manifest campaign as a one-shard service
    campaign whose shard directory is the campaign directory itself."""
    runs_dir = Path(runs_dir)
    directory = runs_dir / campaign_id
    if (directory / SERVICE_MANIFEST_NAME).exists():
        return ServiceManifest.load(runs_dir, campaign_id)
    if not (directory / MANIFEST_NAME).exists():
        raise ServiceError(
            f"no campaign {campaign_id!r} under {runs_dir}")
    legacy = RunManifest.load(runs_dir, campaign_id)
    status = (SHARD_COMPLETED if legacy.all_completed()
              else SHARD_PENDING)
    entry = ShardEntry(shard_id="s00", directory=".",
                       jobs=sorted(legacy.jobs), status=status)
    manifest = ServiceManifest(
        campaign_id=campaign_id, directory=directory,
        created=legacy.created, seed=legacy.seed,
        status=CAMPAIGN_QUEUED, options=dict(DEFAULT_OPTIONS),
        shards={"s00": entry})
    manifest.save()
    return manifest


def resume_service_campaign(runs_dir, campaign_id: str, *,
                            options: Optional[Dict[str, object]] = None
                            ) -> ServiceManifest:
    """Reload a campaign for another run: RUNNING shards (left by a
    dead service process) become PENDING, orphaned quarantine work is
    re-reassigned, and LOST jobs get a fresh reassignment budget — an
    explicit resume, like ``--resume`` on the single-host runner,
    restores every job's chance to complete."""
    manifest = load_or_adopt_campaign(runs_dir, campaign_id)
    if options:
        manifest.options.update(options)
    for entry in manifest.shards.values():
        if entry.status == SHARD_RUNNING:
            entry.status = SHARD_PENDING
    _reconcile_orphans(manifest)
    _restore_lost(manifest)
    manifest.status = CAMPAIGN_QUEUED
    manifest.save()
    return manifest


def _owned_job_ids(manifest: ServiceManifest) -> set:
    """Jobs some live (non-quarantined) shard is responsible for."""
    owned = set()
    for entry in manifest.shards.values():
        if entry.status != SHARD_QUARANTINED:
            owned.update(entry.jobs)
    for jobs in manifest.lost.values():
        owned.update(jobs)
    return owned


def _recovery_entry(manifest: ServiceManifest, origin: str,
                    specs: List[JobSpec]) -> ShardEntry:
    """Create a fresh recovery shard holding ``specs``."""
    sequence = 1 + sum(1 for shard_id in manifest.shards
                       if shard_id.startswith(f"{origin}-r"))
    shard_id = f"{origin}-r{sequence}"
    shard_manifest = RunManifest.create(
        shard_id, manifest.directory / "shards", specs=specs,
        seed=manifest.seed, created=manifest.created,
        shard_id=shard_id, parent=manifest.campaign_id)
    shard_manifest.save()
    entry = ShardEntry(shard_id=shard_id,
                       directory=f"shards/{shard_id}",
                       jobs=[spec.job_id for spec in specs],
                       origin=origin)
    manifest.shards[shard_id] = entry
    return entry


def _reconcile_orphans(manifest: ServiceManifest) -> None:
    """Re-home unfinished jobs of quarantined shards that no live
    shard owns (a service crash in the quarantine window)."""
    owned = _owned_job_ids(manifest)
    for entry in list(manifest.shards.values()):
        if entry.status != SHARD_QUARANTINED:
            continue
        shard_manifest = _load_shard_or_none(manifest, entry)
        if shard_manifest is None:
            continue        # merge_shards accounts the loss exactly
        orphans = [spec for spec in unfinished_jobs(shard_manifest)
                   if spec.job_id not in owned]
        if orphans:
            _recovery_entry(manifest, entry.shard_id, orphans)
            owned.update(spec.job_id for spec in orphans)


def _restore_lost(manifest: ServiceManifest) -> None:
    """Give LOST jobs a fresh reassignment budget on explicit resume."""
    if not manifest.lost:
        return
    restored: List[str] = []
    for shard_id, jobs in sorted(manifest.lost.items()):
        entry = manifest.shards.get(shard_id)
        if entry is not None:
            shard_manifest = _load_shard_or_none(manifest, entry)
            if shard_manifest is None:
                # Specs unrecoverable — the loss stays on the books
                # rather than silently vanishing from the accounting.
                continue
            specs = [shard_manifest.jobs[job].spec
                     for job in sorted(jobs)
                     if job in shard_manifest.jobs]
            if specs:
                _recovery_entry(manifest, shard_id, specs)
        for job in jobs:
            manifest.reassignments.pop(job, None)
        restored.append(shard_id)
    for shard_id in restored:
        manifest.lost.pop(shard_id, None)


# ----------------------------------------------------------------------
# the scheduler
# ----------------------------------------------------------------------
class CampaignService:
    """Drives one sharded campaign to a terminal state."""

    def __init__(self, manifest: ServiceManifest, *,
                 chaos: Optional[ServiceChaos] = None,
                 stop_event: Optional[threading.Event] = None,
                 on_event: Optional[Callable[[str, str],
                                             None]] = None):
        self.manifest = manifest
        options = {**DEFAULT_OPTIONS, **manifest.options}
        manifest.options = options
        self.workers_per_shard = int(options["workers_per_shard"])
        self.concurrent_shards = int(options["concurrent_shards"])
        self.lease_s = float(options["lease_s"])
        self.breaker_threshold = int(options["breaker_threshold"])
        self.max_reassignments = int(options["max_reassignments"])
        self.poll_interval = float(options["poll_interval"])
        if self.lease_s <= 0:
            raise ServiceError("lease_s must be positive")
        if self.breaker_threshold < 1:
            raise ServiceError("breaker_threshold must be >= 1")
        self.chaos = chaos
        self.stop_event = stop_event
        self._on_event = on_event
        self._lock = threading.RLock()
        self._running: Dict[str, ShardHandle] = {}
        #: live job status tallies, fed by shard uplink messages
        self._job_status: Dict[str, str] = {}
        try:
            self._ctx = multiprocessing.get_context("fork")
        except ValueError:          # pragma: no cover - non-POSIX
            self._ctx = multiprocessing.get_context("spawn")

    # ------------------------------------------------------------------
    def _event(self, shard_id: str, message: str) -> None:
        if self._on_event is not None:
            self._on_event(shard_id, message)

    def _seed_job_status(self) -> None:
        for entry in self.manifest.shards.values():
            try:
                shard_manifest = load_shard_manifest(
                    self.manifest.shard_dir(entry))
            except Exception:       # noqa: BLE001 - tolerate partial
                continue
            for job_id, record in shard_manifest.jobs.items():
                if record.status is JobStatus.COMPLETED or \
                        job_id not in self._job_status:
                    self._job_status[job_id] = record.status.value

    # ------------------------------------------------------------------
    # shard lifecycle
    # ------------------------------------------------------------------
    def _runnable_entries(self) -> List[ShardEntry]:
        return [entry for entry in self.manifest.shards.values()
                if entry.status == SHARD_PENDING
                and entry.shard_id not in self._running]

    def _launch(self, entry: ShardEntry) -> None:
        heartbeat = self._ctx.Value("d", 0.0, lock=False)
        recv_conn, send_conn = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=shard_main,
            args=(str(self.manifest.shard_dir(entry)),
                  dict(self.manifest.options), send_conn, heartbeat),
            name=f"repro-shard-{entry.shard_id}",
            daemon=False,       # shards fork their own workers
        )
        process.start()
        send_conn.close()
        entry.status = SHARD_RUNNING
        self.manifest.save()
        self._running[entry.shard_id] = ShardHandle(
            shard_id=entry.shard_id, process=process, conn=recv_conn,
            heartbeat=heartbeat)
        telemetry.count("service.shard.launches")
        self._event(entry.shard_id,
                    f"shard started (pgid {process.pid})")

    def _launch_pass(self) -> None:
        limit = self.concurrent_shards or len(self.manifest.shards)
        for entry in self._runnable_entries():
            if len(self._running) >= limit:
                break
            self._launch(entry)

    def _complete_shard(self, entry: ShardEntry,
                        handle: ShardHandle, counts: Dict[str, int]
                        ) -> None:
        handle.process.join(timeout=5.0)
        try:
            handle.conn.close()
        except OSError:
            pass
        self._running.pop(entry.shard_id, None)
        entry.status = SHARD_COMPLETED
        entry.strikes = 0           # consecutive-failure breaker
        self.manifest.save()
        telemetry.count("service.shard.completed")
        summary = ", ".join(f"{count} {status}" for status, count
                            in sorted(counts.items()))
        self._event(entry.shard_id, f"shard completed ({summary})")

    def _strike(self, entry: ShardEntry, handle: ShardHandle,
                reason: str) -> None:
        """One shard failure: kill the group, count it against the
        circuit breaker, restart or quarantine."""
        handle.kill_group()
        self._running.pop(entry.shard_id, None)
        entry.strikes += 1
        telemetry.count("service.shard.strikes")
        self._event(entry.shard_id,
                    f"strike {entry.strikes}/{self.breaker_threshold}"
                    f" ({reason})")
        if entry.strikes >= self.breaker_threshold:
            self._quarantine(entry)
        else:
            entry.restarts += 1
            entry.status = SHARD_PENDING
            telemetry.count("service.shard.restarts")
            self.manifest.save()

    def _quarantine(self, entry: ShardEntry) -> None:
        """Trip the breaker: the shard is sick; move its unfinished
        work to healthy shards (or declare it lost)."""
        entry.status = SHARD_QUARANTINED
        telemetry.count("service.shard.quarantines")
        reassignable: List[JobSpec] = []
        lost: List[str] = []
        shard_manifest = _load_shard_or_none(self.manifest, entry)
        if shard_manifest is None:
            # The shard's checkpoint is corrupt beyond its journal:
            # without specs nothing can be reassigned, so every job
            # the service cannot prove COMPLETED is declared lost —
            # exact accounting instead of a silent drop.
            completed = JobStatus.COMPLETED.value
            lost = [job for job in sorted(entry.jobs)
                    if self._job_status.get(job) != completed]
            self._event(entry.shard_id,
                        "shard manifest unrecoverable; declaring "
                        f"{len(lost)} unproven job(s) lost")
        else:
            for spec in unfinished_jobs(shard_manifest):
                used = self.manifest.reassignments.get(spec.job_id, 0)
                if used >= self.max_reassignments:
                    lost.append(spec.job_id)
                else:
                    reassignable.append(spec)
        if lost:
            bucket = self.manifest.lost.setdefault(entry.shard_id, [])
            bucket.extend(job for job in sorted(lost)
                          if job not in bucket)
            telemetry.count("service.job.lost", len(lost))
            for job in lost:
                self._job_status[job] = "LOST"
        target_id = None
        if reassignable:
            target_id = self._reassign(entry, reassignable)
        self.manifest.save()
        detail = []
        if reassignable:
            detail.append(f"{len(reassignable)} job(s) reassigned "
                          f"to {target_id}")
        if lost:
            detail.append(f"{len(lost)} job(s) LOST")
        self._event(entry.shard_id,
                    "QUARANTINED (circuit breaker): "
                    + ("; ".join(detail) or "no unfinished jobs"))

    def _reassign(self, sick: ShardEntry,
                  specs: List[JobSpec]) -> str:
        """Move ``specs`` to a healthy shard.  Prefers an idle healthy
        shard (PENDING, or COMPLETED — it relaunches and resume
        semantics skip its finished jobs); falls back to a fresh
        recovery shard when every healthy shard is mid-flight."""
        for job in specs:
            self.manifest.reassignments[job.job_id] = \
                self.manifest.reassignments.get(job.job_id, 0) + 1
        telemetry.count("service.job.reassigned", len(specs))
        candidates = sorted(
            (entry for entry in self.manifest.shards.values()
             if entry.status in (SHARD_PENDING, SHARD_COMPLETED)
             and entry.shard_id not in self._running),
            key=lambda entry: (len(entry.jobs), entry.shard_id))
        if candidates:
            target = candidates[0]
            target_manifest = load_shard_manifest(
                self.manifest.shard_dir(target))
            added = target_manifest.add_specs(specs)
            target_manifest.save()
            target.jobs.extend(job for job in added
                               if job not in target.jobs)
            target.status = SHARD_PENDING
            return target.shard_id
        return _recovery_entry(self.manifest, sick.shard_id,
                               specs).shard_id

    # ------------------------------------------------------------------
    # settle: uplink messages, deaths, leases
    # ------------------------------------------------------------------
    def _settle(self, handle: ShardHandle, now: float) -> None:
        entry = self.manifest.shards[handle.shard_id]
        while handle.shard_id in self._running:
            try:
                if not handle.conn.poll(0):
                    break
                message = handle.conn.recv()
            except (EOFError, OSError):
                break
            kind = message[0]
            if kind == "job":
                _, job_id, status, attempts = message
                self._job_status[job_id] = status
                self._event(handle.shard_id,
                            f"[{job_id}] {status} "
                            f"(attempt {attempts})")
            elif kind == "done":
                self._complete_shard(entry, handle, message[1])
                return
            elif kind == "error":
                self._strike(entry, handle,
                             f"shard engine failed: {message[1]}")
                return
        if not handle.alive():
            self._strike(entry, handle,
                         "shard process group died without a result")
            return
        if handle.lease_expired(self.lease_s, now):
            stale = now - handle.last_beat()
            self._strike(entry, handle,
                         f"heartbeat lease expired "
                         f"({stale:.2f}s > {self.lease_s:.2f}s)")

    def _settle_pass(self, now: float) -> None:
        for handle in list(self._running.values()):
            self._settle(handle, now)

    # ------------------------------------------------------------------
    # terminal accounting
    # ------------------------------------------------------------------
    def _interrupt(self) -> None:
        for handle in list(self._running.values()):
            handle.kill_group()
            entry = self.manifest.shards[handle.shard_id]
            entry.status = SHARD_PENDING
            self._running.pop(handle.shard_id, None)
        self.manifest.status = CAMPAIGN_INTERRUPTED
        self.manifest.save()
        self._event("service", "campaign INTERRUPTED "
                               "(resumable)")

    def _finalize(self) -> None:
        aggregate = merge_shards(self.manifest)
        self.manifest.status = str(aggregate["status"])
        write_envelope(self.manifest.aggregate_path, aggregate,
                       AGGREGATE_SCHEMA_TAG)
        self.manifest.save()
        telemetry.count(
            f"service.campaign.{self.manifest.status.lower()}")
        self._event("service",
                    f"campaign {self.manifest.status} "
                    f"(aggregate digest "
                    f"{str(aggregate['digest'])[:12]})")

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def run(self) -> ServiceManifest:
        manifest = self.manifest
        with self._lock:
            manifest.status = CAMPAIGN_RUNNING
            manifest.save()
            self._seed_job_status()
        started = time.monotonic()
        try:
            while True:
                if self.stop_event is not None and \
                        self.stop_event.is_set():
                    with self._lock:
                        self._interrupt()
                    return manifest
                now = time.monotonic()
                with self._lock:
                    self._launch_pass()
                    self._settle_pass(now)
                    if self.chaos is not None and \
                            not self.chaos.exhausted:
                        victim = self.chaos.maybe_strike(
                            list(self._running.values()),
                            now - started)
                        if victim is not None:
                            telemetry.count("service.chaos.strikes")
                            self._event(victim,
                                        f"chaos: {self.chaos.mode}")
                    done = (not self._running
                            and not self._runnable_entries())
                if done:
                    break
                time.sleep(self.poll_interval)
            with self._lock:
                self._finalize()
        finally:
            with self._lock:
                for handle in list(self._running.values()):
                    handle.kill_group()
                self._running.clear()
                if manifest.status == CAMPAIGN_RUNNING:
                    manifest.status = CAMPAIGN_INTERRUPTED
                manifest.save()
        return manifest

    # ------------------------------------------------------------------
    # live status (HTTP layer; thread-safe)
    # ------------------------------------------------------------------
    @property
    def quarantining(self) -> bool:
        """True while the breaker has tripped on some shard and the
        campaign is still in flight — the window in which the HTTP
        front door sheds new submissions (503) because the scheduler
        is busy re-homing work."""
        with self._lock:
            if self.manifest.status != CAMPAIGN_RUNNING:
                return False
            return any(entry.status == SHARD_QUARANTINED
                       for entry in self.manifest.shards.values())

    def status_snapshot(self) -> Dict[str, object]:
        with self._lock:
            shards = {}
            for shard_id, entry in self.manifest.shards.items():
                handle = self._running.get(shard_id)
                shards[shard_id] = {
                    "status": entry.status,
                    "strikes": entry.strikes,
                    "restarts": entry.restarts,
                    "origin": entry.origin,
                    "jobs": len(entry.jobs),
                    "pgid": handle.pgid if handle else None,
                }
            tally: Dict[str, int] = {}
            for status in self._job_status.values():
                tally[status] = tally.get(status, 0) + 1
            quarantining = (
                self.manifest.status == CAMPAIGN_RUNNING
                and any(entry.status == SHARD_QUARANTINED
                        for entry in self.manifest.shards.values()))
            return {
                "campaign_id": self.manifest.campaign_id,
                "status": self.manifest.status,
                "seed": self.manifest.seed,
                "quarantining": quarantining,
                "shards": shards,
                "jobs": tally,
                "total_jobs": len(self.manifest.job_ids()),
                "lost": {shard: list(jobs) for shard, jobs
                         in self.manifest.lost.items()},
            }


# ----------------------------------------------------------------------
# cross-shard merge
# ----------------------------------------------------------------------
def merge_shards(manifest: ServiceManifest) -> Dict[str, object]:
    """Merge every shard manifest + telemetry counter snapshot into the
    campaign's seed-stable aggregate.

    The aggregate ``digest`` covers per-job digests, merged counters,
    loss accounting, seed, and status — and deliberately **excludes**
    campaign/shard ids and layout, so a quarantine that moved jobs
    between shards (or a different shard count) cannot change it.
    """
    records: Dict[str, object] = {}
    for shard_id in sorted(manifest.shards):
        entry = manifest.shards[shard_id]
        shard_manifest = _load_shard_or_none(manifest, entry)
        if shard_manifest is None:  # missing or corrupt shard dir
            continue
        for job_id, record in shard_manifest.jobs.items():
            best = records.get(job_id)
            if best is None or (
                    record.status is JobStatus.COMPLETED
                    and best.status is not JobStatus.COMPLETED):
                records[job_id] = record
    # losses: prune jobs that some shard completed after all (a stale
    # quarantine read) — the accounting must be exact
    lost: Dict[str, List[str]] = {}
    lost_jobs = set()
    for shard_id, jobs in sorted(manifest.lost.items()):
        remaining = sorted(
            job for job in jobs
            if job not in records
            or records[job].status is not JobStatus.COMPLETED)
        if remaining:
            lost[shard_id] = remaining
            lost_jobs.update(remaining)
    # Jobs no surviving shard manifest holds at all (every checkpoint
    # that listed them was destroyed beyond journal recovery) are
    # accounted as LOST against their owning shard — exact accounting,
    # never a silent drop from the aggregate.
    for job_id in manifest.job_ids():
        if job_id in records or job_id in lost_jobs:
            continue
        owner = next((shard_id for shard_id in sorted(manifest.shards)
                      if job_id in manifest.shards[shard_id].jobs),
                     "unknown")
        bucket = lost.setdefault(owner, [])
        if job_id not in bucket:
            bucket.append(job_id)
        lost_jobs.add(job_id)
    lost = {shard_id: sorted(jobs_) for shard_id, jobs_
            in sorted(lost.items())}
    jobs: Dict[str, Dict[str, object]] = {}
    completed_counters = []
    for job_id in sorted(lost_jobs - set(records)):
        jobs[job_id] = {"status": "LOST", "digest": ""}
    for job_id in sorted(records):
        record = records[job_id]
        if job_id in lost_jobs:
            status = "LOST"
        else:
            status = record.status.value
        jobs[job_id] = {"status": status, "digest": record.digest}
        if record.status is JobStatus.COMPLETED:
            completed_counters.append(record.counters)
    counters = telemetry.merge_counters(*completed_counters)
    if lost_jobs:
        status = CAMPAIGN_DEGRADED
    elif all(entry["status"] == JobStatus.COMPLETED.value
             for entry in jobs.values()) and jobs:
        status = CAMPAIGN_COMPLETED
    else:
        status = CAMPAIGN_FAILED
    core = {
        "seed": manifest.seed,
        "status": status,
        "jobs": jobs,
        "lost": lost,
        "counters": counters,
    }
    canonical = json.dumps(core, sort_keys=True,
                           separators=(",", ":"))
    digest = hashlib.sha256(canonical.encode("utf-8")).hexdigest()
    return {
        "schema": SERVICE_SCHEMA_VERSION,
        "campaign_id": manifest.campaign_id,
        "digest": digest,
        **core,
    }


def run_service_campaign(specs: List[JobSpec], runs_dir, *,
                         campaign_id: Optional[str] = None,
                         seed: Optional[int] = None,
                         shards: int = 2,
                         resume: bool = False,
                         options: Optional[Dict[str, object]] = None,
                         chaos: Optional[ServiceChaos] = None,
                         stop_event: Optional[threading.Event] = None,
                         on_event: Optional[Callable[[str, str],
                                                     None]] = None,
                         created: str = "") -> ServiceManifest:
    """Create (or resume) a sharded campaign and run it to a terminal
    state — the service-layer analogue of
    :func:`repro.runner.run_campaign`."""
    if resume:
        if campaign_id is None:
            raise ServiceError("resume requires a campaign id")
        manifest = resume_service_campaign(runs_dir, campaign_id,
                                           options=options)
    else:
        manifest = create_service_campaign(
            specs, runs_dir, campaign_id=campaign_id, seed=seed,
            shards=shards, options=options, created=created)
    service = CampaignService(manifest, chaos=chaos,
                              stop_event=stop_event,
                              on_event=on_event)
    return service.run()
