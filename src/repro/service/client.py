"""Self-healing stdlib client for the campaign service
(``repro submit``).

Wraps the HTTP/JSON API with typed errors and a bounded retry loop:

* transient failures — a connection refused/reset (the server
  restarting) or an HTTP 503 (the scheduler shedding load while it
  quarantines shards) — are retried with exponential backoff plus
  full jitter, up to ``max_attempts``;
* when the budget is exhausted the client raises
  :class:`repro.errors.ServiceUnavailable` (picklable, carries the
  attempt count and last transport error) instead of hanging or
  looping forever against a dead server;
* a 429 from the bounded admission queue raises
  :class:`repro.errors.AdmissionRejected` so callers can back off
  explicitly; anything else non-2xx raises
  :class:`repro.errors.ServiceError` with the server's message.

Retrying a submit is safe because :meth:`ServiceClient.submit`
attaches an idempotency key (generated when the caller does not
provide one): the server derives the campaign id from the key, so the
retry of a request whose response was lost finds the already-created
campaign instead of spawning a duplicate.
"""

from __future__ import annotations

import json
import random
import time
import urllib.error
import urllib.request
import uuid
from typing import Dict, Optional, Tuple

from ..errors import (AdmissionRejected, ServiceError,
                      ServiceUnavailable)
from .scheduler import TERMINAL_STATES

DEFAULT_TIMEOUT = 10.0
#: total tries per request (1 initial + retries)
DEFAULT_MAX_ATTEMPTS = 4
DEFAULT_BACKOFF_BASE = 0.2
DEFAULT_BACKOFF_CAP = 2.0


class ServiceClient:
    """Talks to one ``repro serve`` instance."""

    def __init__(self, base_url: str, *,
                 timeout: float = DEFAULT_TIMEOUT,
                 max_attempts: int = DEFAULT_MAX_ATTEMPTS,
                 backoff_base: float = DEFAULT_BACKOFF_BASE,
                 backoff_cap: float = DEFAULT_BACKOFF_CAP,
                 retry_seed: Optional[int] = None):
        if max_attempts < 1:
            raise ServiceError("max_attempts must be >= 1")
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.max_attempts = max_attempts
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        #: seedable for deterministic backoff schedules in tests
        self._rng = random.Random(retry_seed)

    # ------------------------------------------------------------------
    def _request_once(self, method: str, path: str,
                      body: Optional[bytes],
                      headers: Dict[str, str]
                      ) -> Tuple[int, Dict[str, object]]:
        request = urllib.request.Request(
            f"{self.base_url}{path}", data=body, headers=headers,
            method=method)
        try:
            with urllib.request.urlopen(
                    request, timeout=self.timeout) as response:
                raw = response.read()
                code = response.status
        except urllib.error.HTTPError as error:
            raw = error.read()
            code = error.code
        try:
            decoded = json.loads(raw.decode("utf-8")) if raw else {}
        except (UnicodeDecodeError, json.JSONDecodeError):
            decoded = {"error": raw.decode("utf-8", "replace")}
        if not isinstance(decoded, dict):
            decoded = {"result": decoded}
        return code, decoded

    def _backoff(self, attempt: int) -> float:
        """Exponential backoff with full jitter: uniform in
        ``[0, min(cap, base * 2**(attempt-1))]``, so a thundering herd
        of retrying clients decorrelates instead of re-stampeding."""
        ceiling = min(self.backoff_cap,
                      self.backoff_base * (2 ** (attempt - 1)))
        return self._rng.uniform(0.0, ceiling)

    def _request(self, method: str, path: str,
                 payload: Optional[Dict[str, object]] = None
                 ) -> Tuple[int, Dict[str, object]]:
        body = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        last_error = ""
        for attempt in range(1, self.max_attempts + 1):
            try:
                code, decoded = self._request_once(
                    method, path, body, headers)
            except urllib.error.URLError as error:
                # connection refused/reset, DNS, timeout: the server
                # may be restarting — retry within budget
                last_error = str(getattr(error, "reason", None)
                                 or error)
            except (ConnectionError, TimeoutError) as error:
                last_error = str(error)
            else:
                if code != 503:
                    return code, decoded
                # the service is alive but shedding (quarantining
                # shards): back off and retry like an outage
                last_error = str(decoded.get("error", "HTTP 503"))
            if attempt < self.max_attempts:
                time.sleep(self._backoff(attempt))
        raise ServiceUnavailable(
            f"service at {self.base_url} unavailable after "
            f"{self.max_attempts} attempt(s): {last_error}",
            attempts=self.max_attempts, last_error=last_error)

    def _checked(self, method: str, path: str,
                 payload: Optional[Dict[str, object]] = None,
                 ok=(200, 202)) -> Dict[str, object]:
        code, decoded = self._request(method, path, payload)
        if code == 429:
            raise AdmissionRejected(
                str(decoded.get("error", "submission rejected")),
                queue_depth=int(decoded.get("queue_depth", 0)),
                pending=int(decoded.get("pending", 0)))
        if code not in ok:
            raise ServiceError(
                f"{method} {path} -> HTTP {code}: "
                f"{decoded.get('error', decoded)}")
        return decoded

    # ------------------------------------------------------------------
    def health(self) -> Dict[str, object]:
        return self._checked("GET", "/health")

    def healthz(self) -> Dict[str, object]:
        return self._checked("GET", "/healthz")

    def ready(self) -> bool:
        """One unretried readiness probe (a 503 here is an answer —
        "not ready" — not an outage)."""
        try:
            code, decoded = self._request_once(
                "GET", "/readyz", None,
                {"Accept": "application/json"})
        except (urllib.error.URLError, ConnectionError,
                TimeoutError) as error:
            raise ServiceUnavailable(
                f"service at {self.base_url} unreachable: {error}",
                attempts=1, last_error=str(error)) from error
        return code == 200 and bool(decoded.get("ready"))

    def campaigns(self) -> Dict[str, object]:
        return self._checked("GET", "/campaigns")

    def submit(self, payload: Dict[str, object], *,
               idempotency_key: Optional[str] = None) -> str:
        """Submit a campaign.  An idempotency key is attached (one is
        generated if neither the argument nor the payload carries
        one), so the retry loop can never spawn a duplicate campaign
        when only the response — not the request — was lost."""
        body = dict(payload)
        if idempotency_key is not None:
            body["idempotency_key"] = idempotency_key
        elif not body.get("idempotency_key"):
            body["idempotency_key"] = uuid.uuid4().hex
        decoded = self._checked("POST", "/campaigns", body)
        return str(decoded["campaign_id"])

    def status(self, campaign_id: str) -> Dict[str, object]:
        return self._checked("GET", f"/campaigns/{campaign_id}")

    def results(self, campaign_id: str) -> Dict[str, object]:
        return self._checked("GET",
                             f"/campaigns/{campaign_id}/results")

    def resume(self, campaign_id: str) -> None:
        self._checked("POST", f"/campaigns/{campaign_id}/resume", {})

    def wait(self, campaign_id: str, *,
             timeout: Optional[float] = None,
             poll_interval: float = 0.5) -> Dict[str, object]:
        """Poll until the campaign reaches a terminal state.

        Each poll rides the bounded retry loop, so a server that dies
        mid-wait surfaces as :class:`ServiceUnavailable` after the
        retry budget instead of an endless silent loop; ``timeout``
        additionally bounds the total wait on a live-but-slow
        campaign."""
        deadline = (time.monotonic() + timeout
                    if timeout is not None else None)
        while True:
            status = self.status(campaign_id)
            if str(status.get("status")) in TERMINAL_STATES:
                return status
            if deadline is not None and \
                    time.monotonic() > deadline:
                raise ServiceError(
                    f"campaign {campaign_id!r} still "
                    f"{status.get('status')} after {timeout:.1f}s")
            time.sleep(poll_interval)
