"""Thin stdlib client for the campaign service (``repro submit``).

Wraps the HTTP/JSON API with typed errors: a 429 from the bounded
admission queue raises :class:`repro.errors.AdmissionRejected` so
callers can back off explicitly, anything else non-2xx raises
:class:`repro.errors.ServiceError` with the server's message.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Dict, Optional, Tuple

from ..errors import AdmissionRejected, ServiceError
from .scheduler import TERMINAL_STATES

DEFAULT_TIMEOUT = 10.0


class ServiceClient:
    """Talks to one ``repro serve`` instance."""

    def __init__(self, base_url: str, *,
                 timeout: float = DEFAULT_TIMEOUT):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------
    def _request(self, method: str, path: str,
                 payload: Optional[Dict[str, object]] = None
                 ) -> Tuple[int, Dict[str, object]]:
        body = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            f"{self.base_url}{path}", data=body, headers=headers,
            method=method)
        try:
            with urllib.request.urlopen(
                    request, timeout=self.timeout) as response:
                raw = response.read()
                code = response.status
        except urllib.error.HTTPError as error:
            raw = error.read()
            code = error.code
        except urllib.error.URLError as error:
            raise ServiceError(
                f"service unreachable at {self.base_url}: "
                f"{error.reason}") from error
        try:
            decoded = json.loads(raw.decode("utf-8")) if raw else {}
        except (UnicodeDecodeError, json.JSONDecodeError):
            decoded = {"error": raw.decode("utf-8", "replace")}
        return code, decoded

    def _checked(self, method: str, path: str,
                 payload: Optional[Dict[str, object]] = None,
                 ok=(200, 202)) -> Dict[str, object]:
        code, decoded = self._request(method, path, payload)
        if code == 429:
            raise AdmissionRejected(
                str(decoded.get("error", "submission rejected")),
                queue_depth=int(decoded.get("queue_depth", 0)),
                pending=int(decoded.get("pending", 0)))
        if code not in ok:
            raise ServiceError(
                f"{method} {path} -> HTTP {code}: "
                f"{decoded.get('error', decoded)}")
        return decoded

    # ------------------------------------------------------------------
    def health(self) -> Dict[str, object]:
        return self._checked("GET", "/health")

    def campaigns(self) -> Dict[str, object]:
        return self._checked("GET", "/campaigns")

    def submit(self, payload: Dict[str, object]) -> str:
        decoded = self._checked("POST", "/campaigns", payload)
        return str(decoded["campaign_id"])

    def status(self, campaign_id: str) -> Dict[str, object]:
        return self._checked("GET", f"/campaigns/{campaign_id}")

    def results(self, campaign_id: str) -> Dict[str, object]:
        return self._checked("GET",
                             f"/campaigns/{campaign_id}/results")

    def resume(self, campaign_id: str) -> None:
        self._checked("POST", f"/campaigns/{campaign_id}/resume", {})

    def wait(self, campaign_id: str, *,
             timeout: Optional[float] = None,
             poll_interval: float = 0.5) -> Dict[str, object]:
        """Poll until the campaign reaches a terminal state."""
        deadline = (time.monotonic() + timeout
                    if timeout is not None else None)
        while True:
            status = self.status(campaign_id)
            if str(status.get("status")) in TERMINAL_STATES:
                return status
            if deadline is not None and \
                    time.monotonic() > deadline:
                raise ServiceError(
                    f"campaign {campaign_id!r} still "
                    f"{status.get('status')} after {timeout:.1f}s")
            time.sleep(poll_interval)
