"""SGX-Step model: precise single-stepping of enclave execution.

The real SGX-Step arms the local APIC timer so that an interrupt lands
after exactly one enclave instruction retires (§6.3).  Our kernel can
stop the core after one *retire unit* directly, which models a
perfectly calibrated timer — with the same fundamental caveats the
paper reports:

* a macro-fused ALU+Jcc pair retires as a single unit, so one "step"
  silently covers two instructions (§7.3);
* instructions beyond the interrupted one may have speculatively
  executed and touched the BTB before the pipeline drained (§6.3).

Every step performs the AEX / ERESUME dance: enclave mode (and with it
LBR suppression) is entered before the step and exited after, which
leaves the LBR usable by the attacker in between.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..cpu.core import StopReason
from ..errors import SgxError
from ..system.kernel import Kernel
from ..system.process import Process
from .enclave import Enclave


@dataclass
class StepResult:
    """Outcome of one single-step."""

    #: True while the enclave is still running, False once it exited
    running: bool
    #: retire units consumed (1, or 0 if the enclave finished)
    retired: int
    #: RIP after the step — ONLY for ground-truth validation in tests;
    #: attack code must never read this (a real attacker cannot).
    debug_rip: Optional[int] = None


class SgxStepper:
    """Drives an enclave one retire unit at a time."""

    def __init__(self, kernel: Kernel, host: Process, enclave: Enclave,
                 *, expose_debug_rip: bool = False):
        if enclave.host is not host:
            raise SgxError("enclave is not loaded into this process")
        self.kernel = kernel
        self.host = host
        self.enclave = enclave
        self.expose_debug_rip = expose_debug_rip
        self._finished = False

    # ------------------------------------------------------------------
    def enter(self, entry: Optional[int] = None,
              args: Optional[list] = None) -> None:
        """EENTER: point the host thread at the enclave entry."""
        state = self.host.state
        arg_regs = ("rdi", "rsi", "rdx", "rcx", "r8", "r9")
        for register, value in zip(arg_regs, args or []):
            state.regs[register] = value
        state.rip = entry if entry is not None else self.enclave.entry
        self.host.memory.context = self.enclave
        self.enclave.entered = True
        self._finished = False

    def step(self, *, speculate: Optional[bool] = None) -> StepResult:
        """Run exactly one retire unit inside the enclave.

        With a fault injector attached to the kernel, the APIC timer
        model misbehaves the way SGX-Step's real one does: a
        *zero-step* interrupt arrives before anything retires (the
        step is a no-op the attacker cannot distinguish from a slow
        instruction), and a *multi-step* interrupt lands one unit
        late, so two retire units pass under one "step".

        Returns ``running=False`` once the enclave halts/exits.
        """
        if self._finished:
            return StepResult(running=False, retired=0)
        budget = 1
        injector = self.kernel.fault_injector
        if injector is not None:
            from ..faults.injector import StepFault
            fault = injector.step_fault()
            if fault is StepFault.ZERO_STEP:
                debug_rip = (self.host.state.rip
                             if self.expose_debug_rip else None)
                return StepResult(running=True, retired=0,
                                  debug_rip=debug_rip)
            if fault is StepFault.MULTI_STEP:
                budget = 2
        core = self.kernel.core
        core.set_enclave_mode(True)
        try:
            result = self.kernel.run_slice(
                self.host, max_retired=budget,
                speculate_on_stop=speculate)
        finally:
            core.set_enclave_mode(False)   # AEX
        if result.reason in (StopReason.HALT, StopReason.SYSCALL):
            self._finished = True
        if not self.host.alive:
            self._finished = True
        debug_rip = (self.host.state.rip
                     if self.expose_debug_rip else None)
        return StepResult(running=not self._finished,
                          retired=result.retired, debug_rip=debug_rip)

    def run_to_exit(self, max_steps: int = 10_000_000) -> int:
        """Step until the enclave finishes; returns the step count."""
        steps = 0
        while steps < max_steps:
            if not self.step().running:
                return steps
            steps += 1
        raise SgxError(f"enclave did not exit within {max_steps} steps")

    @property
    def finished(self) -> bool:
        return self._finished
