"""SGX model: enclaves with EPC isolation and PCL code confidentiality,
SGX-Step single-stepping, and controlled-channel page tracking."""

from .controlled_channel import CodePageTracker, DataAccessMonitor
from .enclave import Enclave
from .pcl import SealedImage, SealedSegment, seal, unseal
from .sgxstep import SgxStepper, StepResult

__all__ = [
    "CodePageTracker",
    "DataAccessMonitor",
    "Enclave",
    "SealedImage",
    "SealedSegment",
    "SgxStepper",
    "StepResult",
    "seal",
    "unseal",
]
