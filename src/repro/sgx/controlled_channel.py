"""Controlled-channel attacks (Xu et al. [64], paper §6.3/§6.4).

Two attacker capabilities built purely on page-table control:

* :class:`CodePageTracker` — keep every enclave code page
  non-executable; each fault reveals (and re-enables) the page the
  enclave is about to execute.  This supplies the *virtual page
  number* half of every extracted PC (Fig. 9, lines 2–4); NightVision
  supplies the page-offset half.

* :class:`DataAccessMonitor` — clear accessed/dirty bits before a
  step and read them after; a suspected ``call``/``ret`` is confirmed
  by its stack (data-page) access (§6.4 step 1).
"""

from __future__ import annotations

from typing import List, Optional, Set

from ..errors import PageFault
from ..memory.address import PAGE_SIZE, page_number
from ..system.kernel import Kernel
from ..system.process import Process
from .enclave import Enclave


class CodePageTracker:
    """Page-granular PC tracking via execute-permission faults."""

    def __init__(self, kernel: Kernel, host: Process, enclave: Enclave):
        self.kernel = kernel
        self.host = host
        self.enclave = enclave
        self._code_pages: Set[int] = set(enclave.code_pages())
        self.current_page: Optional[int] = None
        #: every observed page transition, in order
        self.page_trace: List[int] = []
        self._installed = False

    # ------------------------------------------------------------------
    def install(self) -> None:
        """Mark all enclave code pages NX and hook page faults."""
        table = self.host.memory.page_table
        for vpn in self._code_pages:
            table.set_perms(vpn, "r--")
        previous = self.kernel.fault_handler
        if previous is not None:
            raise RuntimeError("kernel already has a fault handler")
        self.kernel.fault_handler = self._on_fault
        self._installed = True

    def uninstall(self) -> None:
        table = self.host.memory.page_table
        for vpn in self._code_pages:
            table.set_perms(vpn, "r-x")
        if self._installed:
            self.kernel.fault_handler = None
            self._installed = False

    # ------------------------------------------------------------------
    def _on_fault(self, kernel: Kernel, process: Process,
                  fault: PageFault) -> bool:
        if process is not self.host or fault.access != "execute":
            return False
        vpn = page_number(fault.address)
        if vpn not in self._code_pages:
            return False
        table = self.host.memory.page_table
        if self.current_page is not None:
            table.set_perms(self.current_page, "r--")
        table.set_perms(vpn, "r-x")
        self.current_page = vpn
        self.page_trace.append(vpn)
        return True     # retry the faulting fetch

    # ------------------------------------------------------------------
    def page_base(self) -> Optional[int]:
        """Base address of the page currently executing, if known."""
        if self.current_page is None:
            return None
        return self.current_page * PAGE_SIZE


class DataAccessMonitor:
    """Accessed/dirty-bit monitoring of the enclave's data pages."""

    def __init__(self, host: Process, enclave: Enclave):
        self.host = host
        self.enclave = enclave
        table = host.memory.page_table
        self._data_pages: Set[int] = set()
        for start, end in enclave.epc_ranges:
            for vpn in range(page_number(start), page_number(end - 1) + 1):
                entry = table.entry(vpn)
                if entry is not None and entry.writable:
                    self._data_pages.add(vpn)

    def arm(self) -> None:
        """Clear A/D bits on the enclave's data pages."""
        table = self.host.memory.page_table
        for vpn in self._data_pages:
            entry = table.entry(vpn)
            if entry is not None:
                entry.accessed = False
                entry.dirty = False

    def touched(self) -> Set[int]:
        """Data pages accessed since :meth:`arm`."""
        table = self.host.memory.page_table
        out: Set[int] = set()
        for vpn in self._data_pages:
            entry = table.entry(vpn)
            if entry is not None and entry.accessed:
                out.add(vpn)
        return out

    def touched_any(self) -> bool:
        return bool(self.touched())
