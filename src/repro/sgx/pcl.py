"""Protected Code Loader model (SGX PCL, §6.1).

The real PCL ships the enclave binary encrypted and decrypts it only
once it is inside the enclave, so the platform owner never sees
plaintext code.  We model that with a deterministic keystream cipher:
the *ciphertext* is what sits in untrusted memory / on disk, and
decryption happens during enclave load into EPC pages the attacker
cannot read.

The cipher is not meant to be cryptographically strong — it only has to
make the property testable: ciphertext bytes share no structure with
the plaintext, so nothing in the attack stack can "accidentally" use
the code bytes.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import List, Tuple


def _keystream(key: bytes, nonce: bytes, length: int) -> bytes:
    out = bytearray()
    counter = 0
    while len(out) < length:
        block = hashlib.sha256(
            key + nonce + counter.to_bytes(8, "little")).digest()
        out += block
        counter += 1
    return bytes(out[:length])


def seal(data: bytes, key: bytes, nonce: bytes) -> bytes:
    """Encrypt ``data`` (involutive: seal(seal(x)) == x)."""
    stream = _keystream(key, nonce, len(data))
    return bytes(a ^ b for a, b in zip(data, stream))


unseal = seal  # XOR keystream: same operation


@dataclass(frozen=True)
class SealedSegment:
    """One encrypted code/data segment of an enclave image."""

    base: int
    ciphertext: bytes

    def decrypt(self, key: bytes) -> bytes:
        return unseal(self.ciphertext, key,
                      self.base.to_bytes(8, "little"))


@dataclass(frozen=True)
class SealedImage:
    """The encrypted enclave binary as shipped to the platform."""

    segments: Tuple[SealedSegment, ...]
    entry: int

    @classmethod
    def seal_segments(cls, segments: List[Tuple[int, bytes]],
                      entry: int, key: bytes) -> "SealedImage":
        sealed = tuple(
            SealedSegment(base, seal(blob, key,
                                     base.to_bytes(8, "little")))
            for base, blob in segments
        )
        return cls(segments=sealed, entry=entry)

    def decrypt_segments(self, key: bytes) -> List[Tuple[int, bytes]]:
        return [(s.base, s.decrypt(key)) for s in self.segments]
